//! # edison-repro
//!
//! Umbrella crate for the reproduction of *"An Experimental Evaluation of
//! Datacenter Workloads On Low-Power Embedded Micro Servers"* (Zhao et al.,
//! VLDB 2016). It re-exports the public API of every subsystem crate and
//! hosts the repository-level `examples/` and integration `tests/`.
//!
//! Start with [`core`] (the experiment harness) or the `quickstart` example.

/// Discrete-event simulation kernel.
pub use edison_simcore as simcore;

/// Hardware models and the Edison / Dell R620 presets.
pub use edison_hw as hw;

/// Cluster substrate: nodes, OS resources, power metering.
pub use edison_cluster as cluster;

/// Flow-level network fabric.
pub use edison_net as net;

/// Section-4 component microbenchmarks.
pub use edison_microbench as microbench;

/// Section-5.1 web-service stack.
pub use edison_web as web;

/// Section-5.2 MapReduce substrate (HDFS + YARN + engine + jobs).
pub use edison_mapreduce as mapreduce;

/// Section-6 TCO model.
pub use edison_tco as tco;

/// Experiment harness regenerating every table and figure.
pub use edison_core as core;
