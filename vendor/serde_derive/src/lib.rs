//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` backing the
//! offline serde stub. Each derive accepts the item (registering the
//! `#[serde(...)]` helper attribute so field annotations like
//! `#[serde(skip)]` parse) and emits no code — the stub traits in
//! `vendor/serde` are markers with no methods, so there is nothing to
//! implement.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
