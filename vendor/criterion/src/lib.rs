//! Offline stand-in for the slice of `criterion` the bench targets use.
//!
//! Keeps `cargo bench` working without crates.io: every benchmark runs a
//! short calibrated loop and prints mean wall-clock time per iteration.
//! There is no statistical analysis, outlier rejection, or HTML report —
//! numbers from this harness are indicative, not publishable.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20, measurement_time: Duration::from_millis(500) }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.sample_size = n;
        self
    }

    /// Target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size, self.measurement_time, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl<'a> BenchmarkGroup<'a> {
    /// Number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0);
        self.criterion.sample_size = n;
        self
    }

    /// Benchmark a function against one input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        run_one(&full, self.criterion.sample_size, self.criterion.measurement_time, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Run one named benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.criterion.sample_size, self.criterion.measurement_time, &mut f);
        self
    }

    /// Finish the group (no-op here; criterion flushes reports).
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus a parameter rendering.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }
}

/// Passed to the benchmark closure; call [`iter`](Bencher::iter) with the
/// code under test.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, samples: usize, target: Duration, f: &mut F) {
    // Calibrate: grow the iteration count until one sample is ≥ target/samples.
    let per_sample = target / samples as u32;
    let mut iters = 1u64;
    loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        if b.elapsed >= per_sample || iters >= 1 << 20 {
            break;
        }
        iters *= 2;
    }
    let mut total = Duration::ZERO;
    let mut best = Duration::MAX;
    for _ in 0..samples {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        total += b.elapsed;
        best = best.min(b.elapsed);
    }
    let mean_ns = total.as_nanos() as f64 / (samples as u64 * iters) as f64;
    let best_ns = best.as_nanos() as f64 / iters as f64;
    println!("bench {id:<50} mean {:>12} best {:>12} ({iters} iters x {samples} samples)", fmt_ns(mean_ns), fmt_ns(best_ns));
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declare a benchmark group, in either criterion form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),+);
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
