//! Offline stand-in for `crossbeam::thread::scope`, backed by
//! `std::thread::scope` (stable since Rust 1.63).
//!
//! The workspace only uses scoped fork-join parallelism to fan
//! independent simulations across cores; std's scoped threads provide the
//! same borrow-from-the-stack guarantee. Panic semantics differ slightly
//! from real crossbeam: a panicking child makes `scope` itself panic
//! (propagated by std on implicit join) rather than surface as `Err`, so
//! the `Err` arm of the returned `Result` is never constructed here.

pub mod thread {
    //! Scoped threads.

    use std::any::Any;

    /// Mirrors `crossbeam::thread::Scope`: spawn threads that may borrow
    /// from the enclosing stack frame.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish; `Err` carries its panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. The closure receives the scope
        /// again so it can spawn nested work, as in crossbeam.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let reborrowed = Scope { inner: self.inner };
            ScopedJoinHandle { inner: self.inner.spawn(move || f(&reborrowed)) }
        }
    }

    /// Run `f` with a scope handle; all spawned threads are joined before
    /// this returns. Always `Ok` here (see module docs for the panic
    /// semantics difference from real crossbeam).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let mut slots = vec![0u64; 8];
        super::thread::scope(|scope| {
            for (i, slot) in slots.iter_mut().enumerate() {
                scope.spawn(move |_| {
                    *slot = i as u64 + 1;
                });
            }
        })
        .expect("scope");
        assert_eq!(slots, (1..=8).collect::<Vec<_>>());
    }

    #[test]
    fn handles_return_values() {
        let out = super::thread::scope(|scope| {
            let h = scope.spawn(|_| 41 + 1);
            h.join().expect("join")
        })
        .expect("scope");
        assert_eq!(out, 42);
    }
}
