//! Offline stand-in for the slice of `serde` this workspace touches.
//!
//! The workspace derives `Serialize`/`Deserialize` on its config and
//! stats types so downstream consumers *can* wire up serialization, but
//! nothing in-tree bounds on the traits or runs a serializer (reports are
//! exported via the hand-rolled CSV/markdown writers in
//! `edison-core::export`). With crates.io unreachable, this stub keeps
//! those derives compiling: the traits are markers and the derive macros
//! (from the sibling `serde_derive` stub) validate nothing and emit
//! nothing. Swap the real serde back in when the build environment gains
//! network access.

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types declared serializable. No methods: no in-tree code
/// serializes through serde.
pub trait Serialize {}

/// Marker for types declared deserializable. No methods: no in-tree code
/// deserializes through serde.
pub trait Deserialize<'de>: Sized {}
