//! Distributions over random sources.

use crate::Rng;
use std::borrow::Borrow;
use std::fmt;

/// Types that can produce values of `T` given a source of randomness.
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution for a type: full range for integers, the
/// unit interval `[0, 1)` for floats (53-bit mantissa precision, matching
/// `rand 0.8`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<u64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Take the top 53 bits: uniform on [0, 1) with full mantissa.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub mod uniform {
    //! Uniform sampling over ranges.

    use super::super::Rng;
    use std::ops::Range;

    /// A range that can produce uniform samples of `T`.
    pub trait SampleRange<T> {
        /// Draw one sample from the range.
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
    }

    /// Unbiased uniform integer in `[0, n)` by rejection sampling: reject
    /// draws from the tail shorter than `n` so every residue is equally
    /// likely. The loop terminates with probability 1 (expected < 2
    /// iterations for any `n`).
    #[inline]
    fn below<R: Rng + ?Sized>(rng: &mut R, n: u64) -> u64 {
        debug_assert!(n > 0);
        let zone = u64::MAX - u64::MAX.wrapping_rem(n);
        loop {
            let v = rng.next_u64();
            if v < zone || zone == 0 {
                return v % n;
            }
        }
    }

    macro_rules! int_sample_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "empty sample range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(below(rng, span) as $t)
                }
            }
        )*};
    }

    int_sample_range!(u8, u16, u32, u64, usize);

    impl SampleRange<f64> for Range<f64> {
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
            assert!(self.start < self.end, "empty sample range");
            let u: f64 = rng.gen();
            self.start + (self.end - self.start) * u
        }
    }
}

/// Error from [`WeightedIndex::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WeightedError {
    /// No weights were supplied.
    NoItem,
    /// A weight was negative or not finite.
    InvalidWeight,
    /// Every weight was zero.
    AllWeightsZero,
}

impl fmt::Display for WeightedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            WeightedError::NoItem => "no weights",
            WeightedError::InvalidWeight => "negative or non-finite weight",
            WeightedError::AllWeightsZero => "all weights zero",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for WeightedError {}

/// Draws an index with probability proportional to its weight, by inverse
/// CDF over the precomputed cumulative weights.
#[derive(Debug, Clone)]
pub struct WeightedIndex {
    cumulative: Vec<f64>,
    total: f64,
}

impl WeightedIndex {
    /// Build from non-negative weights (at least one must be positive).
    pub fn new<I>(weights: I) -> Result<Self, WeightedError>
    where
        I: IntoIterator,
        I::Item: std::borrow::Borrow<f64>,
    {
        let mut cumulative = Vec::new();
        let mut total = 0.0f64;
        for w in weights {
            let w = *w.borrow();
            if !w.is_finite() || w < 0.0 {
                return Err(WeightedError::InvalidWeight);
            }
            total += w;
            cumulative.push(total);
        }
        if cumulative.is_empty() {
            return Err(WeightedError::NoItem);
        }
        if total <= 0.0 {
            return Err(WeightedError::AllWeightsZero);
        }
        Ok(WeightedIndex { cumulative, total })
    }
}

impl Distribution<usize> for WeightedIndex {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        let target = u * self.total;
        // partition_point: first index whose cumulative weight exceeds the
        // target; zero-weight entries are skipped because their cumulative
        // equals their predecessor's.
        let i = self.cumulative.partition_point(|&c| c <= target);
        i.min(self.cumulative.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn weighted_rejects_bad_input() {
        assert!(matches!(WeightedIndex::new(Vec::<f64>::new()), Err(WeightedError::NoItem)));
        assert!(matches!(WeightedIndex::new([-1.0]), Err(WeightedError::InvalidWeight)));
        assert!(matches!(WeightedIndex::new([0.0, 0.0]), Err(WeightedError::AllWeightsZero)));
    }

    #[test]
    fn weighted_skips_zero_weights() {
        let d = WeightedIndex::new([0.0, 1.0, 0.0]).unwrap();
        let mut r = SmallRng::seed_from_u64(5);
        for _ in 0..200 {
            assert_eq!(d.sample(&mut r), 1);
        }
    }

    #[test]
    fn weighted_matches_proportions() {
        let d = WeightedIndex::new([1.0, 3.0]).unwrap();
        let mut r = SmallRng::seed_from_u64(6);
        let hits = (0..40_000).filter(|_| d.sample(&mut r) == 1).count();
        let frac = hits as f64 / 40_000.0;
        assert!((frac - 0.75).abs() < 0.01, "{frac}");
    }
}
