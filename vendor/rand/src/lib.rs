//! Offline stand-in for the subset of `rand` 0.8 this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the few trait/type surfaces it consumes: [`SeedableRng`],
//! [`Rng`], [`rngs::SmallRng`] and
//! [`distributions::WeightedIndex`]. `SmallRng` is the same generator
//! family the real crate uses on 64-bit targets (xoshiro256++ seeded by
//! SplitMix64), so streams are high quality and — critically for this
//! repo — fully determined by the seed.
//!
//! Only what `edison-simcore::rng` needs is implemented. If you add a new
//! `rand` API use, extend this stub deliberately rather than reaching for
//! unimplemented surface.

pub mod distributions;
pub mod rngs;

/// Core source of randomness: a 64-bit generator.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 random bits (high word of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Construct from the raw seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it with SplitMix64 exactly like
    /// `rand 0.8` does, so a single word seeds the full state.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 (public domain, Vigna).
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (dst, src) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *dst = src;
            }
        }
        Self::from_seed(seed)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the [`Standard`] distribution.
    ///
    /// [`Standard`]: distributions::Standard
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Uniform sample from a half-open range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_repeat() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_interval_f64() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen::<f64>();
            assert!((0.0..1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = r.gen_range(3u64..17);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "{counts:?}");
        }
    }
}
