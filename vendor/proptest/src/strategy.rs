//! Strategies: how to sample a value of some type.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for sampling values. Unlike real proptest there is no value
/// tree / shrinking — `sample` draws one concrete value.
pub trait Strategy {
    /// The type of sampled values.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The full range of an integer type (used by `any::<uN>()`).
#[derive(Debug, Clone, Copy)]
pub struct FullRange<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T> FullRange<T> {
    pub(crate) fn new() -> Self {
        FullRange { _marker: std::marker::PhantomData }
    }
}

macro_rules! impl_int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for FullRange<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// String literals are regex strategies in proptest. This stub supports
/// the single shape the workspace uses — one character class with a
/// repetition count, `[abc x-z]{lo,hi}` — and rejects anything else
/// loudly rather than mis-sampling it.
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let (alphabet, lo, hi) = parse_class_repeat(self)
            .unwrap_or_else(|| panic!("unsupported regex strategy {self:?}: this offline proptest stub only handles \"[class]{{lo,hi}}\""));
        let len = if hi > lo { lo + rng.below((hi - lo + 1) as u64) as usize } else { lo };
        (0..len).map(|_| alphabet[rng.below(alphabet.len() as u64) as usize]).collect()
    }
}

/// Parse `[class]{lo,hi}` into (expanded alphabet, lo, hi).
fn parse_class_repeat(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let (class, rest) = rest.split_once(']')?;
    let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = counts.split_once(',')?;
    let (lo, hi) = (lo.trim().parse().ok()?, hi.trim().parse().ok()?);
    if lo > hi {
        return None;
    }
    let chars: Vec<char> = class.chars().collect();
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        // `a-z` range (a leading or trailing `-` is a literal dash)
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (a, b) = (chars[i], chars[i + 2]);
            if a > b {
                return None;
            }
            alphabet.extend((a..=b).filter(|c| c.is_ascii()));
            i += 3;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() && lo > 0 {
        return None;
    }
    Some((alphabet, lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn class_repeat_parses_ranges_and_literals() {
        let (alpha, lo, hi) = parse_class_repeat("[a-c ]{0,2000}").unwrap();
        assert_eq!(alpha, vec!['a', 'b', 'c', ' ']);
        assert_eq!((lo, hi), (0, 2000));
        assert!(parse_class_repeat("hello+").is_none());
    }

    #[test]
    fn regex_strategy_samples_in_alphabet() {
        let mut rng = TestRng::for_test("regex");
        for _ in 0..50 {
            let s = "[a-c ]{0,40}".sample(&mut rng);
            assert!(s.len() <= 40);
            assert!(s.chars().all(|c| matches!(c, 'a'..='c' | ' ')), "{s:?}");
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..500 {
            let v = (3u32..9).sample(&mut rng);
            assert!((3..9).contains(&v));
            let f = (0.5f64..2.0).sample(&mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }
}
