//! Offline stand-in for the slice of `proptest` this workspace uses.
//!
//! Implements the `proptest! { fn name(x in strategy, ...) { body } }`
//! macro, range/tuple/vec/regex-literal strategies, `any::<T>()` for
//! primitives, and `prop_assert*`. Differences from real proptest, by
//! design:
//!
//! * **no shrinking** — a failing case reports the sampled inputs as-is
//!   (every strategy prints its sampled value in the panic message);
//! * **deterministic** — the RNG seed is derived from the test's name, so
//!   a failure reproduces by re-running the same test binary; there is no
//!   persistence file;
//! * **regex strategies** support exactly the `[class]{lo,hi}` shape used
//!   in this workspace, not full regex syntax.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The `any::<T>()` entry point and the [`Arbitrary`] trait behind it.
pub mod arbitrary {
    use crate::strategy::{FullRange, Strategy};
    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// The strategy produced by [`any`](super::any).
        type Strategy: Strategy<Value = Self>;
        /// The canonical strategy for the type.
        fn arbitrary() -> Self::Strategy;
    }

    /// Strategy yielding uniformly random `bool`s.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;
        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                type Strategy = FullRange<$t>;
                fn arbitrary() -> FullRange<$t> {
                    FullRange::new()
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);
}

/// Strategy for any value of `T` — `any::<bool>()` etc.
pub fn any<T: arbitrary::Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Everything a `proptest!` call site needs.
pub mod prelude {
    pub use crate::arbitrary::Arbitrary;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert inside a property body. Without shrinking there is no failure
/// machinery to thread through, so this is `assert!` plus the sampled-input
/// dump the harness prints from the enclosing loop.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests. Supports the subset of real proptest syntax the
/// workspace uses: an optional leading `#![proptest_config(expr)]`, then
/// any number of `fn name(binding in strategy, ...) { body }` items, each
/// carrying its own attributes (`#[test]`, doc comments).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal expansion of [`proptest!`]: one plain `fn` per property, which
/// loops `config.cases` times sampling every binding, and on panic reports
/// the case number and sampled inputs before re-raising.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($binding:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                $(let $binding = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                let __inputs = format!(
                    concat!($(stringify!($binding), " = {:?}, "),+),
                    $(&$binding),+
                );
                let __guard = $crate::test_runner::CaseGuard::new(__case, __inputs);
                $body
                __guard.disarm();
            }
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}
