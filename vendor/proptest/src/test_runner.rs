//! Test-runner plumbing: per-test configuration, the deterministic RNG,
//! and the failing-case reporter.

/// Subset of `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 32 cases — smaller than real proptest's 256: there is no shrinker,
    /// so budget the time toward many properties rather than many cases.
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Deterministic RNG for strategies: SplitMix64 seeded from the test's
/// module path and name, so every test gets an independent, reproducible
/// stream and a failure reproduces by re-running the test.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test identifier (FNV-1a over the name).
    pub fn for_test(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next raw 64 bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, n)`; `n = 0` returns 0.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        // Rejection sampling for exact uniformity.
        let zone = u64::MAX - u64::MAX.wrapping_rem(n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)` with 53-bit precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Prints the case number and sampled inputs when a property body panics,
/// then lets the panic propagate — the no-shrinking stand-in for real
/// proptest's minimal-failure report.
pub struct CaseGuard {
    case: u32,
    inputs: String,
    armed: bool,
}

impl CaseGuard {
    /// Arm a guard for one case.
    pub fn new(case: u32, inputs: String) -> Self {
        CaseGuard { case, inputs, armed: true }
    }

    /// The case finished without panicking; stay silent on drop.
    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            eprintln!("proptest case {} failed with inputs: {}", self.case, self.inputs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_streams_are_stable_and_distinct() {
        let mut a = TestRng::for_test("alpha");
        let mut b = TestRng::for_test("alpha");
        let mut c = TestRng::for_test("beta");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_is_bounded() {
        let mut r = TestRng::for_test("below");
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
        assert_eq!(r.below(0), 0);
    }
}
