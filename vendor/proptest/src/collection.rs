//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy for a `Vec` whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec-size range");
    VecStrategy { element, size }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_lengths_and_elements_in_range() {
        let strat = vec(0u64..5, 2..7);
        let mut rng = TestRng::for_test("vec");
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }
}
