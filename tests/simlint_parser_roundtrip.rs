//! The simlint parser is lossless by construction: item/expression ranges
//! tile the token stream, and reassembling the ranges reproduces the input
//! byte-for-byte. These tests pin that on (a) every Rust file in this
//! workspace and (b) randomly generated token soup, so parser growth can
//! never silently drop the regions the analyses walk.

use edison_simlint::parse;
use proptest::prelude::*;
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    edison_simlint::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root")
}

fn assert_round_trips(src: &str, what: &dyn std::fmt::Display) {
    let (toks, ast) = parse::parse(src);
    assert_eq!(ast.validate(), Ok(()), "item ranges must tile {what}");
    assert_eq!(ast.reassemble(src, &toks), src, "reassembly must be lossless for {what}");
}

/// Every `.rs` file in the workspace parses, validates, and reassembles
/// to its exact original bytes.
#[test]
fn every_workspace_file_round_trips() {
    let root = workspace_root();
    let mut checked = 0u32;
    for tree in ["crates", "src", "tests", "benches", "examples"] {
        walk(&root.join(tree), &mut checked);
    }
    assert!(checked > 50, "walked only {checked} files; wrong root?");

    fn walk(dir: &Path, checked: &mut u32) {
        let Ok(entries) = std::fs::read_dir(dir) else { return };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name().to_string_lossy().to_string();
            if path.is_dir() {
                if name == "target" || name == "vendor" || name.starts_with('.') {
                    continue;
                }
                walk(&path, checked);
            } else if name.ends_with(".rs") {
                let src = std::fs::read_to_string(&path).expect("read source");
                assert_round_trips(&src, &path.display());
                *checked += 1;
            }
        }
    }
}

/// Token vocabulary for the soup generator: keywords, punctuation
/// (including unbalanced delimiters), literals, idents, lifetimes.
const VOCAB: &[&str] = &[
    "fn", "struct", "enum", "impl", "trait", "mod", "use", "let", "if", "else", "match", "for",
    "while", "loop", "return", "pub", "const", "static", "type", "move", "mut", "as", "in",
    "where", "self", "Self", "dyn", "ref", "break", "continue", "(", ")", "[", "]", "{", "}",
    "<", ">", "::", "->", "=>", "==", "!=", "..", "..=", "+", "-", "*", "/", "%", "&", "|", "^",
    "!", "=", ";", ",", ".", "#", "?", "@", "0", "1u32", "1.5", "1.5e-3", "0x7f", "\"s\"", "'c'",
    "'\\''", "b'q'", "r#\"raw\"#", "'a", "foo", "Bar", "x", "y", "HashMap", "vec", "println",
];

proptest! {
    /// Arbitrary token soup — balanced or not — always parses into ranges
    /// that tile the stream and reassemble losslessly. This is the
    /// guarantee that lets `parse()` run on every file without a
    /// fallible-parse escape hatch.
    #[test]
    fn token_soup_round_trips(picks in proptest::collection::vec(0usize..VOCAB.len(), 0..150)) {
        let src = picks.iter().map(|&i| VOCAB[i]).collect::<Vec<_>>().join(" ");
        let (toks, ast) = parse::parse(&src);
        prop_assert_eq!(ast.validate(), Ok(()), "coverage broken for {:?}", src);
        prop_assert_eq!(ast.reassemble(&src, &toks), src);
    }
}
