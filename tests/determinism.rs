//! Bit-exact reproducibility of the two headline workloads.
//!
//! The repo's determinism claim (README §Determinism) is stronger than
//! "same statistics": two runs from the same `u64` seed must produce
//! *bit-identical* results, down to the float accumulation order. These
//! tests serialize full result structs with `{:?}` — which prints every
//! f64 exactly — and compare the strings, so any hasher-ordered map or
//! ambient-state read in the hot path shows up as a diff.

use edison_mapreduce::engine::{run_job, ClusterSetup};
use edison_mapreduce::jobs;
use edison_web::httperf::{self, RunOpts};
use edison_web::{ClusterScale, Platform, WebScenario, WorkloadMix};

fn web_run(seed: u64) -> String {
    let sc = WebScenario::table6(Platform::Edison, ClusterScale::Quarter).unwrap();
    let r = httperf::run_point(
        &sc,
        WorkloadMix::img20(),
        96.0,
        RunOpts { seed, warmup_s: 2, measure_s: 6, ..RunOpts::default() },
    );
    format!("{r:?}")
}

fn mapreduce_run(seed: u64) -> String {
    let mut setup = ClusterSetup::edison(8);
    setup.seed = seed;
    let mut p = jobs::wordcount(setup.tune);
    p.input_bytes /= 8;
    p.map_tasks = (p.map_tasks / 8).max(4);
    let out = run_job(&p, &setup);
    format!("{out:?}")
}

/// Web stack: same seed twice → bit-identical serialized result.
#[test]
fn webservice_same_seed_is_bit_identical() {
    let a = web_run(20160509);
    let b = web_run(20160509);
    assert_eq!(a, b, "two web runs from one seed diverged");
}

/// Web stack: a different seed must actually change the result, or the
/// equality above proves nothing.
#[test]
fn webservice_different_seed_differs() {
    assert_ne!(web_run(20160509), web_run(4242), "seed has no effect on the web stack");
}

/// MapReduce: same seed twice → bit-identical serialized outcome,
/// including the full sampled timeline.
#[test]
fn mapreduce_same_seed_is_bit_identical() {
    let a = mapreduce_run(20160509);
    let b = mapreduce_run(20160509);
    assert_eq!(a, b, "two MapReduce runs from one seed diverged");
}

/// MapReduce: a different seed changes block placement and so the
/// outcome.
#[test]
fn mapreduce_different_seed_differs() {
    assert_ne!(mapreduce_run(20160509), mapreduce_run(4242), "seed has no effect on MapReduce");
}
