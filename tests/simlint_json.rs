//! `cargo lint-gate -- --json` contract tests: the machine-readable
//! report has a stable schema and is byte-identical across repeated runs
//! of the same tree, so CI tooling can diff and parse it without a JSON
//! library on the other end having to tolerate drift.

use std::fs;
use std::path::PathBuf;

fn fixture(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("simlint-{tag}-{}", std::process::id()));
    fs::remove_dir_all(&root).ok();
    fs::create_dir_all(root.join("crates/demo/src")).expect("mkdir");
    fs::write(root.join("Cargo.toml"), "[workspace]\nmembers = [\"crates/*\"]\n").expect("manifest");
    fs::write(
        root.join("crates/demo/src/lib.rs"),
        "pub fn f(o: Option<u8>) -> u8 { o.unwrap() }\n",
    )
    .expect("lib");
    root
}

/// Golden output: one R6 finding against an empty baseline. Any schema
/// change — field rename, reordering, formatting — must update this
/// string deliberately.
#[test]
fn json_report_matches_golden() {
    let root = fixture("json-golden");
    let report = edison_simlint::check(&root).expect("scan");
    let json = edison_simlint::report_to_json(&report);
    let golden = r#"{
  "schema": "edison-simlint/2",
  "files_scanned": 1,
  "passed": false,
  "findings": [
    {"rule": "R6", "file": "crates/demo/src/lib.rs", "line": 1, "msg": ".unwrap() can panic at runtime; return RunError/SimError instead"}
  ],
  "deltas": [
    {"rule": "R6", "file": "crates/demo/src/lib.rs", "baseline": 0, "current": 1}
  ],
  "rot": []
}
"#;
    assert_eq!(json, golden);
    fs::remove_dir_all(&root).ok();
}

/// Two independent scans of the same tree render byte-identical JSON —
/// the report must not depend on walk order, map iteration, or any other
/// ambient state.
#[test]
fn json_report_is_deterministic_across_runs() {
    let root = fixture("json-stable");
    let a = edison_simlint::report_to_json(&edison_simlint::check(&root).expect("scan"));
    let b = edison_simlint::report_to_json(&edison_simlint::check(&root).expect("scan"));
    assert_eq!(a, b);
    fs::remove_dir_all(&root).ok();
}

/// The full-workspace report (the one CI actually consumes) carries every
/// schema key, whatever the current findings happen to be.
#[test]
fn workspace_json_report_has_stable_schema_keys() {
    let root = edison_simlint::find_workspace_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root");
    let json = edison_simlint::report_to_json(&edison_simlint::check(&root).expect("scan"));
    for key in
        ["\"schema\": \"edison-simlint/2\"", "\"files_scanned\":", "\"passed\":", "\"findings\":", "\"deltas\":", "\"rot\":"]
    {
        assert!(json.contains(key), "missing {key} in:\n{json}");
    }
}
