//! End-to-end fixtures for the AST-level analyses: each seeds a bug the
//! token-level v1 rules (R1–R6) cannot see, runs the full pipeline
//! (lex → parse → index → taint/units → allow markers), and asserts the
//! scan yields exactly that one finding.

use std::fs;
use std::path::PathBuf;

/// Build a throwaway single-crate workspace from (path, contents) pairs.
fn fixture(tag: &str, files: &[(&str, &str)]) -> PathBuf {
    let root = std::env::temp_dir().join(format!("simlint-{tag}-{}", std::process::id()));
    fs::remove_dir_all(&root).ok();
    fs::create_dir_all(root.join("crates/demo/src")).expect("mkdir");
    fs::write(root.join("Cargo.toml"), "[workspace]\nmembers = [\"crates/*\"]\n").expect("manifest");
    for (rel, contents) in files {
        fs::write(root.join(rel), contents).expect("fixture file");
    }
    root
}

/// R7: a `HashMap` vetted for R1 (the map itself is fine) whose iteration
/// order still leaks into a telemetry sink through a local. R1 is
/// suppressed by the allow marker, R2–R6 have nothing to say, yet the
/// report would differ run-to-run — only the taint analysis sees the flow.
#[test]
fn hashmap_iteration_into_sink_is_caught_only_by_taint() {
    let root = fixture(
        "taint",
        &[(
            "crates/demo/src/lib.rs",
            r#"// simlint: allow-file(R1) keyed by opaque ids; lookups only, vetted in review
use std::collections::HashMap;

pub struct Telemetry;
impl Telemetry {
    pub fn gauge_set(&mut self, _name: &str, _v: f64) {}
}

pub fn export_worst(t: &mut Telemetry, lat_by_conn: &HashMap<u64, f64>) {
    let mut worst = 0.0f64;
    for (_id, v) in lat_by_conn.iter() {
        if *v > worst {
            worst = *v;
        }
    }
    t.gauge_set("worst_latency", worst);
}
"#,
        )],
    );
    let scan = edison_simlint::scan_workspace(&root).expect("scan");
    let rules: Vec<&str> = scan.findings.iter().map(|f| f.rule).collect();
    assert_eq!(rules, ["R7"], "findings: {:#?}", scan.findings);
    assert!(scan.findings[0].msg.contains("iteration order"), "{}", scan.findings[0].msg);
    fs::remove_dir_all(&root).ok();
}

/// R8: seconds and watts mixed across *locals*. R5 only reads function
/// signatures, so a parameterless function hides the bug from v1 —
/// dimensional inference over the body is required.
#[test]
fn local_seconds_plus_watts_is_caught_only_by_units() {
    let root = fixture(
        "units",
        &[(
            "crates/demo/src/lib.rs",
            r#"pub fn broken_budget() -> f64 {
    let elapsed_s = 12.0;
    let idle_w = 3.5;
    elapsed_s + idle_w
}
"#,
        )],
    );
    let scan = edison_simlint::scan_workspace(&root).expect("scan");
    let rules: Vec<&str> = scan.findings.iter().map(|f| f.rule).collect();
    assert_eq!(rules, ["R8"], "findings: {:#?}", scan.findings);
    assert!(scan.findings[0].msg.contains("incompatible units"), "{}", scan.findings[0].msg);
    fs::remove_dir_all(&root).ok();
}

/// The dual: dimensionally sound arithmetic (W × s → J assigned into a
/// joules name) produces no findings, so R8 can ride the zero-budget
/// ratchet without manufacturing debt.
#[test]
fn sound_dimensional_arithmetic_is_clean() {
    let root = fixture(
        "units-ok",
        &[(
            "crates/demo/src/lib.rs",
            r#"pub fn energy_j() -> f64 {
    let power_w = 3.5;
    let runtime_s = 12.0;
    let joules = power_w * runtime_s;
    joules
}
"#,
        )],
    );
    let scan = edison_simlint::scan_workspace(&root).expect("scan");
    assert!(scan.findings.is_empty(), "findings: {:#?}", scan.findings);
    fs::remove_dir_all(&root).ok();
}
