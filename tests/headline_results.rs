//! Cross-crate integration tests asserting the paper's *headline shapes*:
//! who wins, where, and by roughly what factor. These are the claims the
//! reproduction must preserve even where absolute numbers drift.

use edison_mapreduce::engine::{run_job, ClusterSetup};
use edison_mapreduce::jobs::{self, Tune};
use edison_web::httperf::{self, RunOpts};
use edison_web::{ClusterScale, Platform, WebScenario, WorkloadMix};

fn quick() -> RunOpts {
    RunOpts { seed: 99, warmup_s: 2, measure_s: 8, ..RunOpts::default() }
}

/// Abstract: "up to 3.5× improvement on work-done-per-joule for web
/// service applications" — at peak load the full Edison cluster must beat
/// the full Dell cluster by roughly that factor.
#[test]
fn web_peak_energy_efficiency_gain_is_about_3_5x() {
    let e = WebScenario::table6(Platform::Edison, ClusterScale::Full).unwrap();
    let d = WebScenario::table6(Platform::Dell, ClusterScale::Full).unwrap();
    let re = httperf::run_point(&e, WorkloadMix::lightest(), 1024.0, quick());
    let rd = httperf::run_point(&d, WorkloadMix::lightest(), 1024.0, quick());
    let gain = re.requests_per_joule / rd.requests_per_joule;
    assert!(
        (2.5..5.0).contains(&gain),
        "web efficiency gain {gain:.2} (edison {:.1} req/J, dell {:.1} req/J)",
        re.requests_per_joule,
        rd.requests_per_joule
    );
}

/// §5.1.2 observation 1-2: throughput scales linearly with Edison cluster
/// size, and full Edison ≈ full Dell at peak.
#[test]
fn web_throughput_scales_linearly_and_matches_dell() {
    let full = WebScenario::table6(Platform::Edison, ClusterScale::Full).unwrap();
    let quarter = WebScenario::table6(Platform::Edison, ClusterScale::Quarter).unwrap();
    // drive each at its proportional peak concurrency
    let rf = httperf::run_point(&full, WorkloadMix::lightest(), 1024.0, quick());
    let rq = httperf::run_point(&quarter, WorkloadMix::lightest(), 256.0, quick());
    let ratio = rf.requests_per_sec / rq.requests_per_sec;
    assert!((3.2..4.8).contains(&ratio), "scale ratio {ratio:.2}");

    let dell = WebScenario::table6(Platform::Dell, ClusterScale::Full).unwrap();
    let rd = httperf::run_point(&dell, WorkloadMix::lightest(), 1024.0, quick());
    let parity = rf.requests_per_sec / rd.requests_per_sec;
    assert!((0.8..1.3).contains(&parity), "edison/dell peak parity {parity:.2}");
}

/// §5.1.2 observation: at low concurrency Edison delay ≈ 5× Dell delay;
/// both are single-digit-to-low-double-digit ms.
#[test]
fn web_low_load_delay_gap() {
    let e = WebScenario::table6(Platform::Edison, ClusterScale::Full).unwrap();
    let d = WebScenario::table6(Platform::Dell, ClusterScale::Full).unwrap();
    let re = httperf::run_point(&e, WorkloadMix::lightest(), 16.0, quick());
    let rd = httperf::run_point(&d, WorkloadMix::lightest(), 16.0, quick());
    let gap = re.mean_delay_ms / rd.mean_delay_ms;
    assert!((3.0..8.0).contains(&gap), "delay gap {gap:.2} ({} vs {})", re.mean_delay_ms, rd.mean_delay_ms);
    assert!(re.mean_delay_ms < 20.0);
}

/// §5.1.2 observation 3: server errors appear sooner on the Edison
/// cluster (beyond concurrency 1024) than on Dell.
#[test]
fn web_error_onset_is_earlier_on_edison() {
    let e = WebScenario::table6(Platform::Edison, ClusterScale::Full).unwrap();
    let d = WebScenario::table6(Platform::Dell, ClusterScale::Full).unwrap();
    let re = httperf::run_point(&e, WorkloadMix::lightest(), 2048.0, quick());
    let rd = httperf::run_point(&d, WorkloadMix::lightest(), 2048.0, quick());
    assert!(re.error_rate > 0.02, "edison at 2048 should error (rate {})", re.error_rate);
    assert!(rd.error_rate < re.error_rate, "dell should error less at 2048");
}

/// Abstract: data-intensive MapReduce favours Edison on energy; the
/// compute-bound pi job favours Dell.
#[test]
fn mapreduce_energy_winners_match_paper() {
    let wc_e = run_job(&jobs::wordcount(Tune::Edison), &ClusterSetup::edison(35));
    let wc_d = run_job(&jobs::wordcount(Tune::Dell), &ClusterSetup::dell(2));
    let gain = wc_d.energy_j / wc_e.energy_j;
    assert!(
        (1.4..3.5).contains(&gain),
        "wordcount energy gain {gain:.2} (paper 2.28): edison {:.0}J dell {:.0}J",
        wc_e.energy_j,
        wc_d.energy_j
    );

    let pi_e = run_job(&jobs::pi(Tune::Edison), &ClusterSetup::edison(35));
    let pi_d = run_job(&jobs::pi(Tune::Dell), &ClusterSetup::dell(2));
    assert!(
        pi_e.energy_j > pi_d.energy_j,
        "pi must favour Dell: edison {:.0}J dell {:.0}J",
        pi_e.energy_j,
        pi_d.energy_j
    );
}

/// §5.2.1: the input-combining optimisation helps Dell *more* than Edison
/// (it removes the container-wave overhead Dell suffers from 200 small
/// files), shrinking Edison's efficiency lead.
#[test]
fn combining_inputs_helps_dell_more() {
    let wc_e = run_job(&jobs::wordcount(Tune::Edison), &ClusterSetup::edison(35));
    let wc2_e = run_job(&jobs::wordcount2(Tune::Edison), &ClusterSetup::edison(35));
    let wc_d = run_job(&jobs::wordcount(Tune::Dell), &ClusterSetup::dell(2));
    let wc2_d = run_job(&jobs::wordcount2(Tune::Dell), &ClusterSetup::dell(2));
    let dell_speedup = wc_d.finish_time_s / wc2_d.finish_time_s;
    let edison_speedup = wc_e.finish_time_s / wc2_e.finish_time_s;
    assert!(dell_speedup > edison_speedup, "dell {dell_speedup:.2} vs edison {edison_speedup:.2}");
    // and the energy lead shrinks
    let lead_wc = wc_d.energy_j / wc_e.energy_j;
    let lead_wc2 = wc2_d.energy_j / wc2_e.energy_j;
    assert!(lead_wc2 < lead_wc, "lead {lead_wc:.2} → {lead_wc2:.2}");
}

/// §5.3: the Edison cluster speeds up close to 2× per doubling on the
/// heavier jobs, but light jobs (logcount2) barely benefit from more
/// nodes.
#[test]
fn scalability_speedup_shapes() {
    let t35 = run_job(&jobs::wordcount(Tune::Edison), &ClusterSetup::edison(35)).finish_time_s;
    let t8 = run_job(&jobs::wordcount(Tune::Edison), &ClusterSetup::edison(8)).finish_time_s;
    assert!(t8 / t35 > 2.0, "wordcount 8→35 nodes speedup {:.2}", t8 / t35);

    let mut lc2_35 = jobs::logcount2(Tune::Edison);
    lc2_35.map_tasks = 70;
    let mut lc2_8 = jobs::logcount2(Tune::Edison);
    lc2_8.map_tasks = 16;
    let l35 = run_job(&lc2_35, &ClusterSetup::edison(35)).finish_time_s;
    let l8 = run_job(&lc2_8, &ClusterSetup::edison(8).with_block(64 * 1024 * 1024)).finish_time_s;
    assert!(
        l8 / l35 < t8 / t35,
        "light job should scale worse: logcount2 {:.2} vs wordcount {:.2}",
        l8 / l35,
        t8 / t35
    );
}

/// Determinism across the whole stack: same seed → bit-identical results.
#[test]
fn end_to_end_determinism() {
    let s = WebScenario::table6(Platform::Edison, ClusterScale::Eighth).unwrap();
    let a = httperf::run_point(&s, WorkloadMix::img10(), 64.0, quick());
    let b = httperf::run_point(&s, WorkloadMix::img10(), 64.0, quick());
    assert_eq!(a.requests_per_sec, b.requests_per_sec);
    assert_eq!(a.energy_j, b.energy_j);
    let ja = run_job(&jobs::logcount2(Tune::Edison), &ClusterSetup::edison(4));
    let jb = run_job(&jobs::logcount2(Tune::Edison), &ClusterSetup::edison(4));
    assert_eq!(ja.finish_time_s, jb.finish_time_s);
}
