//! Extension experiment (DESIGN.md "Extensions"): node-failure impact.
//!
//! The paper's Introduction (advantage 2) argues a micro cluster degrades
//! more gracefully under node failure because each node carries a small
//! load share. These tests inject a web-server kill mid-run and compare
//! the damage across platforms.

use edison_simcore::time::SimDuration;
use edison_web::stack::{run, GenMode, StackConfig};
use edison_web::{ClusterScale, Platform, WebScenario, WorkloadMix};

fn cfg_with_kill(platform: Platform, conc: f64, kill: bool) -> StackConfig {
    let scenario = WebScenario::table6(platform, ClusterScale::Full).unwrap();
    let mut cfg = StackConfig::new(
        scenario,
        WorkloadMix::lightest(),
        GenMode::Httperf { connections_per_sec: conc, calls_per_conn: 6.6 },
        2026,
    );
    cfg.warmup = SimDuration::from_secs(2);
    cfg.measure = SimDuration::from_secs(12);
    if kill {
        // kill web server 0 a third of the way into the window
        cfg.kill_web_at = Some((0, SimDuration::from_secs(6)));
    }
    cfg
}

/// Killing 1 of 24 Edison web servers loses ≈1/24 of capacity; killing 1
/// of 2 Dell web servers loses half. The relative throughput damage must
/// be far larger on the Dell cluster.
#[test]
fn failure_hurts_the_brawny_cluster_more() {
    // drive both near peak so lost capacity translates into lost
    // throughput
    let conc = 1024.0;
    let e_ok = run(cfg_with_kill(Platform::Edison, conc, false));
    let e_kill = run(cfg_with_kill(Platform::Edison, conc, true));
    let d_ok = run(cfg_with_kill(Platform::Dell, conc, false));
    let d_kill = run(cfg_with_kill(Platform::Dell, conc, true));

    let e_loss = 1.0 - e_kill.metrics.completed as f64 / e_ok.metrics.completed as f64;
    let d_loss = 1.0 - d_kill.metrics.completed as f64 / d_ok.metrics.completed as f64;
    assert!(
        d_loss > 2.0 * e_loss.max(0.005),
        "dell loss {d_loss:.3} should far exceed edison loss {e_loss:.3}"
    );
    // Edison barely notices: under ~15 % throughput loss
    assert!(e_loss < 0.15, "edison loss {e_loss:.3}");
}

/// The kill produces a visible throughput dip in the per-second timeline
/// and a burst of server errors on the victim's in-flight work.
#[test]
fn kill_produces_dip_and_error_burst() {
    // at concurrency 1024 the surviving Dell server faces 1024 conn/s —
    // beyond its ~700/s accept capacity, so the dip is unavoidable
    let out = run(cfg_with_kill(Platform::Dell, 1024.0, true));
    assert!(out.metrics.server_errors > 0, "in-flight work on the dead node must error");
    let pts = out.metrics.throughput_ts.points();
    // compare mean throughput in the seconds before vs after the kill at 6 s
    let before: Vec<f64> =
        pts.iter().filter(|(t, _)| (3.0..6.0).contains(&t.as_secs_f64())).map(|&(_, v)| v).collect();
    let after: Vec<f64> =
        pts.iter().filter(|(t, _)| (7.0..12.0).contains(&t.as_secs_f64())).map(|&(_, v)| v).collect();
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    assert!(
        mean(&after) < 0.75 * mean(&before),
        "expected a dip: before {:.0}/s after {:.0}/s",
        mean(&before),
        mean(&after)
    );
}

/// Recovery sanity: the surviving tier keeps serving (no collapse to zero)
/// and stays error-free at modest load on the Edison cluster.
#[test]
fn edison_tier_keeps_serving_after_kill() {
    let out = run(cfg_with_kill(Platform::Edison, 256.0, true));
    let pts = out.metrics.throughput_ts.points();
    let tail: Vec<f64> =
        pts.iter().filter(|(t, _)| t.as_secs_f64() > 8.0).map(|&(_, v)| v).collect();
    assert!(!tail.is_empty());
    let mean_tail = tail.iter().sum::<f64>() / tail.len() as f64;
    assert!(mean_tail > 256.0 * 6.6 * 0.8, "tail throughput {mean_tail:.0}/s");
}
