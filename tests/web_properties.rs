//! Web-stack behavioural properties across load points and mixes — the
//! orderings the paper's §5.1 narrative depends on.

use edison_web::httperf::{self, RunOpts};
use edison_web::{ClusterScale, Platform, WebScenario, WorkloadMix};

fn opts() -> RunOpts {
    RunOpts { seed: 77, warmup_s: 2, measure_s: 8, ..RunOpts::default() }
}

/// Below saturation, throughput is monotone in offered concurrency.
#[test]
fn throughput_monotone_below_saturation() {
    let sc = WebScenario::table6(Platform::Edison, ClusterScale::Quarter).unwrap();
    let mut last = 0.0;
    for conc in [16.0, 32.0, 64.0, 128.0] {
        let r = httperf::run_point(&sc, WorkloadMix::lightest(), conc, opts());
        assert!(
            r.requests_per_sec > last * 1.5,
            "conc {conc}: {} after {last}",
            r.requests_per_sec
        );
        last = r.requests_per_sec;
    }
}

/// The heavier 20 %-image mix never outperforms the lightest mix at equal
/// concurrency (§5.1.2: "only 85% of that under lightest workload").
#[test]
fn heavier_mix_never_faster() {
    let sc = WebScenario::table6(Platform::Edison, ClusterScale::Half).unwrap();
    for conc in [128.0, 512.0] {
        let light = httperf::run_point(&sc, WorkloadMix::lightest(), conc, opts());
        let heavy = httperf::run_point(&sc, WorkloadMix::img20(), conc, opts());
        assert!(
            heavy.requests_per_sec <= light.requests_per_sec * 1.02,
            "conc {conc}: heavy {} vs light {}",
            heavy.requests_per_sec,
            light.requests_per_sec
        );
        assert!(heavy.mean_delay_ms >= light.mean_delay_ms * 0.95);
    }
}

/// Lower cache hit ratios push more load to the database tier and raise
/// delay (Figure 8's message).
#[test]
fn lower_hit_ratio_raises_db_traffic_and_delay() {
    let sc = WebScenario::table6(Platform::Edison, ClusterScale::Half).unwrap();
    let hi = httperf::run_point(&sc, WorkloadMix::hit(0.93), 128.0, opts());
    let lo = httperf::run_point(&sc, WorkloadMix::hit(0.60), 128.0, opts());
    assert!(lo.mean_delay_ms > hi.mean_delay_ms, "lo {} hi {}", lo.mean_delay_ms, hi.mean_delay_ms);
    // db delay measured on ~40 % of requests instead of ~7 %
    assert!(lo.db_delay_ms > 0.0 && hi.db_delay_ms > 0.0);
}

/// Cluster power stays within the Table 3 band at every load point, and
/// grows with load.
#[test]
fn power_band_and_growth() {
    let sc = WebScenario::table6(Platform::Edison, ClusterScale::Full).unwrap();
    let idle_w = 35.0 * 1.40;
    let busy_w = 35.0 * 1.68;
    let low = httperf::run_point(&sc, WorkloadMix::lightest(), 32.0, opts());
    let high = httperf::run_point(&sc, WorkloadMix::lightest(), 1024.0, opts());
    for r in [&low, &high] {
        assert!(r.mean_power_w >= idle_w - 0.1 && r.mean_power_w <= busy_w + 0.1, "{}", r.mean_power_w);
    }
    assert!(high.mean_power_w > low.mean_power_w + 2.0);
}

/// Table 7's platform ordering: Edison's db and cache delays exceed Dell's
/// at every matched rate.
#[test]
fn delay_decomposition_platform_ordering() {
    let e = WebScenario::table6(Platform::Edison, ClusterScale::Full).unwrap();
    let d = WebScenario::table6(Platform::Dell, ClusterScale::Full).unwrap();
    for rps in [480.0, 1920.0] {
        let conc = rps / httperf::CALLS_PER_CONN;
        let re = httperf::run_point(&e, WorkloadMix::img20(), conc, opts());
        let rd = httperf::run_point(&d, WorkloadMix::img20(), conc, opts());
        assert!(re.cache_delay_ms > rd.cache_delay_ms, "rate {rps}");
        assert!(re.db_delay_ms > rd.db_delay_ms, "rate {rps}");
        assert!(re.mean_delay_ms > rd.mean_delay_ms, "rate {rps}");
    }
}

/// The cache tier stays lightly loaded relative to the web tier — the
/// §5.1.2 utilisation numbers (9 % vs 86 % CPU on Edison).
#[test]
fn cache_tier_is_lightly_loaded() {
    let sc = WebScenario::table6(Platform::Edison, ClusterScale::Full).unwrap();
    let r = httperf::run_point(&sc, WorkloadMix::lightest(), 1024.0, opts());
    assert!(r.web_cpu > 0.5, "web cpu {}", r.web_cpu);
    assert!(r.cache_cpu < 0.3, "cache cpu {}", r.cache_cpu);
    assert!(r.web_cpu > 4.0 * r.cache_cpu);
}

/// Work-done-per-joule improves with cluster load on the Edison tier
/// (fixed idle power amortises over more requests).
#[test]
fn efficiency_rises_with_load() {
    let sc = WebScenario::table6(Platform::Edison, ClusterScale::Full).unwrap();
    let low = httperf::run_point(&sc, WorkloadMix::lightest(), 64.0, opts());
    let high = httperf::run_point(&sc, WorkloadMix::lightest(), 1024.0, opts());
    assert!(high.requests_per_joule > 5.0 * low.requests_per_joule);
}
