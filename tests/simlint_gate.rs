//! Tier-1 lint gate: the simlint scan must pass against the committed
//! baseline, and the committed baseline must match a fresh scan exactly.
//!
//! This is the same check `cargo lint-gate` runs, wired into `cargo test`
//! so the ratchet cannot be forgotten. The exact-match assertion is
//! stricter than the CLI (which only warns on stale entries): in CI we
//! also refuse a baseline that *overstates* the debt, so cleanups are
//! locked in with `--update-baseline` in the same commit.

use edison_simlint::{baseline, check, find_workspace_root, BASELINE_FILE};
use std::path::Path;

fn workspace_root() -> std::path::PathBuf {
    find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root")
}

/// No (rule, file) pair may exceed its committed budget.
#[test]
fn workspace_is_within_lint_budget() {
    let report = check(&workspace_root()).expect("scan");
    assert!(
        report.passed(),
        "simlint found new violations over the committed baseline:\n{}",
        report
            .regressed_findings()
            .iter()
            .map(|f| format!("  {}:{}: [{}] {}", f.file, f.line, f.rule, f.msg))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// The committed baseline is byte-for-byte what a fresh scan produces —
/// no stale (over-budget) entries, no hand-edits, stable formatting.
#[test]
fn committed_baseline_matches_fresh_scan() {
    let root = workspace_root();
    let committed = std::fs::read_to_string(root.join(BASELINE_FILE))
        .expect("committed simlint-baseline.json at the workspace root");
    let scan = edison_simlint::scan_workspace(&root).expect("scan");
    let fresh = baseline::to_json(&scan.counts);
    assert_eq!(
        committed, fresh,
        "simlint-baseline.json is out of date; run `cargo run -p edison-simlint -- check --update-baseline`"
    );
}

/// The committed baseline may not carry debt for files that no longer
/// exist: a deleted file's entries are rot, not budget, and hiding them
/// would let a future file reuse the name with free violations.
#[test]
fn baseline_entries_name_only_live_files() {
    let report = check(&workspace_root()).expect("scan");
    assert!(
        report.rot.is_empty(),
        "baseline entries for deleted files (run --update-baseline): {:?}",
        report.rot
    );
}

/// Policy floor: only lossy casts (R3), panic macros (R4) and
/// unwrap/expect debt (R6) are grandfathered. Nondeterminism (R1), stray
/// RNG construction (R2), unit-mixing (R5), determinism taint (R7) and
/// dimensional errors (R8) start — and must stay — at zero.
#[test]
fn determinism_rules_have_zero_budget() {
    let report = check(&workspace_root()).expect("scan");
    for rule in ["R1", "R2", "R5", "R7", "R8"] {
        let n: usize = report.scan.counts.get(rule).map(|m| m.values().sum()).unwrap_or(0);
        assert_eq!(n, 0, "{rule} findings present; these may never be grandfathered");
    }
}
