//! Observer-equivalence and merge-determinism of the simprof layer.
//!
//! The profiler's contract (DESIGN.md §Performance observability): turning
//! it on must not change what the simulation computes, only record how the
//! engine spent its events — and merged profiles must not depend on the
//! sweep worker count. Serialized `{:?}` comparison pins every f64 bit.

use edison_bench::workloads;
use edison_mapreduce::engine::{run_job, run_job_profiled_checked, ClusterSetup};
use edison_mapreduce::jobs;
use edison_simrun::{merge_profiles, Executor};
use edison_simtel::Telemetry;
use edison_web::httperf::{self, RunOpts};
use edison_web::{ClusterScale, Platform, WebScenario, WorkloadMix};

/// Web stack: a profiled run's result is bit-identical to a plain run's.
#[test]
fn web_profiled_run_matches_plain_run() {
    let sc = WebScenario::table6(Platform::Edison, ClusterScale::Eighth).unwrap();
    let opts = RunOpts { seed: 20160509, warmup_s: 2, measure_s: 6, ..RunOpts::default() };
    let plain = httperf::run_point(&sc, WorkloadMix::lightest(), 64.0, opts.clone());
    let (profiled, tel) =
        httperf::run_point_traced(&sc, WorkloadMix::lightest(), 64.0, opts, Telemetry::profiled());
    assert_eq!(
        format!("{plain:?}"),
        format!("{profiled:?}"),
        "profiling perturbed the web simulation"
    );
    // and the profile actually landed in the telemetry
    assert!(tel.prometheus_text().contains("profile_events_total"));
}

/// MapReduce: same contract for the job engine.
#[test]
fn mapreduce_profiled_run_matches_plain_run() {
    let mut setup = ClusterSetup::edison(8);
    setup.seed = 20160509;
    let mut p = jobs::wordcount(setup.tune);
    p.input_bytes /= 8;
    p.map_tasks = (p.map_tasks / 8).max(4);
    let plain = run_job(&p, &setup);
    let (profiled, _, profile) =
        run_job_profiled_checked(&p, &setup, Telemetry::profiled()).expect("job healthy");
    assert_eq!(
        format!("{plain:?}"),
        format!("{profiled:?}"),
        "profiling perturbed the MapReduce simulation"
    );
    assert!(profile.events() > 0, "profile collected");
}

/// Merged profiles are bit-identical whether the per-point runs fan out
/// over 1 worker or 8 — the `--jobs` independence the run layer promises,
/// here for real workload profiles rather than a toy model.
#[test]
fn merged_profiles_identical_across_worker_counts() {
    let names = ["fault_sweep", "web_sweep", "fault_sweep", "web_sweep"];
    let merge_at = |jobs: usize| {
        let results =
            Executor::new(jobs).run(&names, |_, name| workloads::run_tracked(name).expect("runs"));
        merge_profiles(results.into_iter().map(|r| r.expect("no panics")))
    };
    let serial = merge_at(1);
    let wide = merge_at(8);
    assert_eq!(serial, wide, "merged profile depends on worker count");
    assert!(serial.events() > 0);
}
