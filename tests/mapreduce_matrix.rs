//! Table 8 matrix properties at reduced scale: monotone scaling, energy
//! winners, locality, and timeline sanity across the grid.

use edison_mapreduce::engine::{run_job, ClusterSetup, JobOutcome};
use edison_mapreduce::jobs::{self, Tune};
use edison_mapreduce::terasort_pipeline;

const MIB: u64 = 1024 * 1024;

/// Run a job at 1/4 input scale to keep the grid fast.
fn quarter(job: &str, setup: &ClusterSetup) -> JobOutcome {
    let mut p = match job {
        "wordcount" => jobs::wordcount(setup.tune),
        "wordcount2" => jobs::wordcount2(setup.tune),
        "logcount" => jobs::logcount(setup.tune),
        "logcount2" => jobs::logcount2(setup.tune),
        "terasort" => jobs::terasort(setup.tune),
        _ => unreachable!(),
    };
    p.input_bytes /= 4;
    p.map_tasks = (p.map_tasks / 4).max(4);
    run_job(&p, setup)
}

/// Finish time is monotone non-increasing in Edison cluster size for every
/// data job.
#[test]
fn finish_time_monotone_in_cluster_size() {
    for job in ["wordcount", "logcount", "terasort"] {
        let mut last = f64::INFINITY;
        for n in [4usize, 8, 17, 35] {
            let out = quarter(job, &ClusterSetup::edison(n));
            assert!(
                out.finish_time_s <= last * 1.02,
                "{job}: {n} nodes took {} after {last}",
                out.finish_time_s
            );
            last = out.finish_time_s;
        }
    }
}

/// Data-local map fraction stays high (paper: ≈95 %) across sizes and
/// platforms.
#[test]
fn locality_high_across_grid() {
    for n in [8usize, 35] {
        let out = quarter("wordcount", &ClusterSetup::edison(n));
        assert!(out.data_local_fraction > 0.85, "edison-{n}: {}", out.data_local_fraction);
    }
    let out = quarter("wordcount", &ClusterSetup::dell(2));
    assert!(out.data_local_fraction > 0.85, "dell-2: {}", out.data_local_fraction);
}

/// The energy winner structure at quarter scale matches the paper: Edison
/// wins every data-intensive job against the 2-Dell cluster.
#[test]
fn edison_wins_data_jobs_on_energy() {
    for job in ["wordcount", "logcount", "logcount2", "terasort"] {
        let e = quarter(job, &ClusterSetup::edison(35));
        let d = quarter(job, &ClusterSetup::dell(2));
        assert!(
            e.energy_j < d.energy_j,
            "{job}: edison {:.0}J vs dell {:.0}J",
            e.energy_j,
            d.energy_j
        );
    }
    // wordcount2 is the marginal case even in the paper (only an 11.3 %
    // Edison advantage at full scale); at quarter scale the fixed
    // submission overhead can flip it — require parity within 15 %.
    let e = quarter("wordcount2", &ClusterSetup::edison(35));
    let d = quarter("wordcount2", &ClusterSetup::dell(2));
    assert!(
        e.energy_j < d.energy_j * 1.15,
        "wordcount2: edison {:.0}J vs dell {:.0}J",
        e.energy_j,
        d.energy_j
    );
}

/// Timelines are monotone in progress and power stays within the Table 3
/// band for every cell of a small grid.
#[test]
fn timelines_are_sane_across_grid() {
    for (setup, idle, busy) in [
        (ClusterSetup::edison(8), 8.0 * 1.40, 8.0 * 1.68),
        (ClusterSetup::dell(1), 52.0, 109.0),
    ] {
        let out = quarter("wordcount2", &setup);
        let mut last = -1.0;
        for &(_, v) in out.timeline.map_pct.points() {
            assert!(v >= last - 1e-9, "map progress went backwards");
            last = v;
        }
        for &(_, p) in out.timeline.power_w.points() {
            assert!(p >= idle - 0.01 && p <= busy + 0.01, "power {p}");
        }
    }
}

/// The terasort pipeline conserves the ordering across platforms: Dell is
/// faster on every stage, Edison cheaper on the sort stage.
#[test]
fn terasort_pipeline_cross_platform() {
    let bytes = 512 * MIB;
    let e = terasort_pipeline::run_pipeline(Tune::Edison, &ClusterSetup::edison(8), bytes);
    let d = terasort_pipeline::run_pipeline(Tune::Dell, &ClusterSetup::dell(2), bytes);
    assert!(d.terasort.finish_time_s < e.terasort.finish_time_s);
    assert!(d.total_time_s() < e.total_time_s());
    assert!(e.terasort.energy_j < d.terasort.energy_j, "sort energy: edison {} dell {}", e.terasort.energy_j, d.terasort.energy_j);
}

/// Re-splitting preserves total work: pi with different map counts does
/// the same samples and lands within a few percent on energy.
#[test]
fn pi_resplit_preserves_work() {
    let base = jobs::pi(Tune::Edison);
    let fine = base.clone().with_map_tasks(140);
    let total_base = base.map_compute_mi * base.map_tasks as f64;
    let total_fine = fine.map_compute_mi * fine.map_tasks as f64;
    assert!((total_base - total_fine).abs() < 1e-6 * total_base);
    let a = run_job(&base, &ClusterSetup::edison(35));
    let b = run_job(&fine, &ClusterSetup::edison(35));
    // more, smaller tasks add container overhead but the same compute
    assert!(b.finish_time_s > a.finish_time_s * 0.9);
    assert!(b.finish_time_s < a.finish_time_s * 2.5);
}
