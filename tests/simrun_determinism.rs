//! The simrun layer's headline guarantee, end to end: worker-pool width
//! never changes results. `jobs=1` and `jobs=8` must produce bit-identical
//! reports and telemetry exports, because seeds are derived per point and
//! sweep output is ordered by input index, not completion order.

use edison_core::registry::{find, RunBudget};
use edison_simrun::{derive_seed, Executor, ROOT_SEED};
use edison_simtel::Telemetry;

/// Render one registry experiment plus all three telemetry exports at a
/// given pool width.
fn run_at(id: &str, jobs: usize) -> (String, String, String, String) {
    let exp = find(id).unwrap_or_else(|| panic!("missing {id}"));
    let mut tel = Telemetry::on();
    let report = exp
        .run(&RunBudget::quick(), &Executor::new(jobs), &mut tel)
        .unwrap_or_else(|e| panic!("{id} failed at jobs={jobs}: {e}"));
    (
        format!("{report}"),
        tel.chrome_trace_json(),
        tel.prometheus_text(),
        edison_core::export::telemetry_csv(&tel),
    )
}

/// Table 7 is the cheapest registry experiment with a real sweep (5 points
/// × 2 platforms): the whole pipeline — executor, derived seeds, outcome
/// counters, exporters — must be invariant under pool width.
#[test]
fn table7_is_bit_identical_across_pool_widths() {
    let (rep1, trace1, prom1, csv1) = run_at("table7", 1);
    let (rep8, trace8, prom8, csv8) = run_at("table7", 8);
    assert_eq!(rep1, rep8, "report text differs between jobs=1 and jobs=8");
    assert_eq!(trace1, trace8, "chrome trace differs between jobs=1 and jobs=8");
    assert_eq!(prom1, prom8, "prometheus export differs between jobs=1 and jobs=8");
    assert_eq!(csv1, csv8, "telemetry csv differs between jobs=1 and jobs=8");
    // sanity: the sweep actually went through the executor's counters
    assert!(prom1.contains("simrun_points_total"), "sweep outcome counters missing:\n{prom1}");
}

/// The raw executor, without the experiment layer: a deliberately uneven
/// workload (so completion order scrambles under parallelism) still comes
/// back in input order at every width.
#[test]
fn executor_results_are_input_ordered_at_any_width() {
    let points: Vec<u64> = (0..40).collect();
    let reference: Vec<u64> = points.iter().map(|&p| p.wrapping_mul(p) ^ 0xABCD).collect();
    for jobs in [1, 2, 3, 8, 40] {
        let got: Vec<u64> = Executor::new(jobs)
            .run(&points, |_, &p| {
                // skew the work so later points often finish first
                let spin = (40 - p) * 2_000;
                let mut acc = 0u64;
                for i in 0..spin {
                    acc = acc.wrapping_add(i);
                }
                std::hint::black_box(acc);
                p.wrapping_mul(p) ^ 0xABCD
            })
            .into_iter()
            .map(|r| r.expect("no panics"))
            .collect();
        assert_eq!(got, reference, "jobs={jobs}");
    }
}

/// Seed derivation is a pure function of identity — the same everywhere,
/// independent of any executor state — and distinct across streams and
/// indices, so no two sweep points share an RNG stream.
#[test]
fn derived_seeds_are_stable_and_unshared() {
    let a = derive_seed(ROOT_SEED, "web:24 Edison:img0%:hit93%", 0);
    assert_eq!(a, derive_seed(ROOT_SEED, "web:24 Edison:img0%:hit93%", 0));
    let mut seeds: Vec<u64> = Vec::new();
    for stream in ["web:24 Edison:img0%:hit93%", "web:2 Dell:img0%:hit93%", "mr:wordcount:edison-35"] {
        for idx in 0..9 {
            seeds.push(derive_seed(ROOT_SEED, stream, idx));
        }
    }
    let n = seeds.len();
    seeds.sort_unstable();
    seeds.dedup();
    assert_eq!(seeds.len(), n, "derived seeds collide across streams/indices");
    // and none of them is the legacy shared constant
    assert!(!seeds.contains(&20160509), "a sweep point still runs on the old shared seed");
}
