//! Cross-crate consistency checks: the same hardware facts must agree
//! wherever they surface — microbenchmarks, cluster nodes, TCO inputs,
//! and the paper's own arithmetic.

use edison_cluster::{Cluster, Node, NodeId};
use edison_hw::presets;
use edison_microbench::{dhrystone, network, storage, sysbench_mem};
use edison_simcore::time::SimTime;
use edison_tco::{tco, TcoInput};

/// The DMIPS the dhrystone benchmark *measures* must equal the DMIPS the
/// spec *declares* — the benchmark is a round-trip through the node
/// machinery, not a constant echo.
#[test]
fn dhrystone_round_trips_the_spec() {
    for spec in [presets::edison(), presets::dell_r620()] {
        let r = dhrystone::run(&spec, 10_000_000);
        assert!(
            (r.dmips - spec.cpu.single_thread_mips).abs() < 1.0,
            "{}: measured {} vs spec {}",
            spec.name,
            r.dmips,
            spec.cpu.single_thread_mips
        );
    }
}

/// Table 2's CPU ratio uses nameplate clocks; Section 4 measures a far
/// larger gap — the discrepancy the paper's Discussion highlights. Both
/// must be visible in our models simultaneously.
#[test]
fn nameplate_vs_measured_gap_discrepancy() {
    let e = presets::edison();
    let d = presets::dell_r620();
    let nameplate = d.cpu.nameplate_mhz() as f64 / e.cpu.nameplate_mhz() as f64;
    let measured = d.cpu.total_mips() / e.cpu.total_mips();
    assert!((nameplate - 12.0).abs() < 1e-9);
    assert!(
        measured / nameplate > 4.0,
        "measured gap ({measured:.0}x) should exceed nameplate ({nameplate:.0}x) several-fold"
    );
}

/// Idle cluster power from live nodes equals the TCO model's idle power
/// term — two independent code paths to the same Table 3 numbers.
#[test]
fn cluster_idle_power_matches_tco_inputs() {
    let spec = presets::edison();
    let cluster = Cluster::homogeneous(&spec, 35);
    let live_idle = cluster.power_now();
    let input = TcoInput::from_spec(&spec, 35, 0.0);
    let model_idle = input.idle_w * 35.0;
    assert!((live_idle - model_idle).abs() < 1e-9);
    // and the 3-year idle electricity cost follows
    let t = tco(&input);
    let expected = live_idle * edison_tco::LIFETIME_HOURS / 1000.0 * 0.10;
    assert!((t.electricity - expected).abs() < 1e-6);
}

/// A node fully busy for one hour consumes exactly busy-power × 3600 J.
#[test]
fn busy_hour_energy_is_exact() {
    let spec = presets::dell_r620();
    let mut node = Node::new(NodeId(0), spec.clone());
    // saturate all threads with enough work for > 1 hour
    let per_thread = spec.cpu.total_mips() / spec.cpu.threads as f64 * 4000.0;
    for i in 0..spec.cpu.threads as u64 {
        node.add_cpu_task(SimTime::ZERO, i, per_thread);
    }
    let hour = SimTime::from_secs(3600);
    let e = node.energy_joules(hour);
    assert!((e - 109.0 * 3600.0).abs() < 1.0, "energy {e}");
}

/// iperf through the fabric and the NIC spec's goodput agree.
#[test]
fn iperf_matches_nic_spec() {
    let e = presets::edison();
    let d = presets::dell_r620();
    let r = network::iperf(network::Pair::EdisonToEdison, network::Proto::Tcp, 500_000_000, &e, &d);
    let expected = e.nic.tcp_bytes_per_sec() * 8.0 / 1e6;
    assert!((r.mbits_per_sec - expected).abs() < 1.0, "{} vs {}", r.mbits_per_sec, expected);
}

/// The storage benchmark's asymptotic throughput equals the spec rate, and
/// the §4.3 "smallest gap" claim holds end to end.
#[test]
fn storage_bench_matches_spec_and_gap_claim() {
    let e = storage::table5(&presets::edison());
    let d = storage::table5(&presets::dell_r620());
    let storage_gap = d.read_mbps / e.read_mbps;
    let cpu_gap = presets::dell_r620().cpu.total_mips() / presets::edison().cpu.total_mips();
    let mem_gap = {
        let es = sysbench_mem::sweep(&presets::edison());
        let ds = sysbench_mem::sweep(&presets::dell_r620());
        ds.peak / es.peak
    };
    assert!(storage_gap < mem_gap && mem_gap < cpu_gap, "gap ordering broken: storage {storage_gap:.1} mem {mem_gap:.1} cpu {cpu_gap:.1}");
}

/// Table 2's bottom line (16 nodes to replace a Dell) is reproduced from
/// raw spec arithmetic.
#[test]
fn sixteen_edisons_replace_one_dell() {
    assert_eq!(presets::edison().nodes_to_replace(&presets::dell_r620()), 16);
}
