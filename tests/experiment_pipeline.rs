//! Integration tests of the experiment harness itself: every cheap
//! experiment renders, comparisons carry sane ratios, and the TCO chain
//! reproduces the paper to within 2 %.

use edison_core::registry::{all, find, RunBudget};
use edison_simrun::Executor;
use edison_simtel::Telemetry;

#[test]
fn cheap_experiments_render_with_close_comparisons() {
    let budget = RunBudget::quick();
    for id in ["table2", "table3", "table5", "sec41_dmips", "sec42_membw", "sec44_net", "table9", "table10"] {
        let exp = find(id).unwrap_or_else(|| panic!("missing {id}"));
        let report = exp
            .run(&budget, &Executor::serial(), &mut Telemetry::off())
            .unwrap_or_else(|e| panic!("{id} failed: {e}"));
        assert!(!report.body.is_empty(), "{id} has empty body");
        for c in &report.comparisons {
            let r = c.ratio();
            assert!(
                (0.85..1.15).contains(&r),
                "{id}/{}: ratio {r:.3} (paper {}, measured {})",
                c.metric,
                c.paper,
                c.measured
            );
        }
    }
}

#[test]
fn registry_ids_are_unique() {
    let mut ids: Vec<&str> = all().map(|e| e.id()).collect();
    let n = ids.len();
    ids.sort();
    ids.dedup();
    assert_eq!(ids.len(), n, "duplicate experiment ids");
    assert!(n >= 20, "expected at least 20 experiments, got {n}");
}

#[test]
fn reports_display_cleanly() {
    let budget = RunBudget::quick();
    let exp = find("table5").unwrap();
    let report = exp.run(&budget, &Executor::serial(), &mut Telemetry::off()).expect("table5 runs");
    let text = format!("{report}");
    assert!(text.starts_with("==== table5"));
    assert!(text.contains("paper vs measured"));
}

/// The Figure 10/11 experiment at quick budget shows the qualitative
/// contrast: Dell spikes, Edison doesn't.
#[test]
fn delay_distribution_contrast() {
    let budget = RunBudget::quick();
    let exp = find("fig10_11").unwrap();
    let report = exp.run(&budget, &Executor::serial(), &mut Telemetry::off()).expect("fig10_11 runs");
    for c in &report.comparisons {
        assert!(
            (c.measured - 1.0).abs() < 1e-9,
            "{}: expected indicator 1, got {}",
            c.metric,
            c.measured
        );
    }
}
