//! Tier-1 benchmark-trajectory gate: the committed `BENCH_0009.json`
//! must parse, be byte-canonical, and agree (within the ±10% ratchet
//! tolerance) with a fresh run of every tracked workload.
//!
//! This is the same comparison `cargo bench-gate` makes, wired into
//! `cargo test` so a perf regression — or an uncommitted improvement —
//! cannot land silently. Only the `deterministic` sections gate; the
//! advisory wall-clock rates in the committed file are machine context
//! and are deliberately ignored here.

use edison_bench::{check, deterministic_trajectory, find_workspace_root};
use edison_bench::{Trajectory, SCHEMA, TRACKED, TRAJECTORY_FILE};
use std::path::Path;

fn committed_text() -> String {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
    std::fs::read_to_string(root.join(TRAJECTORY_FILE))
        .expect("committed BENCH_0009.json at the workspace root")
}

/// The committed file is canonical `edison-bench/1`: parse → re-serialize
/// reproduces it byte-for-byte (golden byte-stability of the schema).
#[test]
fn committed_trajectory_is_canonical_bytes() {
    let text = committed_text();
    assert!(text.contains(&format!("\"schema\": \"{SCHEMA}\"")));
    let parsed = Trajectory::parse(&text).expect("committed trajectory parses");
    assert_eq!(parsed.to_json(), text, "BENCH_0009.json must round-trip byte-identically");
}

/// Every tracked workload appears in the committed trajectory, and no
/// deterministic field holds a wall-clock-shaped value: simulated seconds
/// are bounded by the workload definitions, not by machine speed.
#[test]
fn committed_trajectory_covers_tracked_workloads() {
    let parsed = Trajectory::parse(&committed_text()).expect("parses");
    let names: Vec<&str> = parsed.workloads.keys().map(String::as_str).collect();
    assert_eq!(names, TRACKED, "tracked workload set drifted from the trajectory");
    for (name, r) in &parsed.workloads {
        assert!(r.events > 0, "{name}: empty profile committed");
        assert!(r.heap_pushes >= r.events, "{name}: pops cannot exceed pushes");
        assert!(
            r.sim_seconds > 0.0 && r.sim_seconds < 86_400.0,
            "{name}: implausible simulated window {}",
            r.sim_seconds
        );
    }
}

/// The regression gate itself: fresh deterministic metrics vs committed,
/// within tolerance. Deterministic workloads should match *exactly*; the
/// ±10% band only exists so intentional engine changes fail loudly with a
/// refresh instruction instead of drifting.
#[test]
fn fresh_run_stays_within_committed_trajectory() {
    let committed = Trajectory::parse(&committed_text()).expect("parses");
    let fresh = deterministic_trajectory().expect("tracked workloads run");
    let outcome = check(&committed, &fresh);
    assert!(
        outcome.passed(),
        "benchmark trajectory gate failed:\n{}",
        outcome.failures.join("\n")
    );
}
