//! The Section-7 vision made runnable: mix Edison and Dell web servers in
//! one tier behind a capacity-weighted load balancer and sweep the blend.
//!
//! ```text
//! cargo run --release --example hybrid_datacenter
//! ```

use edison_simcore::time::SimDuration;
use edison_web::stack::{run, GenMode, StackConfig};
use edison_web::{ClusterScale, Platform, WebScenario, WorkloadMix};

fn main() {
    let conc = 1024.0;
    let window = 12.0;
    println!(
        "{:<28} {:>8} {:>10} {:>9} {:>8}",
        "web tier", "req/s", "delay ms", "power W", "req/J"
    );
    // blends: pure Edison → pure Dell, via hybrids
    let blends: [(usize, usize, &str); 4] = [
        (24, 0, "24 Edison"),
        (18, 1, "18 Edison + 1 Dell"),
        (12, 1, "12 Edison + 1 Dell"),
        (0, 2, "2 Dell"),
    ];
    for (edison_web, dell_web, label) in blends {
        let (platform, base_web, hybrid) = if edison_web > 0 {
            (Platform::Edison, edison_web, dell_web)
        } else {
            (Platform::Dell, dell_web, 0)
        };
        let mut cfg = StackConfig::new(
            WebScenario::table6(platform, ClusterScale::Full).unwrap(),
            WorkloadMix::lightest(),
            GenMode::Httperf { connections_per_sec: conc, calls_per_conn: 6.6 },
            7,
        );
        cfg.scenario.web_servers = base_web;
        cfg.hybrid_web = hybrid;
        cfg.warmup = SimDuration::from_secs(3);
        cfg.measure = SimDuration::from_secs(window as u64);
        let w = run(cfg);
        let m = &w.metrics;
        println!(
            "{label:<28} {:>8.0} {:>10.2} {:>9.1} {:>8.1}",
            m.completed as f64 / window,
            m.delays_ms.mean(),
            m.power_w.mean_value(),
            m.completed as f64 / m.energy_j.max(1e-9),
        );
    }
    println!("\nThe hybrid rows trade the Edison tier's energy efficiency against");
    println!("the Dell's latency — the orchestration space §7 of the paper envisions.");
}
