//! TCO what-if analysis around the paper's Section-6 model: reproduce
//! Table 10, then sweep electricity price and the integrated-NIC what-if
//! the paper raises (the USB adaptor draws more than the Edison itself).
//!
//! ```text
//! cargo run --release --example tco_analysis
//! ```

use edison_hw::presets;
use edison_tco::{table10, tco, TcoInput, LIFETIME_HOURS};

fn main() {
    // Table 10 as published.
    println!("Table 10 (3-year TCO):");
    println!("{:<34} {:>12} {:>14} {:>8}", "scenario", "Dell", "Edison", "saving");
    for row in table10() {
        println!(
            "{:<34} {:>11.1}$ {:>13.1}$ {:>7.0}%",
            row.scenario,
            row.dell_total,
            row.edison_total,
            row.saving() * 100.0
        );
    }

    // sweep electricity price: where does the Edison advantage grow?
    println!("\nelectricity-price sweep (web service, high utilisation):");
    let edison = presets::edison();
    let dell = presets::dell_r620();
    for price_mult in [0.5, 1.0, 2.0, 4.0] {
        let d = tco(&TcoInput::from_spec(&dell, 3, 0.75));
        let e = tco(&TcoInput::from_spec(&edison, 35, 0.75));
        // scale only the electricity component
        let dt = d.equipment + d.electricity * price_mult;
        let et = e.equipment + e.electricity * price_mult;
        println!(
            "  {:>4.1}x price: Dell ${dt:.0}, Edison ${et:.0}, saving {:.0}%",
            price_mult,
            (1.0 - et / dt) * 100.0
        );
    }

    // the integrated-NIC what-if: an integrated Ethernet port would draw
    // ~0.1 W instead of the adaptor's ~1 W (§3.2 cites the FAWN estimate)
    println!("\nintegrated-NIC what-if (web service, high utilisation):");
    let bare = presets::edison_bare();
    let integrated = TcoInput {
        nodes: 35,
        unit_cost: edison.unit_cost_usd,
        peak_w: bare.power.node_busy() + 0.1,
        idle_w: bare.power.node_idle() + 0.1,
        utilization: 0.75,
    };
    let adaptor = tco(&TcoInput::from_spec(&edison, 35, 0.75));
    let integ = tco(&integrated);
    println!("  with USB adaptor:   ${:.1} ({:.1} kWh-equivalent)", adaptor.total(), adaptor.electricity / 0.10);
    println!("  integrated 0.1W NIC: ${:.1}", integ.total());
    println!(
        "  adaptor share of 3-year node energy: {:.0}%",
        100.0 * (1.04 * 35.0 * LIFETIME_HOURS / 1000.0 * 0.10) / adaptor.electricity
    );
}
