//! MapReduce end to end, both modes:
//!
//! 1. **Real execution** — generate a real corpus, run the actual
//!    wordcount mapper/reducer through the local pipeline, verify counts,
//!    and show how the combiner shrinks the shuffle.
//! 2. **Cluster simulation** — run the same job's profile on simulated
//!    35-Edison and 2-Dell clusters and compare time/energy like Table 8.
//!
//! ```text
//! cargo run --release --example mapreduce_wordcount
//! ```

use edison_mapreduce::datagen;
use edison_mapreduce::engine::{run_job, ClusterSetup};
use edison_mapreduce::jobs::{self, SumReducer, Tune, WordCountMapper};
use edison_mapreduce::local::run_local;
use edison_simcore::rng::SimRng;

fn main() {
    // -- 1. real bytes through the real pipeline -------------------------
    let mut rng = SimRng::new(42);
    let splits: Vec<Vec<u8>> = (0..8)
        .map(|_| datagen::corpus_file(128 * 1024, &mut rng).into_bytes())
        .collect();
    let input: u64 = splits.iter().map(|s| s.len() as u64).sum();

    let (_, raw) = run_local(&WordCountMapper, &SumReducer, None, &splits, 8);
    let (outputs, combined) = run_local(&WordCountMapper, &SumReducer, Some(&SumReducer), &splits, 8);
    let words: u64 = raw.map_output_records;
    let distinct: usize = outputs.iter().map(|p| p.len()).sum();
    println!("real corpus: {input} bytes, {words} words, {distinct} distinct");
    println!(
        "shuffle: {} bytes without combiner → {} bytes with ({}x reduction)",
        raw.shuffle_bytes,
        combined.shuffle_bytes,
        raw.shuffle_bytes / combined.shuffle_bytes.max(1)
    );

    // -- 2. the same job at paper scale on simulated clusters ------------
    println!("\ncluster simulation (1 GB input, paper configurations):");
    println!(
        "{:<12} {:<12} {:>9} {:>10} {:>9} {:>7}",
        "job", "cluster", "time s", "energy J", "local %", "J-gain"
    );
    for (job_name, edison_job, dell_job) in [
        ("wordcount", jobs::wordcount(Tune::Edison), jobs::wordcount(Tune::Dell)),
        ("wordcount2", jobs::wordcount2(Tune::Edison), jobs::wordcount2(Tune::Dell)),
    ] {
        let e = run_job(&edison_job, &ClusterSetup::edison(35));
        let d = run_job(&dell_job, &ClusterSetup::dell(2));
        println!(
            "{:<12} {:<12} {:>9.0} {:>10.0} {:>9.0} {:>7.2}",
            job_name,
            "edison-35",
            e.finish_time_s,
            e.energy_j,
            e.data_local_fraction * 100.0,
            d.energy_j / e.energy_j
        );
        println!(
            "{:<12} {:<12} {:>9.0} {:>10.0} {:>9} {:>7}",
            "", "dell-2", d.finish_time_s, d.energy_j, "-", "-"
        );
    }
    println!("\nJ-gain = Dell energy / Edison energy for the same work (the paper's");
    println!("work-done-per-joule advantage; 2.28x for wordcount in the paper).");
}
