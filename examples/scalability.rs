//! Scalability study (§5.3 / Figures 18–19): run every job across Edison
//! cluster sizes 4/8/17/35 and Dell 1/2, print the Table 8 matrix and the
//! per-doubling speed-ups.
//!
//! ```text
//! cargo run --release --example scalability
//! ```

use edison_mapreduce::engine::{run_job, ClusterSetup, JobOutcome};
use edison_mapreduce::jobs::{self, Tune};

fn run(job: &str, setup: &ClusterSetup) -> JobOutcome {
    // re-tune the combined jobs per cluster size, as the paper does
    let vcores = match setup.tune {
        Tune::Edison => 2 * setup.workers as u32,
        Tune::Dell => 12 * setup.workers as u32,
    };
    let mut profile = match job {
        "wordcount" => jobs::wordcount(setup.tune),
        "wordcount2" => jobs::wordcount2(setup.tune),
        "logcount" => jobs::logcount(setup.tune),
        "logcount2" => jobs::logcount2(setup.tune),
        "pi" => jobs::pi(setup.tune),
        "terasort" => jobs::terasort(setup.tune),
        _ => unreachable!(),
    };
    if matches!(job, "wordcount2" | "logcount2" | "pi") {
        profile = profile.with_map_tasks(vcores);
    }
    let mut setup = setup.clone();
    if job == "terasort" {
        setup = setup.with_block(64 * 1024 * 1024);
    }
    run_job(&profile, &setup)
}

fn main() {
    let jobs_list = ["wordcount", "wordcount2", "logcount", "logcount2", "pi", "terasort"];
    let columns: Vec<(String, ClusterSetup)> = [35usize, 17, 8, 4]
        .iter()
        .map(|&n| (format!("edison-{n}"), ClusterSetup::edison(n)))
        .chain([2usize, 1].iter().map(|&n| (format!("dell-{n}"), ClusterSetup::dell(n))))
        .collect();

    print!("{:<12}", "job");
    for (label, _) in &columns {
        print!(" {label:>16}");
    }
    println!();
    for job in jobs_list {
        print!("{job:<12}");
        let mut edison_times = Vec::new();
        for (label, setup) in &columns {
            let out = run(job, setup);
            print!(" {:>9.0}s{:>6.0}J", out.finish_time_s, out.energy_j / 1000.0);
            if label.starts_with("edison") {
                edison_times.push(out.finish_time_s);
            }
        }
        // mean speed-up per doubling across 4→8→17→35 (times are listed
        // largest-cluster first, so speed-up = t_half / t_double)
        let mut speedups = Vec::new();
        for w in edison_times.windows(2) {
            speedups.push(w[1] / w[0]);
        }
        let mean = speedups.iter().product::<f64>().powf(1.0 / speedups.len() as f64);
        println!("  (speed-up/doubling {mean:.2})");
    }
    println!("\nenergy shown in kJ; the paper's Table 8 bolds the least-energy cell per job.");
}
