//! Web-service deep dive: sweep concurrency on both full clusters under
//! the paper's lightest and heaviest workloads, print throughput / delay /
//! power / efficiency, and show the overload failure modes.
//!
//! ```text
//! cargo run --release --example web_service
//! ```

use edison_web::httperf::{self, concurrency_sweep, RunOpts};
use edison_web::pyclient;
use edison_web::{ClusterScale, Platform, WebScenario, WorkloadMix};

fn main() {
    let opts = RunOpts { seed: 1, warmup_s: 3, measure_s: 10, ..RunOpts::default() };
    for (mix, name) in [
        (WorkloadMix::lightest(), "lightest (0% images, 93% hits)"),
        (WorkloadMix::img20(), "heaviest fair (20% images, 93% hits)"),
    ] {
        println!("== workload: {name} ==");
        for platform in [Platform::Edison, Platform::Dell] {
            let sc = WebScenario::table6(platform, ClusterScale::Full).unwrap();
            println!(
                "-- {:?} full cluster: {} web + {} cache --",
                platform, sc.web_servers, sc.cache_servers
            );
            println!(
                "{:>6} {:>10} {:>10} {:>8} {:>8} {:>9} {:>8}",
                "conc", "req/s", "delay ms", "5xx", "clerr", "power W", "req/J"
            );
            for conc in concurrency_sweep() {
                let r = httperf::run_point(&sc, mix, conc, opts.clone());
                println!(
                    "{:>6.0} {:>10.0} {:>10.2} {:>8} {:>8} {:>9.1} {:>8.1}",
                    conc,
                    r.requests_per_sec,
                    r.mean_delay_ms,
                    r.server_errors,
                    r.client_errors,
                    r.mean_power_w,
                    r.requests_per_joule
                );
            }
        }
    }

    // delay distributions at ~6000 req/s, the Figure 10/11 experiment
    println!("\n== python-client delay distributions at 6000 req/s, 20% images ==");
    for platform in [Platform::Edison, Platform::Dell] {
        let sc = WebScenario::table6(platform, ClusterScale::Full).unwrap();
        let d = pyclient::run_distribution(&sc, WorkloadMix::img20(), 6000.0, 7, 10);
        print!("{platform:?}: {} samples, {} SYN drops | mass ", d.samples(), d.syn_drops);
        for bucket in [0.05, 0.55, 1.05, 3.05, 7.05] {
            print!("@{bucket:.1}s:{} ", d.mass_at(bucket));
        }
        println!();
    }
}
