//! Quickstart: build both platforms, run a microbenchmark, one web-service
//! point, and one MapReduce job — the whole API surface in 60 lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use edison_hw::presets;
use edison_mapreduce::engine::{run_job, ClusterSetup};
use edison_mapreduce::jobs::{self, Tune};
use edison_microbench::dhrystone;
use edison_web::httperf::{self, RunOpts};
use edison_web::{ClusterScale, Platform, WebScenario, WorkloadMix};

fn main() {
    // 1. The calibrated hardware models.
    let edison = presets::edison();
    let dell = presets::dell_r620();
    println!("platforms:");
    println!(
        "  {:<22} {}x{}MHz, {:.0} DMIPS/thread, {:.1}W idle / {:.1}W busy",
        edison.name,
        edison.cpu.cores,
        edison.cpu.clock_mhz,
        edison.cpu.single_thread_mips,
        edison.power.node_idle(),
        edison.power.node_busy()
    );
    println!(
        "  {:<22} {}x{}MHz, {:.0} DMIPS/thread, {:.0}W idle / {:.0}W busy",
        dell.name,
        dell.cpu.cores,
        dell.cpu.clock_mhz,
        dell.cpu.single_thread_mips,
        dell.power.node_idle(),
        dell.power.node_busy()
    );

    // 2. A Section-4 microbenchmark.
    let e = dhrystone::run(&edison, 100_000_000);
    let d = dhrystone::run(&dell, 100_000_000);
    println!("\ndhrystone: Edison {:.1} DMIPS, Dell {:.1} DMIPS ({:.0}x single-thread)",
        e.dmips, d.dmips, d.dmips / e.dmips);

    // 3. One web-service figure point: quarter-scale Edison cluster at
    //    concurrency 128.
    let scenario = WebScenario::table6(Platform::Edison, ClusterScale::Quarter).unwrap();
    let r = httperf::run_point(&scenario, WorkloadMix::lightest(), 128.0, RunOpts::default());
    println!(
        "\nweb ({} web + {} cache servers): {:.0} req/s at {:.1} ms mean delay, {:.1} W, {:.1} req/J",
        scenario.web_servers,
        scenario.cache_servers,
        r.requests_per_sec,
        r.mean_delay_ms,
        r.mean_power_w,
        r.requests_per_joule
    );

    // 4. One MapReduce job: the optimised wordcount on 8 Edison nodes.
    let outcome = run_job(&jobs::wordcount2(Tune::Edison), &ClusterSetup::edison(8));
    println!(
        "\nwordcount2 on 8 Edison nodes: {:.0} s, {:.0} J, {:.0}% data-local maps",
        outcome.finish_time_s,
        outcome.energy_j,
        outcome.data_local_fraction * 100.0
    );
}
