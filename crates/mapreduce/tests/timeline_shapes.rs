//! Shape assertions on the Figure 12–17 timelines: the qualitative
//! observations §5.2.1–§5.2.3 calls out must hold in the simulation.

use edison_mapreduce::engine::{run_job, ClusterSetup};
use edison_mapreduce::jobs::{self, Tune};

/// §5.2.1 obs. 2: the resource-allocation time before the CPU rise is
/// longer on Edison than on Dell (paper: ≈2.3×).
#[test]
fn cpu_rise_is_later_on_edison() {
    let e = run_job(&jobs::wordcount(Tune::Edison), &ClusterSetup::edison(35));
    let d = run_job(&jobs::wordcount(Tune::Dell), &ClusterSetup::dell(2));
    assert!(
        e.cpu_rise_s > d.cpu_rise_s,
        "edison rise {:.1}s, dell rise {:.1}s",
        e.cpu_rise_s,
        d.cpu_rise_s
    );
}

/// §5.2.1 obs. 3: the reduce phase starts much later (relative to runtime)
/// on Edison (61 %) than on Dell (28 %) for wordcount — Edison's memory
/// ceiling keeps every container slot busy with maps for longer.
#[test]
fn reduce_phase_starts_relatively_later_on_edison() {
    let e = run_job(&jobs::wordcount(Tune::Edison), &ClusterSetup::edison(35));
    let d = run_job(&jobs::wordcount(Tune::Dell), &ClusterSetup::dell(2));
    let e_frac = e.first_reduce_s / e.finish_time_s;
    let d_frac = d.first_reduce_s / d.finish_time_s;
    assert!(
        e_frac > d_frac,
        "edison reduce at {:.0}%, dell at {:.0}%",
        e_frac * 100.0,
        d_frac * 100.0
    );
    assert!(e_frac > 0.3, "edison reduce should start late ({:.2})", e_frac);
}

/// Wordcount has a CPU-hungry map phase: mean CPU during the first half of
/// the Dell run should be high (the paper: "100% persistently").
#[test]
fn dell_wordcount_map_phase_is_cpu_bound() {
    let d = run_job(&jobs::wordcount(Tune::Dell), &ClusterSetup::dell(2));
    let pts = d.timeline.cpu_pct.points();
    let half = pts.len() / 2;
    let first_half_mean: f64 =
        pts[..half].iter().map(|&(_, v)| v).sum::<f64>() / half.max(1) as f64;
    assert!(first_half_mean > 55.0, "dell map-phase cpu {first_half_mean:.0}%");
}

/// Pi saturates CPU on both clusters (§5.2.3: "both CPU and memory reach
/// full utilization").
#[test]
fn pi_saturates_cpu() {
    for (out, label) in [
        (run_job(&jobs::pi(Tune::Edison), &ClusterSetup::edison(35)), "edison"),
        (run_job(&jobs::pi(Tune::Dell), &ClusterSetup::dell(2)), "dell"),
    ] {
        let peak = out
            .timeline
            .cpu_pct
            .points()
            .iter()
            .map(|&(_, v)| v)
            .fold(0.0, f64::max);
        assert!(peak > 90.0, "{label} pi peak cpu {peak:.0}%");
    }
}

/// Power timelines stay inside the Table 3 band at every sample.
#[test]
fn power_stays_inside_table3_band() {
    let e = run_job(&jobs::wordcount2(Tune::Edison), &ClusterSetup::edison(35));
    for &(_, p) in e.timeline.power_w.points() {
        assert!(
            (35.0 * 1.40 - 0.01..=35.0 * 1.68 + 0.01).contains(&p),
            "edison cluster power {p:.2}W out of band"
        );
    }
    let d = run_job(&jobs::wordcount2(Tune::Dell), &ClusterSetup::dell(2));
    for &(_, p) in d.timeline.power_w.points() {
        assert!(
            (2.0 * 52.0 - 0.01..=2.0 * 109.0 + 0.01).contains(&p),
            "dell cluster power {p:.2}W out of band"
        );
    }
}

/// Terasort is more memory-hungry than CPU-hungry (§5.2.4): peak memory
/// utilisation above peak CPU utilisation on the Edison cluster.
#[test]
fn terasort_is_memory_hungry() {
    let setup = ClusterSetup::edison(35).with_block(64 * 1024 * 1024);
    let out = run_job(&jobs::terasort(Tune::Edison), &setup);
    let peak_mem = out.timeline.mem_pct.points().iter().map(|&(_, v)| v).fold(0.0, f64::max);
    assert!(peak_mem > 70.0, "terasort peak mem {peak_mem:.0}%");
}

/// Extension: speculative execution rescues a straggler. A 5× slow node
/// stretches wordcount2 badly with speculation off; turning it on claws
/// most of the loss back via duplicate maps.
#[test]
fn speculation_mitigates_a_straggler() {
    let mut base = jobs::wordcount2(Tune::Edison);
    base.input_bytes /= 4;
    base.map_tasks = 16;
    // keep the job map-dominated so the straggling *map* is the bottleneck
    base.reduce_tasks = 8;
    let healthy = run_job(&base, &ClusterSetup::edison(8));

    let mut no_spec = ClusterSetup::edison(8).with_straggler(3, 5.0);
    no_spec.speculation = false;
    let slow = run_job(&base, &no_spec);
    assert!(
        slow.finish_time_s > healthy.finish_time_s * 1.5,
        "straggler should hurt: healthy {:.0}s, straggler {:.0}s",
        healthy.finish_time_s,
        slow.finish_time_s
    );

    let spec = ClusterSetup::edison(8).with_straggler(3, 5.0);
    let rescued = run_job(&base, &spec);
    assert!(rescued.speculative_copies > 0, "expected speculative copies");
    assert!(
        rescued.finish_time_s < slow.finish_time_s * 0.85,
        "speculation should help: {:.0}s vs {:.0}s",
        rescued.finish_time_s,
        slow.finish_time_s
    );
}

/// With homogeneous nodes, speculation never fires — the calibrated
/// Table 8 results are unaffected by the feature being on by default.
#[test]
fn speculation_is_inert_on_healthy_clusters() {
    let mut p = jobs::wordcount2(Tune::Edison);
    p.input_bytes /= 4;
    p.map_tasks = 16;
    p.reduce_tasks = 8;
    let out = run_job(&p, &ClusterSetup::edison(8));
    assert_eq!(out.speculative_copies, 0);
}
