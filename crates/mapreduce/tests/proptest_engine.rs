//! Property tests over the MapReduce substrate: jobs terminate and conserve
//! work for arbitrary cluster sizes and job shapes; the local executor
//! agrees with oracles under random data.

use edison_mapreduce::engine::{run_job, ClusterSetup};
use edison_mapreduce::jobs::{JobProfile, SumReducer, Tune, WordCountMapper};
use edison_mapreduce::local::run_local;
use proptest::prelude::*;

const MIB: u64 = 1024 * 1024;

fn arb_profile(
    input_mib: u64,
    maps: u32,
    reduces: u32,
    shuffle_ratio: f64,
    combiner: bool,
) -> JobProfile {
    JobProfile {
        name: "prop",
        input_files: maps,
        input_bytes: input_mib * MIB,
        map_tasks: maps,
        reduce_tasks: reduces,
        map_mi_per_mib: 500.0,
        map_compute_mi: 10.0,
        shuffle_ratio,
        combiner,
        reduce_mi_per_mib: 400.0,
        spill_mi_per_mib: 50.0,
        container_startup_mi: 2_000.0,
        task_setup_mi: 500.0,
        output_ratio: shuffle_ratio * 0.5,
        map_container: 150 * MIB,
        reduce_container: 300 * MIB,
        merge_passes: 1,
        mem_hungry: false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Any well-formed job on any cluster size terminates, with locality
    /// within [0,1], positive energy, and more nodes never slower by more
    /// than scheduling noise.
    #[test]
    fn jobs_terminate_on_any_cluster(
        workers in 2usize..12,
        maps in 4u32..60,
        reduces in 1u32..16,
        input_mib in 16u64..256,
        shuffle_ratio in 0.01f64..1.2,
        combiner in any::<bool>(),
    ) {
        let profile = arb_profile(input_mib, maps, reduces, shuffle_ratio, combiner);
        let out = run_job(&profile, &ClusterSetup::edison(workers));
        prop_assert!(out.finish_time_s > 0.0);
        prop_assert!(out.energy_j > 0.0);
        prop_assert!((0.0..=1.0).contains(&out.data_local_fraction));
        // timeline progress ends at 100 %
        let last_map = out.timeline.map_pct.points().last().unwrap().1;
        prop_assert!((last_map - 100.0).abs() < 1e-6);
        // energy consistent with power band: between idle and busy cluster
        // power times runtime
        let idle = workers as f64 * 1.40 * out.finish_time_s;
        let busy = workers as f64 * 1.68 * out.finish_time_s * 1.01;
        prop_assert!(out.energy_j >= idle * 0.99, "energy {} < idle bound {idle}", out.energy_j);
        prop_assert!(out.energy_j <= busy, "energy {} > busy bound {busy}", out.energy_j);
    }

    /// Doubling the cluster never increases runtime (work-conserving
    /// scheduler; same job).
    #[test]
    fn more_nodes_is_never_slower(
        maps in 8u32..40,
        input_mib in 32u64..128,
    ) {
        let profile = arb_profile(input_mib, maps, 4, 0.2, false);
        let small = run_job(&profile, &ClusterSetup::edison(4));
        let large = run_job(&profile, &ClusterSetup::edison(8));
        prop_assert!(
            large.finish_time_s <= small.finish_time_s * 1.05,
            "4 nodes: {}s, 8 nodes: {}s",
            small.finish_time_s,
            large.finish_time_s
        );
    }

    /// The local executor's wordcount output always totals the number of
    /// input tokens, with and without a combiner, for arbitrary text.
    #[test]
    fn local_wordcount_total_matches_tokens(
        text in "[a-c ]{0,2000}",
        n_reduce in 1usize..9,
        use_combiner in any::<bool>(),
    ) {
        let tokens = text.split_whitespace().count() as u64;
        let splits = vec![text.clone().into_bytes()];
        let combiner: Option<&SumReducer> = if use_combiner { Some(&SumReducer) } else { None };
        let (outputs, stats) = run_local(
            &WordCountMapper,
            &SumReducer,
            combiner.map(|c| c as &dyn edison_mapreduce::jobs::Reducer),
            &splits,
            n_reduce,
        );
        let total: u64 = outputs
            .iter()
            .flatten()
            .map(|(_, v)| {
                let mut b = [0u8; 8];
                b.copy_from_slice(v);
                u64::from_be_bytes(b)
            })
            .sum();
        prop_assert_eq!(total, tokens);
        prop_assert_eq!(stats.map_output_records, tokens);
    }
}

/// The paper's six real jobs terminate on every Table 8 cluster size
/// (smoke, not timing).
#[test]
fn table8_grid_terminates() {
    use edison_mapreduce::jobs;
    for setup in [ClusterSetup::edison(4), ClusterSetup::dell(1)] {
        let tune = setup.tune;
        for mut p in jobs::table8_jobs(tune) {
            // shrink the heavy jobs for smoke-test speed
            p.input_bytes = (p.input_bytes / 8).max(MIB);
            if tune == Tune::Edison {
                p.map_tasks = p.map_tasks.min(24);
            }
            let out = run_job(&p, &setup);
            assert!(out.finish_time_s > 0.0, "{} did not run", p.name);
        }
    }
}
