//! Block-level HDFS model: namenode metadata, replica placement, locality.
//!
//! The paper sets block size 16 MB on the Edison cluster and 64 MB on Dell
//! (64 MB on both for terasort) and replication 2 / 1 respectively, chosen
//! so both clusters see ≈95 % data-local map tasks. Placement follows
//! HDFS's default policy shape: first replica on a rotating "writer" node,
//! further replicas on distinct random nodes.

use edison_simcore::rng::SimRng;

/// A stored file: ordered blocks.
#[derive(Debug, Clone)]
pub struct HdfsFile {
    /// File name (diagnostics only).
    pub name: String,
    /// Block ids in order.
    pub blocks: Vec<usize>,
}

/// One block and its replica locations (node indices).
#[derive(Debug, Clone)]
pub struct Block {
    /// Bytes in this block (≤ block size; last block may be short).
    pub bytes: u64,
    /// Node indices holding a replica (first = primary).
    pub replicas: Vec<usize>,
}

/// The namenode: file → blocks → replicas.
#[derive(Debug, Clone)]
pub struct Namenode {
    files: Vec<HdfsFile>,
    blocks: Vec<Block>,
    datanodes: usize,
    replication: u32,
    block_bytes: u64,
    next_writer: usize,
}

impl Namenode {
    /// A namenode over `datanodes` nodes with the given replication factor
    /// and block size.
    pub fn new(datanodes: usize, replication: u32, block_bytes: u64) -> Self {
        assert!(datanodes >= 1 && replication >= 1 && block_bytes > 0);
        assert!(
            replication as usize <= datanodes,
            "replication {replication} exceeds datanodes {datanodes}"
        );
        Namenode {
            files: Vec::new(),
            blocks: Vec::new(),
            datanodes,
            replication,
            block_bytes,
            next_writer: 0,
        }
    }

    /// Block size, bytes.
    pub fn block_bytes(&self) -> u64 {
        self.block_bytes
    }

    /// Store a file of `bytes`, splitting into blocks and placing replicas.
    /// Returns the file index.
    pub fn put(&mut self, name: &str, bytes: u64, rng: &mut SimRng) -> usize {
        assert!(bytes > 0, "empty HDFS file");
        let mut blocks = Vec::new();
        let mut remaining = bytes;
        while remaining > 0 {
            let b = remaining.min(self.block_bytes);
            remaining -= b;
            let replicas = self.place(rng);
            self.blocks.push(Block { bytes: b, replicas });
            blocks.push(self.blocks.len() - 1);
        }
        self.files.push(HdfsFile { name: name.to_string(), blocks });
        self.files.len() - 1
    }

    /// HDFS default-policy-shaped placement: primary on the rotating
    /// writer, others on distinct random nodes.
    fn place(&mut self, rng: &mut SimRng) -> Vec<usize> {
        let primary = self.next_writer % self.datanodes;
        self.next_writer += 1;
        let mut replicas = vec![primary];
        while replicas.len() < self.replication as usize {
            let cand = rng.below(self.datanodes as u64) as usize;
            if !replicas.contains(&cand) {
                replicas.push(cand);
            }
        }
        replicas
    }

    /// A file's blocks.
    pub fn file_blocks(&self, file: usize) -> &[usize] {
        &self.files[file].blocks
    }

    /// A block by id.
    pub fn block(&self, id: usize) -> &Block {
        &self.blocks[id]
    }

    /// All block ids across all files in insertion order.
    pub fn all_blocks(&self) -> impl Iterator<Item = usize> + '_ {
        0..self.blocks.len()
    }

    /// Total blocks stored.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// True when `node` holds a replica of `block`.
    pub fn is_local(&self, block: usize, node: usize) -> bool {
        self.blocks[block].replicas.contains(&node)
    }

    /// A replica node for `block`, preferring `node` itself.
    pub fn replica_for(&self, block: usize, node: usize) -> usize {
        if self.is_local(block, node) {
            node
        } else {
            self.blocks[block].replicas[0]
        }
    }

    /// A replica node for `block` among nodes still alive (`alive[i]`),
    /// preferring `node` itself. `None` when every replica is down — the
    /// block is unreadable and the read fails over to nothing (the fault
    /// layer's unrecoverable case).
    pub fn replica_for_alive(&self, block: usize, node: usize, alive: &[bool]) -> Option<usize> {
        if self.is_local(block, node) && alive.get(node).copied().unwrap_or(false) {
            return Some(node);
        }
        self.blocks[block].replicas.iter().copied().find(|&r| alive.get(r).copied().unwrap_or(false))
    }

    /// Bytes stored per node (replica-weighted) — the balance diagnostic.
    pub fn bytes_per_node(&self) -> Vec<u64> {
        let mut v = vec![0u64; self.datanodes];
        for b in &self.blocks {
            for &r in &b.replicas {
                v[r] += b.bytes;
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1024 * 1024;

    #[test]
    fn files_split_into_blocks() {
        let mut nn = Namenode::new(35, 2, 16 * MB);
        let mut rng = SimRng::new(1);
        let f = nn.put("input-0", 40 * MB, &mut rng);
        let blocks = nn.file_blocks(f);
        assert_eq!(blocks.len(), 3);
        assert_eq!(nn.block(blocks[0]).bytes, 16 * MB);
        assert_eq!(nn.block(blocks[2]).bytes, 8 * MB);
    }

    #[test]
    fn replication_factor_is_respected() {
        let mut nn = Namenode::new(35, 2, 16 * MB);
        let mut rng = SimRng::new(2);
        nn.put("f", 160 * MB, &mut rng);
        for b in nn.all_blocks() {
            let block = nn.block(b);
            assert_eq!(block.replicas.len(), 2);
            assert_ne!(block.replicas[0], block.replicas[1]);
        }
    }

    #[test]
    fn placement_balances_primaries() {
        let mut nn = Namenode::new(10, 1, MB);
        let mut rng = SimRng::new(3);
        for i in 0..100 {
            nn.put(&format!("f{i}"), MB, &mut rng);
        }
        let per = nn.bytes_per_node();
        assert!(per.iter().all(|&b| b == 10 * MB), "{per:?}");
    }

    #[test]
    fn locality_queries() {
        let mut nn = Namenode::new(5, 2, MB);
        let mut rng = SimRng::new(4);
        nn.put("f", MB, &mut rng);
        let block = 0;
        let reps = nn.block(block).replicas.clone();
        for n in 0..5 {
            assert_eq!(nn.is_local(block, n), reps.contains(&n));
        }
        assert_eq!(nn.replica_for(block, reps[1]), reps[1]);
        let other = (0..5).find(|n| !reps.contains(n)).unwrap();
        assert_eq!(nn.replica_for(block, other), reps[0]);
    }

    #[test]
    #[should_panic(expected = "replication")]
    fn replication_cannot_exceed_nodes() {
        Namenode::new(1, 2, MB);
    }
}
