//! Synthetic input generators standing in for the paper's datasets.
//!
//! | paper input | generator | notes |
//! |---|---|---|
//! | 200 text files, 1 GB total (wordcount) | [`corpus_file`] | Zipf-distributed vocabulary, ~6-char words |
//! | 500 YARN/Hadoop log files, 1 GB (logcount) | [`log_file`] | `date level message` lines; key = (date, level) |
//! | 10 GB teragen records (terasort) | [`teragen_records`] | 100-byte records, 10-byte random keys |
//!
//! Tests generate *real bytes* at reduced scale and run the executable jobs
//! on them; the paper-scale experiments use the same generators'
//! statistical profiles (records/byte, key cardinality) without
//! materialising gigabytes.

use edison_simcore::rng::{zipf_cumulative, SimRng};

/// Vocabulary size of the synthetic corpus.
pub const VOCABULARY: usize = 50_000;
/// Zipf exponent for word frequencies (natural-language-like).
pub const ZIPF_S: f64 = 1.07;

/// Mean bytes per corpus word including the separator (measured property of
/// the generator; used by the profile maths). Words are 3–4 letters (base-26
/// spellings with a 3-letter floor) and Zipf mass concentrates on the short
/// ranks.
pub const MEAN_WORD_BYTES: f64 = 4.2;

/// Generate one corpus file of ≈`bytes` bytes of space-separated words with
/// newlines every ~80 columns.
pub fn corpus_file(bytes: usize, rng: &mut SimRng) -> String {
    let cum = zipf_cumulative(VOCABULARY, ZIPF_S);
    let mut out = String::with_capacity(bytes + 16);
    let mut col = 0;
    while out.len() < bytes {
        let rank = rng.zipf(VOCABULARY, ZIPF_S, &cum);
        let w = word_for_rank(rank);
        out.push_str(&w);
        col += w.len() + 1;
        if col >= 80 {
            out.push('\n');
            col = 0;
        } else {
            out.push(' ');
        }
    }
    out
}

/// Deterministic word spelling for a vocabulary rank (base-26 with a
/// length floor so words average ~6 chars).
pub fn word_for_rank(rank: usize) -> String {
    let mut n = rank + 26 * 26; // floor: at least 3 letters
    let mut s = Vec::new();
    while n > 0 {
        s.push(b'a' + (n % 26) as u8);
        n /= 26;
    }
    s.reverse();
    String::from_utf8(s).expect("ascii")
}

/// Log levels in their approximate YARN frequency order.
pub const LOG_LEVELS: [&str; 4] = ["INFO", "WARN", "DEBUG", "ERROR"];
/// Distinct dates in the synthetic logs.
pub const LOG_DATES: usize = 30;

/// Generate one log file of ≈`bytes` bytes of `date level message` lines
/// (the logcount job keys on the `(date, level)` pair).
pub fn log_file(bytes: usize, rng: &mut SimRng) -> String {
    let mut out = String::with_capacity(bytes + 64);
    while out.len() < bytes {
        let day = rng.below(LOG_DATES as u64) + 1;
        let level = LOG_LEVELS[rng.weighted(&[0.80, 0.10, 0.07, 0.03])];
        let task = rng.below(10_000);
        out.push_str(&format!(
            "2016-02-{day:02} 12:{:02}:{:02} {level} org.apache.hadoop.yarn task_{task} progress update\n",
            rng.below(60),
            rng.below(60),
        ));
    }
    out
}

/// Bytes per teragen record (fixed by the TeraSort format).
pub const TERA_RECORD_BYTES: usize = 100;
/// Key bytes at the front of each record.
pub const TERA_KEY_BYTES: usize = 10;

/// Generate `n` teragen records (10-byte random key + 90-byte payload).
pub fn teragen_records(n: usize, rng: &mut SimRng) -> Vec<[u8; TERA_RECORD_BYTES]> {
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let mut rec = [0u8; TERA_RECORD_BYTES];
        for b in rec.iter_mut().take(TERA_KEY_BYTES) {
            *b = (rng.below(95) + 32) as u8; // printable
        }
        // payload: row id then filler, as teragen does
        let id = format!("{i:010}");
        rec[TERA_KEY_BYTES..TERA_KEY_BYTES + 10].copy_from_slice(id.as_bytes());
        for b in rec.iter_mut().skip(TERA_KEY_BYTES + 10) {
            *b = b'A';
        }
        out.push(rec);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_requested_size_and_ascii_words() {
        let mut rng = SimRng::new(1);
        let f = corpus_file(10_000, &mut rng);
        assert!(f.len() >= 10_000 && f.len() < 10_100);
        assert!(f.split_whitespace().all(|w| w.bytes().all(|b| b.is_ascii_lowercase())));
    }

    #[test]
    fn corpus_word_frequencies_are_skewed() {
        let mut rng = SimRng::new(2);
        let f = corpus_file(100_000, &mut rng);
        let mut counts = std::collections::HashMap::new();
        for w in f.split_whitespace() {
            *counts.entry(w).or_insert(0u32) += 1;
        }
        let total: u32 = counts.values().sum();
        let max = *counts.values().max().unwrap();
        // the top word should take a few percent of all tokens under Zipf
        assert!(max as f64 / total as f64 > 0.02, "max {max} of {total}");
        // and the vocabulary seen should be far below token count
        assert!(counts.len() < total as usize / 2);
    }

    #[test]
    fn mean_word_bytes_matches_constant() {
        let mut rng = SimRng::new(3);
        let f = corpus_file(200_000, &mut rng);
        let words = f.split_whitespace().count();
        let mean = f.len() as f64 / words as f64;
        assert!((mean - MEAN_WORD_BYTES).abs() < 0.8, "mean {mean}");
    }

    #[test]
    fn log_lines_parse_and_use_known_levels() {
        let mut rng = SimRng::new(4);
        let f = log_file(20_000, &mut rng);
        for line in f.lines() {
            let mut parts = line.split_whitespace();
            let date = parts.next().unwrap();
            let _time = parts.next().unwrap();
            let level = parts.next().unwrap();
            assert!(date.starts_with("2016-02-"));
            assert!(LOG_LEVELS.contains(&level), "level {level}");
        }
    }

    #[test]
    fn log_key_cardinality_is_tiny() {
        // the whole point of logcount: few distinct (date, level) keys.
        let mut rng = SimRng::new(5);
        let f = log_file(100_000, &mut rng);
        let keys: std::collections::HashSet<(String, String)> = f
            .lines()
            .map(|l| {
                let mut p = l.split_whitespace();
                let d = p.next().unwrap().to_string();
                p.next();
                let lv = p.next().unwrap().to_string();
                (d, lv)
            })
            .collect();
        assert!(keys.len() <= LOG_DATES * LOG_LEVELS.len());
        assert!(keys.len() >= 30);
    }

    #[test]
    fn teragen_records_have_format() {
        let mut rng = SimRng::new(6);
        let recs = teragen_records(100, &mut rng);
        assert_eq!(recs.len(), 100);
        for (i, r) in recs.iter().enumerate() {
            assert!(r[..TERA_KEY_BYTES].iter().all(|&b| (32..127).contains(&b)));
            let id: usize = std::str::from_utf8(&r[10..20]).unwrap().parse().unwrap();
            assert_eq!(id, i);
        }
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let mut a = SimRng::new(9);
        let mut b = SimRng::new(9);
        assert_eq!(corpus_file(5_000, &mut a), corpus_file(5_000, &mut b));
    }
}
