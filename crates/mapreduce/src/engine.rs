//! The cluster job executor: YARN scheduling + the map/shuffle/reduce
//! pipeline as one discrete-event world per job run.
//!
//! A run reproduces the §5.2 setup: one external Dell master (namenode +
//! resource manager, excluded from energy accounting, as the paper does)
//! plus N slave nodes of one platform. Each task walks explicit phases:
//!
//! ```text
//! map:    grant → container launch (JVM CPU) → input read (disk or
//!         remote flow) → map CPU → sort/spill CPU → spill write (disk)
//! reduce: grant → launch → fetch each map's partition (network flows,
//!         as maps finish) → external merge (disk) → reduce CPU →
//!         output write (disk) → replication pipeline (flow)
//! ```
//!
//! Container-allocation waves, data-locality, the Edison memory ceiling
//! and the reduce-phase start times of Figures 12–17 all emerge from these
//! mechanics rather than being scripted.

use crate::hdfs::Namenode;
use crate::jobs::{JobProfile, Tune};
use crate::yarn::{heartbeat, Grant, NodeCapacity, PendingTask};
use edison_cluster::{Cluster, NodeId};
use edison_hw::{calib, presets};
use edison_net::{HostId, LinkGauge, Topology};
use edison_simcore::rng::SimRng;
use edison_simcore::stats::TimeSeries;
use edison_simcore::time::{SimDuration, SimTime};
use edison_simcore::{Ctx, Model, Simulation};
use edison_simtel::{labels, EventCounter, Telemetry};
use std::collections::VecDeque;

const MIB: u64 = 1024 * 1024;
/// CPU-task id reserved for the application master.
const AM_ID: u64 = u64::MAX;
/// Disk-job id base for per-node job localisation (base + node index).
const LOCALIZE_BASE: u64 = u64::MAX / 2;
/// Hadoop's default reduce slow-start threshold.
const REDUCE_SLOWSTART: f64 = 0.05;

/// Cluster-side configuration of a run.
#[derive(Debug, Clone)]
pub struct ClusterSetup {
    /// Platform tuning (selects hardware spec + job containers).
    pub tune: Tune,
    /// Slave node count (Table 8 columns: 35/17/8/4 Edison, 2/1 Dell).
    pub workers: usize,
    /// HDFS block size, bytes (16 MB Edison / 64 MB Dell; 64 MB both for
    /// terasort).
    pub block_bytes: u64,
    /// HDFS replication (2 Edison / 1 Dell — tuned for ≈95 % locality).
    pub replication: u32,
    /// Per-node memory schedulable for containers (≈600 MB Edison, 12 GB
    /// Dell after OS + datanode + nodemanager).
    pub schedulable_mem: u64,
    /// Application-master container size (100 MB / 500 MB).
    pub am_mem: u64,
    /// RNG seed.
    pub seed: u64,
    /// Fault injection: slow node `index` down by the given CPU factor
    /// (> 1), modelling a degraded SD card / thermally-throttled module.
    pub straggler: Option<(usize, f64)>,
    /// Hadoop speculative execution: duplicate suspiciously slow maps once
    /// most of the map phase has completed. On by default (Hadoop's
    /// default); with homogeneous nodes it never triggers, so calibrated
    /// results are unaffected.
    pub speculation: bool,
}

impl ClusterSetup {
    /// The paper's Edison slave configuration at a given size.
    pub fn edison(workers: usize) -> Self {
        ClusterSetup {
            tune: Tune::Edison,
            workers,
            block_bytes: 16 * MIB,
            replication: 2.min(workers as u32),
            schedulable_mem: 600 * MIB,
            am_mem: 100 * MIB,
            seed: 20160509,
            straggler: None,
            speculation: true,
        }
    }

    /// The paper's Dell slave configuration at a given size.
    pub fn dell(workers: usize) -> Self {
        ClusterSetup {
            tune: Tune::Dell,
            workers,
            block_bytes: 64 * MIB,
            replication: 1,
            schedulable_mem: 12 * 1024 * MIB,
            am_mem: 500 * MIB,
            seed: 20160509,
            straggler: None,
            speculation: true,
        }
    }

    /// Scale the block size so each vcore still gets one map container when
    /// the cluster shrinks (the paper: "when running wordcount2 … on
    /// half-scale … we increase the HDFS block size").
    pub fn with_block(mut self, bytes: u64) -> Self {
        self.block_bytes = bytes;
        self
    }

    /// Inject a straggler: node `index` runs its CPU `factor`× slower.
    pub fn with_straggler(mut self, index: usize, factor: f64) -> Self {
        assert!(factor > 1.0);
        self.straggler = Some((index, factor));
        self
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Pending,
    Launching,
    Reading,
    MapCpu,
    SpillCpu,
    SpillDisk,
    ShuffleWait,
    Fetching,
    MergeDisk,
    ReduceCpu,
    OutputDisk,
    OutputRepl,
    Done,
}

/// Static phase name for telemetry spans.
fn phase_name(p: Phase) -> &'static str {
    match p {
        Phase::Pending => "pending",
        Phase::Launching => "container_launch",
        Phase::Reading => "input_read",
        Phase::MapCpu => "map_cpu",
        Phase::SpillCpu => "sort_spill_cpu",
        Phase::SpillDisk => "spill_write",
        Phase::ShuffleWait => "shuffle_wait",
        Phase::Fetching => "shuffle_fetch",
        Phase::MergeDisk => "external_merge",
        Phase::ReduceCpu => "reduce_cpu",
        Phase::OutputDisk => "output_write",
        Phase::OutputRepl => "output_replication",
        Phase::Done => "done",
    }
}

#[derive(Debug)]
struct Task {
    is_map: bool,
    phase: Phase,
    node: usize,
    /// HDFS block feeding this map (maps only).
    block: usize,
    local: bool,
    /// Reduce shuffle bookkeeping.
    fetch_pending: VecDeque<usize>,
    fetched: u32,
    current_fetch_src: Option<usize>,
    /// Speculative copy of another map task.
    dup_of: Option<usize>,
    /// The logical map this task implements has been counted as complete.
    logical_done: bool,
    /// A speculative copy of this task exists (or it already finished).
    speculated: bool,
    /// Container grant time (straggler detection).
    started: SimTime,
    /// When the current phase began (telemetry spans).
    phase_since: SimTime,
}

/// Events of the MapReduce world.
#[derive(Debug)]
pub enum Ev {
    Heartbeat,
    AmReady,
    NodeCpu { node: usize, epoch: u64 },
    DiskDone { node: usize, job: u64 },
    FlowEnd { task: usize },
    Sample,
}

impl Ev {
    /// Static event-kind name for engine-level telemetry
    /// ([`EventCounter`]).
    pub fn kind(&self) -> &'static str {
        match self {
            Ev::Heartbeat => "heartbeat",
            Ev::AmReady => "am_ready",
            Ev::NodeCpu { .. } => "node_cpu",
            Ev::DiskDone { .. } => "disk_done",
            Ev::FlowEnd { .. } => "flow_end",
            Ev::Sample => "sample",
        }
    }
}

/// Per-second utilisation/power/progress samples (Figures 12–17).
#[derive(Debug, Default, Clone)]
pub struct Timeline {
    /// Mean CPU utilisation across slaves, 0–100 %.
    pub cpu_pct: TimeSeries,
    /// Mean memory utilisation across slaves, 0–100 %.
    pub mem_pct: TimeSeries,
    /// Cluster power, W.
    pub power_w: TimeSeries,
    /// Completed maps / total maps, 0–100 %.
    pub map_pct: TimeSeries,
    /// Completed reduces / total, 0–100 %.
    pub reduce_pct: TimeSeries,
}

/// Result of one job run.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Wall-clock job time, s.
    pub finish_time_s: f64,
    /// Slave-cluster energy over the job, J (master excluded, as in §5.2).
    pub energy_j: f64,
    /// Fraction of map tasks that ran data-local.
    pub data_local_fraction: f64,
    /// The Figure 12–17 timeline.
    pub timeline: Timeline,
    /// Time at which the first reduce container launched, s.
    pub first_reduce_s: f64,
    /// Time at which CPU utilisation first exceeded 20 % (the paper's
    /// "resource allocation time" marker).
    pub cpu_rise_s: f64,
    /// Speculative map copies launched (0 on healthy clusters).
    pub speculative_copies: u32,
}

impl JobOutcome {
    /// Work-done-per-joule relative to another outcome of the same job:
    /// `other.energy / self.energy` (> 1 means self is more efficient).
    pub fn efficiency_vs(&self, other: &JobOutcome) -> f64 {
        other.energy_j / self.energy_j
    }
}

struct MrWorld {
    profile: JobProfile,
    setup: ClusterSetup,
    nodes: Cluster,
    topo: Topology,
    gauge: LinkGauge,
    hosts: Vec<HostId>,
    nn: Namenode,
    tasks: Vec<Task>,
    n_maps: usize,
    completed_maps: usize,
    completed_reduces: usize,
    local_maps: usize,
    am_placed: bool,
    am_ready: bool,
    reduces_requested: bool,
    running_containers: Vec<u32>,
    /// Per-node: job artifacts localised, containers may launch.
    node_ready: Vec<bool>,
    /// Memory currently held by running reduce containers (ramp-up cap).
    running_reduce_mem: u64,
    /// Durations of completed (non-speculative) map tasks, seconds.
    map_durations: Vec<f64>,
    /// Speculative copies launched.
    speculative_copies: u32,
    timeline: Timeline,
    first_reduce: Option<SimTime>,
    cpu_rise: Option<SimTime>,
    finish: Option<SimTime>,
    /// Telemetry sink; [`Telemetry::off`] unless the run came through
    /// [`run_job_traced`].
    tel: Telemetry,
}

impl MrWorld {
    fn new(profile: JobProfile, setup: ClusterSetup) -> Self {
        let spec = match setup.tune {
            Tune::Edison => presets::edison(),
            Tune::Dell => presets::dell_r620(),
        };
        let mut nodes = Cluster::new();
        for i in 0..setup.workers {
            match setup.straggler {
                Some((idx, factor)) if idx == i => {
                    let mut slow = spec.clone();
                    slow.cpu.single_thread_mips /= factor;
                    nodes.push(&slow);
                }
                _ => {
                    nodes.push(&spec);
                }
            }
        }
        // single-room fabric (the master sits outside the energy boundary
        // and its control traffic is negligible)
        let mut topo = Topology::new();
        let room = topo.add_group(match setup.tune {
            Tune::Edison => SimDuration::from_micros(650),
            Tune::Dell => SimDuration::from_micros(120),
        });
        let hosts: Vec<HostId> = (0..setup.workers)
            .map(|_| topo.add_host(room, spec.nic.line_rate_bps, spec.nic.tcp_efficiency))
            .collect();
        let gauge = LinkGauge::mirror(topo.network());

        let mut rng = SimRng::new(setup.seed);
        // HDFS: one file per map split (CombineFileInputFormat is modelled
        // by the profile's split count — splits are locality-grouped).
        let mut nn = Namenode::new(setup.workers, setup.replication, setup.block_bytes);
        let split = profile.split_bytes().max(1);
        for i in 0..profile.map_tasks {
            nn.put(&format!("part-{i:05}"), split.min(setup.block_bytes), &mut rng);
        }
        let n_maps = profile.map_tasks as usize;
        let n_tasks = n_maps + profile.reduce_tasks as usize;
        let tasks: Vec<Task> = (0..n_tasks)
            .map(|i| Task {
                is_map: i < n_maps,
                phase: Phase::Pending,
                node: usize::MAX,
                block: if i < n_maps { i } else { usize::MAX },
                local: false,
                fetch_pending: VecDeque::new(),
                fetched: 0,
                current_fetch_src: None,
                dup_of: None,
                logical_done: false,
                speculated: false,
                started: SimTime::ZERO,
                phase_since: SimTime::ZERO,
            })
            .collect();
        let running_containers = vec![0; setup.workers];
        let node_ready = vec![false; setup.workers];
        MrWorld {
            profile,
            setup,
            nodes,
            topo,
            gauge,
            hosts,
            nn,
            tasks,
            n_maps,
            completed_maps: 0,
            completed_reduces: 0,
            local_maps: 0,
            am_placed: false,
            am_ready: false,
            reduces_requested: false,
            running_containers,
            node_ready,
            running_reduce_mem: 0,
            map_durations: Vec::new(),
            speculative_copies: 0,
            timeline: Timeline::default(),
            first_reduce: None,
            cpu_rise: None,
            finish: None,
            tel: Telemetry::off(),
        }
    }

    /// Transition `task` to `phase`, closing the telemetry span of the
    /// phase it leaves (one span per phase on the task's node track).
    fn set_phase(&mut self, task: usize, phase: Phase, now: SimTime) {
        if self.tasks[task].phase == phase {
            return;
        }
        if self.tel.is_on() {
            let t = &self.tasks[task];
            if t.node != usize::MAX && !matches!(t.phase, Phase::Pending | Phase::Done) {
                let thread = format!("slave-{}", t.node);
                let cat = if t.is_map { "map" } else { "reduce" };
                let args = vec![("task", format!("{task}"))];
                self.tel.span("mapreduce", &thread, cat, phase_name(t.phase), t.phase_since, now, args);
            }
        }
        let t = &mut self.tasks[task];
        t.phase = phase;
        t.phase_since = now;
    }

    // ---- derived sizes --------------------------------------------------

    fn map_input_bytes(&self) -> u64 {
        self.profile.split_bytes().max(1)
    }

    fn map_output_bytes(&self) -> u64 {
        (self.profile.shuffle_bytes() / self.profile.map_tasks as u64).max(1)
    }

    fn fetch_bytes(&self) -> u64 {
        (self.profile.shuffle_bytes()
            / (self.profile.map_tasks as u64 * self.profile.reduce_tasks as u64))
            .max(1)
    }

    fn shuffle_per_reduce(&self) -> u64 {
        (self.profile.shuffle_bytes() / self.profile.reduce_tasks as u64).max(1)
    }

    fn output_per_reduce(&self) -> u64 {
        (self.profile.output_bytes() / self.profile.reduce_tasks as u64).max(1)
    }

    fn gc_factor(&self) -> f64 {
        if self.profile.mem_hungry {
            1.0 + calib::GC_PRESSURE_FACTOR
        } else {
            1.0
        }
    }

    // ---- plumbing -------------------------------------------------------

    fn schedule_node_cpu(&mut self, node: usize, now: SimTime, ctx: &mut Ctx<Ev>) {
        if let Some((_, at)) = self.nodes.node(NodeId(node)).next_cpu_completion(now) {
            let epoch = self.nodes.node(NodeId(node)).cpu_epoch();
            ctx.schedule_at(at, Ev::NodeCpu { node, epoch });
        }
    }

    fn add_cpu(&mut self, node: usize, id: u64, mi: f64, now: SimTime, ctx: &mut Ctx<Ev>) {
        self.nodes.node_mut(NodeId(node)).add_cpu_task(now, id, mi.max(1e-3));
        self.schedule_node_cpu(node, now, ctx);
    }

    fn submit_disk(&mut self, node: usize, job: u64, service: SimDuration, now: SimTime, ctx: &mut Ctx<Ev>) {
        if let Some((j, at)) = self.nodes.node_mut(NodeId(node)).disk().submit(now, job, service) {
            ctx.schedule_at(at, Ev::DiskDone { node, job: j });
        }
    }

    // ---- scheduling -----------------------------------------------------

    fn run_heartbeat(&mut self, now: SimTime, ctx: &mut Ctx<Ev>) {
        if !self.am_placed {
            // The application master runs on the Dell master node of the
            // paper's hybrid setup (outside the slave energy boundary);
            // submission + AM start cost wall time but no slave resources.
            self.am_placed = true;
            let master_mips = presets::dell_r620().cpu.single_thread_mips;
            let setup = SimDuration::from_secs_f64(
                calib::JOB_SUBMIT_DELAY_S + calib::APP_MASTER_SETUP_MI / master_mips,
            );
            ctx.schedule_at(now + setup, Ev::AmReady);
            return;
        }
        if !self.am_ready {
            return;
        }
        if !self.reduces_requested
            && self.completed_maps as f64 >= REDUCE_SLOWSTART * self.n_maps as f64
        {
            self.reduces_requested = true;
        }
        if self.setup.speculation {
            // before building the pending list so fresh copies join this
            // heartbeat's grants
            self.maybe_speculate(now);
        }
        // build the pending list (deterministic order: maps then reduces,
        // by index)
        let mut pending = Vec::new();
        for (i, t) in self.tasks.iter().enumerate() {
            if t.phase != Phase::Pending {
                continue;
            }
            // drop speculative copies whose original already finished
            if let Some(orig) = t.dup_of {
                if self.tasks[orig].phase == Phase::Done {
                    continue;
                }
            }
            if t.is_map {
                pending.push(PendingTask { task: i, mem: self.profile.map_container, is_map: true });
            } else if self.reduces_requested {
                pending.push(PendingTask {
                    task: i,
                    mem: self.profile.reduce_container,
                    is_map: false,
                });
            }
        }
        if pending.is_empty() {
            return;
        }
        let mut capacity: Vec<NodeCapacity> = (0..self.setup.workers)
            .map(|i| {
                let node = self.nodes.node(NodeId(i));
                let used_beyond_base = node.mem_used() - node.spec().os.base_memory;
                NodeCapacity {
                    free_mem: if self.node_ready[i] {
                        self.setup.schedulable_mem.saturating_sub(used_beyond_base)
                    } else {
                        0 // job artifacts not yet localised on this node
                    },
                    running: self.running_containers[i],
                    max_containers: 2 * node.spec().cpu.threads,
                }
            })
            .collect();
        // Hadoop's reduce ramp-up: while maps are pending, running reduce
        // containers may hold at most half the cluster's memory.
        let maps_pending = self.tasks[..self.n_maps].iter().any(|t| t.phase == Phase::Pending);
        let allowance = if maps_pending {
            let cap = (calib::REDUCE_RAMPUP_LIMIT
                * self.setup.workers as f64
                * self.setup.schedulable_mem as f64) as u64;
            cap.saturating_sub(self.running_reduce_mem)
        } else {
            u64::MAX
        };
        let nn = &self.nn;
        let tasks = &self.tasks;
        let grants = heartbeat(&pending, &mut capacity, allowance, |task, node| {
            tasks[task].is_map && nn.is_local(tasks[task].block, node)
        });
        let _ = tasks;
        for Grant { task, node, local } in grants {
            let mem = if self.tasks[task].is_map {
                self.profile.map_container
            } else {
                self.profile.reduce_container
            };
            self.nodes.node_mut(NodeId(node)).alloc_mem(mem).expect("scheduler checked fit");
            self.running_containers[node] += 1;
            if !self.tasks[task].is_map {
                self.running_reduce_mem += self.profile.reduce_container;
                if self.first_reduce.is_none() {
                    self.first_reduce = Some(now);
                }
            }
            let t = &mut self.tasks[task];
            t.node = node;
            t.local = local;
            t.started = now;
            let kind = if t.is_map { "map" } else { "reduce" };
            self.set_phase(task, Phase::Launching, now);
            self.tel.counter_inc("mr_containers_granted_total", labels(&[("kind", kind)]));
            self.add_cpu(node, task as u64, self.profile.container_startup_mi, now, ctx);
        }
    }

    /// Hadoop-style speculation: once ≥75 % of maps finished, a running map
    /// older than 1.5× the median completed-map duration gets a duplicate,
    /// which competes through the normal pending/grant path. The first
    /// finisher wins; the loser runs out without being counted.
    fn maybe_speculate(&mut self, now: SimTime) {
        if self.completed_maps * 4 < self.n_maps * 3 || self.map_durations.is_empty() {
            return;
        }
        let mut sorted = self.map_durations.clone();
        // total_cmp: no NaN panic even if a duration ever degenerates
        sorted.sort_by(f64::total_cmp);
        let median = sorted[sorted.len() / 2];
        let threshold = 1.5 * median;
        for i in 0..self.n_maps {
            let t = &self.tasks[i];
            if t.speculated
                || t.dup_of.is_some()
                || matches!(t.phase, Phase::Pending | Phase::Done)
            {
                continue;
            }
            let age = now.saturating_since(t.started).as_secs_f64();
            if age > threshold {
                let block = t.block;
                self.tasks[i].speculated = true;
                self.tasks.push(Task {
                    is_map: true,
                    phase: Phase::Pending,
                    node: usize::MAX,
                    block,
                    local: false,
                    fetch_pending: VecDeque::new(),
                    fetched: 0,
                    current_fetch_src: None,
                    dup_of: Some(i),
                    logical_done: false,
                    speculated: true,
                    started: now,
                    phase_since: now,
                });
                self.speculative_copies += 1;
                self.tel.counter_inc("mr_speculative_copies_total", labels(&[]));
            }
        }
    }

    // ---- task phase transitions ------------------------------------------

    fn cpu_done(&mut self, node: usize, id: u64, now: SimTime, ctx: &mut Ctx<Ev>) {
        debug_assert_ne!(id, AM_ID, "the AM runs on the master, not a slave");
        let task = id as usize;
        let phase = self.tasks[task].phase;
        match phase {
            Phase::Launching => {
                if self.tasks[task].is_map {
                    self.start_map_read(task, now, ctx);
                } else {
                    self.start_shuffle(task, now, ctx);
                }
            }
            Phase::MapCpu => {
                // sort/spill CPU on the pre-combine output
                self.set_phase(task, Phase::SpillCpu, now);
                let emit_mib = self.map_input_bytes() as f64 / MIB as f64 * 1.1;
                let mi = self.profile.spill_mi_per_mib * emit_mib;
                self.add_cpu(node, id, mi, now, ctx);
            }
            Phase::SpillCpu => {
                self.set_phase(task, Phase::SpillDisk, now);
                let bytes = self.map_output_bytes();
                let service = self.nodes.node(NodeId(node)).disk_write_time(bytes, false);
                self.submit_disk(node, id, service, now, ctx);
            }
            Phase::ReduceCpu => {
                self.set_phase(task, Phase::OutputDisk, now);
                let bytes = self.output_per_reduce();
                let service = self.nodes.node(NodeId(node)).disk_write_time(bytes, false);
                self.submit_disk(node, id, service, now, ctx);
            }
            other => unreachable!("cpu done for task {task} in phase {other:?}"),
        }
    }

    fn start_map_read(&mut self, task: usize, now: SimTime, ctx: &mut Ctx<Ev>) {
        let node = self.tasks[task].node;
        let block = self.tasks[task].block;
        let bytes = self.map_input_bytes();
        self.set_phase(task, Phase::Reading, now);
        if self.nn.is_local(block, node) {
            let service = self.nodes.node(NodeId(node)).disk_read_time(bytes, false);
            self.submit_disk(node, task as u64, service, now, ctx);
        } else {
            // remote read: stream from a replica over the fabric
            let src = self.nn.replica_for(block, node);
            let (path, lat) = self.topo.path(self.hosts[src], self.hosts[node]);
            let dur = self.gauge.begin_transfer(&path, bytes as f64);
            self.tasks[task].current_fetch_src = Some(src);
            ctx.schedule_at(now + lat + dur, Ev::FlowEnd { task });
        }
    }

    fn start_map_cpu(&mut self, task: usize, now: SimTime, ctx: &mut Ctx<Ev>) {
        let node = self.tasks[task].node;
        self.set_phase(task, Phase::MapCpu, now);
        let mib = self.map_input_bytes() as f64 / MIB as f64;
        let mi = self.profile.map_mi_per_mib * mib
            + self.profile.map_compute_mi
            + self.profile.task_setup_mi;
        self.add_cpu(node, task as u64, mi, now, ctx);
    }

    fn finish_map(&mut self, task: usize, now: SimTime, ctx: &mut Ctx<Ev>) {
        // this physical container ends regardless of who wins
        let node = self.tasks[task].node;
        self.set_phase(task, Phase::Done, now);
        if self.tel.is_on() {
            let t = &self.tasks[task];
            let thread = format!("slave-{node}");
            let args = vec![("task", format!("{task}")), ("local", format!("{}", t.local))];
            self.tel.span("mapreduce", &thread, "container", "map_task", t.started, now, args);
        }
        self.nodes.node_mut(NodeId(node)).free_mem(self.profile.map_container);
        self.running_containers[node] -= 1;
        // speculative resolution: the logical map is `origin`; only the
        // first finisher counts. The loser (if still running) drains
        // without effect — Hadoop kills it; letting it finish keeps the
        // engine simpler and costs only its residual slot time.
        let origin = self.tasks[task].dup_of.unwrap_or(task);
        if self.tasks[origin].logical_done {
            return; // the counterpart already won
        }
        self.tasks[origin].logical_done = true;
        self.tasks[origin].phase = Phase::Done; // reducers seed from origins
        self.map_durations
            .push(now.saturating_since(self.tasks[task].started).as_secs_f64());
        self.completed_maps += 1;
        let local = self.tasks[task].local;
        if local {
            self.local_maps += 1;
        }
        self.tel.counter_inc(
            "mr_maps_completed_total",
            labels(&[("local", if local { "true" } else { "false" })]),
        );
        // notify shuffling reducers (they fetch from the winner's node)
        for i in self.n_maps..self.tasks.len() {
            if self.tasks[i].is_map {
                continue; // speculative map copies live past the reducers
            }
            match self.tasks[i].phase {
                Phase::ShuffleWait => {
                    self.tasks[i].fetch_pending.push_back(task);
                    self.next_fetch(i, now, ctx);
                }
                Phase::Fetching => self.tasks[i].fetch_pending.push_back(task),
                _ => {}
            }
        }
    }

    fn start_shuffle(&mut self, task: usize, now: SimTime, ctx: &mut Ctx<Ev>) {
        // seed the fetch queue with every logical map already finished
        // (winners carry the data; originals are marked Done either way)
        let done: Vec<usize> = (0..self.n_maps)
            .filter(|&m| self.tasks[m].phase == Phase::Done)
            .collect();
        self.set_phase(task, Phase::ShuffleWait, now);
        self.tasks[task].fetch_pending = done.into();
        self.next_fetch(task, now, ctx);
    }

    fn next_fetch(&mut self, task: usize, now: SimTime, ctx: &mut Ctx<Ev>) {
        if self.tasks[task].phase == Phase::Fetching {
            return; // already busy with a fetch
        }
        let Some(src_task) = self.tasks[task].fetch_pending.pop_front() else {
            if self.tasks[task].fetched as usize == self.n_maps {
                self.start_merge(task, now, ctx);
            } else {
                self.set_phase(task, Phase::ShuffleWait, now);
            }
            return;
        };
        let node = self.tasks[task].node;
        let src = self.tasks[src_task].node;
        self.set_phase(task, Phase::Fetching, now);
        self.tasks[task].current_fetch_src = Some(src);
        let bytes = self.fetch_bytes();
        let (path, lat) = self.topo.path(self.hosts[src], self.hosts[node]);
        let dur = self.gauge.begin_transfer(&path, bytes as f64);
        // a fetch also pays a fixed RPC latency
        ctx.schedule_at(now + lat + dur + SimDuration::from_millis(1), Ev::FlowEnd { task });
    }

    fn start_merge(&mut self, task: usize, now: SimTime, ctx: &mut Ctx<Ev>) {
        let node = self.tasks[task].node;
        self.set_phase(task, Phase::MergeDisk, now);
        let bytes = self.shuffle_per_reduce();
        // external merge: (passes - 1) read+write rounds over the shuffled
        // runs, plus the initial materialisation
        let passes = self.profile.merge_passes.max(1) as u64;
        let node_ref = self.nodes.node(NodeId(node));
        let mut service = node_ref.disk_write_time(bytes, false);
        for _ in 1..passes {
            service = service
                + node_ref.disk_read_time(bytes, false)
                + node_ref.disk_write_time(bytes, false);
        }
        self.submit_disk(node, task as u64, service, now, ctx);
    }

    fn disk_done(&mut self, node: usize, job: u64, now: SimTime, ctx: &mut Ctx<Ev>) {
        let task = job as usize;
        let phase = self.tasks[task].phase;
        match phase {
            Phase::Reading => self.start_map_cpu(task, now, ctx),
            Phase::SpillDisk => self.finish_map(task, now, ctx),
            Phase::MergeDisk => {
                self.set_phase(task, Phase::ReduceCpu, now);
                let mib = self.shuffle_per_reduce() as f64 / MIB as f64;
                let mi = self.profile.reduce_mi_per_mib * mib * self.gc_factor()
                    + self.profile.task_setup_mi
                    + calib::TASK_CLEANUP_MI;
                self.add_cpu(node, job, mi, now, ctx);
            }
            Phase::OutputDisk => {
                if self.setup.replication > 1 {
                    // replication pipeline to the next node
                    self.set_phase(task, Phase::OutputRepl, now);
                    let peer = (node + 1) % self.setup.workers;
                    let (path, lat) = self.topo.path(self.hosts[node], self.hosts[peer]);
                    let bytes = self.output_per_reduce();
                    let dur = self.gauge.begin_transfer(&path, bytes as f64);
                    self.tasks[task].current_fetch_src = Some(node);
                    ctx.schedule_at(now + lat + dur, Ev::FlowEnd { task });
                } else {
                    self.finish_reduce(task, now, ctx);
                }
            }
            other => unreachable!("disk done for task {task} in phase {other:?}"),
        }
    }

    fn flow_end(&mut self, task: usize, now: SimTime, ctx: &mut Ctx<Ev>) {
        let phase = self.tasks[task].phase;
        match phase {
            Phase::Reading => {
                let src = self.tasks[task].current_fetch_src.take().expect("flow had a source");
                let node = self.tasks[task].node;
                let (path, _) = self.topo.path(self.hosts[src], self.hosts[node]);
                self.gauge.end(&path);
                self.start_map_cpu(task, now, ctx);
            }
            Phase::Fetching => {
                let src = self.tasks[task].current_fetch_src.take().expect("fetch had a source");
                let node = self.tasks[task].node;
                let (path, _) = self.topo.path(self.hosts[src], self.hosts[node]);
                self.gauge.end(&path);
                self.tasks[task].fetched += 1;
                self.set_phase(task, Phase::ShuffleWait, now);
                self.next_fetch(task, now, ctx);
            }
            Phase::OutputRepl => {
                let src = self.tasks[task].current_fetch_src.take().expect("repl had a source");
                let peer = (src + 1) % self.setup.workers;
                let (path, _) = self.topo.path(self.hosts[src], self.hosts[peer]);
                self.gauge.end(&path);
                self.finish_reduce(task, now, ctx);
            }
            other => unreachable!("flow end for task {task} in phase {other:?}"),
        }
    }

    fn finish_reduce(&mut self, task: usize, now: SimTime, _ctx: &mut Ctx<Ev>) {
        let node = self.tasks[task].node;
        self.set_phase(task, Phase::Done, now);
        if self.tel.is_on() {
            let t = &self.tasks[task];
            let thread = format!("slave-{node}");
            let args = vec![("task", format!("{task}"))];
            self.tel.span("mapreduce", &thread, "container", "reduce_task", t.started, now, args);
        }
        self.nodes.node_mut(NodeId(node)).free_mem(self.profile.reduce_container);
        self.running_containers[node] -= 1;
        self.running_reduce_mem = self.running_reduce_mem.saturating_sub(self.profile.reduce_container);
        self.completed_reduces += 1;
        self.tel.counter_inc("mr_reduces_completed_total", labels(&[]));
        if self.completed_reduces == self.profile.reduce_tasks as usize {
            self.finish = Some(now);
        }
    }

    fn sample(&mut self, now: SimTime) {
        let cpu = self.nodes.mean_cpu_utilization() * 100.0;
        self.timeline.cpu_pct.push(now, cpu);
        self.timeline.mem_pct.push(now, self.nodes.mean_mem_utilization() * 100.0);
        self.timeline.power_w.push(now, self.nodes.power_now());
        self.timeline
            .map_pct
            .push(now, self.completed_maps as f64 / self.n_maps as f64 * 100.0);
        self.timeline.reduce_pct.push(
            now,
            self.completed_reduces as f64 / self.profile.reduce_tasks as f64 * 100.0,
        );
        if cpu > 20.0 && self.cpu_rise.is_none() {
            self.cpu_rise = Some(now);
        }
        if self.tel.is_on() {
            self.tel.series_push("mr_map_progress_pct", labels(&[]), now, self.completed_maps as f64 / self.n_maps as f64 * 100.0);
            self.tel.series_push(
                "mr_reduce_progress_pct",
                labels(&[]),
                now,
                self.completed_reduces as f64 / self.profile.reduce_tasks as f64 * 100.0,
            );
        }
    }

    /// Telemetry: fold the per-node power step logs into
    /// `node_power_watts{node=slave-i}` timeseries. Called once after the
    /// run.
    fn harvest_power_series(&mut self) {
        if !self.tel.is_on() {
            return;
        }
        self.tel.help("node_power_watts", "Per-node power draw timeline, watts");
        for i in 0..self.nodes.len() {
            let steps = self.nodes.node(NodeId(i)).power_trace().to_vec();
            let name = format!("slave-{i}");
            for (t, w) in steps {
                self.tel.series_push("node_power_watts", labels(&[("node", &name)]), t, w);
            }
        }
    }
}

impl Model for MrWorld {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, event: Ev, ctx: &mut Ctx<Ev>) {
        match event {
            Ev::AmReady => {
                self.am_ready = true;
                // distribute the job artifacts: each slave writes the
                // framework jars + job files to its disk before its first
                // container can launch (the quiet period of Figures 12-17)
                for node in 0..self.setup.workers {
                    let service = self
                        .nodes
                        .node(NodeId(node))
                        .disk_write_time(calib::JOB_LOCALIZATION_BYTES, false);
                    let job = LOCALIZE_BASE + node as u64;
                    self.submit_disk(node, job, service, now, ctx);
                }
            }
            Ev::Heartbeat => {
                self.run_heartbeat(now, ctx);
                if self.finish.is_none() {
                    ctx.schedule_in(
                        SimDuration::from_secs_f64(calib::CONTAINER_GRANT_DELAY_S),
                        Ev::Heartbeat,
                    );
                }
            }
            Ev::NodeCpu { node, epoch } => {
                if self.nodes.node(NodeId(node)).cpu_epoch() != epoch {
                    return;
                }
                let done = self.nodes.node_mut(NodeId(node)).take_finished_cpu(now);
                for id in done {
                    self.cpu_done(node, id, now, ctx);
                }
                self.schedule_node_cpu(node, now, ctx);
            }
            Ev::DiskDone { node, job } => {
                if let Some((next, at)) = self.nodes.node_mut(NodeId(node)).disk().complete(now) {
                    ctx.schedule_at(at, Ev::DiskDone { node, job: next });
                }
                if job >= LOCALIZE_BASE {
                    self.node_ready[(job - LOCALIZE_BASE) as usize] = true;
                } else {
                    self.disk_done(node, job, now, ctx);
                }
            }
            Ev::FlowEnd { task } => self.flow_end(task, now, ctx),
            Ev::Sample => {
                self.sample(now);
                if self.finish.is_none() {
                    ctx.schedule_in(SimDuration::from_secs(1), Ev::Sample);
                } else {
                    ctx.stop();
                }
            }
        }
    }
}

/// Run one job on one cluster setup to completion.
pub fn run_job(profile: &JobProfile, setup: &ClusterSetup) -> JobOutcome {
    run_job_traced(profile, setup, Telemetry::off()).0
}

/// Like [`run_job`], but records into `tel` when it is enabled: engine
/// event counts, per-phase task spans (container launch → input read →
/// map/sort/spill, shuffle → merge → reduce → output), container/task
/// counters, progress timeseries and per-node power timelines. With
/// `Telemetry::off()` this is exactly [`run_job`].
pub fn run_job_traced(
    profile: &JobProfile,
    setup: &ClusterSetup,
    tel: Telemetry,
) -> (JobOutcome, Telemetry) {
    let tracing = tel.is_on();
    let mut world = MrWorld::new(profile.clone(), setup.clone());
    world.tel = tel;
    if tracing {
        world.nodes.enable_power_trace();
        world.tel.help("mr_containers_granted_total", "YARN container grants, by kind");
        world.tel.help("mr_maps_completed_total", "Logical map completions, by data-locality");
        world.tel.help("mr_reduces_completed_total", "Reduce completions");
        world.tel.help("mr_speculative_copies_total", "Speculative map copies launched");
        world.tel.help("mr_map_progress_pct", "Completed maps / total, 1 s samples");
        world.tel.help("mr_reduce_progress_pct", "Completed reduces / total, 1 s samples");
    }
    let mut sim = Simulation::new(world);
    sim.schedule_at(SimTime::ZERO, Ev::Heartbeat);
    sim.schedule_at(SimTime::ZERO, Ev::Sample);
    if tracing {
        let mut obs = EventCounter::new(Ev::kind);
        sim.run_observed(&mut obs);
        let w = sim.world_mut();
        obs.record_into(&mut w.tel, "mapreduce");
        w.harvest_power_series();
    } else {
        sim.run();
    }
    let w = sim.world();
    let finish = w.finish.unwrap_or_else(|| {
        panic!(
            "job {} did not finish: {}/{} maps, {}/{} reduces",
            w.profile.name,
            w.completed_maps,
            w.n_maps,
            w.completed_reduces,
            w.profile.reduce_tasks
        )
    });
    let outcome = JobOutcome {
        finish_time_s: finish.as_secs_f64(),
        energy_j: w.nodes.energy_joules(finish),
        data_local_fraction: w.local_maps as f64 / w.n_maps as f64,
        timeline: w.timeline.clone(),
        first_reduce_s: w.first_reduce.map(|t| t.as_secs_f64()).unwrap_or(0.0),
        cpu_rise_s: w.cpu_rise.map(|t| t.as_secs_f64()).unwrap_or(0.0),
        speculative_copies: w.speculative_copies,
    };
    let tel = std::mem::take(&mut sim.world_mut().tel);
    (outcome, tel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobs;

    #[test]
    fn wordcount_completes_on_both_platforms() {
        let e = run_job(&jobs::wordcount(Tune::Edison), &ClusterSetup::edison(35));
        let d = run_job(&jobs::wordcount(Tune::Dell), &ClusterSetup::dell(2));
        assert!(e.finish_time_s > 0.0 && d.finish_time_s > 0.0);
        // §5.2.1: Edison slower in time but more work-done-per-joule
        assert!(e.finish_time_s > d.finish_time_s, "edison {} dell {}", e.finish_time_s, d.finish_time_s);
        assert!(e.energy_j < d.energy_j, "edison {}J dell {}J", e.energy_j, d.energy_j);
    }

    #[test]
    fn pi_favors_dell_energy() {
        // §5.2.3: the compute-bound job is the one Edison loses on energy.
        let e = run_job(&jobs::pi(Tune::Edison), &ClusterSetup::edison(35));
        let d = run_job(&jobs::pi(Tune::Dell), &ClusterSetup::dell(2));
        assert!(e.finish_time_s > d.finish_time_s);
        assert!(e.energy_j > d.energy_j, "edison {}J dell {}J", e.energy_j, d.energy_j);
    }

    #[test]
    fn data_locality_is_high() {
        let e = run_job(&jobs::wordcount(Tune::Edison), &ClusterSetup::edison(35));
        assert!(e.data_local_fraction > 0.85, "locality {}", e.data_local_fraction);
    }

    #[test]
    fn optimized_wordcount_is_faster() {
        let wc = run_job(&jobs::wordcount(Tune::Edison), &ClusterSetup::edison(35));
        let wc2 = run_job(&jobs::wordcount2(Tune::Edison), &ClusterSetup::edison(35));
        assert!(
            wc2.finish_time_s < wc.finish_time_s * 0.8,
            "wc {} wc2 {}",
            wc.finish_time_s,
            wc2.finish_time_s
        );
    }

    #[test]
    fn timeline_is_recorded() {
        let e = run_job(&jobs::logcount2(Tune::Edison), &ClusterSetup::edison(8));
        assert!(!e.timeline.cpu_pct.is_empty());
        assert!(e.timeline.map_pct.points().last().unwrap().1 >= 99.9);
        assert!(e.timeline.power_w.max_value() > 8.0 * 1.40);
    }

    #[test]
    fn traced_run_matches_untraced_and_records() {
        let plain = run_job(&jobs::logcount2(Tune::Edison), &ClusterSetup::edison(4));
        let (traced, tel) =
            run_job_traced(&jobs::logcount2(Tune::Edison), &ClusterSetup::edison(4), Telemetry::on());
        // tracing must not perturb the simulation
        assert_eq!(plain.finish_time_s, traced.finish_time_s);
        assert_eq!(plain.energy_j, traced.energy_j);
        // per-phase spans, container spans, counters, power timelines
        let spans = tel.tracer.spans();
        for name in ["container_launch", "map_cpu", "shuffle_fetch", "reduce_cpu", "map_task", "reduce_task"] {
            assert!(spans.iter().any(|s| s.name == name), "missing span {name}");
        }
        let counters: Vec<_> = tel.registry.counters().collect();
        assert!(counters.iter().any(|(n, _, v)| *n == "mr_reduces_completed_total" && *v > 0));
        assert!(counters.iter().any(|(n, _, v)| *n == "sim_events_total" && *v > 0));
        assert!(tel
            .registry
            .series()
            .any(|(n, l, pts)| n == "node_power_watts"
                && l.get("node") == Some(&"slave-0".to_string())
                && !pts.is_empty()));
    }

    #[test]
    fn determinism_per_seed() {
        let a = run_job(&jobs::logcount2(Tune::Edison), &ClusterSetup::edison(4));
        let b = run_job(&jobs::logcount2(Tune::Edison), &ClusterSetup::edison(4));
        assert_eq!(a.finish_time_s, b.finish_time_s);
        assert_eq!(a.energy_j, b.energy_j);
    }
}
