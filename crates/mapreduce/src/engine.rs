//! The cluster job executor: YARN scheduling + the map/shuffle/reduce
//! pipeline as one discrete-event world per job run.
//!
//! A run reproduces the §5.2 setup: one external Dell master (namenode +
//! resource manager, excluded from energy accounting, as the paper does)
//! plus N slave nodes of one platform. Each task walks explicit phases:
//!
//! ```text
//! map:    grant → container launch (JVM CPU) → input read (disk or
//!         remote flow) → map CPU → sort/spill CPU → spill write (disk)
//! reduce: grant → launch → fetch each map's partition (network flows,
//!         as maps finish) → external merge (disk) → reduce CPU →
//!         output write (disk) → replication pipeline (flow)
//! ```
//!
//! Container-allocation waves, data-locality, the Edison memory ceiling
//! and the reduce-phase start times of Figures 12–17 all emerge from these
//! mechanics rather than being scripted.

use crate::hdfs::Namenode;
use crate::jobs::{JobProfile, Tune};
use crate::yarn::{heartbeat, Grant, LivenessTracker, NodeCapacity, PendingTask};
use edison_cluster::{Cluster, NodeId};
use edison_hw::{calib, presets};
use edison_net::{HostId, LinkGauge, Topology};
use edison_simcore::rng::SimRng;
use edison_simcore::stats::TimeSeries;
use edison_simcore::time::{SimDuration, SimTime};
use edison_simcore::{Ctx, EngineProfile, KindProfiler, Model, Simulation};
use edison_simfault::metrics as fault_metrics;
use edison_simfault::{Fault, FaultKind, FaultPlan, RecoveryWindow};
use edison_simguard::metrics as guard_metrics;
use edison_simguard::{BreakerState, BreakerVerdict, CircuitBreaker, GuardConfig};
use edison_simrun::{derive_seed, SimError};
use edison_simtel::{labels, record_engine_profile, EventCounter, Telemetry};
use std::collections::VecDeque;

const MIB: u64 = 1024 * 1024;
/// CPU-task id reserved for the application master.
const AM_ID: u64 = u64::MAX;
/// Disk-job id base for per-node job localisation (base + node index).
const LOCALIZE_BASE: u64 = u64::MAX / 2;
/// CPU/disk job ids encode the task's re-execution attempt —
/// `id = attempt × STRIDE + task` — so a completion scheduled by a dead
/// incarnation of the task is recognisably stale and dropped.
const ATTEMPT_STRIDE: u64 = 1 << 40;
/// Hadoop's default reduce slow-start threshold.
const REDUCE_SLOWSTART: f64 = 0.05;
/// A run with no task-phase transition for this long is declared stuck
/// (an unrecovered fault), not left looping on idle ticks forever.
const STALL_TIMEOUT: SimDuration = SimDuration::from_secs(3600);
/// Exponent cap on the re-registration backoff of a repeatedly restarting
/// nodemanager: delays double per restart up to `base << REREG_BACKOFF_CAP`.
const REREG_BACKOFF_CAP: u32 = 2;
/// Jitter spread (± fraction) around the re-registration backoff, seeded
/// per (node, restart), so simultaneously restarted nodes never hammer
/// the RM in lockstep.
const REREG_JITTER: f64 = 0.25;

/// Apply a fault multiplier without perturbing fault-free arithmetic: the
/// common `m == 1.0` case returns `d` bit-exactly.
fn scaled(d: SimDuration, m: f64) -> SimDuration {
    if m == 1.0 {
        d
    } else {
        d.mul_f64(m)
    }
}

/// Inverse of [`MrWorld::job_id`]: `(attempt, task)`.
fn decode_job(job: u64) -> (u32, usize) {
    (
        u32::try_from(job / ATTEMPT_STRIDE).unwrap_or(u32::MAX),
        usize::try_from(job % ATTEMPT_STRIDE).unwrap_or(usize::MAX),
    )
}

/// Cluster-side configuration of a run.
#[derive(Debug, Clone)]
pub struct ClusterSetup {
    /// Platform tuning (selects hardware spec + job containers).
    pub tune: Tune,
    /// Slave node count (Table 8 columns: 35/17/8/4 Edison, 2/1 Dell).
    pub workers: usize,
    /// HDFS block size, bytes (16 MB Edison / 64 MB Dell; 64 MB both for
    /// terasort).
    pub block_bytes: u64,
    /// HDFS replication (2 Edison / 1 Dell — tuned for ≈95 % locality).
    pub replication: u32,
    /// Per-node memory schedulable for containers (≈600 MB Edison, 12 GB
    /// Dell after OS + datanode + nodemanager).
    pub schedulable_mem: u64,
    /// Application-master container size (100 MB / 500 MB).
    pub am_mem: u64,
    /// RNG seed.
    pub seed: u64,
    /// Fault injection: slow node `index` down by the given CPU factor
    /// (> 1), modelling a degraded SD card / thermally-throttled module.
    pub straggler: Option<(usize, f64)>,
    /// Hadoop speculative execution: duplicate suspiciously slow maps once
    /// most of the map phase has completed. On by default (Hadoop's
    /// default); with homogeneous nodes it never triggers, so calibrated
    /// results are unaffected.
    pub speculation: bool,
    /// Declarative fault schedule executed during the run (node indices are
    /// worker indices). Empty — the default — leaves the run bit-exactly
    /// fault-free.
    pub fault_plan: FaultPlan,
    /// RM liveness timeout, seconds: a worker silent this long is declared
    /// lost and its containers re-queued.
    pub liveness_timeout_s: f64,
    /// Overload protection on heartbeat dispatch: per-worker circuit
    /// breakers (an RM node-lost verdict stops new grants until the
    /// worker proves itself again) and per-attempt task deadlines.
    /// [`GuardConfig::off`] — the default — is a byte-identical no-op.
    pub guard: GuardConfig,
}

impl ClusterSetup {
    /// The paper's Edison slave configuration at a given size.
    pub fn edison(workers: usize) -> Self {
        ClusterSetup {
            tune: Tune::Edison,
            workers,
            block_bytes: 16 * MIB,
            replication: 2.min(workers as u32),
            schedulable_mem: 600 * MIB,
            am_mem: 100 * MIB,
            seed: 20160509,
            straggler: None,
            speculation: true,
            fault_plan: FaultPlan::new(),
            liveness_timeout_s: 5.0,
            guard: GuardConfig::off(),
        }
    }

    /// The paper's Dell slave configuration at a given size.
    pub fn dell(workers: usize) -> Self {
        ClusterSetup {
            tune: Tune::Dell,
            workers,
            block_bytes: 64 * MIB,
            replication: 1,
            schedulable_mem: 12 * 1024 * MIB,
            am_mem: 500 * MIB,
            seed: 20160509,
            straggler: None,
            speculation: true,
            fault_plan: FaultPlan::new(),
            liveness_timeout_s: 5.0,
            guard: GuardConfig::off(),
        }
    }

    /// Scale the block size so each vcore still gets one map container when
    /// the cluster shrinks (the paper: "when running wordcount2 … on
    /// half-scale … we increase the HDFS block size").
    pub fn with_block(mut self, bytes: u64) -> Self {
        self.block_bytes = bytes;
        self
    }

    /// Inject a straggler: node `index` runs its CPU `factor`× slower.
    pub fn with_straggler(mut self, index: usize, factor: f64) -> Self {
        assert!(factor > 1.0);
        self.straggler = Some((index, factor));
        self
    }

    /// Run the job under the given fault schedule.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Run the job with overload protection on heartbeat dispatch.
    pub fn with_guard(mut self, guard: GuardConfig) -> Self {
        self.guard = guard;
        self
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Pending,
    Launching,
    Reading,
    MapCpu,
    SpillCpu,
    SpillDisk,
    ShuffleWait,
    Fetching,
    MergeDisk,
    ReduceCpu,
    OutputDisk,
    OutputRepl,
    Done,
}

/// Static phase name for telemetry spans.
fn phase_name(p: Phase) -> &'static str {
    match p {
        Phase::Pending => "pending",
        Phase::Launching => "container_launch",
        Phase::Reading => "input_read",
        Phase::MapCpu => "map_cpu",
        Phase::SpillCpu => "sort_spill_cpu",
        Phase::SpillDisk => "spill_write",
        Phase::ShuffleWait => "shuffle_wait",
        Phase::Fetching => "shuffle_fetch",
        Phase::MergeDisk => "external_merge",
        Phase::ReduceCpu => "reduce_cpu",
        Phase::OutputDisk => "output_write",
        Phase::OutputRepl => "output_replication",
        Phase::Done => "done",
    }
}

#[derive(Debug)]
struct Task {
    is_map: bool,
    phase: Phase,
    node: usize,
    /// HDFS block feeding this map (maps only).
    block: usize,
    local: bool,
    /// Reduce shuffle bookkeeping.
    fetch_pending: VecDeque<usize>,
    fetched: u32,
    current_fetch_src: Option<usize>,
    /// Speculative copy of another map task.
    dup_of: Option<usize>,
    /// The logical map this task implements has been counted as complete.
    logical_done: bool,
    /// A speculative copy of this task exists (or it already finished).
    speculated: bool,
    /// Container grant time (straggler detection).
    started: SimTime,
    /// When the current phase began (telemetry spans).
    phase_since: SimTime,
    /// Re-execution attempt. Bumped whenever the incarnation dies (node
    /// crash, lost transfer) so events it scheduled are recognisably stale.
    attempt: u32,
    /// Origin map whose partition is currently being fetched (reduces).
    fetching_origin: Option<usize>,
    /// Per-origin shuffle progress (reduces; `len == n_maps`): partitions
    /// already pulled stay pulled when the map's output node later dies.
    fetched_from: Vec<bool>,
    /// Granted as a half-open breaker probe: its completion (or death)
    /// releases the probe slot.
    probe: bool,
}

/// Events of the MapReduce world.
#[derive(Debug)]
pub enum Ev {
    Heartbeat,
    AmReady,
    NodeCpu { node: usize, epoch: u64 },
    DiskDone { node: usize, job: u64 },
    FlowEnd { task: usize, attempt: u32 },
    Fault { idx: usize },
    /// A restarted nodemanager's backed-off re-registration firing: the
    /// node begins re-localising job artifacts.
    ReRegister { node: usize },
    Sample,
}

impl Ev {
    /// Static event-kind name for engine-level telemetry
    /// ([`EventCounter`]).
    pub fn kind(&self) -> &'static str {
        match self {
            Ev::Heartbeat => "heartbeat",
            Ev::AmReady => "am_ready",
            Ev::NodeCpu { .. } => "node_cpu",
            Ev::DiskDone { .. } => "disk_done",
            Ev::FlowEnd { .. } => "flow_end",
            Ev::Fault { .. } => "fault",
            Ev::ReRegister { .. } => "re_register",
            Ev::Sample => "sample",
        }
    }
}

/// Per-second utilisation/power/progress samples (Figures 12–17).
#[derive(Debug, Default, Clone)]
pub struct Timeline {
    /// Mean CPU utilisation across slaves, 0–100 %.
    pub cpu_pct: TimeSeries,
    /// Mean memory utilisation across slaves, 0–100 %.
    pub mem_pct: TimeSeries,
    /// Cluster power, W.
    pub power_w: TimeSeries,
    /// Completed maps / total maps, 0–100 %.
    pub map_pct: TimeSeries,
    /// Completed reduces / total, 0–100 %.
    pub reduce_pct: TimeSeries,
}

/// Result of one job run.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Wall-clock job time, s.
    pub finish_time_s: f64,
    /// Slave-cluster energy over the job, J (master excluded, as in §5.2).
    pub energy_j: f64,
    /// Fraction of map tasks that ran data-local.
    pub data_local_fraction: f64,
    /// The Figure 12–17 timeline.
    pub timeline: Timeline,
    /// Time at which the first reduce container launched, s.
    pub first_reduce_s: f64,
    /// Time at which CPU utilisation first exceeded 20 % (the paper's
    /// "resource allocation time" marker).
    pub cpu_rise_s: f64,
    /// Speculative map copies launched (0 on healthy clusters).
    pub speculative_copies: u32,
    /// Tasks re-executed after node loss (0 on fault-free runs).
    pub task_reexecs: u32,
    /// Worker nodes declared lost by the RM's heartbeat timeout.
    pub nodes_lost: u32,
    /// Mean seconds from node crash to the node schedulable again
    /// (restarted + re-localised); 0.0 when no node recovered in-run.
    pub mean_recovery_s: f64,
    /// Observed recovery windows (restart applied → re-localised), in
    /// completion order. The simexplore perturbation space targets
    /// follow-up faults inside these.
    pub recovery_windows: Vec<RecoveryWindow>,
    /// Circuit-breaker trips across workers (0 with the guard off or on
    /// healthy clusters): RM node-lost verdicts and failed probes.
    pub guard_breaker_trips: u32,
    /// Task attempts that completed past the configured per-attempt
    /// deadline budget (0 with the guard off).
    pub guard_deadline_miss: u32,
}

impl JobOutcome {
    /// Work-done-per-joule relative to another outcome of the same job:
    /// `other.energy / self.energy` (> 1 means self is more efficient).
    pub fn efficiency_vs(&self, other: &JobOutcome) -> f64 {
        other.energy_j / self.energy_j
    }
}

struct MrWorld {
    profile: JobProfile,
    setup: ClusterSetup,
    nodes: Cluster,
    topo: Topology,
    gauge: LinkGauge,
    hosts: Vec<HostId>,
    nn: Namenode,
    tasks: Vec<Task>,
    n_maps: usize,
    completed_maps: usize,
    completed_reduces: usize,
    local_maps: usize,
    am_placed: bool,
    am_ready: bool,
    reduces_requested: bool,
    running_containers: Vec<u32>,
    /// Per-node: job artifacts localised, containers may launch.
    node_ready: Vec<bool>,
    /// Memory currently held by running reduce containers (ramp-up cap).
    running_reduce_mem: u64,
    /// Durations of completed (non-speculative) map tasks, seconds.
    map_durations: Vec<f64>,
    /// Speculative copies launched.
    speculative_copies: u32,
    timeline: Timeline,
    first_reduce: Option<SimTime>,
    cpu_rise: Option<SimTime>,
    finish: Option<SimTime>,
    /// The normalised fault schedule (time-sorted, zero-width pairs gone).
    fplan: FaultPlan,
    /// Physical truth: node has crashed and not yet restarted.
    node_down: Vec<bool>,
    /// Crashed since the last reap — containers there await re-queueing
    /// (by the liveness sweep, or instantly by a restarting nodemanager).
    needs_reap: Vec<bool>,
    /// Crash instants, taken when the node becomes schedulable again.
    crash_time: Vec<Option<SimTime>>,
    /// Restart instants, taken when re-localisation completes (the
    /// recovery-window sample: re-registered but not yet schedulable).
    restart_time: Vec<Option<SimTime>>,
    /// Restarts seen per node (drives the re-registration backoff).
    restart_count: Vec<u32>,
    /// CPU-work multiplier per node (CpuThrottle faults; 1.0 = healthy).
    cpu_factor: Vec<f64>,
    /// Flow-duration multiplier per node (NicDegrade: latency × loss
    /// inflation; 1.0 = healthy).
    net_factor: Vec<f64>,
    /// Disk-service multiplier per node (DiskSlow; 1.0 = healthy).
    disk_factor: Vec<f64>,
    /// The RM's heartbeat-timeout view of worker liveness.
    liveness: LivenessTracker,
    /// Per logical map: the physical task whose output reducers fetch.
    map_winner: Vec<Option<usize>>,
    /// Set when an injected fault is unrecoverable (lost blocks with no
    /// surviving replica, every worker down, or a stalled job).
    failed: Option<String>,
    task_reexecs: u32,
    nodes_lost: u32,
    /// Crash → schedulable-again durations, seconds.
    recovery_s: Vec<f64>,
    /// Observed recovery windows: restart applied → re-localised (the
    /// interval simexplore probes with follow-up faults).
    recovery_windows: Vec<RecoveryWindow>,
    /// Guard layer (cached [`GuardConfig::is_active`]): per-worker
    /// breakers on RM dispatch plus per-attempt deadline accounting.
    /// Everything below is inert when false.
    guard_on: bool,
    /// Per-worker circuit breaker (empty when breakers are off).
    brk: Vec<CircuitBreaker>,
    guard_breaker_trips: u32,
    guard_deadline_miss: u32,
    /// Last task-phase transition (stall detection).
    last_progress: SimTime,
    /// Telemetry sink; [`Telemetry::off`] unless the run came through
    /// [`run_job_traced`].
    tel: Telemetry,
    /// Interned span track id per slave (`("mapreduce", "slave-{i}")`),
    /// filled once at trace setup — per-event span recording is then
    /// id-indexed, no string formatting on the hot path.
    slave_tracks: Vec<usize>,
}

impl MrWorld {
    fn new(profile: JobProfile, setup: ClusterSetup) -> Self {
        let spec = match setup.tune {
            Tune::Edison => presets::edison(),
            Tune::Dell => presets::dell_r620(),
        };
        let mut nodes = Cluster::new();
        for i in 0..setup.workers {
            match setup.straggler {
                Some((idx, factor)) if idx == i => {
                    let mut slow = spec.clone();
                    slow.cpu.single_thread_mips /= factor;
                    nodes.push(&slow);
                }
                _ => {
                    nodes.push(&spec);
                }
            }
        }
        // single-room fabric (the master sits outside the energy boundary
        // and its control traffic is negligible)
        let mut topo = Topology::new();
        let room = topo.add_group(match setup.tune {
            Tune::Edison => SimDuration::from_micros(650),
            Tune::Dell => SimDuration::from_micros(120),
        });
        let hosts: Vec<HostId> = (0..setup.workers)
            .map(|_| topo.add_host(room, spec.nic.line_rate_bps, spec.nic.tcp_efficiency))
            .collect();
        let gauge = LinkGauge::mirror(topo.network());

        let mut rng = SimRng::new(setup.seed);
        // HDFS: one file per map split (CombineFileInputFormat is modelled
        // by the profile's split count — splits are locality-grouped).
        let mut nn = Namenode::new(setup.workers, setup.replication, setup.block_bytes);
        let split = profile.split_bytes().max(1);
        for i in 0..profile.map_tasks {
            nn.put(&format!("part-{i:05}"), split.min(setup.block_bytes), &mut rng);
        }
        let n_maps = profile.map_tasks as usize;
        let n_tasks = n_maps + profile.reduce_tasks as usize;
        let tasks: Vec<Task> = (0..n_tasks)
            .map(|i| Task {
                is_map: i < n_maps,
                phase: Phase::Pending,
                node: usize::MAX,
                block: if i < n_maps { i } else { usize::MAX },
                local: false,
                fetch_pending: VecDeque::new(),
                fetched: 0,
                current_fetch_src: None,
                dup_of: None,
                logical_done: false,
                speculated: false,
                started: SimTime::ZERO,
                phase_since: SimTime::ZERO,
                attempt: 0,
                fetching_origin: None,
                fetched_from: if i < n_maps { Vec::new() } else { vec![false; n_maps] },
                probe: false,
            })
            .collect();
        let running_containers = vec![0; setup.workers];
        let node_ready = vec![false; setup.workers];
        let fplan = setup.fault_plan.normalized();
        let liveness =
            LivenessTracker::new(setup.workers, SimDuration::from_secs_f64(setup.liveness_timeout_s));
        let workers = setup.workers;
        let guard_on = setup.guard.is_active();
        let brk = if setup.guard.breaker_threshold > 0 {
            vec![
                CircuitBreaker::new(
                    setup.guard.breaker_threshold,
                    setup.guard.breaker_cooldown,
                    setup.guard.breaker_probes,
                );
                workers
            ]
        } else {
            Vec::new()
        };
        MrWorld {
            profile,
            setup,
            nodes,
            topo,
            gauge,
            hosts,
            nn,
            tasks,
            n_maps,
            completed_maps: 0,
            completed_reduces: 0,
            local_maps: 0,
            am_placed: false,
            am_ready: false,
            reduces_requested: false,
            running_containers,
            node_ready,
            running_reduce_mem: 0,
            map_durations: Vec::new(),
            speculative_copies: 0,
            timeline: Timeline::default(),
            first_reduce: None,
            cpu_rise: None,
            finish: None,
            fplan,
            node_down: vec![false; workers],
            needs_reap: vec![false; workers],
            crash_time: vec![None; workers],
            restart_time: vec![None; workers],
            restart_count: vec![0; workers],
            cpu_factor: vec![1.0; workers],
            net_factor: vec![1.0; workers],
            disk_factor: vec![1.0; workers],
            liveness,
            map_winner: vec![None; n_maps],
            failed: None,
            task_reexecs: 0,
            nodes_lost: 0,
            recovery_s: Vec::new(),
            recovery_windows: Vec::new(),
            guard_on,
            brk,
            guard_breaker_trips: 0,
            guard_deadline_miss: 0,
            last_progress: SimTime::ZERO,
            tel: Telemetry::off(),
            slave_tracks: Vec::new(),
        }
    }

    /// Span track id for slave `node` — cached at trace setup; the fallback
    /// interns on demand for worlds driven without the prefill.
    fn slave_track(&mut self, node: usize) -> usize {
        match self.slave_tracks.get(node) {
            Some(&t) => t,
            None => self.tel.track_id("mapreduce", &format!("slave-{node}")),
        }
    }

    /// Transition `task` to `phase`, closing the telemetry span of the
    /// phase it leaves (one span per phase on the task's node track).
    fn set_phase(&mut self, task: usize, phase: Phase, now: SimTime) {
        if self.tasks[task].phase == phase {
            return;
        }
        if self.tel.is_on() {
            let t = &self.tasks[task];
            if t.node != usize::MAX && !matches!(t.phase, Phase::Pending | Phase::Done) {
                let (node, since, from) = (t.node, t.phase_since, t.phase);
                let cat = if t.is_map { "map" } else { "reduce" };
                let args = vec![("task", format!("{task}"))];
                let track = self.slave_track(node);
                self.tel.span_on(track, cat, phase_name(from), since, now, args);
            }
        }
        let t = &mut self.tasks[task];
        t.phase = phase;
        t.phase_since = now;
        self.last_progress = now;
    }

    // ---- derived sizes --------------------------------------------------

    fn map_input_bytes(&self) -> u64 {
        self.profile.split_bytes().max(1)
    }

    fn map_output_bytes(&self) -> u64 {
        (self.profile.shuffle_bytes() / self.profile.map_tasks as u64).max(1)
    }

    fn fetch_bytes(&self) -> u64 {
        (self.profile.shuffle_bytes()
            / (self.profile.map_tasks as u64 * self.profile.reduce_tasks as u64))
            .max(1)
    }

    fn shuffle_per_reduce(&self) -> u64 {
        (self.profile.shuffle_bytes() / self.profile.reduce_tasks as u64).max(1)
    }

    fn output_per_reduce(&self) -> u64 {
        (self.profile.output_bytes() / self.profile.reduce_tasks as u64).max(1)
    }

    fn gc_factor(&self) -> f64 {
        if self.profile.mem_hungry {
            1.0 + calib::GC_PRESSURE_FACTOR
        } else {
            1.0
        }
    }

    // ---- plumbing -------------------------------------------------------

    /// The CPU/disk job id of `task`'s *current* incarnation (see
    /// [`ATTEMPT_STRIDE`]): equal to the bare task index until the first
    /// re-execution, so fault-free runs are bit-identical to the old ids.
    fn job_id(&self, task: usize) -> u64 {
        u64::from(self.tasks[task].attempt) * ATTEMPT_STRIDE + task as u64
    }

    /// Combined flow-duration multiplier of a transfer between two nodes:
    /// the sicker endpoint's NIC bounds the stream.
    fn net_scale(&self, a: usize, b: usize) -> f64 {
        self.net_factor[a].max(self.net_factor[b])
    }

    fn schedule_node_cpu(&mut self, node: usize, now: SimTime, ctx: &mut Ctx<Ev>) {
        if let Some((_, at)) = self.nodes.node(NodeId(node)).next_cpu_completion(now) {
            let epoch = self.nodes.node(NodeId(node)).cpu_epoch();
            ctx.schedule_at(at, Ev::NodeCpu { node, epoch });
        }
    }

    fn add_cpu(&mut self, node: usize, id: u64, mi: f64, now: SimTime, ctx: &mut Ctx<Ev>) {
        if self.node_down[node] {
            return; // dies with the node; the RM re-queues it after the sweep
        }
        let mi = mi * self.cpu_factor[node];
        self.nodes.node_mut(NodeId(node)).add_cpu_task(now, id, mi.max(1e-3));
        self.schedule_node_cpu(node, now, ctx);
    }

    fn submit_disk(&mut self, node: usize, job: u64, service: SimDuration, now: SimTime, ctx: &mut Ctx<Ev>) {
        if self.node_down[node] {
            return; // a dead node completes nothing
        }
        let service = scaled(service, self.disk_factor[node]);
        if let Some((j, at)) = self.nodes.node_mut(NodeId(node)).disk().submit(now, job, service) {
            ctx.schedule_at(at, Ev::DiskDone { node, job: j });
        }
    }

    // ---- scheduling -----------------------------------------------------

    fn run_heartbeat(&mut self, now: SimTime, ctx: &mut Ctx<Ev>) {
        // RM liveness: every alive worker reports; nodes silent past the
        // timeout are declared lost and their containers re-queued
        for i in 0..self.setup.workers {
            if !self.node_down[i] {
                self.liveness.beat(i, now);
            }
        }
        for lost in self.liveness.sweep(now) {
            self.nodes_lost += 1;
            self.tel.counter_inc(fault_metrics::NODE_LOST_TOTAL, labels(&[("tier", "mapreduce")]));
            if !self.brk.is_empty() && self.brk[lost].record_failure(now) {
                self.guard_breaker_trips += 1;
                self.note_brk_transition(lost);
            }
            self.reap_node(lost, now, ctx);
        }
        if self.node_down.iter().all(|&d| d) {
            self.fail("every worker node is down".to_string(), ctx);
            return;
        }
        if !self.am_placed {
            // The application master runs on the Dell master node of the
            // paper's hybrid setup (outside the slave energy boundary);
            // submission + AM start cost wall time but no slave resources.
            self.am_placed = true;
            let master_mips = presets::dell_r620().cpu.single_thread_mips;
            let setup = SimDuration::from_secs_f64(
                calib::JOB_SUBMIT_DELAY_S + calib::APP_MASTER_SETUP_MI / master_mips,
            );
            ctx.schedule_at(now + setup, Ev::AmReady);
            return;
        }
        if !self.am_ready {
            return;
        }
        if !self.reduces_requested
            && self.completed_maps as f64 >= REDUCE_SLOWSTART * self.n_maps as f64
        {
            self.reduces_requested = true;
        }
        if self.setup.speculation {
            // before building the pending list so fresh copies join this
            // heartbeat's grants
            self.maybe_speculate(now);
        }
        // build the pending list (deterministic order: maps then reduces,
        // by index)
        let mut pending = Vec::new();
        for (i, t) in self.tasks.iter().enumerate() {
            if t.phase != Phase::Pending {
                continue;
            }
            // drop speculative copies whose original already finished
            if let Some(orig) = t.dup_of {
                if self.tasks[orig].logical_done {
                    continue;
                }
            }
            if t.is_map {
                pending.push(PendingTask { task: i, mem: self.profile.map_container, is_map: true });
            } else if self.reduces_requested {
                pending.push(PendingTask {
                    task: i,
                    mem: self.profile.reduce_container,
                    is_map: false,
                });
            }
        }
        if pending.is_empty() {
            return;
        }
        // breaker verdicts per worker (lazily advances open → half-open):
        // an open breaker offers the scheduler no capacity, a half-open
        // one at most a single probe container
        let verdicts: Vec<BreakerVerdict> = if self.brk.is_empty() {
            Vec::new()
        } else {
            (0..self.setup.workers)
                .map(|i| {
                    let before = self.brk[i].state();
                    let v = self.brk[i].check(now);
                    if self.brk[i].state() != before {
                        self.note_brk_transition(i);
                    }
                    v
                })
                .collect()
        };
        let probe_cap = self.profile.map_container.max(self.profile.reduce_container);
        let mut capacity: Vec<NodeCapacity> = (0..self.setup.workers)
            .map(|i| {
                let node = self.nodes.node(NodeId(i));
                let used_beyond_base = node.mem_used() - node.spec().os.base_memory;
                let mut free = if self.node_ready[i] && !self.liveness.is_lost(i) {
                    self.setup.schedulable_mem.saturating_sub(used_beyond_base)
                } else {
                    0 // not localised yet, or declared lost by the RM
                };
                match verdicts.get(i) {
                    Some(BreakerVerdict::Reject) => free = 0,
                    Some(BreakerVerdict::Probe) => free = free.min(probe_cap),
                    _ => {}
                }
                NodeCapacity {
                    free_mem: free,
                    running: self.running_containers[i],
                    max_containers: 2 * node.spec().cpu.threads,
                }
            })
            .collect();
        // Hadoop's reduce ramp-up: while maps are pending, running reduce
        // containers may hold at most half the cluster's memory.
        let maps_pending = self.tasks[..self.n_maps].iter().any(|t| t.phase == Phase::Pending);
        let allowance = if maps_pending {
            let cap = (calib::REDUCE_RAMPUP_LIMIT
                * self.setup.workers as f64
                * self.setup.schedulable_mem as f64) as u64;
            cap.saturating_sub(self.running_reduce_mem)
        } else {
            u64::MAX
        };
        let nn = &self.nn;
        let tasks = &self.tasks;
        let grants = heartbeat(&pending, &mut capacity, allowance, |task, node| {
            tasks[task].is_map && nn.is_local(tasks[task].block, node)
        });
        let _ = tasks;
        for Grant { task, node, local } in grants {
            let mem = if self.tasks[task].is_map {
                self.profile.map_container
            } else {
                self.profile.reduce_container
            };
            self.nodes.node_mut(NodeId(node)).alloc_mem(mem).expect("scheduler checked fit");
            self.running_containers[node] += 1;
            if !self.tasks[task].is_map {
                self.running_reduce_mem += self.profile.reduce_container;
                if self.first_reduce.is_none() {
                    self.first_reduce = Some(now);
                }
            }
            let probe = !self.brk.is_empty() && self.brk[node].state() == BreakerState::HalfOpen;
            if probe {
                self.brk[node].begin_probe();
            }
            let t = &mut self.tasks[task];
            t.node = node;
            t.local = local;
            t.started = now;
            t.probe = probe;
            let kind = if t.is_map { "map" } else { "reduce" };
            self.set_phase(task, Phase::Launching, now);
            self.tel.counter_inc("mr_containers_granted_total", labels(&[("kind", kind)]));
            let id = self.job_id(task);
            self.add_cpu(node, id, self.profile.container_startup_mi, now, ctx);
        }
    }

    /// Hadoop-style speculation: once ≥75 % of maps finished, a running map
    /// older than 1.5× the median completed-map duration gets a duplicate,
    /// which competes through the normal pending/grant path. The first
    /// finisher wins; the loser runs out without being counted.
    fn maybe_speculate(&mut self, now: SimTime) {
        if self.completed_maps * 4 < self.n_maps * 3 || self.map_durations.is_empty() {
            return;
        }
        let mut sorted = self.map_durations.clone();
        // total_cmp: no NaN panic even if a duration ever degenerates
        sorted.sort_by(f64::total_cmp);
        let median = sorted[sorted.len() / 2];
        let threshold = 1.5 * median;
        for i in 0..self.n_maps {
            let t = &self.tasks[i];
            if t.speculated
                || t.logical_done
                || t.dup_of.is_some()
                || matches!(t.phase, Phase::Pending | Phase::Done)
            {
                continue;
            }
            let age = now.saturating_since(t.started).as_secs_f64();
            if age > threshold {
                let block = t.block;
                self.tasks[i].speculated = true;
                self.tasks.push(Task {
                    is_map: true,
                    phase: Phase::Pending,
                    node: usize::MAX,
                    block,
                    local: false,
                    fetch_pending: VecDeque::new(),
                    fetched: 0,
                    current_fetch_src: None,
                    dup_of: Some(i),
                    logical_done: false,
                    speculated: true,
                    started: now,
                    phase_since: now,
                    attempt: 0,
                    fetching_origin: None,
                    fetched_from: Vec::new(),
                    probe: false,
                });
                self.speculative_copies += 1;
                self.tel.counter_inc("mr_speculative_copies_total", labels(&[]));
            }
        }
    }

    // ---- guard layer ----------------------------------------------------

    /// Telemetry: the breaker of `node` just changed state.
    fn note_brk_transition(&mut self, node: usize) {
        let to = match self.brk[node].state() {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        };
        self.tel.counter_inc(
            guard_metrics::BREAKER_TRANSITIONS_TOTAL,
            labels(&[("tier", "mapreduce"), ("to", to)]),
        );
    }

    /// A container completed on `node`: release its probe slot (if it
    /// was one) and record the success — one successful probe closes a
    /// half-open breaker.
    fn guard_task_done(&mut self, task: usize, node: usize) {
        if self.brk.is_empty() {
            return;
        }
        if self.tasks[task].probe {
            self.tasks[task].probe = false;
            self.brk[node].end_probe();
        }
        let before = self.brk[node].state();
        let _ = self.brk[node].record_success();
        if self.brk[node].state() != before {
            self.note_brk_transition(node);
        }
    }

    /// Per-attempt deadline accounting: the logical task just completed;
    /// was its winning attempt inside the configured budget?
    fn guard_deadline_check(&mut self, task: usize, now: SimTime) {
        if !self.guard_on {
            return;
        }
        let started = self.tasks[task].started;
        if self.setup.guard.deadline.deadline_from(started).is_some_and(|d| d.passed(now)) {
            self.guard_deadline_miss += 1;
            self.tel.counter_inc(
                guard_metrics::DEADLINE_MISS_TOTAL,
                labels(&[("tier", "mapreduce")]),
            );
        }
    }

    // ---- task phase transitions ------------------------------------------

    fn cpu_done(&mut self, node: usize, task: usize, now: SimTime, ctx: &mut Ctx<Ev>) {
        let phase = self.tasks[task].phase;
        match phase {
            Phase::Launching => {
                if self.tasks[task].is_map {
                    self.start_map_read(task, now, ctx);
                } else {
                    self.start_shuffle(task, now, ctx);
                }
            }
            Phase::MapCpu => {
                // sort/spill CPU on the pre-combine output
                self.set_phase(task, Phase::SpillCpu, now);
                let emit_mib = self.map_input_bytes() as f64 / MIB as f64 * 1.1;
                let mi = self.profile.spill_mi_per_mib * emit_mib;
                let id = self.job_id(task);
                self.add_cpu(node, id, mi, now, ctx);
            }
            Phase::SpillCpu => {
                self.set_phase(task, Phase::SpillDisk, now);
                let bytes = self.map_output_bytes();
                let service = self.nodes.node(NodeId(node)).disk_write_time(bytes, false);
                let id = self.job_id(task);
                self.submit_disk(node, id, service, now, ctx);
            }
            Phase::ReduceCpu => {
                self.set_phase(task, Phase::OutputDisk, now);
                let bytes = self.output_per_reduce();
                let service = self.nodes.node(NodeId(node)).disk_write_time(bytes, false);
                let id = self.job_id(task);
                self.submit_disk(node, id, service, now, ctx);
            }
            // a completion that raced a fault-layer transition: the
            // attempt/liveness guards catch dead incarnations, so anything
            // landing here in a fault-free run is an engine bug
            other => debug_assert!(false, "cpu done for task {task} in phase {other:?}"),
        }
    }

    fn start_map_read(&mut self, task: usize, now: SimTime, ctx: &mut Ctx<Ev>) {
        let node = self.tasks[task].node;
        let block = self.tasks[task].block;
        let bytes = self.map_input_bytes();
        self.set_phase(task, Phase::Reading, now);
        let alive: Vec<bool> = self.node_down.iter().map(|&d| !d).collect();
        match self.nn.replica_for_alive(block, node, &alive) {
            Some(src) if src == node => {
                let service = self.nodes.node(NodeId(node)).disk_read_time(bytes, false);
                let id = self.job_id(task);
                self.submit_disk(node, id, service, now, ctx);
            }
            Some(src) => {
                // remote read: stream from a surviving replica over the fabric
                let (path, lat) = self.topo.path(self.hosts[src], self.hosts[node]);
                let dur = self.gauge.begin_transfer(&path, bytes as f64);
                self.tasks[task].current_fetch_src = Some(src);
                let attempt = self.tasks[task].attempt;
                ctx.schedule_at(
                    now + scaled(lat + dur, self.net_scale(src, node)),
                    Ev::FlowEnd { task, attempt },
                );
            }
            None => self.fail(format!("block {block} unreadable: every replica node is down"), ctx),
        }
    }

    fn start_map_cpu(&mut self, task: usize, now: SimTime, ctx: &mut Ctx<Ev>) {
        let node = self.tasks[task].node;
        self.set_phase(task, Phase::MapCpu, now);
        let mib = self.map_input_bytes() as f64 / MIB as f64;
        let mi = self.profile.map_mi_per_mib * mib
            + self.profile.map_compute_mi
            + self.profile.task_setup_mi;
        let id = self.job_id(task);
        self.add_cpu(node, id, mi, now, ctx);
    }

    fn finish_map(&mut self, task: usize, now: SimTime, ctx: &mut Ctx<Ev>) {
        // this physical container ends regardless of who wins
        let node = self.tasks[task].node;
        self.set_phase(task, Phase::Done, now);
        if self.tel.is_on() {
            let t = &self.tasks[task];
            let args = vec![("task", format!("{task}")), ("local", format!("{}", t.local))];
            let started = t.started;
            let track = self.slave_track(node);
            self.tel.span_on(track, "container", "map_task", started, now, args);
        }
        self.nodes.node_mut(NodeId(node)).free_mem(self.profile.map_container);
        self.running_containers[node] -= 1;
        self.guard_task_done(task, node);
        // speculative resolution: the logical map is `origin`; only the
        // first finisher counts. The loser (if still running) drains
        // without effect — Hadoop kills it; letting it finish keeps the
        // engine simpler and costs only its residual slot time.
        let origin = self.tasks[task].dup_of.unwrap_or(task);
        if self.tasks[origin].logical_done {
            return; // the counterpart already won; this copy just drained
        }
        self.tasks[origin].logical_done = true;
        self.map_winner[origin] = Some(task);
        self.map_durations
            .push(now.saturating_since(self.tasks[task].started).as_secs_f64());
        self.guard_deadline_check(task, now);
        self.completed_maps += 1;
        let local = self.tasks[task].local;
        if local {
            self.local_maps += 1;
        }
        self.tel.counter_inc(
            "mr_maps_completed_total",
            labels(&[("local", if local { "true" } else { "false" })]),
        );
        // notify shuffling reducers still missing this partition (they
        // fetch from the winner's node)
        for i in self.n_maps..self.tasks.len() {
            if self.tasks[i].is_map {
                continue; // speculative map copies live past the reducers
            }
            if self.tasks[i].fetched_from[origin] {
                continue; // already pulled from an earlier incarnation
            }
            match self.tasks[i].phase {
                Phase::ShuffleWait => {
                    self.tasks[i].fetch_pending.push_back(task);
                    self.next_fetch(i, now, ctx);
                }
                Phase::Fetching => self.tasks[i].fetch_pending.push_back(task),
                _ => {}
            }
        }
    }

    fn start_shuffle(&mut self, task: usize, now: SimTime, ctx: &mut Ctx<Ev>) {
        // seed the fetch queue with the winner of every logical map
        // already finished (the winner's node holds the spill output)
        let done: Vec<usize> = (0..self.n_maps)
            .filter(|&m| self.tasks[m].logical_done)
            .filter_map(|m| self.map_winner[m])
            .collect();
        self.set_phase(task, Phase::ShuffleWait, now);
        self.tasks[task].fetch_pending = done.into();
        self.next_fetch(task, now, ctx);
    }

    fn next_fetch(&mut self, task: usize, now: SimTime, ctx: &mut Ctx<Ev>) {
        if self.tasks[task].phase == Phase::Fetching {
            return; // already busy with a fetch
        }
        loop {
            let Some(src_task) = self.tasks[task].fetch_pending.pop_front() else {
                if self.tasks[task].fetched as usize == self.n_maps {
                    self.start_merge(task, now, ctx);
                } else {
                    self.set_phase(task, Phase::ShuffleWait, now);
                }
                return;
            };
            let origin = self.tasks[src_task].dup_of.unwrap_or(src_task);
            let src = self.tasks[src_task].node;
            // stale entries: partition already pulled, or the winner's node
            // died (the map re-executes and re-notifies with fresh output)
            if self.tasks[task].fetched_from[origin] || src == usize::MAX || self.node_down[src] {
                continue;
            }
            let node = self.tasks[task].node;
            self.set_phase(task, Phase::Fetching, now);
            self.tasks[task].current_fetch_src = Some(src);
            self.tasks[task].fetching_origin = Some(origin);
            let bytes = self.fetch_bytes();
            let (path, lat) = self.topo.path(self.hosts[src], self.hosts[node]);
            let dur = self.gauge.begin_transfer(&path, bytes as f64);
            let attempt = self.tasks[task].attempt;
            // a fetch also pays a fixed RPC latency
            ctx.schedule_at(
                now + scaled(lat + dur + SimDuration::from_millis(1), self.net_scale(src, node)),
                Ev::FlowEnd { task, attempt },
            );
            return;
        }
    }

    fn start_merge(&mut self, task: usize, now: SimTime, ctx: &mut Ctx<Ev>) {
        let node = self.tasks[task].node;
        self.set_phase(task, Phase::MergeDisk, now);
        let bytes = self.shuffle_per_reduce();
        // external merge: (passes - 1) read+write rounds over the shuffled
        // runs, plus the initial materialisation
        let passes = self.profile.merge_passes.max(1) as u64;
        let node_ref = self.nodes.node(NodeId(node));
        let mut service = node_ref.disk_write_time(bytes, false);
        for _ in 1..passes {
            service = service
                + node_ref.disk_read_time(bytes, false)
                + node_ref.disk_write_time(bytes, false);
        }
        let id = self.job_id(task);
        self.submit_disk(node, id, service, now, ctx);
    }

    fn disk_done(&mut self, node: usize, task: usize, now: SimTime, ctx: &mut Ctx<Ev>) {
        let phase = self.tasks[task].phase;
        match phase {
            Phase::Reading => self.start_map_cpu(task, now, ctx),
            Phase::SpillDisk => self.finish_map(task, now, ctx),
            Phase::MergeDisk => {
                self.set_phase(task, Phase::ReduceCpu, now);
                let mib = self.shuffle_per_reduce() as f64 / MIB as f64;
                let mi = self.profile.reduce_mi_per_mib * mib * self.gc_factor()
                    + self.profile.task_setup_mi
                    + calib::TASK_CLEANUP_MI;
                let id = self.job_id(task);
                self.add_cpu(node, id, mi, now, ctx);
            }
            Phase::OutputDisk => {
                if self.setup.replication > 1 {
                    // replication pipeline to the next *alive* node
                    let mut peer = (node + 1) % self.setup.workers;
                    while peer != node && self.node_down[peer] {
                        peer = (peer + 1) % self.setup.workers;
                    }
                    if peer == node {
                        // nobody alive to replicate to; the primary stands
                        self.finish_reduce(task, now, ctx);
                        return;
                    }
                    self.set_phase(task, Phase::OutputRepl, now);
                    let (path, lat) = self.topo.path(self.hosts[node], self.hosts[peer]);
                    let bytes = self.output_per_reduce();
                    let dur = self.gauge.begin_transfer(&path, bytes as f64);
                    self.tasks[task].current_fetch_src = Some(peer);
                    let attempt = self.tasks[task].attempt;
                    ctx.schedule_at(
                        now + scaled(lat + dur, self.net_scale(node, peer)),
                        Ev::FlowEnd { task, attempt },
                    );
                } else {
                    self.finish_reduce(task, now, ctx);
                }
            }
            other => debug_assert!(false, "disk done for task {task} in phase {other:?}"),
        }
    }

    fn flow_end(&mut self, task: usize, attempt: u32, now: SimTime, ctx: &mut Ctx<Ev>) {
        if self.tasks[task].attempt != attempt {
            return; // a dead incarnation's flow: its gauge was released when it was invalidated
        }
        let phase = self.tasks[task].phase;
        match phase {
            Phase::Reading => {
                let src = self.tasks[task].current_fetch_src.take().expect("flow had a source");
                let node = self.tasks[task].node;
                let (path, _) = self.topo.path(self.hosts[src], self.hosts[node]);
                self.gauge.end(&path);
                self.start_map_cpu(task, now, ctx);
            }
            Phase::Fetching => {
                let src = self.tasks[task].current_fetch_src.take().expect("fetch had a source");
                let node = self.tasks[task].node;
                let (path, _) = self.topo.path(self.hosts[src], self.hosts[node]);
                self.gauge.end(&path);
                if let Some(origin) = self.tasks[task].fetching_origin.take() {
                    if !self.tasks[task].fetched_from[origin] {
                        self.tasks[task].fetched_from[origin] = true;
                        self.tasks[task].fetched += 1;
                    }
                }
                self.set_phase(task, Phase::ShuffleWait, now);
                self.next_fetch(task, now, ctx);
            }
            Phase::OutputRepl => {
                let peer = self.tasks[task].current_fetch_src.take().expect("repl had a peer");
                let node = self.tasks[task].node;
                let (path, _) = self.topo.path(self.hosts[node], self.hosts[peer]);
                self.gauge.end(&path);
                self.finish_reduce(task, now, ctx);
            }
            other => debug_assert!(false, "flow end for task {task} in phase {other:?}"),
        }
    }

    fn finish_reduce(&mut self, task: usize, now: SimTime, _ctx: &mut Ctx<Ev>) {
        let node = self.tasks[task].node;
        self.set_phase(task, Phase::Done, now);
        if self.tel.is_on() {
            let args = vec![("task", format!("{task}"))];
            let started = self.tasks[task].started;
            let track = self.slave_track(node);
            self.tel.span_on(track, "container", "reduce_task", started, now, args);
        }
        self.nodes.node_mut(NodeId(node)).free_mem(self.profile.reduce_container);
        self.running_containers[node] -= 1;
        self.guard_task_done(task, node);
        self.guard_deadline_check(task, now);
        self.running_reduce_mem = self.running_reduce_mem.saturating_sub(self.profile.reduce_container);
        self.completed_reduces += 1;
        self.tel.counter_inc("mr_reduces_completed_total", labels(&[]));
        if self.completed_reduces == self.profile.reduce_tasks as usize {
            self.finish = Some(now);
        }
    }

    // ---- fault layer ----------------------------------------------------

    /// Record an unrecoverable fault and stop the run; [`run_job_checked`]
    /// surfaces it as [`SimError::FaultUnrecovered`].
    fn fail(&mut self, msg: String, ctx: &mut Ctx<Ev>) {
        if self.failed.is_none() && self.finish.is_none() {
            self.failed = Some(msg);
            ctx.stop();
        }
    }

    fn apply_fault(&mut self, idx: usize, now: SimTime, ctx: &mut Ctx<Ev>) {
        let Fault { node, kind, .. } = self.fplan.faults()[idx];
        let workers = self.setup.workers;
        let applied = match kind {
            FaultKind::NodeCrash => self.apply_crash(node, now, ctx),
            FaultKind::NodeRestart => self.apply_restart(node, now, ctx),
            FaultKind::NicDegrade { loss, latency_mult } => {
                if node < workers {
                    // MR traffic is long bulk TCP streams: packet loss shows
                    // up as a goodput cut of ≈ 1/(1-loss) on top of the
                    // latency multiplier, folded into one duration factor
                    self.net_factor[node] = latency_mult / (1.0 - loss.clamp(0.0, 0.99));
                    true
                } else {
                    false
                }
            }
            FaultKind::NicRestore => {
                if node < workers && self.net_factor[node] != 1.0 {
                    self.net_factor[node] = 1.0;
                    true
                } else {
                    false
                }
            }
            FaultKind::DiskSlow { factor } => {
                if node < workers {
                    self.disk_factor[node] = factor;
                    true
                } else {
                    false
                }
            }
            FaultKind::DiskRestore => {
                if node < workers && self.disk_factor[node] != 1.0 {
                    self.disk_factor[node] = 1.0;
                    true
                } else {
                    false
                }
            }
            FaultKind::CpuThrottle { factor } => {
                if node < workers {
                    self.cpu_factor[node] = factor;
                    true
                } else {
                    false
                }
            }
            FaultKind::CpuRestore => {
                if node < workers && self.cpu_factor[node] != 1.0 {
                    self.cpu_factor[node] = 1.0;
                    true
                } else {
                    false
                }
            }
            // no memcached tier in the MapReduce world
            FaultKind::CacheColdRestart => false,
        };
        let name = if applied {
            fault_metrics::FAULT_INJECTED_TOTAL
        } else {
            fault_metrics::FAULT_SKIPPED_TOTAL
        };
        self.tel.counter_inc(name, labels(&[("kind", kind.name()), ("tier", "mapreduce")]));
    }

    /// Kill worker `node`: its containers and disk/CPU work die instantly;
    /// the RM only learns via the liveness timeout (or a quick restart).
    fn apply_crash(&mut self, node: usize, now: SimTime, ctx: &mut Ctx<Ev>) -> bool {
        if node >= self.setup.workers || self.node_down[node] {
            return false;
        }
        self.node_down[node] = true;
        self.needs_reap[node] = true;
        self.restart_time[node] = None;
        self.node_ready[node] = false; // job artifacts die with the node
        self.crash_time[node] = Some(now);
        for t in 0..self.tasks.len() {
            let phase = self.tasks[t].phase;
            if matches!(phase, Phase::Pending | Phase::Done) {
                continue;
            }
            let tnode = self.tasks[t].node;
            if tnode == node {
                // the task dies with its node: cancel queued/running CPU,
                // release any in-flight transfer, and invalidate every
                // event this incarnation scheduled — the reap re-queues it
                let id = self.job_id(t);
                self.nodes.node_mut(NodeId(node)).cancel_cpu_task(now, id);
                if let Some(other) = self.tasks[t].current_fetch_src.take() {
                    let (a, b) = if phase == Phase::OutputRepl { (node, other) } else { (other, node) };
                    let (path, _) = self.topo.path(self.hosts[a], self.hosts[b]);
                    self.gauge.end(&path);
                }
                self.tasks[t].fetching_origin = None;
                self.tasks[t].attempt += 1;
                continue;
            }
            // alive tasks with a transfer touching the crashed node: the
            // stream dies now and the survivor recovers immediately
            match phase {
                Phase::Reading | Phase::Fetching
                    if self.tasks[t].current_fetch_src == Some(node) =>
                {
                    let (path, _) = self.topo.path(self.hosts[node], self.hosts[tnode]);
                    self.gauge.end(&path);
                    self.tasks[t].current_fetch_src = None;
                    self.tasks[t].fetching_origin = None;
                    self.tasks[t].attempt += 1;
                    if phase == Phase::Reading {
                        // HDFS re-read from a surviving replica
                        self.start_map_read(t, now, ctx);
                    } else {
                        // the lost partition re-appears when the map
                        // re-executes; keep pulling the others meanwhile
                        self.set_phase(t, Phase::ShuffleWait, now);
                        self.next_fetch(t, now, ctx);
                    }
                }
                Phase::OutputRepl if self.tasks[t].current_fetch_src == Some(node) => {
                    let (path, _) = self.topo.path(self.hosts[tnode], self.hosts[node]);
                    self.gauge.end(&path);
                    self.tasks[t].current_fetch_src = None;
                    self.tasks[t].attempt += 1;
                    // the primary replica is safe; abandon the pipeline
                    self.finish_reduce(t, now, ctx);
                }
                _ => {}
            }
        }
        true
    }

    /// Bring a crashed worker back: it re-registers with the RM, reports
    /// its lost containers, and re-localises job artifacts before any new
    /// container may launch.
    fn apply_restart(&mut self, node: usize, now: SimTime, ctx: &mut Ctx<Ev>) -> bool {
        if node >= self.setup.workers || !self.node_down[node] {
            return false;
        }
        self.node_down[node] = false;
        self.restart_time[node] = Some(now);
        self.restart_count[node] += 1;
        // a restarting nodemanager reports lost containers itself, even
        // when the blip was shorter than the liveness timeout
        self.reap_node(node, now, ctx);
        self.liveness.revive(node, now);
        if self.am_ready {
            // deterministic capped jittered exponential backoff before the
            // RM accepts the re-registration, seeded per (node, restart):
            // a flapping node backs off harder, and nodes restarted by the
            // same fault spread out instead of re-registering in lockstep
            let attempt = self.restart_count[node];
            let exp = (attempt - 1).min(REREG_BACKOFF_CAP);
            let stream_idx = u64::try_from(node).unwrap_or(u64::MAX) | (u64::from(attempt) << 56);
            let mut rng =
                SimRng::new(derive_seed(self.setup.seed, "mr:rereg-backoff", stream_idx));
            let delay = SimDuration::from_secs_f64(calib::CONTAINER_GRANT_DELAY_S)
                .mul_f64(f64::from(1u32 << exp) * rng.jitter(REREG_JITTER));
            ctx.schedule_at(now + delay, Ev::ReRegister { node });
        }
        true
    }

    /// The RM's response to a lost node (liveness timeout, or a restarted
    /// nodemanager reporting in): release every container that was placed
    /// there, re-queue the tasks, and re-execute completed maps whose
    /// spill output — which reducers still need — died with the node.
    fn reap_node(&mut self, node: usize, now: SimTime, _ctx: &mut Ctx<Ev>) {
        if !self.needs_reap[node] {
            return;
        }
        self.needs_reap[node] = false;
        // 1. containers on the node: release and re-queue
        for t in 0..self.tasks.len() {
            if self.tasks[t].node != node
                || matches!(self.tasks[t].phase, Phase::Pending | Phase::Done)
            {
                continue;
            }
            let is_map = self.tasks[t].is_map;
            let mem =
                if is_map { self.profile.map_container } else { self.profile.reduce_container };
            self.nodes.node_mut(NodeId(node)).free_mem(mem);
            self.running_containers[node] = self.running_containers[node].saturating_sub(1);
            if self.tasks[t].probe {
                // the probe died with the node; free its slot (the
                // breaker reopens via the node-lost failure)
                self.tasks[t].probe = false;
                if !self.brk.is_empty() {
                    self.brk[node].end_probe();
                }
            }
            if !is_map {
                self.running_reduce_mem =
                    self.running_reduce_mem.saturating_sub(self.profile.reduce_container);
            }
            // containers granted after the crash never scheduled events,
            // but bumping uniformly costs nothing
            self.tasks[t].attempt += 1;
            let origin = self.tasks[t].dup_of.unwrap_or(t);
            if is_map && self.tasks[origin].logical_done {
                // a draining speculative loser died with the node
                self.set_phase(t, Phase::Done, now);
                continue;
            }
            let tt = &mut self.tasks[t];
            tt.current_fetch_src = None;
            tt.fetching_origin = None;
            tt.fetch_pending.clear();
            tt.fetched = 0;
            tt.fetched_from.iter_mut().for_each(|b| *b = false);
            tt.local = false;
            self.set_phase(t, Phase::Pending, now);
            self.tasks[t].node = usize::MAX;
            self.task_reexecs += 1;
            let kind = if is_map { "map" } else { "reduce" };
            self.tel.counter_inc(fault_metrics::TASK_REEXEC_TOTAL, labels(&[("kind", kind)]));
        }
        // 2. completed maps whose output lived on the node: re-execute the
        //    origin if any reducer still needs its partition
        for origin in 0..self.n_maps {
            let Some(w) = self.map_winner[origin] else { continue };
            if self.tasks[w].node != node {
                continue;
            }
            self.map_winner[origin] = None;
            let needed = (self.n_maps..self.tasks.len()).any(|r| {
                let t = &self.tasks[r];
                !t.is_map && t.phase != Phase::Done && !t.fetched_from[origin]
            });
            if !needed {
                continue;
            }
            self.tasks[origin].logical_done = false;
            self.completed_maps = self.completed_maps.saturating_sub(1);
            if self.tasks[origin].phase == Phase::Done {
                self.tasks[origin].attempt += 1;
                self.tasks[origin].speculated = false;
                self.tasks[origin].local = false;
                self.set_phase(origin, Phase::Pending, now);
                self.tasks[origin].node = usize::MAX;
                self.task_reexecs += 1;
                self.tel
                    .counter_inc(fault_metrics::TASK_REEXEC_TOTAL, labels(&[("kind", "map_output")]));
            }
            // else: a speculative loser of this map is still running
            // elsewhere — with logical_done cleared it now wins
        }
        // 3. queued fetch entries pointing at the dead node are stale
        for r in self.n_maps..self.tasks.len() {
            if self.tasks[r].is_map || self.tasks[r].fetch_pending.is_empty() {
                continue;
            }
            let pending = std::mem::take(&mut self.tasks[r].fetch_pending);
            let filtered: VecDeque<usize> =
                pending.into_iter().filter(|&s| self.tasks[s].node != node).collect();
            self.tasks[r].fetch_pending = filtered;
        }
    }

    fn sample(&mut self, now: SimTime) {
        let cpu = self.nodes.mean_cpu_utilization() * 100.0;
        self.timeline.cpu_pct.push(now, cpu);
        self.timeline.mem_pct.push(now, self.nodes.mean_mem_utilization() * 100.0);
        self.timeline.power_w.push(now, self.nodes.power_now());
        self.timeline
            .map_pct
            .push(now, self.completed_maps as f64 / self.n_maps as f64 * 100.0);
        self.timeline.reduce_pct.push(
            now,
            self.completed_reduces as f64 / self.profile.reduce_tasks as f64 * 100.0,
        );
        if cpu > 20.0 && self.cpu_rise.is_none() {
            self.cpu_rise = Some(now);
        }
        if self.tel.is_on() {
            self.tel.series_push("mr_map_progress_pct", labels(&[]), now, self.completed_maps as f64 / self.n_maps as f64 * 100.0);
            self.tel.series_push(
                "mr_reduce_progress_pct",
                labels(&[]),
                now,
                self.completed_reduces as f64 / self.profile.reduce_tasks as f64 * 100.0,
            );
        }
    }

    /// Telemetry: fold the per-node power step logs into
    /// `node_power_watts{node=slave-i}` timeseries. Called once after the
    /// run.
    fn harvest_power_series(&mut self) {
        if !self.tel.is_on() {
            return;
        }
        self.tel.help("node_power_watts", "Per-node power draw timeline, watts");
        for i in 0..self.nodes.len() {
            let steps = self.nodes.node(NodeId(i)).power_trace().to_vec();
            let name = format!("slave-{i}");
            for (t, w) in steps {
                self.tel.series_push("node_power_watts", labels(&[("node", &name)]), t, w);
            }
        }
    }
}

impl Model for MrWorld {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, event: Ev, ctx: &mut Ctx<Ev>) {
        match event {
            Ev::AmReady => {
                self.am_ready = true;
                // distribute the job artifacts: each slave writes the
                // framework jars + job files to its disk before its first
                // container can launch (the quiet period of Figures 12-17)
                for node in 0..self.setup.workers {
                    let service = self
                        .nodes
                        .node(NodeId(node))
                        .disk_write_time(calib::JOB_LOCALIZATION_BYTES, false);
                    let job = LOCALIZE_BASE + node as u64;
                    self.submit_disk(node, job, service, now, ctx);
                }
            }
            Ev::Heartbeat => {
                self.run_heartbeat(now, ctx);
                if self.finish.is_none() && self.failed.is_none() {
                    // idle: a heartbeat during a quiescent outage must not
                    // burn the event budget (the engine watchdog)
                    ctx.schedule_idle_in(
                        SimDuration::from_secs_f64(calib::CONTAINER_GRANT_DELAY_S),
                        Ev::Heartbeat,
                    );
                }
            }
            Ev::NodeCpu { node, epoch } => {
                if self.nodes.node(NodeId(node)).cpu_epoch() != epoch {
                    return;
                }
                let done = self.nodes.node_mut(NodeId(node)).take_finished_cpu(now);
                for id in done {
                    debug_assert_ne!(id, AM_ID, "AM work has no completion event");
                    let (attempt, task) = decode_job(id);
                    if self.node_down[node] || self.tasks[task].attempt != attempt {
                        continue; // stale: the node crashed or the task moved on
                    }
                    self.cpu_done(node, task, now, ctx);
                }
                self.schedule_node_cpu(node, now, ctx);
            }
            Ev::DiskDone { node, job } => {
                if let Some((next, at)) = self.nodes.node_mut(NodeId(node)).disk().complete(now) {
                    ctx.schedule_at(at, Ev::DiskDone { node, job: next });
                }
                if job >= LOCALIZE_BASE {
                    let n = (job - LOCALIZE_BASE) as usize;
                    if !self.node_down[n] {
                        self.node_ready[n] = true;
                        if let Some(crashed) = self.crash_time[n].take() {
                            // re-localisation done: the node serves again
                            let rec = now.saturating_since(crashed).as_secs_f64();
                            self.recovery_s.push(rec);
                            self.tel.observe(
                                fault_metrics::RECOVERY_SECONDS,
                                labels(&[("tier", "mapreduce")]),
                                fault_metrics::RECOVERY_BOUNDS_S,
                                rec,
                            );
                        }
                        if let Some(up) = self.restart_time[n].take() {
                            // restarted-but-not-schedulable: the window
                            // simexplore probes with follow-up faults
                            self.recovery_windows
                                .push(RecoveryWindow { node: n, start: up, end: now });
                        }
                    }
                } else {
                    let (attempt, task) = decode_job(job);
                    if self.node_down[node] || self.tasks[task].attempt != attempt {
                        return; // stale disk completion from before a crash
                    }
                    self.disk_done(node, task, now, ctx);
                }
            }
            Ev::FlowEnd { task, attempt } => self.flow_end(task, attempt, now, ctx),
            Ev::ReRegister { node } => {
                if self.node_down[node] || !self.am_ready {
                    return; // crashed again while backing off
                }
                let service = self
                    .nodes
                    .node(NodeId(node))
                    .disk_write_time(calib::JOB_LOCALIZATION_BYTES, false);
                let job = LOCALIZE_BASE + u64::try_from(node).unwrap_or(u64::MAX / 2);
                self.submit_disk(node, job, service, now, ctx);
            }
            Ev::Fault { idx } => self.apply_fault(idx, now, ctx),
            Ev::Sample => {
                self.sample(now);
                if self.finish.is_none() && self.failed.is_none() {
                    if now.saturating_since(self.last_progress) > STALL_TIMEOUT {
                        self.fail(
                            format!(
                                "no task progress for {}s: {}/{} maps, {}/{} reduces",
                                STALL_TIMEOUT.as_secs_f64(),
                                self.completed_maps,
                                self.n_maps,
                                self.completed_reduces,
                                self.profile.reduce_tasks
                            ),
                            ctx,
                        );
                        return;
                    }
                    ctx.schedule_idle_in(SimDuration::from_secs(1), Ev::Sample);
                } else {
                    ctx.stop();
                }
            }
        }
    }
}

/// Run one job on one cluster setup to completion.
///
/// Panics when the job cannot finish — with a fault plan attached, prefer
/// [`run_job_checked`], which surfaces unrecoverable faults as a typed
/// error instead.
pub fn run_job(profile: &JobProfile, setup: &ClusterSetup) -> JobOutcome {
    run_job_traced(profile, setup, Telemetry::off()).0
}

/// [`run_job`] with a typed error channel: an unrecoverable fault (every
/// replica of a block lost, all workers down, or a stalled job) returns
/// [`SimError::FaultUnrecovered`] instead of panicking.
pub fn run_job_checked(profile: &JobProfile, setup: &ClusterSetup) -> Result<JobOutcome, SimError> {
    run_job_traced_checked(profile, setup, Telemetry::off()).map(|(o, _)| o)
}

/// Like [`run_job`], but records into `tel` when it is enabled: engine
/// event counts, per-phase task spans (container launch → input read →
/// map/sort/spill, shuffle → merge → reduce → output), container/task
/// counters, progress timeseries and per-node power timelines. With
/// `Telemetry::off()` this is exactly [`run_job`].
pub fn run_job_traced(
    profile: &JobProfile,
    setup: &ClusterSetup,
    tel: Telemetry,
) -> (JobOutcome, Telemetry) {
    run_job_traced_checked(profile, setup, tel).unwrap_or_else(|e| panic!("{e}"))
}

/// Coarse phase bucket for each [`Ev::kind`] name — the per-phase rollup
/// simprof exports as `profile_phase_*` metrics.
pub fn phase_of(kind: &'static str) -> &'static str {
    match kind {
        "heartbeat" | "am_ready" | "sample" => "control",
        "fault" => "fault",
        _ => "task-exec",
    }
}

/// The full-fidelity entry point: tracing like [`run_job_traced`], typed
/// fault errors like [`run_job_checked`]. A sink carrying the profiling
/// flag ([`Telemetry::profiled`]) additionally self-profiles the engine.
pub fn run_job_traced_checked(
    profile: &JobProfile,
    setup: &ClusterSetup,
    tel: Telemetry,
) -> Result<(JobOutcome, Telemetry), SimError> {
    let profiling = tel.profiling();
    run_job_inner(profile, setup, tel, profiling).map(|(o, t, _)| (o, t))
}

/// Like [`run_job_traced_checked`] with an enabled sink, but always
/// self-profiles the engine, returning the deterministic
/// [`EngineProfile`] alongside the outcome. [`JobOutcome`] is identical to
/// an unprofiled run.
pub fn run_job_profiled_checked(
    profile: &JobProfile,
    setup: &ClusterSetup,
    tel: Telemetry,
) -> Result<(JobOutcome, Telemetry, EngineProfile), SimError> {
    run_job_inner(profile, setup, tel, true)
        .map(|(o, t, p)| (o, t, p.unwrap_or_default()))
}

fn run_job_inner(
    profile: &JobProfile,
    setup: &ClusterSetup,
    tel: Telemetry,
    profiling: bool,
) -> Result<(JobOutcome, Telemetry, Option<EngineProfile>), SimError> {
    let tracing = tel.is_on();
    let mut world = MrWorld::new(profile.clone(), setup.clone());
    world.tel = tel;
    if tracing {
        world.nodes.enable_power_trace();
        world.tel.help("mr_containers_granted_total", "YARN container grants, by kind");
        world.tel.help("mr_maps_completed_total", "Logical map completions, by data-locality");
        world.tel.help("mr_reduces_completed_total", "Reduce completions");
        world.tel.help("mr_speculative_copies_total", "Speculative map copies launched");
        world.tel.help("mr_map_progress_pct", "Completed maps / total, 1 s samples");
        world.tel.help("mr_reduce_progress_pct", "Completed reduces / total, 1 s samples");
        fault_metrics::register_help(&mut world.tel);
        if world.guard_on {
            // only on guarded runs, so guards-off exports stay identical
            guard_metrics::register_help(&mut world.tel);
        }
        // intern one span track per slave up front: per-event span
        // recording is then id-indexed, no string work on the hot path
        world.slave_tracks = (0..world.setup.workers)
            .map(|i| world.tel.track_id("mapreduce", &format!("slave-{i}")))
            .collect();
    }
    let fault_times: Vec<SimTime> = world.fplan.faults().iter().map(|f| f.at).collect();
    let mut sim = Simulation::new(world);
    sim.schedule_at(SimTime::ZERO, Ev::Heartbeat);
    sim.schedule_idle_at(SimTime::ZERO, Ev::Sample);
    for (idx, at) in fault_times.into_iter().enumerate() {
        sim.schedule_at(at, Ev::Fault { idx });
    }
    let mut engine_profile = None;
    if tracing && profiling {
        let mut obs = EventCounter::new(Ev::kind);
        let mut prof = KindProfiler::new(Ev::kind);
        sim.run_profiled(&mut obs, &mut prof);
        let p = prof.finish(&sim);
        let w = sim.world_mut();
        obs.record_into(&mut w.tel, "mapreduce");
        record_engine_profile(&mut w.tel, "mapreduce", &p, phase_of);
        w.harvest_power_series();
        engine_profile = Some(p);
    } else if tracing {
        let mut obs = EventCounter::new(Ev::kind);
        sim.run_observed(&mut obs);
        let w = sim.world_mut();
        obs.record_into(&mut w.tel, "mapreduce");
        w.harvest_power_series();
    } else {
        sim.run();
    }
    let w = sim.world_mut();
    if let Some(msg) = w.failed.take() {
        return Err(SimError::FaultUnrecovered(format!("job {}: {msg}", w.profile.name)));
    }
    let Some(finish) = w.finish else {
        let detail = format!(
            "job {} did not finish: {}/{} maps, {}/{} reduces",
            w.profile.name, w.completed_maps, w.n_maps, w.completed_reduces, w.profile.reduce_tasks
        );
        if w.fplan.is_empty() {
            // no faults in play: this is an engine bug, not a fault outcome
            panic!("{detail}");
        }
        return Err(SimError::FaultUnrecovered(detail));
    };
    let mean_recovery_s = if w.recovery_s.is_empty() {
        0.0
    } else {
        w.recovery_s.iter().sum::<f64>() / w.recovery_s.len() as f64
    };
    let outcome = JobOutcome {
        finish_time_s: finish.as_secs_f64(),
        energy_j: w.nodes.energy_joules(finish),
        data_local_fraction: w.local_maps as f64 / w.n_maps as f64,
        timeline: w.timeline.clone(),
        first_reduce_s: w.first_reduce.map(|t| t.as_secs_f64()).unwrap_or(0.0),
        cpu_rise_s: w.cpu_rise.map(|t| t.as_secs_f64()).unwrap_or(0.0),
        speculative_copies: w.speculative_copies,
        task_reexecs: w.task_reexecs,
        nodes_lost: w.nodes_lost,
        mean_recovery_s,
        recovery_windows: w.recovery_windows.clone(),
        guard_breaker_trips: w.guard_breaker_trips,
        guard_deadline_miss: w.guard_deadline_miss,
    };
    let tel = std::mem::take(&mut sim.world_mut().tel);
    Ok((outcome, tel, engine_profile))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobs;

    #[test]
    fn wordcount_completes_on_both_platforms() {
        let e = run_job(&jobs::wordcount(Tune::Edison), &ClusterSetup::edison(35));
        let d = run_job(&jobs::wordcount(Tune::Dell), &ClusterSetup::dell(2));
        assert!(e.finish_time_s > 0.0 && d.finish_time_s > 0.0);
        // §5.2.1: Edison slower in time but more work-done-per-joule
        assert!(e.finish_time_s > d.finish_time_s, "edison {} dell {}", e.finish_time_s, d.finish_time_s);
        assert!(e.energy_j < d.energy_j, "edison {}J dell {}J", e.energy_j, d.energy_j);
    }

    #[test]
    fn pi_favors_dell_energy() {
        // §5.2.3: the compute-bound job is the one Edison loses on energy.
        let e = run_job(&jobs::pi(Tune::Edison), &ClusterSetup::edison(35));
        let d = run_job(&jobs::pi(Tune::Dell), &ClusterSetup::dell(2));
        assert!(e.finish_time_s > d.finish_time_s);
        assert!(e.energy_j > d.energy_j, "edison {}J dell {}J", e.energy_j, d.energy_j);
    }

    #[test]
    fn data_locality_is_high() {
        let e = run_job(&jobs::wordcount(Tune::Edison), &ClusterSetup::edison(35));
        assert!(e.data_local_fraction > 0.85, "locality {}", e.data_local_fraction);
    }

    #[test]
    fn optimized_wordcount_is_faster() {
        let wc = run_job(&jobs::wordcount(Tune::Edison), &ClusterSetup::edison(35));
        let wc2 = run_job(&jobs::wordcount2(Tune::Edison), &ClusterSetup::edison(35));
        assert!(
            wc2.finish_time_s < wc.finish_time_s * 0.8,
            "wc {} wc2 {}",
            wc.finish_time_s,
            wc2.finish_time_s
        );
    }

    #[test]
    fn timeline_is_recorded() {
        let e = run_job(&jobs::logcount2(Tune::Edison), &ClusterSetup::edison(8));
        assert!(!e.timeline.cpu_pct.is_empty());
        assert!(e.timeline.map_pct.points().last().unwrap().1 >= 99.9);
        assert!(e.timeline.power_w.max_value() > 8.0 * 1.40);
    }

    #[test]
    fn traced_run_matches_untraced_and_records() {
        let plain = run_job(&jobs::logcount2(Tune::Edison), &ClusterSetup::edison(4));
        let (traced, tel) =
            run_job_traced(&jobs::logcount2(Tune::Edison), &ClusterSetup::edison(4), Telemetry::on());
        // tracing must not perturb the simulation
        assert_eq!(plain.finish_time_s, traced.finish_time_s);
        assert_eq!(plain.energy_j, traced.energy_j);
        // per-phase spans, container spans, counters, power timelines
        let spans = tel.tracer.spans();
        for name in ["container_launch", "map_cpu", "shuffle_fetch", "reduce_cpu", "map_task", "reduce_task"] {
            assert!(spans.iter().any(|s| s.name == name), "missing span {name}");
        }
        let counters: Vec<_> = tel.registry.counters().collect();
        assert!(counters.iter().any(|(n, _, v)| *n == "mr_reduces_completed_total" && *v > 0));
        assert!(counters.iter().any(|(n, _, v)| *n == "sim_events_total" && *v > 0));
        assert!(tel
            .registry
            .series()
            .any(|(n, l, pts)| n == "node_power_watts"
                && l.get("node") == Some(&"slave-0".to_string())
                && !pts.is_empty()));
    }

    #[test]
    fn determinism_per_seed() {
        let a = run_job(&jobs::logcount2(Tune::Edison), &ClusterSetup::edison(4));
        let b = run_job(&jobs::logcount2(Tune::Edison), &ClusterSetup::edison(4));
        assert_eq!(a.finish_time_s, b.finish_time_s);
        assert_eq!(a.energy_j, b.energy_j);
    }

    #[test]
    fn node_crash_recovers_with_reexecution() {
        let profile = jobs::logcount2(Tune::Edison);
        let base = run_job(&profile, &ClusterSetup::edison(4));
        // crash a worker a third of the way through; bring it back 20 s
        // later (past the 5 s liveness timeout, so the RM declares it lost)
        let at = SimTime::from_secs_f64(base.finish_time_s / 3.0);
        let plan = FaultPlan::new().crash_restart(1, at, SimDuration::from_secs(20));
        let setup = ClusterSetup::edison(4).with_fault_plan(plan);
        let hit = run_job_checked(&profile, &setup).expect("crash of 1 of 4 nodes must recover");
        assert!(hit.finish_time_s >= base.finish_time_s, "losing a node cannot speed the job up");
        assert!(hit.task_reexecs > 0, "containers on the dead node must re-execute");
        assert_eq!(hit.nodes_lost, 1, "the RM should declare exactly one node lost");
        assert!(hit.mean_recovery_s > 0.0, "re-localisation must be observed as recovery");
    }

    #[test]
    fn crash_during_job_populates_fault_telemetry() {
        let profile = jobs::logcount2(Tune::Edison);
        let base = run_job(&profile, &ClusterSetup::edison(4));
        let at = SimTime::from_secs_f64(base.finish_time_s / 3.0);
        let plan = FaultPlan::new().crash_restart(2, at, SimDuration::from_secs(20));
        let setup = ClusterSetup::edison(4).with_fault_plan(plan);
        let (_, tel) =
            run_job_traced_checked(&profile, &setup, Telemetry::on()).expect("recoverable");
        let counters: Vec<_> = tel.registry.counters().collect();
        let injected: u64 = counters
            .iter()
            .filter(|(n, _, _)| *n == fault_metrics::FAULT_INJECTED_TOTAL)
            .map(|(_, _, v)| *v)
            .sum();
        assert_eq!(injected, 2, "crash + restart both inject");
        assert!(counters.iter().any(|(n, _, v)| *n == fault_metrics::NODE_LOST_TOTAL && *v == 1));
        assert!(counters.iter().any(|(n, _, v)| *n == fault_metrics::TASK_REEXEC_TOTAL && *v > 0));
        let recovered = tel
            .registry
            .histograms()
            .any(|(n, _, h)| n == fault_metrics::RECOVERY_SECONDS && h.count() > 0);
        assert!(recovered, "recovery histogram must be populated");
    }

    #[test]
    fn zero_width_crash_is_noop() {
        let profile = jobs::logcount2(Tune::Edison);
        let base = run_job(&profile, &ClusterSetup::edison(4));
        let at = SimTime::from_secs(5);
        let plan = FaultPlan::new().crash_restart(1, at, SimDuration::ZERO);
        let setup = ClusterSetup::edison(4).with_fault_plan(plan);
        let z = run_job_checked(&profile, &setup).expect("zero-width fault is a no-op");
        assert_eq!(z.finish_time_s.to_bits(), base.finish_time_s.to_bits());
        assert_eq!(z.energy_j.to_bits(), base.energy_j.to_bits());
        assert_eq!(z.task_reexecs, 0);
    }

    #[test]
    fn post_finish_fault_changes_nothing() {
        let profile = jobs::logcount2(Tune::Edison);
        let base = run_job(&profile, &ClusterSetup::edison(4));
        let at = SimTime::from_secs_f64(base.finish_time_s + 100.0);
        let plan = FaultPlan::new().crash(0, at);
        let setup = ClusterSetup::edison(4).with_fault_plan(plan);
        let late = run_job_checked(&profile, &setup).expect("post-finish fault is harmless");
        assert_eq!(late.finish_time_s.to_bits(), base.finish_time_s.to_bits());
        assert_eq!(late.energy_j.to_bits(), base.energy_j.to_bits());
    }

    #[test]
    fn losing_every_worker_is_unrecoverable() {
        let profile = jobs::logcount2(Tune::Edison);
        let at = SimTime::from_secs(30);
        let mut plan = FaultPlan::new();
        for n in 0..4 {
            plan = plan.crash(n, at);
        }
        let setup = ClusterSetup::edison(4).with_fault_plan(plan);
        match run_job_checked(&profile, &setup) {
            Err(SimError::FaultUnrecovered(msg)) => {
                assert!(msg.contains("down") || msg.contains("unreadable"), "{msg}")
            }
            other => panic!("expected FaultUnrecovered, got {other:?}"),
        }
    }

    #[test]
    fn guard_off_is_byte_identical_and_guarded_crash_trips_the_breaker() {
        let profile = jobs::logcount2(Tune::Edison);
        let base = run_job(&profile, &ClusterSetup::edison(4));
        // guard config attached but inert features off ⇒ same bytes
        let off = run_job(&profile, &ClusterSetup::edison(4).with_guard(GuardConfig::off()));
        assert_eq!(base.finish_time_s.to_bits(), off.finish_time_s.to_bits());
        assert_eq!(base.energy_j.to_bits(), off.energy_j.to_bits());
        assert_eq!(off.guard_breaker_trips, 0);
        assert_eq!(off.guard_deadline_miss, 0);
        // guarded healthy run: breaker never trips, job completes
        let healthy =
            run_job(&profile, &ClusterSetup::edison(4).with_guard(GuardConfig::mr_defaults()));
        assert_eq!(healthy.guard_breaker_trips, 0);
        // guarded crash: the RM's node-lost verdict trips the worker's
        // breaker; the job still completes and the breaker recovers
        // through the probe path (trips stay bounded)
        let at = SimTime::from_secs_f64(base.finish_time_s / 3.0);
        let plan = FaultPlan::new().crash_restart(1, at, SimDuration::from_secs(20));
        let setup = ClusterSetup::edison(4)
            .with_fault_plan(plan)
            .with_guard(GuardConfig::mr_defaults());
        let hit = run_job_checked(&profile, &setup).expect("guarded crash must recover");
        assert!(hit.guard_breaker_trips >= 1, "node-lost must trip the breaker");
        assert!(hit.task_reexecs > 0, "containers on the dead node must re-execute");
    }

    #[test]
    fn nic_degrade_slows_but_recovers() {
        let profile = jobs::terasort(Tune::Edison);
        let base = run_job(&profile, &ClusterSetup::edison(4));
        let at = SimTime::from_secs(10);
        let plan = FaultPlan::new().nic_degrade(0, at, 0.05, 4.0);
        let setup = ClusterSetup::edison(4).with_fault_plan(plan);
        let slow = run_job_checked(&profile, &setup).expect("a slow NIC is not fatal");
        assert!(
            slow.finish_time_s > base.finish_time_s,
            "shuffle-heavy job must slow down: {} vs {}",
            slow.finish_time_s,
            base.finish_time_s
        );
    }
}
