//! The full three-stage TeraSort pipeline of §5.2.4: **teragen** (map-only
//! data generation into HDFS), **terasort** (the timed stage), and
//! **teravalidate** (order checking). The paper only compares the sort
//! stage; the other two are modelled here for completeness and exercised
//! by tests and the bench harness.

use crate::engine::{run_job, ClusterSetup, JobOutcome};
use crate::jobs::{self, JobProfile, Tune};

const MIB: u64 = 1024 * 1024;

/// teragen: a map-only job that *writes* `bytes` of records into HDFS.
/// No shuffle, one "reduce" is really the commit of the final file set —
/// modelled as a single trivial reducer.
pub fn teragen(tune: Tune, bytes: u64) -> JobProfile {
    let base = jobs::terasort(tune);
    JobProfile {
        name: "teragen",
        input_files: base.input_files,
        // teragen's "input" is the row-count specification; the cost is in
        // the output path, which the engine charges via output_ratio
        input_bytes: bytes,
        map_tasks: base.input_files,
        reduce_tasks: 1,
        // record synthesis is cheap CPU
        map_mi_per_mib: base.map_mi_per_mib * 0.3,
        map_compute_mi: 0.0,
        shuffle_ratio: 1e-6,
        combiner: false,
        reduce_mi_per_mib: 1.0,
        spill_mi_per_mib: base.spill_mi_per_mib * 0.2,
        container_startup_mi: base.container_startup_mi,
        task_setup_mi: base.task_setup_mi,
        // the generated dataset lands on disk at full size
        output_ratio: 1.0,
        map_container: base.map_container,
        reduce_container: base.reduce_container,
        merge_passes: 1,
        mem_hungry: false,
    }
}

/// teravalidate: map-only order check over the sorted output (sequential
/// read + compare), one reducer collecting boundary keys.
pub fn teravalidate(tune: Tune, bytes: u64) -> JobProfile {
    let base = jobs::terasort(tune);
    JobProfile {
        name: "teravalidate",
        input_files: base.reduce_tasks, // one input per sort partition
        input_bytes: bytes,
        map_tasks: base.reduce_tasks,
        reduce_tasks: 1,
        map_mi_per_mib: base.map_mi_per_mib * 0.5,
        map_compute_mi: 0.0,
        shuffle_ratio: 1e-6,
        combiner: false,
        reduce_mi_per_mib: 1.0,
        spill_mi_per_mib: base.spill_mi_per_mib * 0.1,
        container_startup_mi: base.container_startup_mi,
        task_setup_mi: base.task_setup_mi,
        output_ratio: 1e-6,
        map_container: base.map_container,
        reduce_container: base.reduce_container,
        merge_passes: 1,
        mem_hungry: false,
    }
}

/// Outcome of the full pipeline.
#[derive(Debug, Clone)]
pub struct PipelineOutcome {
    pub teragen: JobOutcome,
    /// The stage the paper times and compares (Table 8's terasort row).
    pub terasort: JobOutcome,
    pub teravalidate: JobOutcome,
}

impl PipelineOutcome {
    /// Total wall time across the three stages.
    pub fn total_time_s(&self) -> f64 {
        self.teragen.finish_time_s + self.terasort.finish_time_s + self.teravalidate.finish_time_s
    }

    /// Total energy across the three stages.
    pub fn total_energy_j(&self) -> f64 {
        self.teragen.energy_j + self.terasort.energy_j + self.teravalidate.energy_j
    }
}

/// Run teragen → terasort → teravalidate at `bytes` scale (the paper uses
/// 10 GB; tests shrink it).
pub fn run_pipeline(tune: Tune, setup: &ClusterSetup, bytes: u64) -> PipelineOutcome {
    let setup = setup.clone().with_block(64 * MIB);
    let mut sort = jobs::terasort(tune);
    sort.input_bytes = bytes;
    PipelineOutcome {
        teragen: run_job(&teragen(tune, bytes), &setup),
        terasort: run_job(&sort, &setup),
        teravalidate: run_job(&teravalidate(tune, bytes), &setup),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GIB: u64 = 1024 * MIB;

    #[test]
    fn pipeline_runs_all_three_stages() {
        let out = run_pipeline(Tune::Edison, &ClusterSetup::edison(8), GIB);
        assert!(out.teragen.finish_time_s > 0.0);
        assert!(out.terasort.finish_time_s > 0.0);
        assert!(out.teravalidate.finish_time_s > 0.0);
        assert!(out.total_time_s() > out.terasort.finish_time_s);
    }

    #[test]
    fn sort_stage_dominates() {
        // the paper times only terasort because it is the heavy stage
        let out = run_pipeline(Tune::Dell, &ClusterSetup::dell(2), GIB);
        assert!(out.terasort.finish_time_s > out.teravalidate.finish_time_s);
        assert!(out.terasort.energy_j > 0.4 * out.total_energy_j());
    }

    #[test]
    fn teragen_is_write_bound_on_edison() {
        // 1 GiB over 8 SD cards at ≈9.3 MB/s buffered ≈ 14 s of pure disk;
        // teragen should take clearly longer than that (waves + overheads)
        // but not be CPU-crushed like the sort.
        let gen = run_job(&teragen(Tune::Edison, GIB), &ClusterSetup::edison(8).with_block(64 * MIB));
        let sort_like = run_job(
            &{
                let mut s = jobs::terasort(Tune::Edison);
                s.input_bytes = GIB;
                s
            },
            &ClusterSetup::edison(8).with_block(64 * MIB),
        );
        assert!(gen.finish_time_s < sort_like.finish_time_s);
    }
}
