//! A single-process MapReduce executor over real bytes.
//!
//! This is the correctness anchor for the cluster simulation: it runs the
//! actual `Mapper`/`Reducer` implementations through the full
//! map → (combine) → partition → sort → reduce pipeline, returns the real
//! output, and measures the data-flow statistics ([`RunStats`]) that the
//! simulation's [`crate::jobs::JobProfile`]s encode. A test below checks
//! profile ratios against measured ratios on generated data.

use crate::jobs::{Mapper, Pair, Reducer};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Data-flow statistics of a real run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunStats {
    /// Total input bytes mapped.
    pub input_bytes: u64,
    /// Pairs emitted by mappers (pre-combine).
    pub map_output_records: u64,
    /// Bytes emitted by mappers (keys + values, pre-combine).
    pub map_output_bytes: u64,
    /// Pairs after per-split combining (= map output when no combiner).
    pub shuffle_records: u64,
    /// Bytes after combining.
    pub shuffle_bytes: u64,
    /// Final output pairs.
    pub output_records: u64,
    /// Final output bytes.
    pub output_bytes: u64,
}

impl RunStats {
    /// shuffle bytes / input bytes — the simulation's `shuffle_ratio`.
    pub fn shuffle_ratio(&self) -> f64 {
        self.shuffle_bytes as f64 / self.input_bytes.max(1) as f64
    }

    /// output bytes / input bytes.
    pub fn output_ratio(&self) -> f64 {
        self.output_bytes as f64 / self.input_bytes.max(1) as f64
    }
}

/// Hash partitioner (Hadoop's default).
pub fn partition(key: &[u8], n_reduce: usize) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() % n_reduce as u64) as usize
}

fn pair_bytes(p: &Pair) -> u64 {
    (p.0.len() + p.1.len()) as u64
}

/// Group sorted pairs by key and apply a reducer.
fn reduce_group(reducer: &dyn Reducer, pairs: &mut Vec<Pair>, out: &mut Vec<Pair>) {
    pairs.sort();
    let mut i = 0;
    while i < pairs.len() {
        let key = pairs[i].0.clone();
        let mut j = i;
        while j < pairs.len() && pairs[j].0 == key {
            j += 1;
        }
        let values: Vec<Vec<u8>> = pairs[i..j].iter().map(|p| p.1.clone()).collect();
        reducer.reduce(&key, &values, &mut |k, v| out.push((k, v)));
        i = j;
    }
}

/// Run a full job on in-memory splits. Returns per-reducer sorted outputs
/// and the measured statistics.
pub fn run_local(
    mapper: &dyn Mapper,
    reducer: &dyn Reducer,
    combiner: Option<&dyn Reducer>,
    splits: &[Vec<u8>],
    n_reduce: usize,
) -> (Vec<Vec<Pair>>, RunStats) {
    assert!(n_reduce >= 1);
    let mut stats = RunStats::default();
    let mut partitions: Vec<Vec<Pair>> = vec![Vec::new(); n_reduce];
    for split in splits {
        stats.input_bytes += split.len() as u64;
        let mut emitted: Vec<Pair> = Vec::new();
        mapper.map(split, &mut |k, v| emitted.push((k, v)));
        stats.map_output_records += emitted.len() as u64;
        stats.map_output_bytes += emitted.iter().map(pair_bytes).sum::<u64>();
        let shuffled: Vec<Pair> = if let Some(c) = combiner {
            let mut combined = Vec::new();
            reduce_group(c, &mut emitted, &mut combined);
            combined
        } else {
            emitted
        };
        stats.shuffle_records += shuffled.len() as u64;
        stats.shuffle_bytes += shuffled.iter().map(pair_bytes).sum::<u64>();
        for p in shuffled {
            let r = partition(&p.0, n_reduce);
            partitions[r].push(p);
        }
    }
    let mut outputs = Vec::with_capacity(n_reduce);
    for mut part in partitions {
        let mut out = Vec::new();
        reduce_group(reducer, &mut part, &mut out);
        stats.output_records += out.len() as u64;
        stats.output_bytes += out.iter().map(pair_bytes).sum::<u64>();
        outputs.push(out);
    }
    (outputs, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen;
    use crate::jobs::*;
    use edison_simcore::rng::SimRng;
    use std::collections::HashMap;

    fn u64_of(v: &[u8]) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(v);
        u64::from_be_bytes(b)
    }

    #[test]
    fn wordcount_matches_oracle() {
        let mut rng = SimRng::new(7);
        let splits: Vec<Vec<u8>> = (0..4)
            .map(|_| datagen::corpus_file(20_000, &mut rng).into_bytes())
            .collect();
        // oracle: plain hash-map count
        let mut oracle: HashMap<Vec<u8>, u64> = HashMap::new();
        for s in &splits {
            for w in s.split(|b| b.is_ascii_whitespace()).filter(|w| !w.is_empty()) {
                *oracle.entry(w.to_vec()).or_insert(0) += 1;
            }
        }
        let (outputs, stats) = run_local(&WordCountMapper, &SumReducer, None, &splits, 7);
        let mut got: HashMap<Vec<u8>, u64> = HashMap::new();
        for part in &outputs {
            for (k, v) in part {
                assert!(got.insert(k.clone(), u64_of(v)).is_none(), "key split across reducers");
            }
        }
        assert_eq!(got, oracle);
        assert_eq!(stats.map_output_records, oracle.values().sum::<u64>());
    }

    #[test]
    fn combiner_preserves_output_and_shrinks_shuffle() {
        let mut rng = SimRng::new(8);
        let splits: Vec<Vec<u8>> = (0..4)
            .map(|_| datagen::corpus_file(30_000, &mut rng).into_bytes())
            .collect();
        let (no_comb, s1) = run_local(&WordCountMapper, &SumReducer, None, &splits, 5);
        let (with_comb, s2) =
            run_local(&WordCountMapper, &SumReducer, Some(&SumReducer), &splits, 5);
        assert_eq!(no_comb, with_comb, "combiner must not change results");
        assert!(
            s2.shuffle_bytes < s1.shuffle_bytes / 2,
            "combiner should shrink shuffle: {} vs {}",
            s2.shuffle_bytes,
            s1.shuffle_bytes
        );
        assert_eq!(s1.output_bytes, s2.output_bytes);
    }

    #[test]
    fn logcount_counts_date_level_pairs() {
        let mut rng = SimRng::new(9);
        let splits: Vec<Vec<u8>> =
            (0..3).map(|_| datagen::log_file(30_000, &mut rng).into_bytes()).collect();
        let (outputs, stats) =
            run_local(&LogCountMapper, &SumReducer, Some(&SumReducer), &splits, 4);
        let total: u64 = outputs.iter().flatten().map(|(_, v)| u64_of(v)).sum();
        let lines: u64 = splits
            .iter()
            .map(|s| s.split(|&b| b == b'\n').filter(|l| !l.is_empty()).count() as u64)
            .sum();
        assert_eq!(total, lines, "every line counted once");
        // shuffle is small relative to input — the logcount property. On
        // these 30 KB test splits the key set (~120) is large relative to
        // the input; at the paper's 2 MiB splits the ratio drops to ~1e-3.
        assert!(stats.shuffle_ratio() < 0.1, "ratio {}", stats.shuffle_ratio());
        assert!(stats.shuffle_records <= 3 * 120, "distinct keys bounded");
    }

    #[test]
    fn pi_job_estimates_pi_via_pipeline() {
        let splits: Vec<Vec<u8>> =
            (0..8).map(|i| format!("50000 {i}").into_bytes()).collect();
        let (outputs, _) = run_local(&PiMapper, &SumReducer, None, &splits, 1);
        let mut inside = 0;
        let mut outside = 0;
        for (k, v) in &outputs[0] {
            match k.as_slice() {
                b"in" => inside = u64_of(v),
                b"out" => outside = u64_of(v),
                other => panic!("unexpected key {other:?}"),
            }
        }
        assert_eq!(inside + outside, 400_000);
        let est = pi_from_counts(inside, outside);
        assert!((est - std::f64::consts::PI).abs() < 0.02, "pi ≈ {est}");
    }

    #[test]
    fn terasort_produces_globally_extractable_sorted_runs() {
        let mut rng = SimRng::new(10);
        let recs = datagen::teragen_records(500, &mut rng);
        let flat: Vec<u8> = recs.iter().flatten().copied().collect();
        let splits: Vec<Vec<u8>> = flat.chunks(100 * 50).map(|c| c.to_vec()).collect();
        let (outputs, stats) = run_local(&TeraSortMapper, &IdentityReducer, None, &splits, 4);
        // each partition sorted
        for part in &outputs {
            for w in part.windows(2) {
                assert!(w[0].0 <= w[1].0, "partition not sorted");
            }
        }
        // validate record conservation
        let total: usize = outputs.iter().map(|p| p.len()).sum();
        assert_eq!(total, 500);
        assert!((stats.shuffle_ratio() - 1.0).abs() < 0.05);
    }

    #[test]
    fn measured_ratios_match_job_profiles() {
        // The combiner's shuffle reduction strengthens with split size
        // (vocabulary saturates): measure two sizes, check the trend, and
        // check the no-combiner ratio matches the wordcount profile at any
        // scale. The wordcount2 profile value (0.06) corresponds to the
        // paper's 15 MiB splits, below what a unit test can afford; the
        // trend plus the small-split value bound it.
        let mut rng = SimRng::new(11);
        let small: Vec<Vec<u8>> = (0..4)
            .map(|_| datagen::corpus_file(64_000, &mut rng).into_bytes())
            .collect();
        let large: Vec<Vec<u8>> = (0..2)
            .map(|_| datagen::corpus_file(1_000_000, &mut rng).into_bytes())
            .collect();
        let (_, s_small) = run_local(&WordCountMapper, &SumReducer, Some(&SumReducer), &small, 4);
        let (_, s_large) = run_local(&WordCountMapper, &SumReducer, Some(&SumReducer), &large, 4);
        assert!(
            s_large.shuffle_ratio() < s_small.shuffle_ratio(),
            "combiner must strengthen with split size: {} vs {}",
            s_large.shuffle_ratio(),
            s_small.shuffle_ratio()
        );
        let profile = wordcount2(Tune::Edison);
        assert!(
            profile.shuffle_ratio < s_large.shuffle_ratio(),
            "paper-scale profile ({}) must sit below the 1 MB-split ratio ({})",
            profile.shuffle_ratio,
            s_large.shuffle_ratio()
        );
        // The no-combiner ratio must obey the serialization arithmetic:
        // each token of mean length w (w+1 input bytes with separator)
        // emits w key bytes + 8 value bytes. Our synthetic corpus has
        // short words (w ≈ 3.2 → ratio ≈ 2.7); the paper's English text
        // with IntWritable values sits near the profile's 1.1.
        let (_, raw) = run_local(&WordCountMapper, &SumReducer, None, &large, 4);
        let mean_word = raw.input_bytes as f64 / raw.map_output_records as f64 - 1.0;
        let expected = (mean_word + 8.0) / (mean_word + 1.0);
        assert!(
            (raw.shuffle_ratio() - expected).abs() < 0.2,
            "raw {} vs serialization arithmetic {expected}",
            raw.shuffle_ratio(),
        );
        let wc = wordcount(Tune::Edison);
        assert!(wc.shuffle_ratio > 1.0 && wc.shuffle_ratio < expected);
    }

    #[test]
    fn partitioner_is_deterministic_and_spread() {
        let keys: Vec<Vec<u8>> = (0..1000).map(|i| format!("key{i}").into_bytes()).collect();
        let mut counts = vec![0usize; 8];
        for k in &keys {
            let p = partition(k, 8);
            assert_eq!(p, partition(k, 8));
            counts[p] += 1;
        }
        assert!(counts.iter().all(|&c| c > 60), "skewed partitions: {counts:?}");
    }
}
