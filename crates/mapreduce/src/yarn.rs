//! YARN-style container scheduling.
//!
//! The resource manager grants containers on heartbeats (1 s cadence),
//! bounded by each node's schedulable memory and a 2×-vcore container cap
//! (the paper deliberately runs "two or even more containers … on each
//! virtual core" when memory allows). Requested reduce containers outrank
//! map containers — Hadoop's YARN priorities (10 vs 20) — but are capped
//! by the AM's ramp-up allowance while maps remain pending; maps prefer
//! data-local nodes. This policy mix yields the paper's ≈95 %
//! data-locality, its container-allocation waves, and the reduce-phase
//! start times of Figures 12–17.

use edison_simcore::time::{SimDuration, SimTime};

/// The resource manager's liveness view of the slave nodes.
///
/// Nodes report on every scheduler heartbeat; a node silent for longer
/// than the timeout is declared **lost** exactly once (via [`sweep`]),
/// which is the RM's cue to re-queue the containers it had placed there.
/// A restarted node re-registers through [`revive`]. The RM deliberately
/// lags physical reality: between a crash and the sweep that notices it,
/// containers already placed on the dead node count as running — exactly
/// YARN's behaviour — and only the reap that follows the sweep (or a
/// restarted nodemanager reporting in early) re-queues them.
///
/// [`sweep`]: LivenessTracker::sweep
/// [`revive`]: LivenessTracker::revive
#[derive(Debug, Clone)]
pub struct LivenessTracker {
    last_seen: Vec<SimTime>,
    timeout: SimDuration,
    lost: Vec<bool>,
}

impl LivenessTracker {
    /// Track `nodes` slaves with the given silence timeout.
    pub fn new(nodes: usize, timeout: SimDuration) -> Self {
        LivenessTracker { last_seen: vec![SimTime::ZERO; nodes], timeout, lost: vec![false; nodes] }
    }

    /// Record a heartbeat from `node`.
    pub fn beat(&mut self, node: usize, now: SimTime) {
        self.last_seen[node] = now;
    }

    /// Declare nodes silent past the timeout as lost; returns the nodes
    /// newly lost this sweep (index order, each reported exactly once).
    pub fn sweep(&mut self, now: SimTime) -> Vec<usize> {
        let mut newly = Vec::new();
        for i in 0..self.last_seen.len() {
            if !self.lost[i] && now.saturating_since(self.last_seen[i]) > self.timeout {
                self.lost[i] = true;
                newly.push(i);
            }
        }
        newly
    }

    /// Re-register a node (restart): it is alive and schedulable again.
    pub fn revive(&mut self, node: usize, now: SimTime) {
        self.lost[node] = false;
        self.last_seen[node] = now;
    }

    /// Whether the RM currently considers `node` lost.
    pub fn is_lost(&self, node: usize) -> bool {
        self.lost[node]
    }

    /// Nodes currently declared lost.
    pub fn lost_count(&self) -> usize {
        self.lost.iter().filter(|&&l| l).count()
    }
}

/// Free capacity of one node, as seen by the scheduler.
#[derive(Debug, Clone, Copy)]
pub struct NodeCapacity {
    /// Bytes of schedulable container memory currently free.
    pub free_mem: u64,
    /// Containers currently running on the node.
    pub running: u32,
    /// Hard cap on concurrent containers (2 × vcores).
    pub max_containers: u32,
}

impl NodeCapacity {
    /// Can this node host one more container of `mem` bytes?
    pub fn fits(&self, mem: u64) -> bool {
        self.running < self.max_containers && self.free_mem >= mem
    }

    /// Claim a container of `mem` bytes.
    pub fn claim(&mut self, mem: u64) {
        debug_assert!(self.fits(mem));
        self.free_mem -= mem;
        self.running += 1;
    }
}

/// One pending task from the scheduler's perspective.
#[derive(Debug, Clone, Copy)]
pub struct PendingTask {
    /// Engine task index.
    pub task: usize,
    /// Container memory demand, bytes.
    pub mem: u64,
    /// True for map tasks (scheduled with priority).
    pub is_map: bool,
}

/// A grant decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// Engine task index.
    pub task: usize,
    /// Node the container was placed on.
    pub node: usize,
    /// Whether the placement was data-local (always true for reduces).
    pub local: bool,
}

/// One heartbeat round: assign as many pending tasks as capacity allows.
///
/// `is_local(task, node)` reports data locality. Pending tasks must be in
/// deterministic order; nodes are scanned in index order.
///
/// Priority follows Hadoop's MRAppMaster: **reduce requests outrank map
/// requests** (YARN priority 10 vs 20) but reducers may claim at most
/// `reduce_mem_allowance` bytes this round (the AM's ramp-up limit while
/// maps are pending — pass `u64::MAX` once all maps have been granted).
/// Within each class: data-local placements first, then least-loaded
/// remote placement.
pub fn heartbeat(
    pending: &[PendingTask],
    capacity: &mut [NodeCapacity],
    reduce_mem_allowance: u64,
    is_local: impl Fn(usize, usize) -> bool,
) -> Vec<Grant> {
    let mut grants = Vec::new();
    let mut taken = vec![false; pending.len()];
    let mut reduce_budget = reduce_mem_allowance;

    // priority classes: reduces first (Hadoop priority 10 < 20), then maps
    for want_map in [false, true] {
        // pass 1: data-local placements (maps only — reduces have no data
        // affinity)
        for (pi, p) in pending.iter().enumerate() {
            if taken[pi] || p.is_map != want_map || !want_map {
                continue;
            }
            for (ni, cap) in capacity.iter_mut().enumerate() {
                if cap.fits(p.mem) && is_local(p.task, ni) {
                    cap.claim(p.mem);
                    grants.push(Grant { task: p.task, node: ni, local: true });
                    taken[pi] = true;
                    break;
                }
            }
        }
        // pass 2: any placement
        for (pi, p) in pending.iter().enumerate() {
            if taken[pi] || p.is_map != want_map {
                continue;
            }
            if !p.is_map && p.mem > reduce_budget {
                continue; // ramp-up limit reached this round
            }
            // least-loaded-first among fitting nodes keeps waves level
            let best = capacity
                .iter()
                .enumerate()
                .filter(|(_, c)| c.fits(p.mem))
                .min_by_key(|(ni, c)| (c.running, *ni))
                .map(|(ni, _)| ni);
            if let Some(ni) = best {
                capacity[ni].claim(p.mem);
                let local = want_map && is_local(p.task, ni);
                grants.push(Grant { task: p.task, node: ni, local });
                taken[pi] = true;
                if !p.is_map {
                    reduce_budget = reduce_budget.saturating_sub(p.mem);
                }
            }
        }
    }
    grants
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1024 * 1024;

    fn caps(n: usize, free_mb: u64, max: u32) -> Vec<NodeCapacity> {
        (0..n)
            .map(|_| NodeCapacity { free_mem: free_mb * MB, running: 0, max_containers: max })
            .collect()
    }

    #[test]
    fn grants_respect_memory() {
        let mut capacity = caps(1, 600, 4);
        let pending: Vec<PendingTask> = (0..10)
            .map(|t| PendingTask { task: t, mem: 150 * MB, is_map: true })
            .collect();
        let grants = heartbeat(&pending, &mut capacity, u64::MAX, |_, _| true);
        assert_eq!(grants.len(), 4, "600 MB / 150 MB = 4 containers");
        assert_eq!(capacity[0].free_mem, 0);
    }

    #[test]
    fn grants_respect_container_cap() {
        let mut capacity = caps(1, 10_000, 4);
        let pending: Vec<PendingTask> =
            (0..10).map(|t| PendingTask { task: t, mem: MB, is_map: true }).collect();
        let grants = heartbeat(&pending, &mut capacity, u64::MAX, |_, _| false);
        assert_eq!(grants.len(), 4);
    }

    #[test]
    fn local_placement_preferred() {
        let mut capacity = caps(4, 600, 4);
        let pending = vec![PendingTask { task: 0, mem: 150 * MB, is_map: true }];
        // task 0 is local only to node 3
        let grants = heartbeat(&pending, &mut capacity, u64::MAX, |_, n| n == 3);
        assert_eq!(grants, vec![Grant { task: 0, node: 3, local: true }]);
    }

    #[test]
    fn remote_fallback_when_local_node_full() {
        let mut capacity = caps(2, 600, 1);
        capacity[1].running = 1; // local node full
        let pending = vec![PendingTask { task: 0, mem: 150 * MB, is_map: true }];
        let grants = heartbeat(&pending, &mut capacity, u64::MAX, |_, n| n == 1);
        assert_eq!(grants.len(), 1);
        assert_eq!(grants[0].node, 0);
        assert!(!grants[0].local);
    }

    #[test]
    fn reduces_outrank_maps_within_allowance() {
        // Hadoop's reduce priority: the reducer is granted first, maps
        // fill what remains.
        let mut capacity = caps(1, 450, 8);
        let pending = vec![
            PendingTask { task: 0, mem: 300 * MB, is_map: false },
            PendingTask { task: 1, mem: 150 * MB, is_map: true },
            PendingTask { task: 2, mem: 150 * MB, is_map: true },
        ];
        let grants = heartbeat(&pending, &mut capacity, u64::MAX, |_, _| true);
        let ids: Vec<usize> = grants.iter().map(|g| g.task).collect();
        assert_eq!(ids, vec![0, 1], "reduce first, then one map fits");
    }

    #[test]
    fn rampup_allowance_holds_reduces_back() {
        // With a zero allowance, maps take everything even though the
        // reduce outranks them.
        let mut capacity = caps(1, 450, 8);
        let pending = vec![
            PendingTask { task: 0, mem: 300 * MB, is_map: false },
            PendingTask { task: 1, mem: 150 * MB, is_map: true },
            PendingTask { task: 2, mem: 150 * MB, is_map: true },
        ];
        let grants = heartbeat(&pending, &mut capacity, 0, |_, _| true);
        let ids: Vec<usize> = grants.iter().map(|g| g.task).collect();
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    fn rampup_allowance_is_respected_partially() {
        // allowance for exactly one reducer: the second waits
        let mut capacity = caps(2, 600, 8);
        let pending = vec![
            PendingTask { task: 0, mem: 300 * MB, is_map: false },
            PendingTask { task: 1, mem: 300 * MB, is_map: false },
            PendingTask { task: 2, mem: 150 * MB, is_map: true },
        ];
        let grants = heartbeat(&pending, &mut capacity, 300 * MB, |_, _| true);
        let reduces = grants.iter().filter(|g| g.task < 2).count();
        assert_eq!(reduces, 1);
        assert!(grants.iter().any(|g| g.task == 2), "map still granted");
    }

    #[test]
    fn liveness_declares_loss_once_and_revives() {
        use edison_simcore::time::{SimDuration, SimTime};
        let t = |s| SimTime::from_secs(s);
        let mut lv = LivenessTracker::new(3, SimDuration::from_secs(5));
        for s in 0..4 {
            for n in 0..3 {
                lv.beat(n, t(s));
            }
        }
        // node 1 goes silent after t=3
        for s in 4..9 {
            lv.beat(0, t(s));
            lv.beat(2, t(s));
            assert!(lv.sweep(t(s)).is_empty(), "not silent long enough at {s}s");
        }
        assert_eq!(lv.sweep(t(9)), vec![1], "silent > 5 s");
        assert!(lv.is_lost(1));
        assert_eq!(lv.lost_count(), 1);
        assert!(lv.sweep(t(10)).is_empty(), "reported exactly once");
        lv.revive(1, t(11));
        assert!(!lv.is_lost(1));
        assert!(lv.sweep(t(12)).is_empty());
    }

    #[test]
    fn deterministic_given_same_inputs() {
        let pending: Vec<PendingTask> = (0..20)
            .map(|t| PendingTask { task: t, mem: 150 * MB, is_map: t % 3 != 0 })
            .collect();
        let mut c1 = caps(5, 600, 4);
        let mut c2 = caps(5, 600, 4);
        let g1 = heartbeat(&pending, &mut c1, u64::MAX, |t, n| t % 5 == n);
        let g2 = heartbeat(&pending, &mut c2, u64::MAX, |t, n| t % 5 == n);
        assert_eq!(g1, g2);
    }
}
