//! The paper's six MapReduce jobs, in two coupled forms:
//!
//! 1. **Executable logic** — real `Mapper` / `Reducer` implementations that
//!    run on real bytes through [`crate::local::run_local`]; tests verify
//!    output against independent oracles.
//! 2. **A [`JobProfile`]** — the per-byte/per-record cost statistics that
//!    drive the cluster simulation at paper scale. A test in
//!    `crate::local` checks the profile's data ratios against statistics
//!    extracted from real runs of form 1.
//!
//! Job variants (§5.2): `wordcount` (no combiner, one container per input
//! file), `wordcount2` (CombineFileInputFormat + combiner), `logcount`
//! (combiner, 500 small files), `logcount2` (combined inputs), `pi`
//! (compute-only), `terasort` (full-shuffle sort).

use edison_hw::calib;
use edison_simcore::rng::SimRng;
use edison_simrun::SimError;

/// Platform-specific job tuning (the paper hand-tunes both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tune {
    /// Edison cluster: 16 MB blocks, small containers, 2 vcores/node.
    Edison,
    /// Dell cluster: 64 MB blocks, 1 GB containers, 12 vcores/node.
    Dell,
}

const MIB: u64 = 1024 * 1024;

/// Select the per-platform cost for a tuning.
fn pick(tune: Tune, c: calib::PerPlatform) -> f64 {
    match tune {
        Tune::Edison => c.edison,
        Tune::Dell => c.dell,
    }
}

/// Statistical profile of a job — everything the cluster simulation needs.
#[derive(Debug, Clone)]
pub struct JobProfile {
    /// Job name (matches Table 8 rows).
    pub name: &'static str,
    /// Input files on HDFS.
    pub input_files: u32,
    /// Total input bytes.
    pub input_bytes: u64,
    /// Map tasks (one per file without CombineFileInputFormat; one per
    /// max-split with it).
    pub map_tasks: u32,
    /// Reduce tasks.
    pub reduce_tasks: u32,
    /// Map CPU per MiB of input, MI.
    pub map_mi_per_mib: f64,
    /// Fixed per-map-task CPU, MI (pi's sample loop).
    pub map_compute_mi: f64,
    /// (map output after combine) / input bytes.
    pub shuffle_ratio: f64,
    /// Whether a combiner runs (costs map-side CPU on the pre-combine
    /// output).
    pub combiner: bool,
    /// Reduce CPU per MiB of shuffled data, MI.
    pub reduce_mi_per_mib: f64,
    /// Sort/spill CPU per MiB of pre-combine map output, MI.
    pub spill_mi_per_mib: f64,
    /// Container start-up CPU (JVM launch), MI.
    pub container_startup_mi: f64,
    /// Fixed per-task CPU (AM round trips, committer), MI.
    pub task_setup_mi: f64,
    /// Final output bytes / input bytes.
    pub output_ratio: f64,
    /// Container memory for map tasks, bytes.
    pub map_container: u64,
    /// Container memory for reduce tasks, bytes.
    pub reduce_container: u64,
    /// External-merge passes on the reduce side (terasort's memory-bound
    /// merge re-reads spilled runs).
    pub merge_passes: u32,
    /// Working set near the container limit → GC tax (terasort).
    pub mem_hungry: bool,
}

impl JobProfile {
    /// Total map-output bytes after combining.
    pub fn shuffle_bytes(&self) -> u64 {
        (self.input_bytes as f64 * self.shuffle_ratio) as u64
    }

    /// Final output bytes.
    pub fn output_bytes(&self) -> u64 {
        (self.input_bytes as f64 * self.output_ratio) as u64
    }

    /// Input bytes of one map split (uniform split assumption).
    pub fn split_bytes(&self) -> u64 {
        self.input_bytes / self.map_tasks as u64
    }

    /// Re-split the job into `n` map tasks, preserving total work (the
    /// paper re-tunes split counts per cluster size for the combined-input
    /// jobs and pi so each vcore gets exactly one container).
    ///
    /// Per-task fixed compute (pi's sample loop) is rescaled so the total
    /// sample count is invariant.
    pub fn with_map_tasks(mut self, n: u32) -> Self {
        assert!(n >= 1);
        let total_compute = self.map_compute_mi * self.map_tasks as f64;
        self.map_tasks = n;
        self.map_compute_mi = total_compute / n as f64;
        self
    }
}

/// The Table 8 job names, in paper row order.
pub const JOB_NAMES: [&str; 6] =
    ["wordcount", "wordcount2", "logcount", "logcount2", "pi", "terasort"];

/// Resolve a Table 8 job name to its profile; unknown names surface as a
/// typed [`SimError::UnknownJob`] instead of a panic.
pub fn by_name(name: &str, tune: Tune) -> Result<JobProfile, SimError> {
    match name {
        "wordcount" => Ok(wordcount(tune)),
        "wordcount2" => Ok(wordcount2(tune)),
        "logcount" => Ok(logcount(tune)),
        "logcount2" => Ok(logcount2(tune)),
        "pi" => Ok(pi(tune)),
        "terasort" => Ok(terasort(tune)),
        other => Err(SimError::UnknownJob(other.to_string())),
    }
}

/// §5.2.1 wordcount: 200 files, 1 GB, no combiner, no input combining —
/// 200 map containers.
pub fn wordcount(tune: Tune) -> JobProfile {
    let (map_c, red_c, reduces) = match tune {
        Tune::Edison => (150 * MIB, 300 * MIB, 70),
        Tune::Dell => (500 * MIB, 1024 * MIB, 24),
    };
    JobProfile {
        name: "wordcount",
        input_files: 200,
        input_bytes: 1024 * MIB,
        map_tasks: 200,
        reduce_tasks: reduces,
        map_mi_per_mib: pick(tune, calib::WORDCOUNT_MAP_MI_PER_MIB),
        map_compute_mi: 0.0,
        // serialized (word, 1) pairs slightly exceed the input text
        shuffle_ratio: 1.1,
        combiner: false,
        reduce_mi_per_mib: pick(tune, calib::WORDCOUNT_REDUCE_MI_PER_MIB),
        spill_mi_per_mib: pick(tune, calib::SPILL_SORT_MI_PER_MIB),
        container_startup_mi: pick(tune, calib::CONTAINER_STARTUP_MI),
        task_setup_mi: pick(tune, calib::TASK_SETUP_MI),
        output_ratio: 0.04,
        map_container: map_c,
        reduce_container: red_c,
        merge_passes: 1,
        mem_hungry: false,
    }
}

/// §5.2.1 wordcount2: CombineFileInputFormat (15 MB / 44 MB max splits →
/// one container per vcore) + combiner.
pub fn wordcount2(tune: Tune) -> JobProfile {
    let base = wordcount(tune);
    let (splits, map_c, red_c) = match tune {
        // 35 nodes × 2 vcores = 70 splits of ≈15 MB
        Tune::Edison => (70, 300 * MIB, 300 * MIB),
        // 2 nodes × 12 vcores = 24 splits of ≈44 MB
        Tune::Dell => (24, 1024 * MIB, 1024 * MIB),
    };
    JobProfile {
        name: "wordcount2",
        map_tasks: splits,
        // the combiner collapses per-split duplicates: the Zipf vocabulary
        // reduces output to a few percent of the input
        shuffle_ratio: 0.06,
        combiner: true,
        map_container: map_c,
        reduce_container: red_c,
        ..base
    }
}

/// §5.2.2 logcount: 500 log files, 1 GB, combiner present from the start
/// (it is the example's whole point) but no input combining.
pub fn logcount(tune: Tune) -> JobProfile {
    let (map_c, red_c, reduces) = match tune {
        Tune::Edison => (150 * MIB, 300 * MIB, 70),
        Tune::Dell => (500 * MIB, 1024 * MIB, 24),
    };
    JobProfile {
        name: "logcount",
        input_files: 500,
        input_bytes: 1024 * MIB,
        map_tasks: 500,
        reduce_tasks: reduces,
        map_mi_per_mib: pick(tune, calib::LOGCOUNT_MAP_MI_PER_MIB),
        map_compute_mi: 0.0,
        // one (date, level) key per line, combined per split: ≤120 keys ×
        // ~24 B per 2 MiB split → ~1.4e-3 of the input
        shuffle_ratio: 1.4e-3,
        combiner: true,
        reduce_mi_per_mib: pick(tune, calib::LOGCOUNT_REDUCE_MI_PER_MIB),
        spill_mi_per_mib: pick(tune, calib::SPILL_SORT_MI_PER_MIB),
        container_startup_mi: pick(tune, calib::CONTAINER_STARTUP_MI),
        task_setup_mi: pick(tune, calib::TASK_SETUP_MI),
        output_ratio: 1e-5,
        map_container: map_c,
        reduce_container: red_c,
        merge_passes: 1,
        mem_hungry: false,
    }
}

/// §5.2.2 logcount2: combined splits, one container per vcore.
pub fn logcount2(tune: Tune) -> JobProfile {
    let base = logcount(tune);
    let (splits, map_c, red_c) = match tune {
        Tune::Edison => (70, 300 * MIB, 300 * MIB),
        Tune::Dell => (24, 1024 * MIB, 1024 * MIB),
    };
    JobProfile {
        name: "logcount2",
        map_tasks: splits,
        map_container: map_c,
        reduce_container: red_c,
        ..base
    }
}

/// Total Monte-Carlo samples in the pi job (§5.2.3).
pub const PI_TOTAL_SAMPLES: u64 = 10_000_000_000;

/// §5.2.3 pi estimation: compute-only, 70/24 map containers, 1 reducer.
pub fn pi(tune: Tune) -> JobProfile {
    let (maps, map_c) = match tune {
        Tune::Edison => (70, 300 * MIB),
        Tune::Dell => (24, 1024 * MIB),
    };
    let msamples_per_map = PI_TOTAL_SAMPLES as f64 / 1e6 / maps as f64;
    JobProfile {
        name: "pi",
        input_files: maps,
        // tiny seed inputs; the work is the sample loop
        input_bytes: maps as u64 * 1024,
        map_tasks: maps,
        reduce_tasks: 1,
        map_mi_per_mib: 0.0,
        map_compute_mi: msamples_per_map * pick(tune, calib::PI_MI_PER_MSAMPLE),
        shuffle_ratio: 0.001,
        combiner: false,
        reduce_mi_per_mib: 1.0,
        spill_mi_per_mib: 1.0,
        container_startup_mi: pick(tune, calib::CONTAINER_STARTUP_MI),
        task_setup_mi: pick(tune, calib::TASK_SETUP_MI),
        output_ratio: 0.001,
        map_container: map_c,
        reduce_container: map_c,
        merge_passes: 1,
        mem_hungry: false,
    }
}

/// §5.2.4 terasort (sort stage): 10 GB, 64 MB blocks on both platforms →
/// 168 map tasks; full shuffle; memory-hungry merge.
pub fn terasort(tune: Tune) -> JobProfile {
    let (map_c, red_c, reduces) = match tune {
        Tune::Edison => (300 * MIB, 300 * MIB, 70),
        Tune::Dell => (1024 * MIB, 1024 * MIB, 24),
    };
    // 300 MB Edison reduce containers force an external merge pass; the
    // Dell's 1 GB containers merge their 427 MiB partitions in memory
    let merge_passes = match tune {
        Tune::Edison => 2,
        Tune::Dell => 1,
    };
    JobProfile {
        name: "terasort",
        input_files: 168,
        input_bytes: 10 * 1024 * MIB,
        map_tasks: 168,
        reduce_tasks: reduces,
        map_mi_per_mib: pick(tune, calib::TERASORT_MAP_MI_PER_MIB),
        map_compute_mi: 0.0,
        shuffle_ratio: 1.0,
        combiner: false,
        reduce_mi_per_mib: pick(tune, calib::TERASORT_REDUCE_MI_PER_MIB),
        spill_mi_per_mib: pick(tune, calib::SPILL_SORT_MI_PER_MIB),
        container_startup_mi: pick(tune, calib::CONTAINER_STARTUP_MI),
        task_setup_mi: pick(tune, calib::TASK_SETUP_MI),
        output_ratio: 1.0,
        map_container: map_c,
        reduce_container: red_c,
        merge_passes,
        mem_hungry: true,
    }
}

/// All six Table 8 jobs in row order.
pub fn table8_jobs(tune: Tune) -> Vec<JobProfile> {
    vec![
        wordcount(tune),
        wordcount2(tune),
        logcount(tune),
        logcount2(tune),
        pi(tune),
        terasort(tune),
    ]
}

// ---------------------------------------------------------------------------
// Executable logic (real data path)
// ---------------------------------------------------------------------------

/// A key-value pair flowing between map and reduce.
pub type Pair = (Vec<u8>, Vec<u8>);

/// Executable map logic.
pub trait Mapper {
    /// Map one input chunk, emitting pairs.
    fn map(&self, input: &[u8], emit: &mut dyn FnMut(Vec<u8>, Vec<u8>));
}

/// Executable reduce (and combine) logic.
pub trait Reducer {
    /// Reduce all values of one key, emitting output pairs.
    fn reduce(&self, key: &[u8], values: &[Vec<u8>], emit: &mut dyn FnMut(Vec<u8>, Vec<u8>));
}

fn encode_u64(v: u64) -> Vec<u8> {
    v.to_be_bytes().to_vec()
}

fn decode_u64(v: &[u8]) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(v);
    u64::from_be_bytes(b)
}

/// wordcount map: one `(word, 1)` per whitespace token.
pub struct WordCountMapper;

impl Mapper for WordCountMapper {
    fn map(&self, input: &[u8], emit: &mut dyn FnMut(Vec<u8>, Vec<u8>)) {
        for tok in input.split(|b| b.is_ascii_whitespace()) {
            if !tok.is_empty() {
                emit(tok.to_vec(), encode_u64(1));
            }
        }
    }
}

/// Sums counts — wordcount/logcount reducer *and* combiner.
pub struct SumReducer;

impl Reducer for SumReducer {
    fn reduce(&self, key: &[u8], values: &[Vec<u8>], emit: &mut dyn FnMut(Vec<u8>, Vec<u8>)) {
        let total: u64 = values.iter().map(|v| decode_u64(v)).sum();
        emit(key.to_vec(), encode_u64(total));
    }
}

/// logcount map: `(date ++ " " ++ level, 1)` per log line.
pub struct LogCountMapper;

impl Mapper for LogCountMapper {
    fn map(&self, input: &[u8], emit: &mut dyn FnMut(Vec<u8>, Vec<u8>)) {
        for line in input.split(|&b| b == b'\n') {
            let mut fields = line
                .split(|b| b.is_ascii_whitespace())
                .filter(|f| !f.is_empty());
            let (Some(date), Some(_time), Some(level)) =
                (fields.next(), fields.next(), fields.next())
            else {
                continue;
            };
            let mut key = date.to_vec();
            key.push(b' ');
            key.extend_from_slice(level);
            emit(key, encode_u64(1));
        }
    }
}

/// pi map: the input chunk encodes a sample count and a seed; emits
/// `("in", hits)` and `("out", misses)`.
pub struct PiMapper;

impl Mapper for PiMapper {
    fn map(&self, input: &[u8], emit: &mut dyn FnMut(Vec<u8>, Vec<u8>)) {
        let text = std::str::from_utf8(input).expect("pi input is ascii");
        let mut parts = text.split_whitespace();
        let samples: u64 = parts.next().expect("count").parse().expect("count");
        let seed: u64 = parts.next().expect("seed").parse().expect("seed");
        let mut rng = SimRng::new(seed);
        let mut inside = 0u64;
        for _ in 0..samples {
            let x = rng.uniform() * 2.0 - 1.0;
            let y = rng.uniform() * 2.0 - 1.0;
            if x * x + y * y <= 1.0 {
                inside += 1;
            }
        }
        emit(b"in".to_vec(), encode_u64(inside));
        emit(b"out".to_vec(), encode_u64(samples - inside));
    }
}

/// Estimate pi from the reduced `(in, out)` totals.
pub fn pi_from_counts(inside: u64, outside: u64) -> f64 {
    4.0 * inside as f64 / (inside + outside) as f64
}

/// terasort map: identity on 100-byte records (key = first 10 bytes).
pub struct TeraSortMapper;

impl Mapper for TeraSortMapper {
    fn map(&self, input: &[u8], emit: &mut dyn FnMut(Vec<u8>, Vec<u8>)) {
        for rec in input.chunks_exact(crate::datagen::TERA_RECORD_BYTES) {
            emit(
                rec[..crate::datagen::TERA_KEY_BYTES].to_vec(),
                rec[crate::datagen::TERA_KEY_BYTES..].to_vec(),
            );
        }
    }
}

/// terasort reduce: identity (the framework's sort does the work).
pub struct IdentityReducer;

impl Reducer for IdentityReducer {
    fn reduce(&self, key: &[u8], values: &[Vec<u8>], emit: &mut dyn FnMut(Vec<u8>, Vec<u8>)) {
        for v in values {
            emit(key.to_vec(), v.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wordcount_mapper_tokenises() {
        let mut pairs = Vec::new();
        WordCountMapper.map(b"the cat  and the hat\nthe end", &mut |k, v| pairs.push((k, v)));
        assert_eq!(pairs.len(), 7);
        assert_eq!(pairs[0].0, b"the".to_vec());
        assert_eq!(decode_u64(&pairs[0].1), 1);
    }

    #[test]
    fn sum_reducer_totals() {
        let mut out = Vec::new();
        SumReducer.reduce(
            b"the",
            &[encode_u64(1), encode_u64(1), encode_u64(5)],
            &mut |k, v| out.push((k, v)),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(decode_u64(&out[0].1), 7);
    }

    #[test]
    fn logcount_mapper_extracts_date_level() {
        let mut pairs = Vec::new();
        LogCountMapper.map(
            b"2016-02-01 12:00:01 INFO org.apache task_1 ok\n2016-02-01 12:00:02 ERROR x y\n",
            &mut |k, v| pairs.push((k, v)),
        );
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0].0, b"2016-02-01 INFO".to_vec());
        assert_eq!(pairs[1].0, b"2016-02-01 ERROR".to_vec());
        let _ = decode_u64(&pairs[0].1);
    }

    #[test]
    fn pi_mapper_estimates_pi() {
        let mut pairs = Vec::new();
        PiMapper.map(b"200000 42", &mut |k, v| pairs.push((k, v)));
        let inside = decode_u64(&pairs[0].1);
        let outside = decode_u64(&pairs[1].1);
        assert_eq!(inside + outside, 200_000);
        let est = pi_from_counts(inside, outside);
        assert!((est - std::f64::consts::PI).abs() < 0.02, "pi ≈ {est}");
    }

    #[test]
    fn terasort_mapper_splits_records() {
        let mut rng = SimRng::new(1);
        let recs = crate::datagen::teragen_records(10, &mut rng);
        let flat: Vec<u8> = recs.iter().flatten().copied().collect();
        let mut pairs = Vec::new();
        TeraSortMapper.map(&flat, &mut |k, v| pairs.push((k, v)));
        assert_eq!(pairs.len(), 10);
        assert!(pairs.iter().all(|(k, v)| k.len() == 10 && v.len() == 90));
    }

    #[test]
    fn profiles_match_paper_shape() {
        for tune in [Tune::Edison, Tune::Dell] {
            let wc = wordcount(tune);
            assert_eq!(wc.map_tasks, 200);
            let wc2 = wordcount2(tune);
            assert!(wc2.map_tasks < wc.map_tasks / 2);
            assert!(wc2.shuffle_ratio < wc.shuffle_ratio / 5.0);
            let lc = logcount(tune);
            assert_eq!(lc.map_tasks, 500);
            assert!(lc.map_mi_per_mib < wc.map_mi_per_mib);
            let ts = terasort(tune);
            assert_eq!(ts.map_tasks, 168);
            assert!((ts.shuffle_ratio - 1.0).abs() < 1e-9);
        }
        // one container per vcore in the combined variants
        assert_eq!(wordcount2(Tune::Edison).map_tasks, 70);
        assert_eq!(wordcount2(Tune::Dell).map_tasks, 24);
        assert_eq!(pi(Tune::Edison).map_tasks, 70);
        assert_eq!(pi(Tune::Dell).map_tasks, 24);
    }

    #[test]
    fn table8_has_six_jobs() {
        let jobs = table8_jobs(Tune::Edison);
        let names: Vec<&str> = jobs.iter().map(|j| j.name).collect();
        assert_eq!(
            names,
            vec!["wordcount", "wordcount2", "logcount", "logcount2", "pi", "terasort"]
        );
    }
}
