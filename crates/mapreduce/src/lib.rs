//! # edison-mapreduce
//!
//! The Section-5.2 substrate: everything Hadoop 2.5.0 provided to the
//! paper's MapReduce experiments, rebuilt over the simulation kernel.
//!
//! * [`hdfs`] — block-level distributed filesystem: placement, replication,
//!   data-locality queries (the paper tunes replication 2 on Edison / 1 on
//!   Dell so both clusters see ≈95 % data-local maps).
//! * [`yarn`] — the RM/NM/AM container machinery: memory-bounded container
//!   scheduling on 1 s heartbeats, JVM start-up cost per container, an
//!   application master that occupies its own container. Container
//!   allocation overhead — the effect the paper's wordcount-vs-wordcount2
//!   comparison isolates — falls out of these mechanics.
//! * [`engine`] — the job executor: map (read → map → sort/spill),
//!   shuffle (per-fetch network flows), reduce (merge → reduce → replicated
//!   HDFS write), driven as one discrete-event world per job.
//! * [`jobs`] — wordcount(+2), logcount(+2), pi and terasort. Each job is
//!   **executable**: real `Mapper`/`Reducer` logic runs on real bytes in
//!   tests (and a local runner verifies output against an oracle), and a
//!   fitted [`jobs::JobProfile`] drives the same job at paper scale.
//! * [`datagen`] — synthetic corpus / YARN-log / teragen generators with
//!   the paper's file counts and sizes.
//!
//! The experiment entry point is [`engine::run_job`], which returns wall
//! time, energy and the Figure 12–17 utilisation timelines.

pub mod datagen;
pub mod engine;
pub mod hdfs;
pub mod jobs;
pub mod local;
pub mod terasort_pipeline;
pub mod yarn;

pub use engine::{run_job, run_job_traced, ClusterSetup, JobOutcome};
pub use jobs::JobProfile;
