//! Property tests for the overload-guard wiring (simguard): whatever the
//! load point, seed, or fault schedule, the guard's accounting must
//! balance, degraded/shed work must never masquerade as success, and a
//! zero-budget guard must leave the simulation untouched.

use edison_simcore::time::{SimDuration, SimTime};
use edison_simfault::FaultPlan;
use edison_simguard::{Budget, GuardConfig};
use edison_web::lifecycle::run_async;
use edison_web::stack::{run, GenMode, StackConfig};
use edison_web::{ClusterScale, Platform, WebScenario, WorkloadMix};
use proptest::prelude::*;

fn cfg(conc: f64, seed: u64) -> StackConfig {
    let scenario = WebScenario::table6(Platform::Edison, ClusterScale::Eighth).unwrap();
    let mut cfg = StackConfig::new(
        scenario,
        WorkloadMix::lightest(),
        GenMode::Httperf { connections_per_sec: conc, calls_per_conn: 6.6 },
        seed,
    );
    cfg.warmup = SimDuration::from_secs(1);
    cfg.measure = SimDuration::from_secs(6);
    cfg
}

fn guarded(conc: f64, seed: u64, crash: bool) -> StackConfig {
    let mut c = cfg(conc, seed);
    c.guard = GuardConfig::web_defaults();
    if crash {
        c.retry_budget = 2;
        c.fault_plan =
            FaultPlan::new().crash_restart(0, SimTime::from_secs(3), SimDuration::from_secs(2));
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Conservation: every admitted request reaches exactly one terminal
    /// bucket — completed, degraded, shed, or failed — at any load point
    /// (under and past the knee), with or without a mid-run crash, in
    /// both drivers, and the two drivers agree byte-for-byte.
    #[test]
    fn admitted_requests_reach_exactly_one_terminal_bucket(
        conc in 16.0f64..448.0,
        seed in 0u64..1_000,
        crash in any::<bool>(),
    ) {
        let legacy = run(guarded(conc, seed, crash));
        let ported = run_async(guarded(conc, seed, crash));
        for m in [&legacy.metrics, &ported.metrics] {
            let g = &m.guard;
            prop_assert_eq!(
                g.admitted,
                g.completed + g.degraded + g.shed + g.failed,
                "conservation identity violated at conc={} seed={} crash={}: {:?}",
                conc, seed, crash, g
            );
        }
        prop_assert_eq!(
            format!("{:?}", legacy.metrics),
            format!("{:?}", ported.metrics),
            "guarded drivers diverged at conc={} seed={} crash={}", conc, seed, crash
        );
    }

    /// Degraded and shed work never counts as success: every completion
    /// is exactly one of full/degraded, and the windowed success count
    /// feeding availability math holds full-fidelity responses only.
    #[test]
    fn degraded_and_shed_never_count_as_availability_successes(
        conc in 256.0f64..448.0,
        seed in 0u64..1_000,
    ) {
        // past the knee with a crash: sheds, brownout and breaker all live
        let m = run_async(guarded(conc, seed, true)).metrics;
        let g = &m.guard;
        prop_assert_eq!(
            m.completed_total,
            g.completed + g.degraded,
            "a completion escaped the full/degraded split: {:?}", g
        );
        // the windowed success count (the availability numerator) is a
        // subset of run-total *full* completions: no degraded response —
        // and a fortiori no shed request, which never completes — leaks in
        prop_assert!(
            m.completed <= g.completed,
            "windowed successes {} exceed full completions {} (degraded leaked in)",
            m.completed, g.completed
        );
    }

    /// A zero-budget guard is runtime-inert at any load point and seed:
    /// byte-identical metrics to a config that never mentions the guard.
    #[test]
    fn zero_budget_guard_is_byte_identical_to_no_guard(
        conc in 16.0f64..384.0,
        seed in 0u64..1_000,
    ) {
        let mut zeroed = cfg(conc, seed);
        zeroed.guard = GuardConfig::off();
        zeroed.guard.deadline = Budget::ZERO;
        prop_assert_eq!(
            format!("{:?}", run(zeroed).metrics),
            format!("{:?}", run(cfg(conc, seed)).metrics),
            "zero-budget guard perturbed the run at conc={} seed={}", conc, seed
        );
    }

    /// Zero-budget *deadlines* inside an otherwise-active guard are a
    /// no-op: no request ever carries a deadline, so nothing is shed or
    /// flagged for missing one, even under overload + crash.
    #[test]
    fn zero_budget_deadlines_never_fire(
        conc in 256.0f64..448.0,
        seed in 0u64..1_000,
    ) {
        let mut c = guarded(conc, seed, true);
        c.guard.deadline = Budget::ZERO;
        c.guard.db_reserve = SimDuration::ZERO;
        let m = run_async(c).metrics;
        prop_assert_eq!(m.guard.deadline_miss, 0, "deadline miss with deadlines off");
    }
}
