//! Property tests over the web stack: conservation and sanity across
//! random load points, plus LRU-store laws under arbitrary operation
//! sequences.

use edison_web::memcached::{Key, LruStore};
use edison_web::stack::{run, GenMode, StackConfig};
use edison_web::{ClusterScale, Platform, WebScenario, WorkloadMix};
use edison_simcore::time::SimDuration;
use proptest::prelude::*;

fn cfg(conc: f64, seed: u64, hit: f64, img: f64) -> StackConfig {
    let scenario = WebScenario::table6(Platform::Edison, ClusterScale::Eighth).unwrap();
    let mut cfg = StackConfig::new(
        scenario,
        WorkloadMix { image_fraction: img, cache_hit_ratio: hit },
        GenMode::Httperf { connections_per_sec: conc, calls_per_conn: 6.6 },
        seed,
    );
    cfg.warmup = SimDuration::from_secs(1);
    cfg.measure = SimDuration::from_secs(4);
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Whatever the load point, accounting must balance: completed requests
    /// never exceed offered, delays are positive, energy is positive and
    /// bounded by busy-power × window.
    #[test]
    fn accounting_is_sane(
        conc in 4.0f64..300.0,
        seed in 0u64..1_000,
        hit in 0.5f64..0.99,
        img in 0.0f64..0.25,
    ) {
        let world = run(cfg(conc, seed, hit, img));
        let m = &world.metrics;
        let offered = conc * 6.6 * 4.0 * 1.6; // generous upper bound
        prop_assert!((m.completed as f64) < offered, "completed {} vs offered {offered}", m.completed);
        if m.delays_ms.len() > 0 {
            prop_assert!(m.delays_ms.min() > 0.0);
            prop_assert!(m.delays_ms.mean() < 20_000.0);
        }
        // 5 nodes: busy bound 5 × 1.68 W × 4 s window
        prop_assert!(m.energy_j > 0.0);
        prop_assert!(m.energy_j < 5.0 * 1.68 * 4.0 * 1.05, "energy {}", m.energy_j);
        // measured hit ratio near the configured one (when there were hits)
        let hits = m.cache_delays_ms.len() as f64;
        let misses = m.db_delays_ms.len() as f64;
        if hits + misses > 300.0 {
            let measured = hits / (hits + misses);
            prop_assert!((measured - hit).abs() < 0.12, "hit {measured} vs {hit}");
        }
    }

    /// LRU store laws under arbitrary op sequences: size bound respected,
    /// gets never lie, eviction count consistent.
    #[test]
    fn lru_store_laws(
        cap_kb in 4u64..64,
        ops in proptest::collection::vec((0u8..3, 0u32..64, 1u32..4_000), 1..300),
    ) {
        let cap = cap_kb * 1024;
        let mut store = LruStore::new(cap);
        let mut shadow: std::collections::HashMap<Key, u32> = Default::default();
        for &(op, row, bytes) in &ops {
            let key = Key { table: (row % 5) as u8, row };
            match op {
                0 => {
                    let ok = store.set(key, bytes);
                    prop_assert_eq!(ok, bytes as u64 <= cap);
                    if ok { shadow.insert(key, bytes); }
                }
                1 => {
                    if let Some(got) = store.get(key) {
                        // a hit must return the last value written
                        prop_assert_eq!(Some(&got), shadow.get(&key));
                    }
                }
                _ => {
                    let _ = store.contains(key);
                }
            }
            prop_assert!(store.used_bytes() <= cap, "{} > {cap}", store.used_bytes());
        }
        prop_assert_eq!(store.hits() + store.misses(),
            ops.iter().filter(|o| o.0 == 1).count() as u64);
    }
}
