//! The tentpole contract of the async port: `lifecycle::run_async*` and
//! `stack::run*` are the *same simulation* — same seed, byte-identical
//! [`edison_web::stack::Metrics`] and byte-identical telemetry exports
//! (Prometheus text and Chrome trace JSON), with and without fault plans
//! that crash a node mid-request, and independent of the worker count the
//! comparison runs under (`cargo async-gate` runs this file; simrun jobs
//! 1 vs 8 is covered below).

use edison_simcore::time::{SimDuration, SimTime};
use edison_simfault::FaultPlan;
use edison_simrun::derive_seed;
use edison_simtel::Telemetry;
use edison_web::lifecycle::{run_async, run_async_traced};
use edison_web::stack::{run, run_traced, GenMode, StackConfig};
use edison_web::{ClusterScale, Platform, WebScenario, WorkloadMix};

fn cfg(conc: f64, seed: u64) -> StackConfig {
    let scenario = WebScenario::table6(Platform::Edison, ClusterScale::Eighth).unwrap();
    let mut cfg = StackConfig::new(
        scenario,
        WorkloadMix::lightest(),
        GenMode::Httperf { connections_per_sec: conc, calls_per_conn: 6.6 },
        seed,
    );
    cfg.warmup = SimDuration::from_secs(2);
    cfg.measure = SimDuration::from_secs(8);
    cfg
}

/// A plan that crashes web node 0 mid-run and restarts it 3 s later,
/// with enough client retry budget that both crash outcomes occur:
/// connections that survive into an LB redispatch (task unwinds to the
/// retry await) and connections retired as hard errors (task cancelled
/// with its request span unrecorded).
fn crash_cfg(conc: f64, seed: u64) -> StackConfig {
    let mut c = cfg(conc, seed);
    c.measure = SimDuration::from_secs(20);
    c.retry_budget = 2;
    c.fault_plan = FaultPlan::new()
        .crash_restart(0, SimTime::from_secs(6), SimDuration::from_secs(3));
    c
}

/// Byte-exact comparison of one config: Metrics (via the exhaustive Debug
/// form) plus both telemetry exports.
fn assert_equivalent(make: impl Fn() -> StackConfig) {
    let legacy = run(make());
    let ported = run_async(make());
    assert_eq!(
        format!("{:?}", legacy.metrics),
        format!("{:?}", ported.metrics),
        "untraced Metrics must be byte-identical"
    );

    let mut legacy = run_traced(make(), Telemetry::on());
    let mut ported = run_async_traced(make(), Telemetry::on());
    assert_eq!(
        format!("{:?}", legacy.metrics),
        format!("{:?}", ported.metrics),
        "traced Metrics must be byte-identical"
    );
    let lt = legacy.take_telemetry();
    let pt = ported.take_telemetry();
    assert_eq!(lt.prometheus_text(), pt.prometheus_text(), "Prometheus export differs");
    assert_eq!(lt.chrome_trace_json(), pt.chrome_trace_json(), "Chrome trace export differs");
}

#[test]
fn async_equals_legacy_light_load() {
    assert_equivalent(|| cfg(16.0, 42));
}

#[test]
fn async_equals_legacy_at_saturation() {
    // SYN drops + kernel retransmit ladder + 5xx backlog overflow all on
    assert_equivalent(|| cfg(256.0, 42));
}

#[test]
fn async_equals_legacy_across_seeds() {
    for seed in [7, 1234] {
        assert_equivalent(|| cfg(48.0, seed));
    }
}

#[test]
fn async_equals_legacy_under_mid_request_crash() {
    assert_equivalent(|| crash_cfg(32.0, 42));
}

#[test]
fn async_equals_legacy_under_crash_without_retry_budget() {
    // budget 0: every doomed connection dies as a hard error, so every
    // affected task goes through Executor::cancel (span dropped)
    assert_equivalent(|| {
        let mut c = crash_cfg(32.0, 42);
        c.retry_budget = 0;
        c
    });
}

#[test]
fn crash_plan_exercises_both_cancellation_paths() {
    // guard against the fault scenario silently degenerating: the plan
    // must actually produce retries (survivor tasks) and server errors
    // (cancelled tasks) for the equivalence above to mean anything
    let w = run_async(crash_cfg(32.0, 42));
    assert!(w.metrics.retries > 0, "no surviving connections were redispatched");
    assert!(w.metrics.faults_injected == 2, "crash + restart must both land");
}

#[test]
fn async_results_are_independent_of_simrun_worker_count() {
    let seeds: Vec<u64> = (0..6).map(|i| derive_seed(9, "async-gate", i)).collect();
    let serial = edison_simrun::Executor::new(1)
        .run(&seeds, |_, &s| format!("{:?}", run_async(cfg(32.0, s)).metrics));
    let wide = edison_simrun::Executor::new(8)
        .run(&seeds, |_, &s| format!("{:?}", run_async(cfg(32.0, s)).metrics));
    for (a, b) in serial.iter().zip(&wide) {
        assert_eq!(
            a.as_ref().expect("point ran"),
            b.as_ref().expect("point ran"),
            "jobs=1 vs jobs=8 diverged"
        );
    }
}
