//! `cargo guard-gate`: the overload-protection contract. With the guard
//! layer *enabled* — deadlines, circuit breakers, admission control,
//! brownout — the two web drivers must still be the same simulation:
//! byte-identical [`edison_web::stack::Metrics`] and telemetry exports,
//! per seed, independent of simrun worker count, including plans that
//! combine overload with a mid-run crash (the breaker-fixture cliff).

use edison_simcore::time::{SimDuration, SimTime};
use edison_simfault::FaultPlan;
use edison_simguard::{BreakerState, GuardConfig};
use edison_simrun::derive_seed;
use edison_simtel::Telemetry;
use edison_web::lifecycle::{run_async, run_async_traced};
use edison_web::stack::{run, run_traced, GenMode, StackConfig};
use edison_web::{ClusterScale, Platform, WebScenario, WorkloadMix};

fn guard_cfg(conc: f64, seed: u64) -> StackConfig {
    let scenario = WebScenario::table6(Platform::Edison, ClusterScale::Eighth).unwrap();
    let mut cfg = StackConfig::new(
        scenario,
        WorkloadMix::lightest(),
        GenMode::Httperf { connections_per_sec: conc, calls_per_conn: 6.6 },
        seed,
    );
    cfg.warmup = SimDuration::from_secs(2);
    cfg.measure = SimDuration::from_secs(8);
    cfg.guard = GuardConfig::web_defaults();
    cfg
}

/// Overload + crash combined: a load level past the Eighth-scale knee
/// with web node 0 crashing mid-run and restarting. Exercises every
/// guard path at once — deadline sheds, queue-gate sheds, brownout
/// degradation, breaker trips on the dead backend, and half-open
/// probing through the recovery.
fn cliff_cfg(seed: u64) -> StackConfig {
    let mut c = guard_cfg(384.0, seed);
    c.measure = SimDuration::from_secs(20);
    c.retry_budget = 2;
    c.fault_plan =
        FaultPlan::new().crash_restart(0, SimTime::from_secs(6), SimDuration::from_secs(3));
    c
}

/// Byte-exact comparison of one guarded config across both drivers:
/// Metrics (exhaustive Debug form) plus both telemetry exports.
fn assert_equivalent(make: impl Fn() -> StackConfig) {
    let legacy = run(make());
    let ported = run_async(make());
    assert_eq!(
        format!("{:?}", legacy.metrics),
        format!("{:?}", ported.metrics),
        "untraced guarded Metrics must be byte-identical"
    );

    let mut legacy = run_traced(make(), Telemetry::on());
    let mut ported = run_async_traced(make(), Telemetry::on());
    assert_eq!(
        format!("{:?}", legacy.metrics),
        format!("{:?}", ported.metrics),
        "traced guarded Metrics must be byte-identical"
    );
    let lt = legacy.take_telemetry();
    let pt = ported.take_telemetry();
    assert_eq!(lt.prometheus_text(), pt.prometheus_text(), "Prometheus export differs");
    assert_eq!(lt.chrome_trace_json(), pt.chrome_trace_json(), "Chrome trace export differs");
}

#[test]
fn guarded_async_equals_legacy_light_load() {
    assert_equivalent(|| guard_cfg(16.0, 42));
}

#[test]
fn guarded_async_equals_legacy_past_the_knee() {
    // saturation: the admission gate, brownout and deadline sheds all on
    assert_equivalent(|| guard_cfg(384.0, 42));
}

#[test]
fn guarded_async_equals_legacy_on_the_cliff() {
    assert_equivalent(|| cliff_cfg(42));
}

#[test]
fn cliff_fixture_actually_exercises_the_guards() {
    // guard against the fixture silently degenerating: the cliff run
    // must shed load, serve degraded responses, and trip the breaker on
    // the crashed backend for the equivalence above to mean anything
    let w = run_async(cliff_cfg(42));
    let g = &w.metrics.guard;
    assert!(g.admitted > 0, "no requests admitted");
    assert!(g.shed + g.lb_rejected > 0, "the overload never shed anything");
    assert!(g.breaker_trips > 0, "the crash never tripped a breaker");
    assert!(
        w.metrics.faults_injected == 2,
        "crash + restart must both land (got {})",
        w.metrics.faults_injected
    );
    // conservation identity: every admitted request reached exactly one
    // terminal bucket
    assert_eq!(
        g.admitted,
        g.completed + g.degraded + g.shed + g.failed,
        "guard conservation identity violated: {g:?}"
    );
}

#[test]
fn breaker_recovers_after_restart() {
    // the half-open probe path must close the breaker again once the
    // node is healthy: recovery windows are recorded for simexplore
    let w = run_async(cliff_cfg(42));
    let brk = w.breaker_states();
    assert!(
        brk.iter().all(|s| *s == BreakerState::Closed),
        "breakers still open at end of run: {brk:?}"
    );
    assert!(
        !w.metrics.guard.breaker_windows.is_empty(),
        "no breaker recovery window recorded"
    );
}

#[test]
fn guarded_results_are_independent_of_simrun_worker_count() {
    let seeds: Vec<u64> = (0..6).map(|i| derive_seed(9, "guard-gate", i)).collect();
    let serial = edison_simrun::Executor::new(1)
        .run(&seeds, |_, &s| format!("{:?}", run_async(cliff_cfg(s)).metrics));
    let wide = edison_simrun::Executor::new(8)
        .run(&seeds, |_, &s| format!("{:?}", run_async(cliff_cfg(s)).metrics));
    for (a, b) in serial.iter().zip(&wide) {
        assert_eq!(
            a.as_ref().expect("point ran"),
            b.as_ref().expect("point ran"),
            "jobs=1 vs jobs=8 diverged under guards"
        );
    }
}

#[test]
fn zero_budget_guard_config_is_off() {
    // GuardConfig::off() must be runtime-inert: same bytes as the
    // pre-guard code path (the guards-off identity the async gate pins)
    let mut base = guard_cfg(48.0, 7);
    base.guard = GuardConfig::off();
    let plain = {
        let scenario = WebScenario::table6(Platform::Edison, ClusterScale::Eighth).unwrap();
        let mut cfg = StackConfig::new(
            scenario,
            WorkloadMix::lightest(),
            GenMode::Httperf { connections_per_sec: 48.0, calls_per_conn: 6.6 },
            7,
        );
        cfg.warmup = SimDuration::from_secs(2);
        cfg.measure = SimDuration::from_secs(8);
        cfg
    };
    assert_eq!(
        format!("{:?}", run(base).metrics),
        format!("{:?}", run(plain).metrics),
        "GuardConfig::off() must be a byte-identical no-op"
    );
}
