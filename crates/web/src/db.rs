//! The MySQL tier: a synthetic stand-in for the paper's 20 GB
//! wikipedia-dump + crawled-image database served by 2 Dell R620 servers.
//!
//! §5.1.1: 15 tables — 11 with scalar fields, 4 with image blobs (30 KB
//! mean stored image; ≈43 KB served reply, see `scenario`). Both clusters
//! query the *same* shared database tier, so its power is excluded from the
//! comparison. Requests pick a table with weights that set the image
//! fraction, then a uniform row.

use crate::memcached::Key;
use crate::scenario::{
    WorkloadMix, IMAGE_REPLY_BYTES, IMAGE_TABLES, ROWS_PER_TABLE, SCALAR_REPLY_BYTES, SCALAR_TABLES,
};
use edison_hw::calib;
use edison_simcore::rng::SimRng;

/// Total table count.
pub const TOTAL_TABLES: usize = SCALAR_TABLES + IMAGE_TABLES;

/// A row request produced by the PHP frontend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowQuery {
    /// Cache/database key.
    pub key: Key,
    /// True when the row carries an image blob.
    pub is_image: bool,
    /// Bytes of the served reply body.
    pub reply_bytes: u64,
}

/// Draw a query according to a workload mix: image tables are selected
/// with total probability `mix.image_fraction`, rows uniformly.
pub fn draw_query(mix: &WorkloadMix, rng: &mut SimRng) -> RowQuery {
    let is_image = rng.chance(mix.image_fraction);
    let table = if is_image {
        // image tables are indices SCALAR_TABLES..TOTAL_TABLES
        SCALAR_TABLES as u8 + rng.below(IMAGE_TABLES as u64) as u8
    } else {
        rng.below(SCALAR_TABLES as u64) as u8
    };
    let row = rng.below(ROWS_PER_TABLE as u64) as u32;
    RowQuery {
        key: Key { table, row },
        is_image,
        reply_bytes: if is_image { IMAGE_REPLY_BYTES } else { SCALAR_REPLY_BYTES },
    }
}

/// True when `key` names an image table.
pub fn key_is_image(key: Key) -> bool {
    (key.table as usize) >= SCALAR_TABLES
}

/// Reply body size for a key.
pub fn reply_bytes_for(key: Key) -> u64 {
    if key_is_image(key) {
        IMAGE_REPLY_BYTES
    } else {
        SCALAR_REPLY_BYTES
    }
}

/// CPU cost of executing a query on a MySQL server, MI.
pub fn query_cpu_mi(q: &RowQuery) -> f64 {
    calib::DB_QUERY_MI + q.reply_bytes as f64 / 1024.0 * calib::DB_QUERY_MI_PER_KIB
}

/// Whether this query misses the buffer pool and must touch disk.
pub fn query_hits_disk(rng: &mut SimRng) -> bool {
    rng.chance(calib::DB_DISK_MISS_P)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_fraction_is_respected() {
        let mix = WorkloadMix::img20();
        let mut rng = SimRng::new(7);
        let n = 50_000;
        let images = (0..n).filter(|_| draw_query(&mix, &mut rng).is_image).count();
        let frac = images as f64 / n as f64;
        assert!((frac - 0.20).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn tables_partition_correctly() {
        let mut rng = SimRng::new(9);
        for _ in 0..10_000 {
            let q = draw_query(&WorkloadMix::img10(), &mut rng);
            assert_eq!(q.is_image, key_is_image(q.key));
            assert!((q.key.table as usize) < TOTAL_TABLES);
            assert!(q.key.row < ROWS_PER_TABLE);
            assert_eq!(q.reply_bytes, reply_bytes_for(q.key));
        }
    }

    #[test]
    fn zero_image_mix_never_draws_images() {
        let mut rng = SimRng::new(11);
        for _ in 0..5_000 {
            assert!(!draw_query(&WorkloadMix::lightest(), &mut rng).is_image);
        }
    }

    #[test]
    fn image_queries_cost_more_cpu() {
        let scalar = RowQuery {
            key: Key { table: 0, row: 0 },
            is_image: false,
            reply_bytes: SCALAR_REPLY_BYTES,
        };
        let image = RowQuery {
            key: Key { table: 12, row: 0 },
            is_image: true,
            reply_bytes: IMAGE_REPLY_BYTES,
        };
        assert!(query_cpu_mi(&image) > query_cpu_mi(&scalar));
    }

    #[test]
    fn disk_miss_probability_is_small() {
        let mut rng = SimRng::new(13);
        let n = 100_000;
        let misses = (0..n).filter(|_| query_hits_disk(&mut rng)).count();
        let p = misses as f64 / n as f64;
        assert!((p - edison_hw::calib::DB_DISK_MISS_P).abs() < 0.005, "p {p}");
    }
}
