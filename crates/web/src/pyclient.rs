//! The python/urllib2 delay loggers of §5.1.2 (Figures 10 and 11).
//!
//! 30 Dell machines repeatedly issue single-request connections at a high
//! aggregate rate (~6000 req/s) against the heaviest workload (20 % image).
//! urllib2 opens a fresh TCP connection per request, so the logged delay
//! includes connection establishment — and when a SYN is dropped, the
//! kernel's retransmit backoff parks the connection for 1 s, then 3 s, then
//! 7 s cumulative, which is exactly where the Dell histogram spikes.

use crate::scenario::{WebScenario, WorkloadMix};
use crate::stack::{run, GenMode, StackConfig};
use edison_simcore::stats::Histogram;
use edison_simcore::time::SimDuration;

/// Result of a delay-distribution run.
#[derive(Debug)]
pub struct DelayDistribution {
    /// Histogram over 0–8 s in 0.1 s buckets (the figures' axes).
    pub hist: Histogram,
    /// Completed requests during the window.
    pub completed: u64,
    /// Connections that exhausted their SYN retries.
    pub client_errors: u64,
    /// Total SYN drops (each adds a 1/2/4 s penalty to some connection).
    pub syn_drops: u64,
}

impl DelayDistribution {
    /// Mass of the histogram bucket containing `t` seconds.
    pub fn mass_at(&self, t: f64) -> u64 {
        self.hist.count_at(t)
    }

    /// Total samples logged.
    pub fn samples(&self) -> u64 {
        self.hist.count()
    }
}

/// Run the python-logger experiment: open-loop single-call connections at
/// `requests_per_sec` against `scenario` under `mix`.
pub fn run_distribution(
    scenario: &WebScenario,
    mix: WorkloadMix,
    requests_per_sec: f64,
    seed: u64,
    measure_s: u64,
) -> DelayDistribution {
    let mut cfg = StackConfig::new(
        scenario.clone(),
        mix,
        GenMode::Python { requests_per_sec },
        seed,
    );
    cfg.warmup = SimDuration::from_secs(3);
    cfg.measure = SimDuration::from_secs(measure_s);
    // the paper uses 30 logging machines
    cfg.clients = 30;
    let world = run(cfg);
    DelayDistribution {
        completed: world.metrics.completed,
        client_errors: world.metrics.client_errors,
        syn_drops: world.metrics.syn_drops,
        hist: world.metrics.conn_delay_hist,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{ClusterScale, Platform};

    #[test]
    fn edison_distribution_has_no_retry_spikes_at_scale_load() {
        // An eighth-size Edison cluster at proportional load: 3 web servers
        // ≈ 1/8 of 6000 ≈ 750 req/s. Accept gates hold, so no SYN spikes.
        let sc = WebScenario::table6(Platform::Edison, ClusterScale::Eighth).unwrap();
        let d = run_distribution(&sc, WorkloadMix::img20(), 700.0, 3, 8);
        assert!(d.samples() > 1000);
        let early: u64 = (0..10).map(|i| d.mass_at(i as f64 * 0.1 + 0.05)).sum();
        let spike_1s = d.mass_at(1.05);
        assert!(early > 20 * spike_1s.max(1), "early {early} vs 1s {spike_1s}");
    }

    #[test]
    fn dell_overload_shows_backoff_spikes() {
        // 1 Dell web server at 2000 conn/s ≫ its ~700/s accept capacity →
        // mass at the 1 s and 3 s retry points.
        let sc = WebScenario::table6(Platform::Dell, ClusterScale::Half).unwrap();
        let d = run_distribution(&sc, WorkloadMix::img20(), 2000.0, 3, 8);
        assert!(d.syn_drops > 0, "expected SYN drops");
        let spike_1s = d.mass_at(1.05) + d.mass_at(1.15);
        assert!(spike_1s > 0, "expected a 1 s retry spike");
    }
}
