//! A real memcached-style keyed store with LRU eviction.
//!
//! Unlike the rest of the web model — which is a timing simulation — the
//! cache is an actual data structure: `get` walks a hash map, promotes the
//! entry in an intrusive LRU list, and the *measured hit ratio emerges from
//! what was inserted during warm-up*, exactly as on the paper's testbed
//! ("we control the cache hit ratio by adjusting the warm-up time").
//!
//! Implementation: slab of entries with prev/next indices + `HashMap` from
//! key to slot — O(1) get/insert/evict, no per-operation allocation once
//! the slab is warm.

use std::collections::HashMap;

/// A cache key: (table, row) — the paper's PHP picks a random table and row
/// per request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Key {
    pub table: u8,
    pub row: u32,
}

#[derive(Debug, Clone)]
struct Entry {
    key: Key,
    bytes: u32,
    prev: u32,
    next: u32,
}

const NIL: u32 = u32::MAX;

/// Byte-capacity-bounded LRU store. See module docs.
#[derive(Debug, Clone)]
pub struct LruStore {
    // simlint: allow(R1) keyed lookup only; LRU order lives in the slab links
    map: HashMap<Key, u32>,
    slab: Vec<Entry>,
    free: Vec<u32>,
    head: u32, // most recent
    tail: u32, // least recent
    capacity_bytes: u64,
    used_bytes: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl LruStore {
    /// Create a store bounded to `capacity_bytes` of values.
    pub fn new(capacity_bytes: u64) -> Self {
        assert!(capacity_bytes > 0);
        LruStore {
            // simlint: allow(R1) keyed lookup only (see field note)
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity_bytes,
            used_bytes: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Bytes of values stored.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Entries stored.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Hits observed so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses observed so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Evictions performed so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Measured hit ratio (what the paper reads from memcached stats).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Reset hit/miss counters (end of warm-up).
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Look up `key`, promoting it to most-recently-used on hit. Returns
    /// the stored value size.
    pub fn get(&mut self, key: Key) -> Option<u32> {
        match self.map.get(&key).copied() {
            Some(slot) => {
                self.hits += 1;
                self.unlink(slot);
                self.push_front(slot);
                Some(self.slab[slot as usize].bytes)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Peek without touching LRU order or stats.
    pub fn contains(&self, key: Key) -> bool {
        self.map.contains_key(&key)
    }

    /// Insert (or refresh) `key` with a value of `bytes`, evicting LRU
    /// entries as needed. Values larger than the whole store are rejected
    /// (memcached's behaviour for oversize items).
    pub fn set(&mut self, key: Key, bytes: u32) -> bool {
        if bytes as u64 > self.capacity_bytes {
            return false;
        }
        if let Some(&slot) = self.map.get(&key) {
            // refresh: adjust accounting and promote
            let old = self.slab[slot as usize].bytes;
            self.used_bytes = self.used_bytes - old as u64 + bytes as u64;
            self.slab[slot as usize].bytes = bytes;
            self.unlink(slot);
            self.push_front(slot);
        } else {
            let slot = self.alloc(Entry { key, bytes, prev: NIL, next: NIL });
            self.map.insert(key, slot);
            self.push_front(slot);
            self.used_bytes += bytes as u64;
        }
        while self.used_bytes > self.capacity_bytes {
            self.evict_lru();
        }
        true
    }

    fn evict_lru(&mut self) {
        let tail = self.tail;
        debug_assert!(tail != NIL, "evicting from an empty store");
        let e = self.slab[tail as usize].clone();
        self.unlink(tail);
        self.map.remove(&e.key);
        self.free.push(tail);
        self.used_bytes -= e.bytes as u64;
        self.evictions += 1;
    }

    fn alloc(&mut self, e: Entry) -> u32 {
        if let Some(slot) = self.free.pop() {
            self.slab[slot as usize] = e;
            slot
        } else {
            self.slab.push(e);
            (self.slab.len() - 1) as u32
        }
    }

    fn unlink(&mut self, slot: u32) {
        let (prev, next) = {
            let e = &self.slab[slot as usize];
            (e.prev, e.next)
        };
        if prev != NIL {
            self.slab[prev as usize].next = next;
        } else if self.head == slot {
            self.head = next;
        }
        if next != NIL {
            self.slab[next as usize].prev = prev;
        } else if self.tail == slot {
            self.tail = prev;
        }
        self.slab[slot as usize].prev = NIL;
        self.slab[slot as usize].next = NIL;
    }

    fn push_front(&mut self, slot: u32) {
        self.slab[slot as usize].prev = NIL;
        self.slab[slot as usize].next = self.head;
        if self.head != NIL {
            self.slab[self.head as usize].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(table: u8, row: u32) -> Key {
        Key { table, row }
    }

    #[test]
    fn get_set_roundtrip() {
        let mut s = LruStore::new(10_000);
        assert!(s.set(k(0, 1), 1500));
        assert_eq!(s.get(k(0, 1)), Some(1500));
        assert_eq!(s.get(k(0, 2)), None);
        assert_eq!(s.hits(), 1);
        assert_eq!(s.misses(), 1);
        assert!((s.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn eviction_is_lru_order() {
        let mut s = LruStore::new(3_000);
        s.set(k(0, 1), 1000);
        s.set(k(0, 2), 1000);
        s.set(k(0, 3), 1000);
        // touch 1 so 2 becomes LRU
        assert!(s.get(k(0, 1)).is_some());
        s.set(k(0, 4), 1000);
        assert!(s.contains(k(0, 1)));
        assert!(!s.contains(k(0, 2)), "2 was LRU and must be evicted");
        assert!(s.contains(k(0, 3)));
        assert!(s.contains(k(0, 4)));
        assert_eq!(s.evictions(), 1);
    }

    #[test]
    fn refresh_updates_size_without_duplicate() {
        let mut s = LruStore::new(10_000);
        s.set(k(1, 1), 1000);
        s.set(k(1, 1), 4000);
        assert_eq!(s.len(), 1);
        assert_eq!(s.used_bytes(), 4000);
        assert_eq!(s.get(k(1, 1)), Some(4000));
    }

    #[test]
    fn oversize_value_rejected() {
        let mut s = LruStore::new(1_000);
        assert!(!s.set(k(0, 0), 2_000));
        assert!(s.is_empty());
    }

    #[test]
    fn capacity_is_respected_under_churn() {
        let mut s = LruStore::new(50_000);
        for i in 0..1_000 {
            s.set(k((i % 4) as u8, i), 1500);
            assert!(s.used_bytes() <= 50_000);
        }
        assert!(s.len() <= 33);
        assert!(s.evictions() > 900);
    }

    #[test]
    fn warmup_fraction_produces_target_hit_ratio() {
        // Fill 93 % of a 1000-row table, then read uniformly: measured hit
        // ratio ≈ 93 % — the mechanism the §5.1.1 warm-up relies on.
        let mut s = LruStore::new(10_000_000);
        for row in 0..930 {
            s.set(k(0, row), 1500);
        }
        s.reset_stats();
        let mut hits = 0;
        for i in 0..10_000u32 {
            let row = (i * 7919) % 1000; // co-prime stride = uniform coverage
            if s.get(k(0, row)).is_some() {
                hits += 1;
            }
        }
        let ratio = hits as f64 / 10_000.0;
        assert!((ratio - 0.93).abs() < 0.01, "ratio {ratio}");
        assert!((s.hit_ratio() - ratio).abs() < 1e-9);
    }

    #[test]
    fn slab_reuse_after_eviction() {
        let mut s = LruStore::new(2_000);
        for i in 0..100 {
            s.set(k(0, i), 1000);
        }
        // slab should not grow unboundedly: at most capacity/size + 1 slots
        assert!(s.slab.len() <= 3, "slab {}", s.slab.len());
    }
}
