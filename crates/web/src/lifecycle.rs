//! The async request-lifecycle driver: the same web world as
//! [`crate::stack`], authored as straight-line `async fn`s.
//!
//! Where the state machine spreads one connection's life over a dozen
//! event arms and a `ReqState` tag, here it is a single task:
//!
//! ```text
//! spawn on GenConn
//!   └─ SYN ladder:  syn_attempt → (backoff.await | redispatch.await)*
//!   └─ per call:    admit.await → stage-1 cpu.await → cache rpc.await
//!                   → (hit | mysql [+ disk].await) → stage-2 cpu.await
//!                   → reply.await → next call | close
//! ```
//!
//! **Byte identity.** Every side effect — rng draws, schedule calls,
//! metric/telemetry recording — happens inside the shared
//! [`crate::model`] helpers, and the drivers differ only in how they pick
//! the next helper to call: the state machine dispatches on a stored
//! `ReqState`, a task simply *is* the continuation. Engine events fire
//! [`EventSlots`] keys and [`Executor::drain`] runs the resumed task to
//! its next `.await` inside the same event arm, so helper call order (and
//! therefore every byte of [`crate::model::Metrics`] and telemetry) is identical.
//! `tests/async_equivalence.rs` enforces this export-for-export,
//! including under fault plans that crash a node mid-request.
//!
//! **Faults.** A node crash tears down the in-flight requests the fault
//! layer reports as [`CrashOutcome`]s: tasks whose connection survived
//! (budgeted retry) get their pending wait cancelled and unwind to the
//! LB-redispatch await; tasks whose connection died are cancelled through
//! [`Executor::cancel`], dropping the open `http_request` span exactly
//! like the state machine, which records nothing for requests that never
//! complete.

use crate::model::{
    AdmitStep, CrashOutcome, DbStep, Ev, PathStep, RedispatchStep, ReplyStep, Stage1Step,
    Stage2Step, StackConfig, SynStep, WebWorld,
};
use crate::stack::phase_of;
use edison_cluster::NodeId;
use edison_simasync::{Delivery, EventSlots, Executor, TaskId};
use edison_simcore::time::SimTime;
use edison_simcore::{Ctx, EngineProfile, KindProfiler, Model, SchedBuf, Simulation};
use edison_simtel::{record_engine_profile, EventCounter, Telemetry};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// One await point of a connection task. Keys embed the unique request /
/// connection id, so each live wait is unambiguous.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Key {
    /// Kernel SYN retransmit timer fired ([`Ev::SynRetry`]).
    Syn(u64),
    /// Failover timeout elapsed; redispatch through the LB
    /// ([`Ev::RetryConn`]).
    Retry(u64),
    /// Request arrived at the web node ([`Ev::ReqAtWeb`]).
    AtWeb(u64),
    /// Web-node CPU slice finished (stage 1 or 2, [`Ev::NodeCpu`]).
    WebCpu(u64),
    /// Get arrived at the cache node ([`Ev::ReqAtCache`]).
    AtCache(u64),
    /// Cache-node CPU slice finished ([`Ev::NodeCpu`]).
    CacheCpu(u64),
    /// Cache verdict landed back on the web node
    /// ([`Ev::CacheReplyAtWeb`]).
    CacheReply(u64),
    /// Query arrived at its MySQL node ([`Ev::ReqAtDb`]).
    AtDb(u64),
    /// MySQL CPU slice finished ([`Ev::DbCpu`]).
    DbCpu(u64),
    /// Buffer-pool-miss disk read finished ([`Ev::DbDiskDone`]).
    Disk(u64),
    /// MySQL reply landed back on the web node ([`Ev::DbReplyAtWeb`]).
    DbReply(u64),
    /// Reply reached the client ([`Ev::ReplyAtClient`]).
    Reply(u64),
}

/// The capability handle a connection task closes over: shared world,
/// shared schedule buffer, and the waiter table.
struct W {
    st: Rc<RefCell<WebWorld>>,
    sched: Rc<RefCell<SchedBuf<Ev>>>,
    slots: EventSlots<Key>,
}

impl Clone for W {
    fn clone(&self) -> Self {
        W { st: Rc::clone(&self.st), sched: Rc::clone(&self.sched), slots: self.slots.clone() }
    }
}

impl W {
    /// Run one synchronous lifecycle step against the world and the
    /// *current event's* schedule buffer. Never held across an `.await`
    /// (the borrows end when the closure returns).
    fn with<R>(&self, f: impl FnOnce(&mut WebWorld, &mut SchedBuf<Ev>) -> R) -> R {
        let mut st = self.st.borrow_mut();
        let mut sched = self.sched.borrow_mut();
        f(&mut st, &mut sched)
    }

    /// Await the engine event behind `key`.
    async fn ev(&self, key: Key) -> Delivery {
        self.slots.wait(key).await
    }
}

/// Removes the connection's task-registry entry when the task ends —
/// on normal completion *and* when the fault layer cancels it.
struct ConnGuard {
    tasks: Rc<RefCell<BTreeMap<u64, TaskId>>>,
    conn: u64,
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.tasks.borrow_mut().remove(&self.conn);
    }
}

/// How one request ended, from its connection task's point of view.
enum ReqOutcome {
    /// Completed; the connection's next call is request `req`.
    Next { req: u64 },
    /// The connection is finished (closed, errored out, or vanished).
    Closed,
    /// Dropped on a dead node with retry budget: a failover timeout is
    /// pending, await the LB redispatch.
    Retry,
}

/// After a drop or cancelled wait: does the connection still exist (a
/// retry re-dispatch was scheduled) or was it retired?
fn dropped(w: &W, conn: u64) -> ReqOutcome {
    if w.with(|st, _| st.conns.contains_key(&conn)) {
        ReqOutcome::Retry
    } else {
        ReqOutcome::Closed
    }
}

/// Drive one request end to end: admission, the two CPU stages, the
/// memcached leg and (on a miss) the MySQL leg, through to the reply
/// landing at the client. This is the straight-line form of what the
/// state machine encodes across seven event arms and `ReqState`.
async fn drive_request(w: &W, conn: u64, req: u64) -> ReqOutcome {
    // open the end-to-end span now, carry it across every await, finish
    // it at the reply; a cancelled task just drops it (no span, exactly
    // like the state machine's never-completed requests)
    let mut open = w.with(|st, _| st.open_http_span(req));
    let mut went_to_db = false;
    let mut degraded = false;
    let mut shed = false;

    // on the wire → web node admission
    if w.ev(Key::AtWeb(req)).await == Delivery::Cancelled {
        return dropped(w, conn);
    }
    match w.with(|st, s| st.admit_to_worker(req, s.now(), s)) {
        AdmitStep::Admitted => {}
        AdmitStep::Dropped => return dropped(w, conn),
        AdmitStep::Gone => return ReqOutcome::Closed,
        // deadline already blown at admission: a header-only rejection
        // is on its way to the client; skip straight to the reply await
        AdmitStep::Shed => shed = true,
    }

    if !shed {
        // stage-1 CPU (parse + PHP)
        if w.ev(Key::WebCpu(req)).await == Delivery::Cancelled {
            return dropped(w, conn);
        }
        match w.with(|st, s| st.stage1_to_cache(req, s.now(), s)) {
            Stage1Step::Gone => return ReqOutcome::Closed,
            // guard verdict: the cache/db stage is skipped, stage-2 CPU
            // is already enqueued
            Stage1Step::Degraded => degraded = true,
            Stage1Step::ToCache => {
                // memcached leg: lookup CPU on the cache node, verdict
                // back at web
                if w.ev(Key::AtCache(req)).await == Delivery::Cancelled {
                    return dropped(w, conn);
                }
                w.with(|st, s| st.req_at_cache(req, s.now(), s));
                if w.ev(Key::CacheCpu(req)).await == Delivery::Cancelled {
                    return dropped(w, conn);
                }
                let Some(hit) = w.with(|st, s| st.cache_cpu_done(req, s.now(), s)) else {
                    return ReqOutcome::Closed;
                };
                if w.ev(Key::CacheReply(req)).await == Delivery::Cancelled {
                    return dropped(w, conn);
                }
                match w.with(|st, s| st.cache_reply_at_web(req, hit, s.now(), s)) {
                    PathStep::Continue => {}
                    PathStep::Dropped => return dropped(w, conn),
                    PathStep::Gone => return ReqOutcome::Closed,
                    // miss, but the budget can't afford MySQL: degraded
                    PathStep::Degraded => degraded = true,
                    PathStep::ToDb => {
                        // miss: MySQL query CPU, 2 % buffer-pool disk
                        // miss, reply
                        went_to_db = true;
                        if w.ev(Key::AtDb(req)).await == Delivery::Cancelled {
                            return dropped(w, conn);
                        }
                        w.with(|st, s| st.req_at_db(req, s.now(), s));
                        if w.ev(Key::DbCpu(req)).await == Delivery::Cancelled {
                            return dropped(w, conn);
                        }
                        match w.with(|st, s| st.db_cpu_done(req, s.now(), s)) {
                            DbStep::Sent => {}
                            DbStep::Gone => return ReqOutcome::Closed,
                            DbStep::Disk => {
                                if w.ev(Key::Disk(req)).await == Delivery::Cancelled {
                                    return dropped(w, conn);
                                }
                                w.with(|st, s| st.db_send_reply(req, s.now(), s));
                            }
                        }
                        if w.ev(Key::DbReply(req)).await == Delivery::Cancelled {
                            return dropped(w, conn);
                        }
                        match w.with(|st, s| st.db_reply_at_web(req, s.now(), s)) {
                            PathStep::Continue => {}
                            PathStep::Dropped => return dropped(w, conn),
                            PathStep::ToDb | PathStep::Gone | PathStep::Degraded => {
                                return ReqOutcome::Closed
                            }
                        }
                    }
                }
            }
        }

        // stage-2 CPU (assemble the page)
        if w.ev(Key::WebCpu(req)).await == Delivery::Cancelled {
            return dropped(w, conn);
        }
        match w.with(|st, s| st.stage2_to_reply(req, s.now(), s)) {
            Stage2Step::Sent => {}
            Stage2Step::Gone => return ReqOutcome::Closed,
        }
    }

    // reply (full page, degraded fallback or shed rejection) → client
    if w.ev(Key::Reply(req)).await == Delivery::Cancelled {
        return dropped(w, conn);
    }
    let step = w.with(|st, s| {
        let step = st.finish_reply(req, s.now(), false, s);
        // the span the state machine records inside finish_reply; the
        // task knows the path it took, so the args match the request
        if !matches!(step, ReplyStep::Vanished) {
            if let Some(span) = open.take() {
                let path = if shed {
                    "shed"
                } else if degraded {
                    "php/degraded"
                } else if went_to_db {
                    "php/memcached-miss/mysql"
                } else {
                    "php/memcached-hit"
                };
                let args = vec![("path", path.to_string())];
                let end = s.now();
                span.finish(&mut st.tel, end, args);
            }
        }
        step
    });
    match step {
        ReplyStep::NextCall { req } => ReqOutcome::Next { req },
        ReplyStep::Closed | ReplyStep::Vanished => ReqOutcome::Closed,
    }
}

/// One connection's whole life: the SYN retransmit ladder (with LB
/// failover redispatch), then the connection's calls in sequence.
async fn connection(w: W, guard: ConnGuard, conn: u64) {
    let _guard = guard;
    'redispatched: loop {
        // SYN handshake ladder: +1 s/+2 s/+4 s kernel retransmits,
        // failover redispatch around dead backends
        let mut attempt: u8 = 0;
        let mut req = loop {
            match w.with(|st, s| st.syn_attempt(conn, attempt, s.now(), s)) {
                SynStep::Accepted { req } => break req,
                SynStep::Backoff => {
                    if w.ev(Key::Syn(conn)).await == Delivery::Cancelled {
                        return;
                    }
                    attempt += 1;
                }
                SynStep::AwaitRedispatch => {
                    if w.ev(Key::Retry(conn)).await == Delivery::Cancelled {
                        return;
                    }
                    match w.with(|st, s| st.redispatch(conn, s.now())) {
                        RedispatchStep::Go => attempt = 0,
                        RedispatchStep::Gone => return,
                    }
                }
                SynStep::Gone => return,
            }
        };
        // the calls, one at a time (HTTP/1.1 keep-alive, no pipelining)
        loop {
            match drive_request(&w, conn, req).await {
                ReqOutcome::Next { req: next } => req = next,
                ReqOutcome::Closed => return,
                ReqOutcome::Retry => {
                    if w.ev(Key::Retry(conn)).await == Delivery::Cancelled {
                        return;
                    }
                    match w.with(|st, s| st.redispatch(conn, s.now())) {
                        RedispatchStep::Go => continue 'redispatched,
                        RedispatchStep::Gone => return,
                    }
                }
            }
        }
    }
}

/// The async web world: the same [`WebWorld`] state, driven by one task
/// per connection instead of the [`crate::stack`] state machine.
pub struct AsyncWebWorld {
    st: Rc<RefCell<WebWorld>>,
    sched: Rc<RefCell<SchedBuf<Ev>>>,
    exec: Executor,
    slots: EventSlots<Key>,
    conn_tasks: Rc<RefCell<BTreeMap<u64, TaskId>>>,
}

impl AsyncWebWorld {
    /// Build the world (identically to the state-machine path).
    pub fn new(cfg: StackConfig) -> Self {
        AsyncWebWorld {
            st: Rc::new(RefCell::new(WebWorld::new(cfg))),
            sched: Rc::new(RefCell::new(SchedBuf::new(SimTime::ZERO))),
            exec: Executor::new(),
            slots: EventSlots::new(),
            conn_tasks: Rc::new(RefCell::new(BTreeMap::new())),
        }
    }

    fn w(&self) -> W {
        W { st: Rc::clone(&self.st), sched: Rc::clone(&self.sched), slots: self.slots.clone() }
    }

    fn with<R>(&self, f: impl FnOnce(&mut WebWorld, &mut SchedBuf<Ev>) -> R) -> R {
        let mut st = self.st.borrow_mut();
        let mut sched = self.sched.borrow_mut();
        f(&mut st, &mut sched)
    }

    /// Fire one event key and run every resumed task to its next await.
    fn fire(&mut self, key: Key) {
        self.slots.fire(key);
        self.exec.drain();
    }

    /// Tear the driver down and return the world (with its populated
    /// [`crate::model::Metrics`] and telemetry). Drops the executor first so every
    /// still-parked task releases its handle on the shared state.
    fn into_world(self) -> WebWorld {
        drop(self.exec);
        drop(self.slots);
        drop(self.conn_tasks);
        Rc::try_unwrap(self.st)
            .ok()
            // simlint: allow(R6) executor dropped above released every task's handle; a survivor is a driver bug worth a panic
            .expect("all tasks dropped with the executor")
            .into_inner()
    }
}

impl Model for AsyncWebWorld {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, event: Ev, ctx: &mut Ctx<Ev>) {
        self.sched.borrow_mut().reset(now);
        match event {
            Ev::GenConn => {
                let measure_end = self.st.borrow().measure_end;
                if now < measure_end {
                    // prepare the connection, then spawn its task: the
                    // task makes the first SYN attempt inside the drain,
                    // exactly where the state machine makes it inline
                    if let Some(conn) = self.with(|st, _| st.open_conn_prepare(now)) {
                        let guard = ConnGuard { tasks: Rc::clone(&self.conn_tasks), conn };
                        let id = self.exec.spawn(connection(self.w(), guard, conn));
                        self.conn_tasks.borrow_mut().insert(conn, id);
                        self.exec.drain();
                    }
                    let d = self.with(|st, _| st.gen_next_delay());
                    self.sched.borrow_mut().schedule_at(now + d, Ev::GenConn);
                }
            }
            // the task tracks the attempt count itself
            Ev::SynRetry { conn, attempt: _ } => self.fire(Key::Syn(conn)),
            Ev::NodeCpu { node, epoch } => {
                if self.st.borrow().nodes.node(NodeId(node)).cpu_epoch() != epoch {
                    return;
                }
                let (done, is_web) = self.with(|st, _| {
                    (st.nodes.node_mut(NodeId(node)).take_finished_cpu(now), node < st.n_web())
                });
                // fire-and-drain per task id: each request's continuation
                // runs before the next completion is looked at, matching
                // the state machine's per-tid loop body order
                for tid in done {
                    self.fire(if is_web { Key::WebCpu(tid) } else { Key::CacheCpu(tid) });
                }
                self.with(|st, s| st.schedule_node_cpu(node, now, s));
            }
            Ev::DbCpu { node, epoch } => {
                if self.st.borrow().dbc.node(NodeId(node)).cpu_epoch() != epoch {
                    return;
                }
                let done = self.with(|st, _| st.dbc.node_mut(NodeId(node)).take_finished_cpu(now));
                for tid in done {
                    self.fire(Key::DbCpu(tid));
                }
                self.with(|st, s| st.schedule_db_cpu(node, now, s));
            }
            Ev::ReqAtWeb { req } => self.fire(Key::AtWeb(req)),
            Ev::ReqAtCache { req } => self.fire(Key::AtCache(req)),
            // the task carried the hit verdict from cache_cpu_done
            Ev::CacheReplyAtWeb { req, hit: _ } => self.fire(Key::CacheReply(req)),
            Ev::ReqAtDb { req } => self.fire(Key::AtDb(req)),
            Ev::DbDiskDone { node, job } => {
                // node-level disk FIFO first (start the next queued
                // read), then the completed job's task sends the reply
                self.with(|st, s| st.db_disk_pop(node, now, s));
                self.fire(Key::Disk(job));
            }
            Ev::DbReplyAtWeb { req } => self.fire(Key::DbReply(req)),
            Ev::ReplyAtClient { req } => self.fire(Key::Reply(req)),
            Ev::Sample => self.with(|st, s| st.sample_tick(now, s)),
            Ev::MeasureStart => self.with(|st, _| st.measure_start_tick(now)),
            Ev::Fault { idx } => {
                let mut crashes: Vec<CrashOutcome> = Vec::new();
                self.with(|st, s| st.apply_fault_collect(idx, now, s, &mut crashes));
                // tear down the tasks of the requests the crash doomed:
                // survivors unwind to the redispatch await; retired
                // connections die with their open span unrecorded
                for c in &crashes {
                    if c.conn_survived {
                        let _ = self.slots.cancel(Key::AtWeb(c.req))
                            || self.slots.cancel(Key::WebCpu(c.req));
                    } else {
                        // end the registry borrow before cancelling: the
                        // dropped task's guard re-borrows it to deregister
                        let tid = self.conn_tasks.borrow_mut().remove(&c.conn);
                        if let Some(tid) = tid {
                            self.exec.cancel(tid);
                        }
                    }
                }
                self.exec.drain();
            }
            Ev::HealthCheck => self.with(|st, s| st.health_check_tick(now, s)),
            Ev::RetryConn { conn } => self.fire(Key::Retry(conn)),
            Ev::Stop => self.with(|st, s| st.stop_tick(now, s)),
        }
        self.sched.borrow_mut().flush(ctx);
    }
}

/// [`crate::stack::run`], on the async driver: build, seed and run one
/// configuration to completion; returns the world with populated
/// [`crate::model::Metrics`]. Same seed ⇒ byte-identical results.
pub fn run_async(cfg: StackConfig) -> WebWorld {
    run_async_traced(cfg, Telemetry::off())
}

/// [`crate::stack::run_traced`], on the async driver.
pub fn run_async_traced(cfg: StackConfig, tel: Telemetry) -> WebWorld {
    if tel.profiling() {
        return run_async_profiled(cfg, tel).0;
    }
    run_async_inner(cfg, tel, false).0
}

/// [`crate::stack::run_profiled`], on the async driver.
pub fn run_async_profiled(cfg: StackConfig, tel: Telemetry) -> (WebWorld, EngineProfile) {
    let (world, profile) = run_async_inner(cfg, tel, true);
    (world, profile.unwrap_or_default())
}

fn run_async_inner(
    cfg: StackConfig,
    tel: Telemetry,
    profile: bool,
) -> (WebWorld, Option<EngineProfile>) {
    let warmup = cfg.warmup;
    let measure = cfg.measure;
    let tracing = tel.is_on();
    let world = AsyncWebWorld::new(cfg);
    {
        let mut st = world.st.borrow_mut();
        st.set_telemetry(tel);
        if tracing {
            st.init_tracing();
        }
    }
    let fault_times: Vec<SimTime> = world.st.borrow().fplan.faults().iter().map(|f| f.at).collect();
    let mut sim = Simulation::new(world);
    sim.schedule_at(SimTime::ZERO, Ev::GenConn);
    sim.schedule_idle_at(SimTime::ZERO, Ev::Sample);
    let stop_at = SimTime::ZERO + warmup + measure;
    for (idx, at) in fault_times.into_iter().enumerate() {
        // same skip rule as the state-machine runner: a fault at/after
        // the stop can never fire
        if at < stop_at {
            sim.schedule_at(at, Ev::Fault { idx });
        }
    }
    sim.schedule_at(SimTime::ZERO + warmup, Ev::MeasureStart);
    sim.schedule_at(SimTime::ZERO + warmup + measure, Ev::Stop);
    if tracing && profile {
        let mut obs = EventCounter::new(Ev::kind);
        let mut prof = KindProfiler::new(Ev::kind);
        sim.run_profiled(&mut obs, &mut prof);
        let engine_profile = prof.finish(&sim);
        let mut world = sim.into_world().into_world();
        obs.record_into(&mut world.tel, "web");
        record_engine_profile(&mut world.tel, "web", &engine_profile, phase_of);
        world.harvest_power_series();
        (world, Some(engine_profile))
    } else if tracing {
        let mut obs = EventCounter::new(Ev::kind);
        sim.run_observed(&mut obs);
        let mut world = sim.into_world().into_world();
        obs.record_into(&mut world.tel, "web");
        world.harvest_power_series();
        (world, None)
    } else {
        sim.run();
        (sim.into_world().into_world(), None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::GenMode;
    use crate::scenario::{ClusterScale, Platform, WebScenario, WorkloadMix};
    use edison_simcore::time::SimDuration;

    fn small_cfg(conc: f64) -> StackConfig {
        let scenario = WebScenario::table6(Platform::Edison, ClusterScale::Eighth).unwrap();
        let mut cfg = StackConfig::new(
            scenario,
            WorkloadMix::lightest(),
            GenMode::Httperf { connections_per_sec: conc, calls_per_conn: 6.6 },
            42,
        );
        cfg.warmup = SimDuration::from_secs(2);
        cfg.measure = SimDuration::from_secs(8);
        cfg
    }

    #[test]
    fn async_run_completes_without_errors_at_light_load() {
        let w = run_async(small_cfg(16.0));
        assert_eq!(w.metrics.server_errors, 0);
        assert_eq!(w.metrics.client_errors, 0);
        let rps = w.metrics.completed as f64 / 8.0;
        assert!((rps - 105.6).abs() < 12.0, "rps {rps}");
    }

    #[test]
    fn async_matches_legacy_on_the_quick_path() {
        let legacy = crate::stack::run(small_cfg(32.0));
        let ported = run_async(small_cfg(32.0));
        assert_eq!(format!("{:?}", legacy.metrics), format!("{:?}", ported.metrics));
    }
}
