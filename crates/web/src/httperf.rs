//! httperf-style measurement of one (concurrency, workload) point — the
//! unit of Figures 4–9 and Table 7.

use crate::scenario::{WebScenario, WorkloadMix};
use crate::stack::{run_traced, GenMode, StackConfig};
use edison_simcore::time::SimDuration;
use edison_simfault::FaultPlan;
use edison_simtel::Telemetry;

/// Default calls per connection (the paper tunes ≈6.6 to match reported
/// concurrency).
pub const CALLS_PER_CONN: f64 = 6.6;

/// Summary of one httperf run.
#[derive(Debug, Clone)]
pub struct HttperfResult {
    /// Offered new connections per second (the x axis of Figures 4–9).
    pub concurrency: f64,
    /// Completed requests per second.
    pub requests_per_sec: f64,
    /// Mean response delay, ms (the y axis of Figures 7–9).
    pub mean_delay_ms: f64,
    /// 5xx count over the window.
    pub server_errors: u64,
    /// Client-side failures (SYN retries exhausted / fd starvation).
    pub client_errors: u64,
    /// Fraction of offered requests that errored server-side.
    pub error_rate: f64,
    /// 99th-percentile response delay, ms (tail under faults).
    pub p99_delay_ms: f64,
    /// Fraction of offered requests that completed — the availability
    /// metric of the fault experiments.
    pub availability: f64,
    /// Backends taken out of LB rotation after failed health checks.
    pub failovers: u64,
    /// Client connections re-dispatched through the LB after hitting a
    /// dead backend.
    pub retries: u64,
    /// Mean seconds from crash to the victim rejoining LB rotation
    /// (0 when no recovery completed in the window).
    pub mean_recovery_s: f64,
    /// Mean cluster power over the window, W (the green lines in
    /// Figures 4 and 6).
    pub mean_power_w: f64,
    /// Energy over the window, J.
    pub energy_j: f64,
    /// Requests per joule — the work-done-per-joule metric.
    pub requests_per_joule: f64,
    /// Mean cache-retrieval delay, ms (Table 7).
    pub cache_delay_ms: f64,
    /// Mean database delay, ms (Table 7).
    pub db_delay_ms: f64,
    /// Mean utilisations over the window (the §5.1.2 text numbers).
    pub web_cpu: f64,
    pub cache_cpu: f64,
    pub web_mem: f64,
    pub cache_mem: f64,
}

/// Options controlling window length / seed / fault injection.
#[derive(Debug, Clone)]
pub struct RunOpts {
    pub seed: u64,
    pub warmup_s: u64,
    pub measure_s: u64,
    /// Fault schedule played against the run (empty: no faults, and the
    /// run is byte-identical to the pre-fault code path).
    pub fault_plan: FaultPlan,
    /// Client failover re-dispatches per connection
    /// ([`crate::scenario::DEFAULT_RETRY_BUDGET`] is the tuned default
    /// for fault experiments; 0 disables failover retries).
    pub retry_budget: u32,
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts {
            seed: 20160509,
            warmup_s: 5,
            measure_s: 20,
            fault_plan: FaultPlan::new(),
            retry_budget: 0,
        }
    }
}

/// Run one httperf point.
pub fn run_point(
    scenario: &WebScenario,
    mix: WorkloadMix,
    concurrency: f64,
    opts: RunOpts,
) -> HttperfResult {
    run_point_traced(scenario, mix, concurrency, opts, Telemetry::off()).0
}

/// Run one httperf point recording into `tel` (request-lifecycle spans,
/// counters, per-node power timelines when enabled); returns the summary
/// plus the telemetry collected by the run.
pub fn run_point_traced(
    scenario: &WebScenario,
    mix: WorkloadMix,
    concurrency: f64,
    opts: RunOpts,
    tel: Telemetry,
) -> (HttperfResult, Telemetry) {
    let mut cfg = StackConfig::new(
        scenario.clone(),
        mix,
        GenMode::Httperf { connections_per_sec: concurrency, calls_per_conn: CALLS_PER_CONN },
        opts.seed,
    );
    cfg.warmup = SimDuration::from_secs(opts.warmup_s);
    cfg.measure = SimDuration::from_secs(opts.measure_s);
    cfg.fault_plan = opts.fault_plan.clone();
    cfg.retry_budget = opts.retry_budget;
    let mut world = run_traced(cfg, tel);
    let m = &mut world.metrics;
    let window = opts.measure_s as f64;
    let rps = m.completed as f64 / window;
    let offered_reqs = concurrency * CALLS_PER_CONN * window;
    let energy = m.energy_j.max(1e-9);
    let failed = m.server_errors + m.client_errors;
    let result = HttperfResult {
        concurrency,
        requests_per_sec: rps,
        mean_delay_ms: m.delays_ms.mean(),
        p99_delay_ms: m.delays_ms.percentile(99.0),
        availability: m.completed as f64 / (m.completed + failed).max(1) as f64,
        failovers: m.failovers,
        retries: m.retries,
        mean_recovery_s: if m.recovery_s.is_empty() { 0.0 } else { m.recovery_s.mean() },
        server_errors: m.server_errors,
        client_errors: m.client_errors,
        error_rate: (m.server_errors as f64 * CALLS_PER_CONN / offered_reqs).min(1.0),
        mean_power_w: m.power_w.mean_value(),
        energy_j: m.energy_j,
        requests_per_joule: m.completed as f64 / energy,
        cache_delay_ms: m.cache_delays_ms.mean(),
        db_delay_ms: m.db_delays_ms.mean(),
        web_cpu: m.web_cpu.mean(),
        cache_cpu: m.cache_cpu.mean(),
        web_mem: m.web_mem.mean(),
        cache_mem: m.cache_mem.mean(),
    };
    (result, world.take_telemetry())
}

/// The paper's concurrency sweep: 8, 16, …, 2048.
pub fn concurrency_sweep() -> Vec<f64> {
    (3..=11).map(|i| (1u64 << i) as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{ClusterScale, Platform};

    fn opts() -> RunOpts {
        RunOpts { seed: 1, warmup_s: 2, measure_s: 8, ..RunOpts::default() }
    }

    #[test]
    fn sweep_is_the_paper_grid() {
        let s = concurrency_sweep();
        assert_eq!(s.first().copied(), Some(8.0));
        assert_eq!(s.last().copied(), Some(2048.0));
        assert_eq!(s.len(), 9);
    }

    #[test]
    fn throughput_tracks_offered_load_when_unsaturated() {
        let sc = WebScenario::table6(Platform::Edison, ClusterScale::Eighth).unwrap();
        let r = run_point(&sc, WorkloadMix::lightest(), 32.0, opts());
        assert!((r.requests_per_sec - 32.0 * CALLS_PER_CONN).abs() < 25.0, "{r:?}");
        assert_eq!(r.server_errors, 0);
    }

    #[test]
    fn work_done_per_joule_is_positive_and_sane() {
        let sc = WebScenario::table6(Platform::Edison, ClusterScale::Eighth).unwrap();
        let r = run_point(&sc, WorkloadMix::lightest(), 64.0, opts());
        // ~420 req/s on ~7.5 W → tens of requests per joule
        assert!(r.requests_per_joule > 20.0, "{}", r.requests_per_joule);
        assert!(r.requests_per_joule < 200.0);
    }
}
