//! Cluster configurations (Table 6) and workload mixes (§5.1.1).

use edison_hw::{presets, ServerSpec};
use edison_simrun::SimError;

/// Which platform serves the web tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Platform {
    Edison,
    Dell,
}

impl Platform {
    /// The hardware spec of this platform.
    pub fn spec(self) -> ServerSpec {
        match self {
            Platform::Edison => presets::edison(),
            Platform::Dell => presets::dell_r620(),
        }
    }
}

/// Table 6 scale factors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClusterScale {
    Full,
    Half,
    Quarter,
    Eighth,
}

/// Web/cache server counts for one platform at one scale (Table 6).
#[derive(Debug, Clone, PartialEq)]
pub struct WebScenario {
    pub platform: Platform,
    pub scale: ClusterScale,
    /// Lighttpd nodes.
    pub web_servers: usize,
    /// memcached nodes.
    pub cache_servers: usize,
}

impl WebScenario {
    /// Table 6 exactly. Dell has no quarter/eighth configurations; `None`
    /// is returned for those (the paper marks them N/A).
    pub fn table6(platform: Platform, scale: ClusterScale) -> Option<WebScenario> {
        let (web_servers, cache_servers) = match (platform, scale) {
            (Platform::Edison, ClusterScale::Full) => (24, 11),
            (Platform::Edison, ClusterScale::Half) => (12, 6),
            (Platform::Edison, ClusterScale::Quarter) => (6, 3),
            (Platform::Edison, ClusterScale::Eighth) => (3, 2),
            (Platform::Dell, ClusterScale::Full) => (2, 1),
            (Platform::Dell, ClusterScale::Half) => (1, 1),
            (Platform::Dell, _) => return None,
        };
        Some(WebScenario { platform, scale, web_servers, cache_servers })
    }

    /// [`Self::table6`] for callers that *require* the row: the N/A cells
    /// surface as a typed [`SimError::Config`] instead of a panic.
    pub fn table6_or_err(platform: Platform, scale: ClusterScale) -> Result<WebScenario, SimError> {
        Self::table6(platform, scale).ok_or_else(|| {
            SimError::Config(format!("Table 6 has no {platform:?} {scale:?} configuration (the paper marks it N/A)"))
        })
    }

    /// Total nodes in this scenario.
    pub fn total_nodes(&self) -> usize {
        self.web_servers + self.cache_servers
    }
}

/// Reply-body size of a scalar-table row (bytes): the paper's lightest
/// workload averages 1.5 KB.
pub const SCALAR_REPLY_BYTES: u64 = 1_500;

/// Reply-body size of an image row (bytes). The paper's mean *stored* image
/// is 30 KB; the served page (image + markup) averages ≈43 KB, which is the
/// value that reproduces the paper's stated mean reply sizes (3.8 / 5.8 /
/// 10 KB at 6 / 10 / 20 % image queries).
pub const IMAGE_REPLY_BYTES: u64 = 43_000;

/// Tables in the MySQL database (§5.1.1): 11 scalar + 4 image-blob tables.
pub const SCALAR_TABLES: usize = 11;
/// Image-blob tables.
pub const IMAGE_TABLES: usize = 4;
/// Rows per table in the synthetic *hot* keyspace the clients draw from.
///
/// The paper's database is 20 GB, but its warm-up sustains a 93 % hit
/// ratio at every cluster scale — so the requested working set necessarily
/// fits even the smallest cache tier (2 Edison nodes ≈ 1.3 GB). 6 000 rows
/// per table ≈ 1.1 GB of hot data (11 scalar + 4 image tables) satisfies
/// that bound while keeping the keyspace large enough that per-key caching
/// effects are negligible.
pub const ROWS_PER_TABLE: u32 = 6_000;

/// Client retry budget used by the fault experiments: how many times an
/// httperf client re-dispatches a connection through the load balancer
/// after a connect/read timeout on a crashed backend. Two retries ride
/// out a failover (detect + re-dispatch) without letting a hard outage
/// spin forever; `0` (the [`crate::httperf::RunOpts`] default) keeps
/// fault-free sweeps byte-identical to the pre-fault behaviour.
pub const DEFAULT_RETRY_BUDGET: u32 = 2;

/// A workload mix: image-query probability + target cache hit ratio.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadMix {
    /// Probability that a request hits an image table (0.0 / 0.06 / 0.10 /
    /// 0.20 in the paper).
    pub image_fraction: f64,
    /// Cache hit ratio established by the warm-up stage (0.93 / 0.77 /
    /// 0.60).
    pub cache_hit_ratio: f64,
}

impl WorkloadMix {
    /// The paper's four named mixes.
    pub fn lightest() -> Self {
        WorkloadMix { image_fraction: 0.0, cache_hit_ratio: 0.93 }
    }
    /// 6 % images, 93 % hits.
    pub fn img6() -> Self {
        WorkloadMix { image_fraction: 0.06, cache_hit_ratio: 0.93 }
    }
    /// 10 % images, 93 % hits.
    pub fn img10() -> Self {
        WorkloadMix { image_fraction: 0.10, cache_hit_ratio: 0.93 }
    }
    /// The heaviest fair mix: 20 % images (half the Edison NIC), 93 % hits.
    pub fn img20() -> Self {
        WorkloadMix { image_fraction: 0.20, cache_hit_ratio: 0.93 }
    }
    /// 0 % images at a reduced hit ratio.
    pub fn hit(cache_hit_ratio: f64) -> Self {
        WorkloadMix { image_fraction: 0.0, cache_hit_ratio }
    }

    /// Mean reply size for this mix, bytes.
    pub fn mean_reply_bytes(&self) -> f64 {
        (1.0 - self.image_fraction) * SCALAR_REPLY_BYTES as f64
            + self.image_fraction * IMAGE_REPLY_BYTES as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table6_counts() {
        let full = WebScenario::table6(Platform::Edison, ClusterScale::Full).unwrap();
        assert_eq!((full.web_servers, full.cache_servers), (24, 11));
        assert_eq!(full.total_nodes(), 35);
        let half = WebScenario::table6(Platform::Edison, ClusterScale::Half).unwrap();
        assert_eq!(half.total_nodes(), 18);
        let dell = WebScenario::table6(Platform::Dell, ClusterScale::Full).unwrap();
        assert_eq!((dell.web_servers, dell.cache_servers), (2, 1));
        assert!(WebScenario::table6(Platform::Dell, ClusterScale::Quarter).is_none());
    }

    #[test]
    fn web_to_cache_ratio_is_about_two() {
        // §5.1.1: web servers ≈ 2× cache servers on both platforms.
        for scale in [ClusterScale::Full, ClusterScale::Half, ClusterScale::Quarter] {
            let s = WebScenario::table6(Platform::Edison, scale).unwrap();
            let ratio = s.web_servers as f64 / s.cache_servers as f64;
            assert!((1.5..=2.2).contains(&ratio), "{scale:?}: {ratio}");
        }
    }

    #[test]
    fn mean_reply_sizes_match_paper() {
        assert!((WorkloadMix::lightest().mean_reply_bytes() - 1_500.0).abs() < 1.0);
        assert!((WorkloadMix::img6().mean_reply_bytes() / 1000.0 - 3.8).abs() < 0.3);
        assert!((WorkloadMix::img10().mean_reply_bytes() / 1000.0 - 5.8).abs() < 0.3);
        assert!((WorkloadMix::img20().mean_reply_bytes() / 1000.0 - 10.0).abs() < 0.4);
    }
}
