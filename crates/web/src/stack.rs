//! The LLMP web-service discrete-event model (§5.1).
//!
//! One [`WebWorld`] holds a web+cache cluster of a single platform, the two
//! shared Dell MySQL servers, the two-room network fabric and a load
//! generator. A request walks the same path the paper's PHP page does:
//!
//! ```text
//! client ──SYN──▶ web server (accept gate → PHP worker pool)
//!   stage-1 CPU (parse + PHP)
//!   ──▶ memcached get (real LRU store on a cache node)
//!        hit:  cache ──reply body──▶ web
//!        miss: web ──query──▶ MySQL (CPU + 2 % buffer-pool disk miss) ──▶ web
//!   stage-2 CPU (assemble, per-KiB)
//!   ──reply body──▶ client
//! ```
//!
//! Overload produces exactly the failure modes the paper reports:
//!
//! * **5xx server errors** when a web node's PHP backlog overflows (the
//!   Edison onset beyond concurrency 1024);
//! * **SYN drops** when a node's accept gate saturates, with kernel retries
//!   at +1 s/+2 s/+4 s and client-side failure after three retries (the
//!   Dell behaviour beyond 2048, and the Figure 10/11 delay spikes);
//! * **listen-queue collapse**: sustained SYN pressure above the accept
//!   capacity degrades the effective accept rate quadratically, producing
//!   the throughput sag the Dell cluster shows at concurrency 2048.
//!
//! The world itself — state, configuration and every lifecycle step — lives
//! in [`crate::model`]; this module is the *state-machine driver*: the
//! [`Model`] impl that maps each engine event onto the shared helpers, plus
//! the `run*` entry points. The async driver over the same helpers is
//! [`crate::lifecycle`], and `tests/async_equivalence.rs` holds the two
//! byte-identical.

pub use crate::model::{Ev, GenMode, Metrics, StackConfig, WebWorld};

use edison_simcore::time::SimTime;
use edison_simcore::{Ctx, EngineProfile, KindProfiler, Model, SchedBuf, Simulation};
use edison_simtel::{record_engine_profile, EventCounter, Telemetry};

impl Model for WebWorld {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, event: Ev, ctx: &mut Ctx<Ev>) {
        // route the shared lifecycle helpers through a SchedBuf so the
        // same bodies serve the async driver; the buffered ops replay
        // into the engine context in call order, byte-identically
        let mut sched = SchedBuf::new(now);
        self.dispatch(now, event, &mut sched);
        sched.flush(ctx);
    }
}

/// Coarse phase bucket for each [`Ev::kind`] name — the per-phase rollup
/// simprof exports as `profile_phase_*` metrics.
pub fn phase_of(kind: &'static str) -> &'static str {
    match kind {
        "gen_conn" | "syn_retry" | "retry_conn" => "load-gen",
        "fault" | "health_check" => "fault",
        "sample" | "measure_start" | "stop" => "control",
        _ => "request-path",
    }
}

/// Build, seed and run one configuration to completion; returns the world
/// with populated [`Metrics`].
pub fn run(cfg: StackConfig) -> WebWorld {
    run_traced(cfg, Telemetry::off())
}

/// Like [`run`], but records into `tel` when it is enabled: engine event
/// counts, request-lifecycle spans, request counters/histograms and
/// per-node power timelines. With `Telemetry::off()` this is exactly
/// [`run`] — the unobserved fast path, no tracing hooks. A sink carrying
/// the profiling flag ([`Telemetry::profiled`]) additionally self-profiles
/// the engine and records the `profile_*` vocabulary.
pub fn run_traced(cfg: StackConfig, tel: Telemetry) -> WebWorld {
    if tel.profiling() {
        return run_profiled(cfg, tel).0;
    }
    run_inner(cfg, tel, false).0
}

/// Like [`run_traced`] with an enabled sink, but always self-profiles the
/// engine: returns the world plus the deterministic [`EngineProfile`]
/// (per-kind dispatch/advance, heap push/pop totals, depth high-water
/// mark). The profile is also recorded into the world's telemetry as
/// `profile_*` metrics; [`Metrics`] are identical to an unprofiled run.
pub fn run_profiled(cfg: StackConfig, tel: Telemetry) -> (WebWorld, EngineProfile) {
    let (world, profile) = run_inner(cfg, tel, true);
    (world, profile.unwrap_or_default())
}

fn run_inner(cfg: StackConfig, tel: Telemetry, profile: bool) -> (WebWorld, Option<EngineProfile>) {
    let warmup = cfg.warmup;
    let measure = cfg.measure;
    let tracing = tel.is_on();
    let mut world = WebWorld::new(cfg);
    world.set_telemetry(tel);
    if tracing {
        world.init_tracing();
    }
    let fault_times: Vec<SimTime> = world.fplan.faults().iter().map(|f| f.at).collect();
    let mut sim = Simulation::new(world);
    sim.schedule_at(SimTime::ZERO, Ev::GenConn);
    sim.schedule_idle_at(SimTime::ZERO, Ev::Sample);
    let stop_at = SimTime::ZERO + warmup + measure;
    for (idx, at) in fault_times.into_iter().enumerate() {
        // a fault at/after the stop can never fire (Ev::Stop's earlier
        // sequence number wins the tie): skip it so the run — including
        // engine meta-telemetry like heap depth — is byte-identical to the
        // fault-free one
        if at < stop_at {
            sim.schedule_at(at, Ev::Fault { idx });
        }
    }
    sim.schedule_at(SimTime::ZERO + warmup, Ev::MeasureStart);
    sim.schedule_at(SimTime::ZERO + warmup + measure, Ev::Stop);
    if tracing && profile {
        let mut obs = EventCounter::new(Ev::kind);
        let mut prof = KindProfiler::new(Ev::kind);
        sim.run_profiled(&mut obs, &mut prof);
        let engine_profile = prof.finish(&sim);
        let mut world = sim.into_world();
        obs.record_into(&mut world.tel, "web");
        record_engine_profile(&mut world.tel, "web", &engine_profile, phase_of);
        world.harvest_power_series();
        (world, Some(engine_profile))
    } else if tracing {
        let mut obs = EventCounter::new(Ev::kind);
        sim.run_observed(&mut obs);
        let mut world = sim.into_world();
        obs.record_into(&mut world.tel, "web");
        world.harvest_power_series();
        (world, None)
    } else {
        sim.run();
        (sim.into_world(), None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{ClusterScale, Platform, WebScenario, WorkloadMix};
    use edison_simcore::time::SimDuration;
    use edison_simfault::FaultPlan;

    fn small_cfg(conc: f64) -> StackConfig {
        let scenario = WebScenario::table6(Platform::Edison, ClusterScale::Eighth).unwrap();
        let mut cfg = StackConfig::new(
            scenario,
            WorkloadMix::lightest(),
            GenMode::Httperf { connections_per_sec: conc, calls_per_conn: 6.6 },
            42,
        );
        cfg.warmup = SimDuration::from_secs(2);
        cfg.measure = SimDuration::from_secs(8);
        cfg
    }

    #[test]
    fn light_load_completes_without_errors() {
        let w = run(small_cfg(16.0));
        assert_eq!(w.metrics.server_errors, 0);
        assert_eq!(w.metrics.client_errors, 0);
        let rps = w.metrics.completed as f64 / 8.0;
        // 16 conn/s × 6.6 calls ≈ 105 req/s
        assert!((rps - 105.6).abs() < 12.0, "rps {rps}");
    }

    #[test]
    fn delays_are_single_digit_ms_at_low_load() {
        let w = run(small_cfg(8.0));
        let mean = w.metrics.delays_ms.mean();
        assert!((5.0..20.0).contains(&mean), "mean delay {mean} ms");
    }

    #[test]
    fn overload_produces_server_errors() {
        // 3 Edison web servers: capacity ≈ 950 req/s; demand 256 conn/s
        // × 6.6 ≈ 1690 req/s → backlog overflow → 5xx.
        let w = run(small_cfg(256.0));
        assert!(w.metrics.server_errors > 0, "expected 5xx under overload");
    }

    #[test]
    fn throughput_saturates_at_capacity() {
        let low = run(small_cfg(16.0));
        let sat = run(small_cfg(256.0));
        let rps_low = low.metrics.completed as f64 / 8.0;
        let rps_sat = sat.metrics.completed as f64 / 8.0;
        // saturated throughput should be near 3-node capacity (≈950 req/s)
        assert!(rps_sat > rps_low * 4.0);
        assert!((500.0..1200.0).contains(&rps_sat), "rps {rps_sat}");
    }

    #[test]
    fn cache_hits_dominate_at_93_percent() {
        let w = run(small_cfg(32.0));
        let hits = w.metrics.cache_delays_ms.len() as f64;
        let misses = w.metrics.db_delays_ms.len() as f64;
        let ratio = hits / (hits + misses);
        assert!((ratio - 0.93).abs() < 0.03, "hit ratio {ratio}");
    }

    #[test]
    fn power_sits_in_the_edison_band() {
        let w = run(small_cfg(64.0));
        let p = w.metrics.power_w.mean_value();
        // 5 nodes: between 5×1.40=7.0 W and 5×1.68=8.4 W
        assert!((7.0..8.4).contains(&p), "power {p}");
    }

    #[test]
    fn traced_run_matches_untraced_and_records() {
        let plain = run(small_cfg(32.0));
        let mut traced = run_traced(small_cfg(32.0), Telemetry::on());
        // tracing must not perturb the simulation
        assert_eq!(plain.metrics.completed, traced.metrics.completed);
        assert_eq!(plain.metrics.server_errors, traced.metrics.server_errors);
        let tel = traced.take_telemetry();
        // request spans + engine counters + power timelines all present
        assert!(tel.tracer.spans().iter().any(|s| s.name == "http_request"));
        assert!(tel.tracer.spans().iter().any(|s| s.name == "memcached_get"));
        assert!(tel.tracer.spans().iter().any(|s| s.name == "mysql_query"));
        let counters: Vec<_> = tel.registry.counters().collect();
        assert!(counters.iter().any(|(n, _, v)| *n == "sim_events_total" && *v > 0));
        assert!(counters.iter().any(|(n, l, v)| *n == "web_requests_total"
            && l.get("outcome") == Some(&"ok".to_string())
            && *v == traced.metrics.completed_total));
        assert!(tel
            .registry
            .series()
            .any(|(n, l, pts)| n == "node_power_watts"
                && l.get("node") == Some(&"web-0".to_string())
                && !pts.is_empty()));
        // untraced runs carry an empty sink
        assert!(plain.telemetry().registry.is_empty());
        assert!(plain.telemetry().tracer.spans().is_empty());
    }

    #[test]
    fn crash_restart_recovers_with_failover_and_retries() {
        let mut cfg = small_cfg(32.0);
        cfg.measure = SimDuration::from_secs(20);
        cfg.retry_budget = 2;
        cfg.fault_plan = FaultPlan::new()
            .crash_restart(0, SimTime::from_secs(6), SimDuration::from_secs(3));
        let w = run(cfg);
        // the LB noticed (failover), the node came back (recovery sample)
        assert_eq!(w.metrics.faults_injected, 2, "crash + restart both applied");
        assert!(w.metrics.failovers >= 1, "failovers {}", w.metrics.failovers);
        assert_eq!(w.metrics.recovery_s.len(), 1);
        let rec = w.metrics.recovery_s.samples()[0];
        // down 3 s + RISE health checks ≈ 5 s; well under the window
        assert!((3.0..10.0).contains(&rec), "recovery {rec} s");
        assert!(w.metrics.retries > 0, "clients should burn retry budget");

        // with failover + retries the fault barely dents completed work
        let mut base = small_cfg(32.0);
        base.measure = SimDuration::from_secs(20);
        let b = run(base);
        let frac = w.metrics.completed as f64 / b.metrics.completed as f64;
        assert!(frac > 0.9, "completed {} vs baseline {}", w.metrics.completed, b.metrics.completed);
    }

    #[test]
    fn zero_width_crash_restart_is_observationally_a_noop() {
        let mut cfg = small_cfg(32.0);
        cfg.fault_plan = FaultPlan::new()
            .crash(0, SimTime::from_secs(5))
            .restart(0, SimTime::from_secs(5));
        let faulted = run(cfg);
        let plain = run(small_cfg(32.0));
        assert_eq!(faulted.metrics.completed, plain.metrics.completed);
        assert_eq!(faulted.metrics.server_errors, plain.metrics.server_errors);
        assert_eq!(faulted.metrics.delays_ms.len(), plain.metrics.delays_ms.len());
        assert_eq!(faulted.metrics.faults_injected, 0);
        assert_eq!(faulted.metrics.failovers, 0);
    }

    #[test]
    fn cache_cold_restart_dents_hit_ratio_then_rewarms() {
        let mut cfg = small_cfg(32.0);
        cfg.measure = SimDuration::from_secs(20);
        cfg.fault_plan = FaultPlan::new().cache_cold_restart(0, SimTime::from_secs(6));
        let w = run(cfg);
        assert_eq!(w.metrics.faults_injected, 1);
        let hits = w.metrics.cache_delays_ms.len() as f64;
        let misses = w.metrics.db_delays_ms.len() as f64;
        let ratio = hits / (hits + misses);
        // cold store: more misses than the calibrated 93 % steady state,
        // but write-allocate re-warms it — not a total collapse
        assert!(ratio < 0.92, "hit ratio {ratio} should dip below steady state");
        assert!(ratio > 0.5, "hit ratio {ratio} should re-warm");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run(small_cfg(32.0));
        let b = run(small_cfg(32.0));
        assert_eq!(a.metrics.completed, b.metrics.completed);
        assert_eq!(a.metrics.delays_ms.len(), b.metrics.delays_ms.len());
        let mut cfg = small_cfg(32.0);
        cfg.seed = 43;
        let c = run(cfg);
        assert_ne!(a.metrics.completed, c.metrics.completed);
    }
}
