//! Shared simulation state and request-path helpers of the web world.
//!
//! This module owns [`WebWorld`] — configuration, cluster, fabric, caches,
//! fault layer and metrics — plus every side-effecting step of the request
//! lifecycle, each expressed over an [`edison_simcore::SchedBuf`] instead
//! of a live [`edison_simcore::Ctx`]. That one change lets the *same*
//! helper run in two drivers:
//!
//! * the legacy state machine ([`crate::stack`]), whose event arms are now
//!   thin delegations to these helpers; and
//! * the async port ([`crate::lifecycle`]), whose tasks call the helpers
//!   between `.await` points while the executor runs inside an event
//!   handle.
//!
//! Helpers that the async tasks branch on return small *step enums*
//! ([`SynStep`], [`AdmitStep`], [`PathStep`], …) instead of scheduling
//! continuation state into a `Req::state` field — the legacy arms ignore
//! the value, the tasks `match` on it. Side-effect order inside every
//! helper is exactly the pre-refactor order; byte-identity between the two
//! drivers is pinned by `tests/async_equivalence.rs`.

use crate::db::{self, RowQuery};
use crate::memcached::{Key, LruStore};
use crate::scenario::{Platform, WebScenario, WorkloadMix, ROWS_PER_TABLE};
use edison_cluster::node::AdmitError;
use edison_cluster::{Cluster, NodeId};
use edison_hw::{calib, presets};
use edison_net::topology::TwoRooms;
use edison_net::{HostId, LinkGauge, Topology};
use edison_simcore::rng::SimRng;
use edison_simcore::stats::{Histogram, SampleSet, TimeSeries};
use edison_simcore::time::{SimDuration, SimTime};
use edison_simcore::SchedBuf;
use edison_simfault::metrics as fault_metrics;
use edison_simfault::{Fault, FaultKind, FaultPlan, RecoveryWindow};
use edison_simguard::metrics as guard_metrics;
use edison_simguard::{
    class_of, probe_eligible, BreakerState, BreakerVerdict, Brownout, BrownoutStep,
    CircuitBreaker, Deadline, GateVerdict, GuardConfig, Priority, QueueGate, TokenBucket,
};
use edison_simrun::derive_seed;
use edison_simtel::{labels, OpenSpan, Telemetry};
use std::collections::{HashMap, VecDeque};

/// Histogram bounds for request-delay telemetry, seconds (log-ish spacing
/// over the paper's 0–8 s Figure 10/11 range).
pub(crate) const DELAY_BOUNDS_S: &[f64] =
    &[0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0];

/// How load is generated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GenMode {
    /// httperf: `rate` new connections/s, each issuing `calls` sequential
    /// requests (fractional mean; the paper tunes ≈6.6 calls/connection).
    Httperf { connections_per_sec: f64, calls_per_conn: f64 },
    /// python/urllib2 loggers: open-loop single-request connections.
    Python { requests_per_sec: f64 },
}

/// Full configuration of one run.
#[derive(Debug, Clone)]
pub struct StackConfig {
    pub scenario: WebScenario,
    pub mix: WorkloadMix,
    pub gen: GenMode,
    /// RNG seed — runs are exactly reproducible per seed.
    pub seed: u64,
    /// Settling time before measurement starts.
    pub warmup: SimDuration,
    /// Measurement window (the paper uses ~3 min; 20–30 s is converged).
    pub measure: SimDuration,
    /// httperf/HAProxy client machines (the paper: 8).
    pub clients: usize,
    /// Fault injection: kill web server `node` this long after t = 0.
    /// Models the paper's Introduction argument (advantage 2) that node
    /// failure hits brawny clusters harder — each Dell web server carries
    /// 12× the load share of an Edison one. Sugar for a one-crash
    /// [`FaultPlan`]; merged into `fault_plan` when the run starts.
    pub kill_web_at: Option<(usize, SimDuration)>,
    /// Declarative fault schedule played against this run (crashes,
    /// restarts, NIC degradation, CPU throttling, cache cold restarts).
    /// Empty plans leave the run byte-identical to the pre-fault code
    /// path.
    pub fault_plan: FaultPlan,
    /// How many times a client re-dispatches a connection through the
    /// load balancer after hitting a dead backend (connect/read timeout).
    /// `0` reproduces the original behaviour: every request caught on a
    /// crashed node is a hard `server_error`.
    pub retry_budget: u32,
    /// Extension (§7's "hybrid future datacenter"): append this many web
    /// servers of the *other* platform to the web tier. They sit in their
    /// own room with their own NIC/OS limits; the load balancer spreads
    /// connections weighted by measured per-platform capacity.
    pub hybrid_web: usize,
    /// Overload protection (deadlines, circuit breakers, LB admission
    /// control, brownout). [`GuardConfig::off`] (the default) keeps the
    /// run byte-identical to the pre-guard code path.
    pub guard: GuardConfig,
}

impl StackConfig {
    /// Sensible defaults for one figure point.
    pub fn new(scenario: WebScenario, mix: WorkloadMix, gen: GenMode, seed: u64) -> Self {
        StackConfig {
            scenario,
            mix,
            gen,
            seed,
            warmup: SimDuration::from_secs(5),
            measure: SimDuration::from_secs(20),
            clients: 8,
            kill_web_at: None,
            fault_plan: FaultPlan::new(),
            retry_budget: 0,
            hybrid_web: 0,
            guard: GuardConfig::off(),
        }
    }
}

/// PHP/FastCGI worker pool of one web node.
#[derive(Debug)]
pub(crate) struct WorkerPool {
    pub(crate) max: u32,
    pub(crate) busy: u32,
    pub(crate) backlog: VecDeque<u64>,
    pub(crate) backlog_max: usize,
}

/// Listen-queue state of one web node (EWMA SYN-rate for the collapse
/// model).
#[derive(Debug)]
pub(crate) struct SynGate {
    bucket_rate: f64,
    window_start: SimTime,
    window_count: u32,
    ewma_rate: f64,
}

impl SynGate {
    pub(crate) fn new(rate: f64) -> Self {
        SynGate { bucket_rate: rate, window_start: SimTime::ZERO, window_count: 0, ewma_rate: 0.0 }
    }

    /// Record a SYN arrival and return the extra drop probability from
    /// listen-queue collapse (0 when pressure ≤ capacity).
    fn pressure_drop_p(&mut self, now: SimTime) -> f64 {
        // 1 s windows folded into an EWMA.
        while now.saturating_since(self.window_start) >= SimDuration::from_secs(1) {
            self.ewma_rate = 0.5 * self.ewma_rate + 0.5 * self.window_count as f64;
            self.window_count = 0;
            self.window_start = self.window_start + SimDuration::from_secs(1);
        }
        self.window_count += 1;
        if self.ewma_rate <= self.bucket_rate {
            0.0
        } else {
            // goodput collapse: admitted ≈ capacity·(capacity/offered)^1.5
            let keep = (self.bucket_rate / self.ewma_rate).powf(2.5);
            1.0 - keep.clamp(0.0, 1.0)
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum ReqState {
    Stage1,
    CacheRpc,
    DbRpc,
    DbDisk,
    Stage2,
    Reply,
}

#[derive(Debug)]
pub(crate) struct Req {
    pub(crate) conn: u64,
    pub(crate) client: usize,
    pub(crate) web: usize,
    pub(crate) cache: usize,
    pub(crate) db_node: usize,
    pub(crate) query: RowQuery,
    pub(crate) state: ReqState,
    pub(crate) first_call: bool,
    pub(crate) t_sent: SimTime,
    pub(crate) t_cache_sent: SimTime,
    pub(crate) t_db_sent: SimTime,
    /// Set when the db reply lands back on the web server.
    pub(crate) db_delay: Option<f64>,
    pub(crate) went_to_db: bool,
    /// Set while the request waits in the PHP backlog (telemetry span).
    pub(crate) t_queued: Option<SimTime>,
    /// Absolute deadline derived from [`GuardConfig::deadline`] at send
    /// time; `None` when deadlines are off.
    pub(crate) deadline: Option<Deadline>,
    /// Served degraded: the memcached/MySQL stage was skipped and a
    /// cheap brownout response assembled instead.
    pub(crate) degraded: bool,
    /// Shed by the guard layer: a header-only rejection is on its way to
    /// the client and the connection closes when it lands.
    pub(crate) shed: bool,
}

#[derive(Debug)]
pub(crate) struct Conn {
    pub(crate) client: usize,
    pub(crate) web: usize,
    pub(crate) calls_left: u32,
    pub(crate) t_first_syn: SimTime,
    /// Failover re-dispatches consumed (bounded by
    /// [`StackConfig::retry_budget`]).
    pub(crate) retries: u32,
    /// Shedding priority, drawn once from a derived seed
    /// ([`class_of`]) — never from the workload RNG.
    pub(crate) class: Priority,
    /// True while this connection holds a half-open probe slot on the
    /// breaker of `web`.
    pub(crate) probe: bool,
}

/// Everything measured during the window.
#[derive(Debug)]
pub struct Metrics {
    /// Requests completed inside the window.
    pub completed: u64,
    /// 5xx responses (backlog overflow / fd exhaustion).
    pub server_errors: u64,
    /// Connections abandoned after three SYN retries.
    pub client_errors: u64,
    /// SYN drops observed (each may be retried).
    pub syn_drops: u64,
    /// Per-request delay, ms (first call measured from first SYN).
    pub delays_ms: SampleSet,
    /// Cache-retrieval delay, ms (hit requests; includes the web-side
    /// unserialize CPU slice, mirroring where the paper's PHP timestamps
    /// sit).
    pub cache_delays_ms: SampleSet,
    /// Database delay, ms (miss requests; query send → reply arrival).
    pub db_delays_ms: SampleSet,
    /// Full-connection delay from first SYN, seconds (Fig 10/11 histogram).
    pub conn_delay_hist: Histogram,
    /// Cluster power sampled at 1 s, W.
    pub power_w: TimeSeries,
    /// Mean web CPU / cache CPU / web mem / cache mem over samples.
    pub web_cpu: SampleSet,
    pub cache_cpu: SampleSet,
    pub web_mem: SampleSet,
    pub cache_mem: SampleSet,
    /// Joules consumed by the web+cache cluster during the window.
    pub energy_j: f64,
    pub(crate) energy_at_start: f64,
    /// Requests completed regardless of window (drives `throughput_ts`).
    pub completed_total: u64,
    /// Completed requests per second, sampled at 1 s (fault-injection dip).
    pub throughput_ts: TimeSeries,
    pub(crate) last_sampled_completed: u64,
    /// Faults actually applied from the plan.
    pub faults_injected: u64,
    /// Backends taken out of LB rotation after failed health checks.
    pub failovers: u64,
    /// Client connections re-dispatched through the LB after hitting a
    /// dead backend.
    pub retries: u64,
    /// Of [`Metrics::retries`]: re-dispatches after a connect/read
    /// timeout on a crashed backend.
    pub retry_dead_total: u64,
    /// Of [`Metrics::retries`]: re-dispatches after a backlog-overflow
    /// 5xx (guarded runs only; unguarded overflow is a hard error).
    pub retry_overflow_total: u64,
    /// Seconds from crash injection until the victim is back in LB
    /// rotation (one sample per completed recovery).
    pub recovery_s: SampleSet,
    /// Observed recovery windows: restart applied → back in LB rotation
    /// (the RISE interval). The simexplore perturbation space targets
    /// follow-up faults inside these.
    pub recovery_windows: Vec<RecoveryWindow>,
    /// Guard-layer accounting; all-zero unless [`StackConfig::guard`] is
    /// active.
    pub guard: GuardStats,
}

/// simguard accounting for one run. Every request the guard layer
/// admitted ([`GuardStats::admitted`]) ends in exactly one terminal
/// bucket — the conservation identity
/// `admitted = completed + degraded + shed + failed`
/// is checked per seed and `--jobs` level by the property tests.
/// [`GuardStats::lb_rejected`] counts connections refused *before* any
/// request existed (token bucket, queue gate, breaker block) and sits
/// outside the identity.
#[derive(Debug, Default)]
pub struct GuardStats {
    /// Requests created past the guard layer's admission decisions.
    pub admitted: u64,
    /// Full-fidelity completions.
    pub completed: u64,
    /// Degraded completions (memcached/MySQL stage skipped).
    pub degraded: u64,
    /// Requests shed after admission (deadline already blown at the
    /// worker pool): header-only rejection, connection closed.
    pub shed: u64,
    /// Requests retired on an error path (overflow, dead node, lost
    /// connection, in flight when the run stopped).
    pub failed: u64,
    /// Connections refused at the LB before a request existed.
    pub lb_rejected: u64,
    /// Full responses delivered after their deadline.
    pub deadline_miss: u64,
    /// Circuit-breaker trips (closed→open and failed half-open probes).
    pub breaker_trips: u64,
    /// Times brownout (degraded) mode engaged.
    pub brownout_entries: u64,
    /// Breaker half-open → closed windows (probe success closes them):
    /// the breaker analogue of health-check recovery windows, probed by
    /// simexplore with follow-up faults.
    pub breaker_windows: Vec<RecoveryWindow>,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            completed: 0,
            server_errors: 0,
            client_errors: 0,
            syn_drops: 0,
            delays_ms: SampleSet::new(),
            cache_delays_ms: SampleSet::new(),
            db_delays_ms: SampleSet::new(),
            conn_delay_hist: Histogram::new(0.0, 8.0, 80),
            power_w: TimeSeries::new(),
            web_cpu: SampleSet::new(),
            cache_cpu: SampleSet::new(),
            web_mem: SampleSet::new(),
            cache_mem: SampleSet::new(),
            energy_j: 0.0,
            energy_at_start: 0.0,
            completed_total: 0,
            throughput_ts: TimeSeries::new(),
            last_sampled_completed: 0,
            faults_injected: 0,
            failovers: 0,
            retries: 0,
            retry_dead_total: 0,
            retry_overflow_total: 0,
            recovery_s: SampleSet::new(),
            recovery_windows: Vec::new(),
            guard: GuardStats::default(),
        }
    }
}

/// Events of the web world.
#[derive(Debug)]
pub enum Ev {
    GenConn,
    SynRetry { conn: u64, attempt: u8 },
    NodeCpu { node: usize, epoch: u64 },
    DbCpu { node: usize, epoch: u64 },
    ReqAtWeb { req: u64 },
    ReqAtCache { req: u64 },
    CacheReplyAtWeb { req: u64, hit: bool },
    ReqAtDb { req: u64 },
    DbDiskDone { node: usize, job: u64 },
    DbReplyAtWeb { req: u64 },
    ReplyAtClient { req: u64 },
    Sample,
    MeasureStart,
    /// Inject fault `idx` of the normalized plan.
    Fault { idx: usize },
    /// HAProxy-style health-check tick over the web tier (idle-scheduled;
    /// starts with the first injected fault).
    HealthCheck,
    /// A client re-dispatches a connection through the LB after a
    /// failover timeout.
    RetryConn { conn: u64 },
    Stop,
}

impl Ev {
    /// Static event-kind name for engine-level telemetry
    /// ([`edison_simtel::EventCounter`]).
    pub fn kind(&self) -> &'static str {
        match self {
            Ev::GenConn => "gen_conn",
            Ev::SynRetry { .. } => "syn_retry",
            Ev::NodeCpu { .. } => "node_cpu",
            Ev::DbCpu { .. } => "db_cpu",
            Ev::ReqAtWeb { .. } => "req_at_web",
            Ev::ReqAtCache { .. } => "req_at_cache",
            Ev::CacheReplyAtWeb { .. } => "cache_reply_at_web",
            Ev::ReqAtDb { .. } => "req_at_db",
            Ev::DbDiskDone { .. } => "db_disk_done",
            Ev::DbReplyAtWeb { .. } => "db_reply_at_web",
            Ev::ReplyAtClient { .. } => "reply_at_client",
            Ev::Sample => "sample",
            Ev::MeasureStart => "measure_start",
            Ev::Fault { .. } => "fault",
            Ev::HealthCheck => "health_check",
            Ev::RetryConn { .. } => "retry_conn",
            Ev::Stop => "stop",
        }
    }
}

// ---- step enums: what a lifecycle stage did ---------------------------
//
// The legacy arms ignore these; the async tasks in `crate::lifecycle`
// match on them to pick the next `.await`. Every variant corresponds to
// a continuation the state machine used to encode in `ReqState`.

/// Outcome of one SYN attempt ([`WebWorld::syn_attempt`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SynStep {
    /// Accepted: request `req` is on the wire to the web node.
    Accepted { req: u64 },
    /// SYN dropped; a kernel retransmit was scheduled ([`Ev::SynRetry`]).
    Backoff,
    /// Dead backend with retry budget: an LB re-dispatch was scheduled
    /// ([`Ev::RetryConn`]).
    AwaitRedispatch,
    /// The connection is gone (accounted as a client/server error, or a
    /// stale id).
    Gone,
}

/// Outcome of worker-pool admission ([`WebWorld::admit_to_worker`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AdmitStep {
    /// Running or backlogged; stage-1 CPU completion will follow.
    Admitted,
    /// Caught on a dead node and dropped (retry may be scheduled).
    Dropped,
    /// 5xx overflow (request and connection gone) or a stale id.
    Gone,
    /// Deadline already blown: a header-only rejection is on the wire
    /// ([`Ev::ReplyAtClient`] scheduled); no worker was taken.
    Shed,
}

/// Outcome of stage-1 CPU completion ([`WebWorld::stage1_to_cache`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Stage1Step {
    /// The memcached get is on the wire ([`Ev::ReqAtCache`] scheduled).
    ToCache,
    /// Guard verdict (deadline blown, or brownout + bulk class): the
    /// cache/db stage is skipped and stage-2 CPU was enqueued directly.
    Degraded,
    /// Stale request id.
    Gone,
}

/// Outcome of a reply landing back on the web node
/// ([`WebWorld::cache_reply_at_web`], [`WebWorld::db_reply_at_web`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PathStep {
    /// Stage-2 CPU was enqueued.
    Continue,
    /// Cache miss: the query went to MySQL ([`Ev::ReqAtDb`] scheduled).
    ToDb,
    /// Caught on a dead node and dropped (retry may be scheduled).
    Dropped,
    /// Stale request id.
    Gone,
    /// Guard verdict on the miss path: the remaining deadline budget
    /// cannot afford the MySQL leg; stage-2 CPU was enqueued directly.
    Degraded,
}

/// Outcome of MySQL CPU completion ([`WebWorld::db_cpu_done`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DbStep {
    /// Buffer-pool miss: a disk read was submitted ([`Ev::DbDiskDone`]).
    Disk,
    /// Reply is on the wire to the web node ([`Ev::DbReplyAtWeb`]).
    Sent,
    /// Stale request id.
    Gone,
}

/// Outcome of stage-2 CPU completion ([`WebWorld::stage2_to_reply`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Stage2Step {
    /// Reply is on the wire to the client ([`Ev::ReplyAtClient`]).
    Sent,
    /// Connection (or request) vanished; the request was retired.
    Gone,
}

/// Outcome of delivering the reply ([`WebWorld::finish_reply`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReplyStep {
    /// Completed; the connection has calls left and request `req` was
    /// started.
    NextCall { req: u64 },
    /// Completed; that was the connection's last call and it closed.
    Closed,
    /// Stale request or vanished connection: nothing was recorded, so the
    /// async task must *not* finish its `http_request` span either.
    Vanished,
}

/// Outcome of an LB re-dispatch ([`WebWorld::redispatch`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RedispatchStep {
    /// A new backend was picked; retry the SYN handshake.
    Go,
    /// Nothing to fail over to (connection retired) or a stale id.
    Gone,
}

/// What the (breaker-aware) load balancer picked for one connection.
enum LbPick {
    /// Route to `web`; `probe` means a half-open probe slot was claimed.
    Backend { web: usize, probe: bool },
    /// Every backend is out of LB rotation (crashed / health-checked
    /// out): the legacy hard client error.
    AllDead,
    /// At least one backend is in rotation but every one of them is
    /// breaker-blocked: shed instead of erroring.
    Blocked,
}

/// Why a client re-dispatched its connection through the LB — satellite
/// split of the previously conflated retry accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RetryCause {
    /// Connect/read timeout on a crashed backend.
    Dead,
    /// Backlog-overflow 5xx with guards on (the client retries instead
    /// of surfacing a hard error).
    Overflow,
}

impl RetryCause {
    fn name(self) -> &'static str {
        match self {
            RetryCause::Dead => "dead",
            RetryCause::Overflow => "overflow",
        }
    }
}

/// One request torn down by [`WebWorld::apply_crash`] while it was on the
/// crashed node's CPU (stage 1/2). The async driver uses these to cancel
/// the matching in-flight tasks after the fault is applied.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CrashOutcome {
    /// The torn-down request id.
    pub(crate) req: u64,
    /// Its connection id.
    pub(crate) conn: u64,
    /// True when the connection survived (a retry re-dispatch was
    /// scheduled); false when it was retired as a hard error.
    pub(crate) conn_survived: bool,
}

/// The web-service world. Construct with [`WebWorld::new`], then drive it
/// through [`crate::stack::run`] (state machine) or
/// [`crate::lifecycle::run_async`] (async port) — both dispatch into the
/// helpers below, in the same order.
pub struct WebWorld {
    pub(crate) cfg: StackConfig,
    pub(crate) nodes: Cluster,
    pub(crate) dbc: Cluster,
    pub(crate) topo: Topology,
    pub(crate) gauge: LinkGauge,
    pub(crate) node_hosts: Vec<HostId>,
    pub(crate) db_hosts: Vec<HostId>,
    pub(crate) client_hosts: Vec<HostId>,
    pub(crate) caches: Vec<LruStore>,
    pub(crate) workers: Vec<WorkerPool>,
    pub(crate) syn_gates: Vec<SynGate>,
    pub(crate) rng: SimRng,
    // simlint: allow(R1) keyed lookup only; event order comes from the kernel heap
    pub(crate) conns: HashMap<u64, Conn>,
    // simlint: allow(R1) keyed lookup only; event order comes from the kernel heap
    pub(crate) reqs: HashMap<u64, Req>,
    pub(crate) next_conn: u64,
    pub(crate) next_req: u64,
    pub(crate) rr_web: usize,
    pub(crate) rr_client: usize,
    pub(crate) dead: Vec<bool>,
    /// Per-web-node request CPU cost (differs across hybrid platforms).
    pub(crate) req_mi_of: Vec<f64>,
    /// Load-balancer weights (one per web node, capacity-proportional).
    pub(crate) lb_weights: Vec<f64>,
    // ---- fault layer --------------------------------------------------
    /// Normalized fault plan (time-sorted, zero-width pairs cancelled);
    /// `Ev::Fault { idx }` indexes into `fplan.faults()`.
    pub(crate) fplan: FaultPlan,
    /// Backends the LB has taken out of rotation (health-check verdict;
    /// lags `dead` by FALL checks and outlives it by RISE checks).
    pub(crate) lb_dead: Vec<bool>,
    /// Consecutive failed / passed health checks per web node.
    pub(crate) hc_fail: Vec<u8>,
    pub(crate) hc_ok: Vec<u8>,
    /// When each web node crashed (cleared once it is back in rotation —
    /// the recovery-time sample).
    pub(crate) crash_time: Vec<Option<SimTime>>,
    /// When each web node's restart was applied (cleared at RISE — the
    /// recovery-window sample: restarted but not yet in rotation).
    pub(crate) restart_time: Vec<Option<SimTime>>,
    /// Accept-gate rate per web node, kept for post-restart re-init.
    pub(crate) accept_rate_of: Vec<f64>,
    /// Cache store capacity per cache node, kept for cold restarts.
    pub(crate) cache_cap_of: Vec<u64>,
    /// Packet-loss probability per tier node (web then cache), from NIC
    /// degradation faults. Applies to connection-establishment SYNs.
    pub(crate) nic_loss: Vec<f64>,
    /// Latency/transfer multiplier per tier node, from NIC degradation.
    pub(crate) nic_lat: Vec<f64>,
    /// CPU service-time multiplier per tier node (straggler faults).
    pub(crate) cpu_factor: Vec<f64>,
    /// Disk service-time multiplier per MySQL node.
    pub(crate) db_disk_factor: Vec<f64>,
    /// RNG for fault-effect draws (NIC loss); separate stream from the
    /// workload RNG so injecting a fault never shifts workload draws.
    /// Re-seeded from the plan's per-fault seed at each NIC fault.
    pub(crate) fault_rng: SimRng,
    /// Health checks are scheduled lazily at the first injected fault so
    /// fault-free runs stay byte-identical to the pre-fault code path.
    pub(crate) hc_running: bool,
    /// Write-allocate on db replies, enabled by a cache cold restart so
    /// the store re-warms (off by default: the pre-warmed steady state
    /// never inserts on the miss path).
    pub(crate) cache_writeback: bool,
    pub(crate) measure_start: SimTime,
    pub(crate) measure_end: SimTime,
    /// Collected metrics.
    pub metrics: Metrics,
    /// Telemetry sink; [`Telemetry::off`] unless the run came through
    /// a traced entry point.
    pub(crate) tel: Telemetry,
    /// Interned span track id per web node (`("web", "web-{i}")`), filled
    /// once by [`WebWorld::init_tracing`] when tracing — per-event span
    /// recording then does no string formatting or comparison.
    pub(crate) web_tracks: Vec<usize>,
    // ---- guard layer (simguard) ---------------------------------------
    /// Cached [`GuardConfig::is_active`]: every guard side effect —
    /// accounting, telemetry, state — is gated on this, so guards-off
    /// runs are byte-identical to the pre-guard code path.
    pub(crate) guard_on: bool,
    /// One circuit breaker per web backend; empty when breakers are off
    /// (the LB then uses the legacy pick path verbatim).
    pub(crate) brk: Vec<CircuitBreaker>,
    /// LB admission token bucket (disabled at rate 0).
    pub(crate) admit_bucket: TokenBucket,
    /// CoDel-style queue-delay gate fed by PHP-backlog sojourns.
    pub(crate) admit_gate: QueueGate,
    /// Brownout (degraded-mode) controller over the smoothed sojourn.
    pub(crate) brownout: Brownout,
    /// Span track for guard-layer intervals (brownout windows).
    pub(crate) guard_track: Option<usize>,
}

/// Fraction of the per-request web CPU spent before the cache RPC (parse +
/// routing); the rest is reply assembly.
const STAGE1_FRAC: f64 = 0.6;
/// Request/notice message size on the wire, bytes (headers).
const HEADER_BYTES: u64 = 300;
/// PHP workers per Edison web server (the paper's tuned FastCGI children).
const EDISON_WORKERS: u32 = 32;
/// PHP workers per Dell web server.
const DELL_WORKERS: u32 = 256;
/// Pending-request backlog bound before lighttpd answers 5xx.
const BACKLOG_PER_WORKER: usize = 4;
/// Per-PHP-worker resident memory, bytes.
const EDISON_WORKER_MEM: u64 = 512 * 1024;
/// Dell runs the older PHP 5.3 with fatter processes.
const DELL_WORKER_MEM: u64 = 24 * 1024 * 1024;
/// HAProxy-style health-check interval (`inter`).
const HC_PERIOD: SimDuration = SimDuration::from_secs(1);
/// Consecutive failed checks before a backend leaves rotation (`fall`).
const HC_FALL: u8 = 2;
/// Consecutive passed checks before a restarted backend rejoins (`rise`).
const HC_RISE: u8 = 2;
/// Client-side connect/read timeout before a retry re-dispatches through
/// the load balancer.
const FAILOVER_TIMEOUT: SimDuration = SimDuration::from_secs(1);
/// Exponent cap on the client re-dispatch backoff: delays double per
/// attempt up to `FAILOVER_TIMEOUT << RETRY_BACKOFF_CAP`.
const RETRY_BACKOFF_CAP: u32 = 2;
/// Jitter spread (± fraction) around the backed-off re-dispatch delay.
const RETRY_JITTER: f64 = 0.25;
/// Body size of a degraded (brownout) response: the cheap static
/// fallback PHP serves when the memcached/MySQL stage is skipped.
const DEGRADED_REPLY_BYTES: u64 = 512;

/// Span label for a completed request's service path.
fn span_path(r: &Req) -> &'static str {
    if r.degraded {
        "php/degraded"
    } else if r.went_to_db {
        "php/memcached-miss/mysql"
    } else {
        "php/memcached-hit"
    }
}

/// Scale a duration by a fault multiplier (identity fast path keeps
/// fault-free runs bit-exact with the pre-fault arithmetic).
fn scaled(d: SimDuration, m: f64) -> SimDuration {
    if m == 1.0 {
        d
    } else {
        d.mul_f64(m)
    }
}

impl WebWorld {
    /// Assemble the world: cluster, fabric, pre-warmed caches.
    pub fn new(cfg: StackConfig) -> Self {
        let spec = cfg.scenario.platform.spec();
        let dell = presets::dell_r620();
        let other_platform = match cfg.scenario.platform {
            Platform::Edison => Platform::Dell,
            Platform::Dell => Platform::Edison,
        };
        let other_spec = other_platform.spec();
        let n_web = cfg.scenario.web_servers + cfg.hybrid_web;
        let n_cache = cfg.scenario.cache_servers;
        // web nodes: base platform first, hybrid extras after, then caches
        let web_platforms: Vec<Platform> = (0..n_web)
            .map(|i| if i < cfg.scenario.web_servers { cfg.scenario.platform } else { other_platform })
            .collect();
        let mut nodes = Cluster::new();
        for p in &web_platforms {
            match p {
                Platform::Edison => nodes.push(&presets::edison()),
                Platform::Dell => nodes.push(&dell),
            };
        }
        for _ in 0..n_cache {
            nodes.push(&spec);
        }
        let mut dbc = Cluster::new();
        for _ in 0..2 {
            dbc.push(&dell);
        }

        // fabric: platform nodes in their room, db + clients in the Dell room
        let rooms = TwoRooms::new();
        let mut topo = rooms.topo;
        let platform_room = match cfg.scenario.platform {
            Platform::Edison => rooms.edison_room,
            Platform::Dell => rooms.dell_room,
        };
        let other_room = match other_platform {
            Platform::Edison => rooms.edison_room,
            Platform::Dell => rooms.dell_room,
        };
        let mut node_hosts: Vec<HostId> = Vec::with_capacity(n_web + n_cache);
        for (i, p) in web_platforms.iter().enumerate() {
            let (room, nic) = match p {
                _ if i < cfg.scenario.web_servers => (platform_room, &spec.nic),
                Platform::Edison => (other_room, &other_spec.nic),
                Platform::Dell => (other_room, &other_spec.nic),
            };
            node_hosts.push(topo.add_host(room, nic.line_rate_bps, nic.tcp_efficiency));
        }
        for _ in 0..n_cache {
            node_hosts.push(topo.add_host(platform_room, spec.nic.line_rate_bps, spec.nic.tcp_efficiency));
        }
        let db_hosts: Vec<HostId> = (0..2)
            .map(|_| topo.add_host(rooms.dell_room, dell.nic.line_rate_bps, dell.nic.tcp_efficiency))
            .collect();
        let client_hosts: Vec<HostId> = (0..cfg.clients)
            .map(|_| topo.add_host(rooms.dell_room, 1.0e9, 0.942))
            .collect();
        let gauge = LinkGauge::mirror(topo.network());

        // PHP worker pools + memory + LB weights, per node platform
        let mut workers = Vec::new();
        let mut syn_gates = Vec::new();
        let mut req_mi_of = Vec::new();
        let mut lb_weights = Vec::new();
        let mut accept_rate_of = Vec::new();
        for (i, p) in web_platforms.iter().enumerate() {
            let (workers_per_node, worker_mem, accept, mi, weight) = match p {
                Platform::Edison => (
                    EDISON_WORKERS,
                    EDISON_WORKER_MEM,
                    presets::edison().os.max_accept_rate,
                    calib::WEB_REQ_MI_EDISON,
                    1.0,
                ),
                Platform::Dell => (
                    DELL_WORKERS,
                    DELL_WORKER_MEM,
                    dell.os.max_accept_rate,
                    calib::WEB_REQ_MI_DELL,
                    // one Dell web server carries ≈12× an Edison's load
                    12.0,
                ),
            };
            workers.push(WorkerPool {
                max: workers_per_node,
                busy: 0,
                backlog: VecDeque::new(),
                backlog_max: workers_per_node as usize * BACKLOG_PER_WORKER,
            });
            syn_gates.push(SynGate::new(accept));
            accept_rate_of.push(accept);
            req_mi_of.push(mi);
            lb_weights.push(weight);
            nodes
                .node_mut(NodeId(i))
                .alloc_mem(worker_mem * workers_per_node as u64)
                .expect("web node fits its worker pool");
        }

        // caches: real LRU stores pre-warmed to the target hit ratio
        let mut caches = Vec::new();
        let mut cache_cap_of = Vec::new();
        for _ in 0..n_cache {
            let free = nodes.node(NodeId(n_web)).mem_free();
            let cap = (free as f64 * 0.85) as u64;
            cache_cap_of.push(cap);
            caches.push(LruStore::new(cap));
        }
        let warm_rows = (cfg.mix.cache_hit_ratio * ROWS_PER_TABLE as f64) as u32;
        for table in 0..db::TOTAL_TABLES as u8 {
            for row in 0..warm_rows {
                let key = Key { table, row };
                let c = Self::cache_for(key, n_cache);
                caches[c].set(key, db::reply_bytes_for(key) as u32);
            }
        }
        for (i, c) in caches.iter_mut().enumerate() {
            c.reset_stats();
            let used = c.used_bytes();
            nodes
                .node_mut(NodeId(n_web + i))
                .alloc_mem(used)
                .expect("cache fits after warm-up");
        }

        let measure_start = SimTime::ZERO + cfg.warmup;
        let measure_end = measure_start + cfg.measure;
        let rng = SimRng::new(cfg.seed);
        // the kill_web_at sugar rides the same fault plan as everything else
        let mut full_plan = cfg.fault_plan.clone();
        if let Some((node, at)) = cfg.kill_web_at {
            full_plan = full_plan.crash(node, SimTime::ZERO + at);
        }
        let fplan = full_plan.normalized();
        let n_tier = n_web + n_cache;
        let fault_rng = SimRng::new(fplan.fault_seed(0));
        // guard layer: every sub-feature is zero-disabled, so building
        // from the (all-zero) off() config costs nothing and does nothing
        let guard_on = cfg.guard.is_active();
        let brk = if cfg.guard.breaker_threshold > 0 {
            vec![
                CircuitBreaker::new(
                    cfg.guard.breaker_threshold,
                    cfg.guard.breaker_cooldown,
                    cfg.guard.breaker_probes,
                );
                n_web
            ]
        } else {
            Vec::new()
        };
        let admit_bucket = TokenBucket::new(cfg.guard.admit_rate, cfg.guard.admit_burst);
        let admit_gate = QueueGate::new(cfg.guard.queue_target, cfg.guard.queue_interval);
        let brownout = Brownout::new(cfg.guard.brownout_enter, cfg.guard.brownout_exit);
        WebWorld {
            cfg,
            nodes,
            dbc,
            topo,
            gauge,
            node_hosts,
            db_hosts,
            client_hosts,
            caches,
            workers,
            syn_gates,
            rng,
            // simlint: allow(R1) keyed lookup only (see field notes)
            conns: HashMap::new(),
            // simlint: allow(R1) keyed lookup only (see field notes)
            reqs: HashMap::new(),
            next_conn: 0,
            next_req: 0,
            rr_web: 0,
            rr_client: 0,
            dead: vec![false; n_web],
            req_mi_of,
            lb_weights,
            fplan,
            lb_dead: vec![false; n_web],
            hc_fail: vec![0; n_web],
            hc_ok: vec![0; n_web],
            crash_time: vec![None; n_web],
            restart_time: vec![None; n_web],
            accept_rate_of,
            cache_cap_of,
            nic_loss: vec![0.0; n_tier],
            nic_lat: vec![1.0; n_tier],
            cpu_factor: vec![1.0; n_tier],
            db_disk_factor: vec![1.0; 2],
            fault_rng,
            hc_running: false,
            cache_writeback: false,
            measure_start,
            measure_end,
            metrics: Metrics::default(),
            tel: Telemetry::off(),
            web_tracks: Vec::new(),
            guard_on,
            brk,
            admit_bucket,
            admit_gate,
            brownout,
            guard_track: None,
        }
    }

    /// The telemetry collected by this world (empty unless the run came
    /// through a traced entry point with an enabled sink).
    pub fn telemetry(&self) -> &Telemetry {
        &self.tel
    }

    /// Move the collected telemetry out of the world.
    pub fn take_telemetry(&mut self) -> Telemetry {
        std::mem::take(&mut self.tel)
    }

    /// Install the telemetry sink the run records into.
    pub(crate) fn set_telemetry(&mut self, tel: Telemetry) {
        self.tel = tel;
    }

    /// Enable power traces, register metric help text and intern the
    /// per-web-node span tracks. Called once, before the first event, by
    /// every traced entry point (state-machine and async alike) so both
    /// produce byte-identical exports.
    pub(crate) fn init_tracing(&mut self) {
        self.nodes.enable_power_trace();
        self.dbc.enable_power_trace();
        self.tel.help("web_requests_total", "Requests leaving the system, by outcome");
        self.tel.help("web_request_delay_seconds", "End-to-end request delay, seconds");
        self.tel.help("web_syn_drops_total", "SYN packets dropped at the accept gate");
        self.tel.help("web_cache_lookups_total", "memcached lookups, by result");
        self.tel.help("web_throughput_rps", "Completed requests per second, 1 s samples");
        // registered whether or not any fault fires, so exports stay
        // byte-identical across fault-free and faulted configurations
        edison_simfault::metrics::register_help(&mut self.tel);
        self.tel.help("web_client_retries_total", "Connections re-dispatched through the LB, by cause (dead backend / backlog overflow)");
        // guard help is registered only when the guard is active, so
        // guards-off exports stay byte-identical to pre-guard runs
        if self.guard_on {
            guard_metrics::register_help(&mut self.tel);
            self.guard_track = Some(self.tel.track_id("guard", "web-tier"));
        }
        // intern one span track per web node up front: per-event span
        // recording is then id-indexed, no string work on the hot path
        let n_web = self.n_web();
        let mut tracks = Vec::with_capacity(n_web);
        for i in 0..n_web {
            tracks.push(self.tel.track_id("web", &format!("web-{i}")));
        }
        self.web_tracks = tracks;
    }

    /// The deterministic key → cache-server mapping (memcached client
    /// hashing).
    fn cache_for(key: Key, n_cache: usize) -> usize {
        (key.table as usize * ROWS_PER_TABLE as usize + key.row as usize) % n_cache
    }

    pub(crate) fn n_web(&self) -> usize {
        self.cfg.scenario.web_servers + self.cfg.hybrid_web
    }

    fn in_window(&self, t: SimTime) -> bool {
        t >= self.measure_start && t <= self.measure_end
    }

    /// Telemetry: count one request leaving the system, by outcome
    /// (`ok`, `server_error`, `client_error`).
    fn tel_outcome(&mut self, outcome: &'static str) {
        self.tel.counter_inc("web_requests_total", labels(&[("outcome", outcome)]));
    }

    /// Span track id for web node `web` — cached by
    /// [`WebWorld::init_tracing`]; the fallback interns on demand for
    /// worlds driven without the prefill (manual drivers).
    fn web_track(&mut self, web: usize) -> usize {
        match self.web_tracks.get(web) {
            Some(&t) => t,
            None => self.tel.track_id("web", &format!("web-{web}")),
        }
    }

    /// Open the end-to-end `http_request` span for `req` (to be finished
    /// by the async task at reply delivery). `None` when telemetry is off
    /// or the request/connection is already gone. Byte-equivalent to the
    /// state machine's `span_on` at the reply arm: same track, category,
    /// name and start instant.
    /// Current circuit-breaker state per web backend (empty when the
    /// breaker is disabled). Introspection for tests and experiments.
    pub fn breaker_states(&self) -> Vec<BreakerState> {
        self.brk.iter().map(|b| b.state()).collect()
    }

    pub(crate) fn open_http_span(&mut self, req: u64) -> Option<OpenSpan> {
        if !self.tel.is_on() {
            return None;
        }
        let (web, first_call, conn, t_sent) = {
            let r = self.reqs.get(&req)?;
            (r.web, r.first_call, r.conn, r.t_sent)
        };
        let start = if first_call { self.conns.get(&conn)?.t_first_syn } else { t_sent };
        let track = self.web_track(web);
        Some(OpenSpan::begin(track, "request", "http_request", start))
    }

    // ---- node CPU plumbing ------------------------------------------------

    pub(crate) fn schedule_node_cpu(&mut self, node: usize, now: SimTime, sched: &mut SchedBuf<Ev>) {
        if let Some((_, at)) = self.nodes.node(NodeId(node)).next_cpu_completion(now) {
            let epoch = self.nodes.node(NodeId(node)).cpu_epoch();
            sched.schedule_at(at, Ev::NodeCpu { node, epoch });
        }
    }

    pub(crate) fn schedule_db_cpu(&mut self, node: usize, now: SimTime, sched: &mut SchedBuf<Ev>) {
        if let Some((_, at)) = self.dbc.node(NodeId(node)).next_cpu_completion(now) {
            let epoch = self.dbc.node(NodeId(node)).cpu_epoch();
            sched.schedule_at(at, Ev::DbCpu { node, epoch });
        }
    }

    // ---- generator --------------------------------------------------------

    pub(crate) fn gen_next_delay(&mut self) -> SimDuration {
        let rate = match self.cfg.gen {
            GenMode::Httperf { connections_per_sec, .. } => connections_per_sec,
            GenMode::Python { requests_per_sec } => requests_per_sec,
        };
        SimDuration::from_secs_f64(self.rng.jitter(0.3) / rate)
    }

    fn draw_calls(&mut self) -> u32 {
        match self.cfg.gen {
            GenMode::Httperf { calls_per_conn, .. } => {
                let base = calls_per_conn.floor();
                let frac = calls_per_conn - base;
                (base as u32 + u32::from(self.rng.chance(frac))).max(1)
            }
            GenMode::Python { .. } => 1,
        }
    }

    /// HAProxy smooth WRR over backends still in rotation (`dead` covers
    /// the pre-health-check kill path; `lb_dead` the health-check
    /// verdict). `None` when the whole tier is out.
    fn lb_pick(&mut self) -> Option<usize> {
        let n_web = self.n_web();
        let total_w: f64 = (0..n_web)
            .filter(|&i| !self.dead[i] && !self.lb_dead[i])
            .map(|i| self.lb_weights[i])
            .sum();
        if total_w <= 0.0 {
            return None;
        }
        // deterministic smooth WRR: golden-ratio stride through the
        // cumulative weights spreads picks evenly at every prefix length
        let target = (self.rr_web as f64 * 0.618_033_988_749_895).fract() * total_w;
        self.rr_web += 1;
        let mut web = 0;
        let mut acc = 0.0;
        for i in 0..n_web {
            if self.dead[i] || self.lb_dead[i] {
                continue;
            }
            acc += self.lb_weights[i];
            web = i;
            if target < acc {
                break;
            }
        }
        Some(web)
    }

    /// LB pick with breaker awareness. With breakers off this *is* the
    /// legacy [`WebWorld::lb_pick`] (same stride counter, same draws);
    /// with breakers on, open backends leave the candidate set and
    /// half-open ones admit only probe-eligible connections.
    fn lb_pick_any(&mut self, conn_id: u64, now: SimTime) -> LbPick {
        if self.brk.is_empty() {
            return match self.lb_pick() {
                Some(web) => LbPick::Backend { web, probe: false },
                None => LbPick::AllDead,
            };
        }
        self.lb_pick_breakered(conn_id, now)
    }

    /// The breaker-aware WRR: identical golden-ratio stride over the
    /// cumulative weights, restricted to backends whose breaker admits
    /// this connection. A `Probe` pick claims the half-open slot.
    fn lb_pick_breakered(&mut self, conn_id: u64, now: SimTime) -> LbPick {
        let n_web = self.n_web();
        let probe_ok = probe_eligible(self.cfg.seed, conn_id, self.cfg.guard.probe_ratio);
        let mut allowed = vec![false; n_web];
        let mut probing = vec![false; n_web];
        let mut any_alive = false;
        for i in 0..n_web {
            let alive = !self.dead[i] && !self.lb_dead[i];
            any_alive |= alive;
            // check() lazily advances open → half-open; surface that
            // transition in telemetry exactly once
            let before = self.brk[i].state();
            let verdict = self.brk[i].check(now);
            if self.brk[i].state() != before {
                self.note_brk_transition(i);
            }
            let (adm, prb) = match verdict {
                BreakerVerdict::Pass => (true, false),
                BreakerVerdict::Probe => (probe_ok, true),
                BreakerVerdict::Reject => (false, false),
            };
            allowed[i] = alive && adm;
            probing[i] = prb;
        }
        let total_w: f64 =
            (0..n_web).filter(|&i| allowed[i]).map(|i| self.lb_weights[i]).sum();
        if total_w <= 0.0 {
            return if any_alive { LbPick::Blocked } else { LbPick::AllDead };
        }
        let target = (self.rr_web as f64 * 0.618_033_988_749_895).fract() * total_w;
        self.rr_web += 1;
        let mut web = 0;
        let mut acc = 0.0;
        for i in 0..n_web {
            if !allowed[i] {
                continue;
            }
            acc += self.lb_weights[i];
            web = i;
            if target < acc {
                break;
            }
        }
        let probe = probing[web];
        if probe {
            self.brk[web].begin_probe();
        }
        LbPick::Backend { web, probe }
    }

    // ---- guard layer (simguard) ---------------------------------------

    /// Record a breaker state change: transition counter + per-backend
    /// state gauge (0 closed, 0.5 half-open, 1 open).
    fn note_brk_transition(&mut self, web: usize) {
        let (to, level) = match self.brk[web].state() {
            BreakerState::Closed => ("closed", 0.0),
            BreakerState::HalfOpen => ("half_open", 0.5),
            BreakerState::Open => ("open", 1.0),
        };
        self.tel.counter_inc(
            guard_metrics::BREAKER_TRANSITIONS_TOTAL,
            labels(&[("tier", "web"), ("to", to)]),
        );
        if self.tel.is_on() {
            let backend = format!("web-{web}");
            self.tel.gauge_set(
                guard_metrics::BREAKER_STATE,
                labels(&[("tier", "web"), ("backend", &backend)]),
                level,
            );
        }
    }

    /// Feed one backend failure signal (dead-node drop, overflow 5xx,
    /// fd exhaustion) into `web`'s breaker.
    fn guard_brk_failure(&mut self, web: usize, now: SimTime) {
        if self.brk.is_empty() {
            return;
        }
        let before = self.brk[web].state();
        if self.brk[web].record_failure(now) {
            self.metrics.guard.breaker_trips += 1;
        }
        if self.brk[web].state() != before {
            self.note_brk_transition(web);
        }
    }

    /// Feed one backend success into `web`'s breaker; a success that
    /// closes a half-open phase reports the recovery window.
    fn guard_brk_success(&mut self, web: usize, now: SimTime) {
        if self.brk.is_empty() {
            return;
        }
        let before = self.brk[web].state();
        if let Some(since) = self.brk[web].record_success() {
            self.metrics
                .guard
                .breaker_windows
                .push(RecoveryWindow { node: web, start: since, end: now });
        }
        if self.brk[web].state() != before {
            self.note_brk_transition(web);
        }
    }

    /// Release the half-open probe slot `conn_id` holds, if any (the
    /// probe request reached a verdict, or the connection moved on).
    fn guard_probe_done(&mut self, conn_id: u64) {
        if self.brk.is_empty() {
            return;
        }
        if let Some(c) = self.conns.get_mut(&conn_id) {
            if c.probe {
                c.probe = false;
                let web = c.web;
                self.brk[web].end_probe();
            }
        }
    }

    /// A connection left the world for good: release its probe slot.
    /// Called at every `conns.remove` site (no-op with breakers off).
    fn guard_conn_retired(&mut self, conn: &Conn) {
        if conn.probe && !self.brk.is_empty() {
            self.brk[conn.web].end_probe();
        }
    }

    /// One connection refused at the LB before any request existed
    /// (token bucket / queue gate / breaker block).
    fn guard_shed_lb(&mut self, reason: &'static str) {
        self.metrics.guard.lb_rejected += 1;
        self.tel.counter_inc(
            guard_metrics::SHED_TOTAL,
            labels(&[("tier", "web"), ("reason", reason)]),
        );
        self.tel_outcome("shed");
    }

    /// One admitted request retired on an error path (closes the
    /// conservation identity's `failed` bucket).
    fn guard_req_failed(&mut self, reason: &'static str) {
        self.metrics.guard.failed += 1;
        self.tel.counter_inc(
            guard_metrics::FAILED_TOTAL,
            labels(&[("tier", "web"), ("reason", reason)]),
        );
    }

    /// Feed one observed PHP-backlog sojourn into the queue gate and the
    /// brownout controller (zero for requests admitted straight to a
    /// worker). The smoothed sojourn is the brownout signal; entering or
    /// leaving degraded mode flips the gauge and records the interval as
    /// a span on exit.
    fn guard_observe_queue(&mut self, sojourn: SimDuration, now: SimTime) {
        self.admit_gate.observe(sojourn, now);
        self.tel.observe(
            guard_metrics::QUEUE_DELAY_SECONDS,
            labels(&[("tier", "web")]),
            guard_metrics::QUEUE_DELAY_BOUNDS_S,
            sojourn.as_secs_f64(),
        );
        match self.brownout.observe(self.admit_gate.smoothed_sojourn_s(), now) {
            BrownoutStep::Entered => {
                self.metrics.guard.brownout_entries += 1;
                self.tel.gauge_set(
                    guard_metrics::BROWNOUT_ACTIVE,
                    labels(&[("tier", "web")]),
                    1.0,
                );
            }
            BrownoutStep::Exited { since } => {
                self.tel.gauge_set(
                    guard_metrics::BROWNOUT_ACTIVE,
                    labels(&[("tier", "web")]),
                    0.0,
                );
                if let Some(track) = self.guard_track {
                    self.tel.span_on(track, "guard", "brownout", since, now, vec![]);
                }
            }
            BrownoutStep::None => {}
        }
    }

    /// Everything [`open_connection`](crate::stack) did *except* the first
    /// SYN attempt: pick a backend, a client and the call count, and
    /// register the connection. Returns the new connection id, or `None`
    /// when the whole web tier is out of rotation (accounted as a client
    /// error). The first [`WebWorld::syn_attempt`] is the caller's move —
    /// the state machine makes it inline, the async driver from inside the
    /// freshly spawned connection task.
    pub(crate) fn open_conn_prepare(&mut self, now: SimTime) -> Option<u64> {
        let id = self.next_conn;
        self.next_conn += 1;
        if self.guard_on {
            return self.open_conn_prepare_guarded(id, now);
        }
        // HAProxy weighted round robin, health-checked around dead servers
        let Some(web) = self.lb_pick() else {
            // whole tier down
            self.metrics.client_errors += 1;
            self.tel_outcome("client_error");
            return None;
        };
        let client = self.rr_client % self.client_hosts.len();
        self.rr_client += 1;
        let calls = self.draw_calls();
        self.conns.insert(
            id,
            Conn {
                client,
                web,
                calls_left: calls,
                t_first_syn: now,
                retries: 0,
                class: Priority::Interactive,
                probe: false,
            },
        );
        Some(id)
    }

    /// The guarded front door: priority class (derived seed), token
    /// bucket, CoDel queue gate, then the breaker-aware LB pick. Every
    /// refusal is a shed, not an error — except the legacy whole-tier-down
    /// case, which stays a client error.
    fn open_conn_prepare_guarded(&mut self, id: u64, now: SimTime) -> Option<u64> {
        let class = class_of(self.cfg.seed, id, self.cfg.guard.shed_ratio);
        if !self.admit_bucket.try_take(now) {
            self.guard_shed_lb("lb_bucket");
            return None;
        }
        match self.admit_gate.verdict(now, class) {
            GateVerdict::Admit => {}
            GateVerdict::ShedAll => {
                self.guard_shed_lb("queue");
                return None;
            }
            GateVerdict::ShedBulk => {
                if class == Priority::Bulk {
                    self.guard_shed_lb("queue");
                    return None;
                }
            }
        }
        match self.lb_pick_any(id, now) {
            LbPick::Backend { web, probe } => {
                let client = self.rr_client % self.client_hosts.len();
                self.rr_client += 1;
                let calls = self.draw_calls();
                self.conns.insert(
                    id,
                    Conn { client, web, calls_left: calls, t_first_syn: now, retries: 0, class, probe },
                );
                Some(id)
            }
            LbPick::Blocked => {
                self.guard_shed_lb("breaker");
                None
            }
            LbPick::AllDead => {
                self.metrics.client_errors += 1;
                self.tel_outcome("client_error");
                None
            }
        }
    }

    /// Consume one unit of the client retry budget and schedule a
    /// re-dispatch after a jittered, exponentially backed-off failover
    /// timeout. `false` when the budget is disabled or exhausted (the
    /// caller then accounts the failure). The delay is seeded per
    /// (connection, attempt), so clients caught by the same failover
    /// spread out instead of re-dispatching in lockstep, and a given
    /// retry's delay never depends on event-arrival order.
    fn conn_retry(
        &mut self,
        conn_id: u64,
        now: SimTime,
        sched: &mut SchedBuf<Ev>,
        cause: RetryCause,
    ) -> bool {
        if self.cfg.retry_budget == 0 {
            return false;
        }
        let Some(conn) = self.conns.get_mut(&conn_id) else { return true };
        if conn.retries >= self.cfg.retry_budget {
            return false;
        }
        conn.retries += 1;
        let attempt = conn.retries;
        self.metrics.retries += 1;
        match cause {
            RetryCause::Dead => self.metrics.retry_dead_total += 1,
            RetryCause::Overflow => self.metrics.retry_overflow_total += 1,
        }
        self.tel.counter_inc(guard_metrics::RETRY_CAUSE, labels(&[("cause", cause.name())]));
        // connection ids count up from 0 and never reach 2^56, so packing
        // the attempt into the top byte keeps the stream index unique
        let stream_idx = conn_id | (u64::from(attempt) << 56);
        let mut rng = SimRng::new(derive_seed(self.cfg.seed, "web:retry-backoff", stream_idx));
        let exp = (attempt - 1).min(RETRY_BACKOFF_CAP);
        let delay = FAILOVER_TIMEOUT.mul_f64(f64::from(1u32 << exp) * rng.jitter(RETRY_JITTER));
        sched.schedule_at(now + delay, Ev::RetryConn { conn: conn_id });
        true
    }

    /// A request was caught on a crashed node: retry the connection
    /// through the LB if the client has budget, else it is a hard 5xx.
    fn drop_req_on_dead_node(&mut self, req_id: u64, now: SimTime, sched: &mut SchedBuf<Ev>) {
        let Some(r) = self.reqs.remove(&req_id) else { return };
        let conn_id = r.conn;
        if self.guard_on {
            // the request is terminal even when its connection retries
            self.guard_req_failed("dead_node");
            self.guard_brk_failure(r.web, now);
        }
        if self.conn_retry(conn_id, now, sched, RetryCause::Dead) {
            return;
        }
        if let Some(c) = self.conns.remove(&conn_id) {
            self.guard_conn_retired(&c);
        }
        self.metrics.server_errors += 1;
        self.tel_outcome("server_error");
    }

    /// One SYN handshake attempt for `conn_id` (attempt `attempt` of the
    /// kernel retransmit ladder). See [`SynStep`] for the outcomes.
    pub(crate) fn syn_attempt(
        &mut self,
        conn_id: u64,
        attempt: u8,
        now: SimTime,
        sched: &mut SchedBuf<Ev>,
    ) -> SynStep {
        let Some(conn) = self.conns.get(&conn_id) else { return SynStep::Gone };
        let web = conn.web;
        if self.dead[web] && self.cfg.retry_budget > 0 {
            // a crashed host sends no RST: the connect times out and the
            // client re-resolves through the LB (or gives up)
            if self.guard_on {
                self.guard_brk_failure(web, now);
            }
            if self.conn_retry(conn_id, now, sched, RetryCause::Dead) {
                return SynStep::AwaitRedispatch;
            }
            if let Some(c) = self.conns.remove(&conn_id) {
                self.guard_conn_retired(&c);
            }
            self.metrics.client_errors += 1;
            self.tel_outcome("client_error");
            return SynStep::Gone;
        }
        // degraded NIC: the SYN itself may be lost on the wire
        let nic_lost = self.nic_loss[web] > 0.0 && self.fault_rng.chance(self.nic_loss[web]);
        // listen-queue collapse first, then the token bucket
        let extra_drop = self.syn_gates[web].pressure_drop_p(now);
        let collapsed = extra_drop > 0.0 && self.rng.chance(extra_drop);
        let admit = if nic_lost || collapsed {
            Err(AdmitError::AcceptOverrun)
        } else {
            self.nodes.node_mut(NodeId(web)).try_accept(now)
        };
        match admit {
            Ok(()) => {
                // handshake: one RTT before the first request leaves
                let client_host = self.client_hosts[self.conns[&conn_id].client];
                let rtt = scaled(self.topo.rtt(client_host, self.node_hosts[web]), self.nic_lat[web]);
                let req = self.start_request(conn_id, true, now + rtt, sched);
                SynStep::Accepted { req }
            }
            Err(AdmitError::AcceptOverrun) => {
                self.metrics.syn_drops += 1;
                self.tel.counter_inc("web_syn_drops_total", labels(&[]));
                if attempt < 3 {
                    // kernel SYN retransmit backoff: +1 s, +2 s, +4 s
                    let backoff = SimDuration::from_secs(1 << attempt);
                    sched.schedule_at(now + backoff, Ev::SynRetry { conn: conn_id, attempt: attempt + 1 });
                    SynStep::Backoff
                } else {
                    self.metrics.client_errors += 1;
                    self.tel_outcome("client_error");
                    if let Some(c) = self.conns.remove(&conn_id) {
                        self.guard_conn_retired(&c);
                    }
                    SynStep::Gone
                }
            }
            Err(_) => {
                // fd exhaustion → lighttpd answers 5xx on this node
                if self.guard_on {
                    self.guard_brk_failure(web, now);
                }
                self.metrics.server_errors += 1;
                self.tel_outcome("server_error");
                if let Some(c) = self.conns.remove(&conn_id) {
                    self.guard_conn_retired(&c);
                }
                SynStep::Gone
            }
        }
    }

    /// Create the next request of `conn_id` and put it on the wire to the
    /// connection's web node. Returns the new request id.
    pub(crate) fn start_request(
        &mut self,
        conn_id: u64,
        first_call: bool,
        send_at: SimTime,
        sched: &mut SchedBuf<Ev>,
    ) -> u64 {
        let conn = &self.conns[&conn_id];
        let web = conn.web;
        let client_host = self.client_hosts[conn.client];
        let id = self.next_req;
        self.next_req += 1;
        let query = db::draw_query(&self.cfg.mix, &mut self.rng);
        let cache = Self::cache_for(query.key, self.caches.len());
        let db_node = self.rng.below(2) as usize;
        // the deadline budget starts when the request leaves the client;
        // Budget::ZERO (deadlines off) derives no deadline at all
        let deadline =
            if self.guard_on { self.cfg.guard.deadline.deadline_from(send_at) } else { None };
        self.reqs.insert(
            id,
            Req {
                conn: conn_id,
                client: conn.client,
                web,
                cache,
                db_node,
                query,
                state: ReqState::Stage1,
                first_call,
                t_sent: send_at,
                t_cache_sent: SimTime::ZERO,
                t_db_sent: SimTime::ZERO,
                db_delay: None,
                went_to_db: false,
                t_queued: None,
                deadline,
                degraded: false,
                shed: false,
            },
        );
        if self.guard_on {
            self.metrics.guard.admitted += 1;
            self.tel.counter_inc(guard_metrics::ADMITTED_TOTAL, labels(&[("tier", "web")]));
        }
        let lat = scaled(self.topo.latency(client_host, self.node_hosts[web]), self.nic_lat[web]);
        sched.schedule_at(send_at + lat, Ev::ReqAtWeb { req: id });
        id
    }

    fn begin_stage1(&mut self, req_id: u64, now: SimTime, sched: &mut SchedBuf<Ev>) {
        let Some(req) = self.reqs.get_mut(&req_id) else { return };
        let web = req.web;
        let queued_at = req.t_queued.take();
        let mut mi = self.req_mi_of[web] * STAGE1_FRAC;
        if req.first_call {
            mi += calib::TCP_ACCEPT_MI;
        }
        mi *= self.cpu_factor[web];
        if self.tel.is_on() {
            if let Some(tq) = queued_at {
                // time spent waiting for a free PHP worker
                let track = self.web_track(web);
                self.tel.span_on(track, "queue", "php_backlog", tq, now, vec![]);
            }
        }
        if self.guard_on {
            // every worker grant feeds the gate: zero sojourn when the
            // request went straight to a worker
            let sojourn =
                queued_at.map_or(SimDuration::ZERO, |tq| now.since(tq));
            self.guard_observe_queue(sojourn, now);
        }
        self.nodes.node_mut(NodeId(web)).add_cpu_task(now, req_id, mi);
        self.schedule_node_cpu(web, now, sched);
    }

    /// The deadline is already blown at the worker pool: skip the worker
    /// entirely and send a header-only rejection to the client. The
    /// request parks in `Reply` state (so a concurrent crash will not
    /// tear it down twice) and is accounted when the rejection lands.
    fn shed_request(&mut self, req_id: u64, now: SimTime, sched: &mut SchedBuf<Ev>) -> AdmitStep {
        let Some(r) = self.reqs.get_mut(&req_id) else { return AdmitStep::Gone };
        r.shed = true;
        r.state = ReqState::Reply;
        let (web, client) = (r.web, r.client);
        self.tel.counter_inc(
            guard_metrics::SHED_TOTAL,
            labels(&[("tier", "web"), ("reason", "deadline")]),
        );
        let lat = scaled(
            self.topo.latency(self.node_hosts[web], self.client_hosts[client]),
            self.nic_lat[web],
        );
        sched.schedule_at(now + lat, Ev::ReplyAtClient { req: req_id });
        AdmitStep::Shed
    }

    /// The request arrived at the web node: take a PHP worker (or queue,
    /// or 5xx on overflow). See [`AdmitStep`] for the outcomes.
    pub(crate) fn admit_to_worker(&mut self, req_id: u64, now: SimTime, sched: &mut SchedBuf<Ev>) -> AdmitStep {
        // the target server may have died while this request was in flight
        let Some(req) = self.reqs.get(&req_id) else { return AdmitStep::Gone };
        let (web, deadline) = (req.web, req.deadline);
        if self.dead[web] {
            // connection reset by a dead server (retryable)
            self.drop_req_on_dead_node(req_id, now, sched);
            return AdmitStep::Dropped;
        }
        if self.guard_on && deadline.is_some_and(|d| d.passed(now)) {
            // already late at the front of the worker pool: shedding now
            // is strictly cheaper than timing out at full cost later
            return self.shed_request(req_id, now, sched);
        }
        let pool = &mut self.workers[web];
        if pool.busy < pool.max {
            pool.busy += 1;
            self.begin_stage1(req_id, now, sched);
            AdmitStep::Admitted
        } else if pool.backlog.len() < pool.backlog_max {
            pool.backlog.push_back(req_id);
            if let Some(r) = self.reqs.get_mut(&req_id) {
                r.t_queued = Some(now);
            }
            AdmitStep::Admitted
        } else if self.guard_on {
            // overflow with guards on: a backend-overload signal for the
            // breaker, and the client may re-dispatch through the LB
            // instead of eating the legacy hard 5xx
            self.guard_brk_failure(web, now);
            self.guard_req_failed("overflow");
            let Some(req) = self.reqs.remove(&req_id) else { return AdmitStep::Gone };
            self.nodes.node_mut(NodeId(web)).close_connection();
            if self.conn_retry(req.conn, now, sched, RetryCause::Overflow) {
                return AdmitStep::Dropped;
            }
            self.metrics.server_errors += 1;
            self.tel_outcome("server_error");
            if let Some(c) = self.conns.remove(&req.conn) {
                self.guard_conn_retired(&c);
            }
            AdmitStep::Gone
        } else {
            // 5xx: backlog overflow
            self.metrics.server_errors += 1;
            self.tel_outcome("server_error");
            let req = self.reqs.remove(&req_id).expect("req exists");
            self.abort_conn(req.conn);
            AdmitStep::Gone
        }
    }

    fn release_worker(&mut self, web: usize, now: SimTime, sched: &mut SchedBuf<Ev>) {
        let pool = &mut self.workers[web];
        if let Some(next) = pool.backlog.pop_front() {
            // the freed worker immediately takes the oldest queued request
            self.begin_stage1(next, now, sched);
        } else {
            pool.busy -= 1;
        }
    }

    fn abort_conn(&mut self, conn_id: u64) {
        if let Some(conn) = self.conns.remove(&conn_id) {
            self.guard_conn_retired(&conn);
            self.nodes.node_mut(NodeId(conn.web)).close_connection();
        }
    }

    // ---- CPU completion routing -------------------------------------------

    /// Legacy router for web-node CPU completions: dispatch on the stored
    /// request state. The async tasks skip this — each knows which stage
    /// it just awaited and calls [`WebWorld::stage1_to_cache`] or
    /// [`WebWorld::stage2_to_reply`] directly.
    pub(crate) fn web_cpu_done(&mut self, req_id: u64, now: SimTime, sched: &mut SchedBuf<Ev>) {
        let state = match self.reqs.get(&req_id) {
            Some(r) => r.state,
            None => return,
        };
        match state {
            ReqState::Stage1 => {
                let _ = self.stage1_to_cache(req_id, now, sched);
            }
            ReqState::Stage2 => {
                let _ = self.stage2_to_reply(req_id, now, sched);
            }
            other => unreachable!("web cpu done in state {other:?}"),
        }
    }

    /// Stage-1 CPU finished: issue the memcached get — or, with guards
    /// on, degrade (skip the cache/db stage) when the deadline is blown
    /// or the tier is in brownout and the connection is bulk-class.
    pub(crate) fn stage1_to_cache(
        &mut self,
        req_id: u64,
        now: SimTime,
        sched: &mut SchedBuf<Ev>,
    ) -> Stage1Step {
        let Some(r) = self.reqs.get(&req_id) else { return Stage1Step::Gone };
        let (conn_id, deadline) = (r.conn, r.deadline);
        if self.guard_on {
            let reason = if deadline.is_some_and(|d| d.passed(now)) {
                Some("deadline")
            } else if self.brownout.active()
                && self.conns.get(&conn_id).is_some_and(|c| c.class == Priority::Bulk)
            {
                Some("brownout")
            } else {
                None
            };
            if let Some(reason) = reason {
                self.degrade_request(req_id, reason, now, sched);
                return Stage1Step::Degraded;
            }
        }
        let Some(r) = self.reqs.get_mut(&req_id) else { return Stage1Step::Gone };
        r.state = ReqState::CacheRpc;
        r.t_cache_sent = now;
        let (web, cache) = (r.web, r.cache);
        let cache_node = self.n_web() + cache;
        let lat = scaled(
            self.topo.latency(self.node_hosts[web], self.node_hosts[cache_node]),
            self.nic_lat[web] * self.nic_lat[cache_node],
        );
        sched.schedule_at(now + lat, Ev::ReqAtCache { req: req_id });
        Stage1Step::ToCache
    }

    /// Serve `req_id` degraded: skip the memcached/MySQL stage and
    /// assemble the cheap static fallback body on stage-2 CPU.
    fn degrade_request(
        &mut self,
        req_id: u64,
        reason: &'static str,
        now: SimTime,
        sched: &mut SchedBuf<Ev>,
    ) {
        self.tel.counter_inc(
            guard_metrics::DEGRADED_TOTAL,
            labels(&[("tier", "web"), ("reason", reason)]),
        );
        let Some(r) = self.reqs.get_mut(&req_id) else { return };
        r.degraded = true;
        r.query.reply_bytes = DEGRADED_REPLY_BYTES;
        self.begin_stage2(req_id, now, sched);
    }

    /// Stage-2 CPU finished: put the reply on the wire to the client. See
    /// [`Stage2Step`] for the outcomes.
    pub(crate) fn stage2_to_reply(&mut self, req_id: u64, now: SimTime, sched: &mut SchedBuf<Ev>) -> Stage2Step {
        let Some(r) = self.reqs.get_mut(&req_id) else { return Stage2Step::Gone };
        r.state = ReqState::Reply;
        let (web, conn_id, bytes, t_cache_sent, went_to_db, db_delay, degraded) =
            (r.web, r.conn, r.query.reply_bytes, r.t_cache_sent, r.went_to_db, r.db_delay, r.degraded);
        // Table 7 bookkeeping: cache delay includes this CPU slice
        // (PHP unserialize); db delay was closed at reply arrival.
        // Degraded requests skipped (or abandoned) the cache stage, so
        // they contribute no cache/db samples or rpc spans.
        if self.tel.is_on() && !went_to_db && !degraded {
            let track = self.web_track(web);
            self.tel.span_on(track, "rpc", "memcached_get", t_cache_sent, now, vec![]);
        }
        if self.in_window(now) {
            if went_to_db {
                if let Some(d) = db_delay {
                    self.metrics.db_delays_ms.push(d);
                }
            } else if !degraded {
                let d = now.since(t_cache_sent).as_millis_f64();
                self.metrics.cache_delays_ms.push(d);
            }
        }
        self.release_worker(web, now, sched);
        let Some(conn) = self.conns.get(&conn_id) else {
            self.reqs.remove(&req_id);
            if self.guard_on {
                self.guard_req_failed("conn_lost");
            }
            return Stage2Step::Gone;
        };
        let client_host = self.client_hosts[conn.client];
        let (path, lat) = self.topo.path(self.node_hosts[web], client_host);
        let dur = self.gauge.begin_transfer(&path, (bytes + HEADER_BYTES) as f64);
        let m = self.nic_lat[web];
        sched.schedule_at(now + scaled(lat, m) + scaled(dur, m), Ev::ReplyAtClient { req: req_id });
        Stage2Step::Sent
    }

    /// The get arrived at the cache node: charge the lookup CPU.
    pub(crate) fn req_at_cache(&mut self, req_id: u64, now: SimTime, sched: &mut SchedBuf<Ev>) {
        let cache = match self.reqs.get(&req_id) {
            Some(r) => r.cache,
            None => return,
        };
        let node = self.n_web() + cache;
        let mi = calib::CACHE_LOOKUP_MI * self.cpu_factor[node];
        self.nodes.node_mut(NodeId(node)).add_cpu_task(now, req_id, mi);
        self.schedule_node_cpu(node, now, sched);
    }

    /// Cache-node CPU finished: probe the LRU store and send the reply (or
    /// the tiny miss notice) back to the web node. Returns the hit verdict
    /// so the async task can carry it to [`WebWorld::cache_reply_at_web`]
    /// (the state machine carries it in [`Ev::CacheReplyAtWeb`] instead);
    /// `None` on a stale id.
    pub(crate) fn cache_cpu_done(&mut self, req_id: u64, now: SimTime, sched: &mut SchedBuf<Ev>) -> Option<bool> {
        let (web, cache, key) = match self.reqs.get(&req_id) {
            Some(r) => (r.web, r.cache, r.query.key),
            None => return None,
        };
        let hit = self.caches[cache].get(key).is_some();
        self.tel.counter_inc(
            "web_cache_lookups_total",
            labels(&[("result", if hit { "hit" } else { "miss" })]),
        );
        let web_host = self.node_hosts[web];
        let cache_node = self.n_web() + cache;
        let cache_host = self.node_hosts[cache_node];
        let (path, lat) = self.topo.path(cache_host, web_host);
        let m = self.nic_lat[web] * self.nic_lat[cache_node];
        if hit {
            let bytes = db::reply_bytes_for(key) + HEADER_BYTES;
            let dur = self.gauge.begin_transfer(&path, bytes as f64);
            sched.schedule_at(now + scaled(lat, m) + scaled(dur, m), Ev::CacheReplyAtWeb { req: req_id, hit: true });
        } else {
            // tiny miss notice: latency only, no gauge claim
            sched.schedule_at(now + scaled(lat, m), Ev::CacheReplyAtWeb { req: req_id, hit: false });
        }
        Some(hit)
    }

    /// The cache verdict landed back on the web node. See [`PathStep`].
    pub(crate) fn cache_reply_at_web(
        &mut self,
        req_id: u64,
        hit: bool,
        now: SimTime,
        sched: &mut SchedBuf<Ev>,
    ) -> PathStep {
        let (web, cache) = match self.reqs.get(&req_id) {
            Some(r) => (r.web, r.cache),
            None => return PathStep::Gone,
        };
        if hit {
            let (path, _) = self
                .topo
                .path(self.node_hosts[self.n_web() + cache], self.node_hosts[web]);
            self.gauge.end(&path);
            if self.dead[web] {
                self.drop_req_on_dead_node(req_id, now, sched);
                return PathStep::Dropped;
            }
            self.begin_stage2(req_id, now, sched);
            PathStep::Continue
        } else {
            if self.guard_on {
                // a miss means a MySQL round trip: degrade when the
                // deadline is blown or cannot afford the reserved db leg
                let deadline = self.reqs[&req_id].deadline;
                if deadline.is_some_and(|d| {
                    d.passed(now) || d.cannot_afford(now, self.cfg.guard.db_reserve)
                }) {
                    self.degrade_request(req_id, "deadline", now, sched);
                    return PathStep::Degraded;
                }
            }
            // go to the database
            let db_node = {
                let r = self.reqs.get_mut(&req_id).expect("req exists");
                r.state = ReqState::DbRpc;
                r.t_db_sent = now;
                r.went_to_db = true;
                r.db_node
            };
            let lat = self.topo.latency(self.node_hosts[web], self.db_hosts[db_node]);
            sched.schedule_at(now + lat, Ev::ReqAtDb { req: req_id });
            PathStep::ToDb
        }
    }

    /// The query arrived at its MySQL node: charge the query CPU.
    pub(crate) fn req_at_db(&mut self, req_id: u64, now: SimTime, sched: &mut SchedBuf<Ev>) {
        let (db_node, mi) = match self.reqs.get(&req_id) {
            Some(r) => (r.db_node, db::query_cpu_mi(&r.query)),
            None => return,
        };
        self.dbc.node_mut(NodeId(db_node)).add_cpu_task(now, req_id, mi);
        self.schedule_db_cpu(db_node, now, sched);
    }

    /// MySQL CPU finished: 2 % of queries miss the buffer pool and read
    /// disk, the rest reply immediately. See [`DbStep`].
    pub(crate) fn db_cpu_done(&mut self, req_id: u64, now: SimTime, sched: &mut SchedBuf<Ev>) -> DbStep {
        let db_node = match self.reqs.get(&req_id) {
            Some(r) => r.db_node,
            None => return DbStep::Gone,
        };
        if db::query_hits_disk(&mut self.rng) {
            let r = self.reqs.get_mut(&req_id).expect("checked");
            r.state = ReqState::DbDisk;
            let bytes = r.query.reply_bytes;
            let service = scaled(
                self.dbc.node(NodeId(db_node)).disk_read_time(bytes, false),
                self.db_disk_factor[db_node],
            );
            if let Some((job, at)) = self.dbc.node_mut(NodeId(db_node)).disk().submit(now, req_id, service) {
                sched.schedule_at(at, Ev::DbDiskDone { node: db_node, job });
            }
            DbStep::Disk
        } else {
            self.db_send_reply(req_id, now, sched);
            DbStep::Sent
        }
    }

    /// Retire the completed disk job and start the next queued one (the
    /// per-node disk is FIFO). The reply send for the completed job is the
    /// caller's move, after this.
    pub(crate) fn db_disk_pop(&mut self, node: usize, now: SimTime, sched: &mut SchedBuf<Ev>) {
        if let Some((next_job, at)) = self.dbc.node_mut(NodeId(node)).disk().complete(now) {
            sched.schedule_at(at, Ev::DbDiskDone { node, job: next_job });
        }
    }

    /// Put the MySQL reply on the wire to the web node.
    pub(crate) fn db_send_reply(&mut self, req_id: u64, now: SimTime, sched: &mut SchedBuf<Ev>) {
        let (web, db_node, bytes) = match self.reqs.get(&req_id) {
            Some(r) => (r.web, r.db_node, r.query.reply_bytes),
            None => return,
        };
        let (path, lat) = self.topo.path(self.db_hosts[db_node], self.node_hosts[web]);
        let dur = self.gauge.begin_transfer(&path, (bytes + HEADER_BYTES) as f64);
        let m = self.nic_lat[web];
        sched.schedule_at(now + scaled(lat, m) + scaled(dur, m), Ev::DbReplyAtWeb { req: req_id });
    }

    /// The MySQL reply landed back on the web node. See [`PathStep`]
    /// (`ToDb` is impossible here).
    pub(crate) fn db_reply_at_web(&mut self, req_id: u64, now: SimTime, sched: &mut SchedBuf<Ev>) -> PathStep {
        let (web, db_node, t_db_sent) = match self.reqs.get(&req_id) {
            Some(r) => (r.web, r.db_node, r.t_db_sent),
            None => return PathStep::Gone,
        };
        let (path, _) = self.topo.path(self.db_hosts[db_node], self.node_hosts[web]);
        self.gauge.end(&path);
        if self.dead[web] {
            self.drop_req_on_dead_node(req_id, now, sched);
            return PathStep::Dropped;
        }
        if self.cache_writeback {
            // re-warm a cold-restarted store: PHP writes the row
            // back to memcached after the db read
            let (key, cache) = {
                let r = self.reqs.get(&req_id).expect("req exists");
                (r.query.key, r.cache)
            };
            let node = self.n_web() + cache;
            let before = self.caches[cache].used_bytes();
            let bytes = u32::try_from(db::reply_bytes_for(key)).unwrap_or(u32::MAX);
            self.caches[cache].set(key, bytes);
            let after = self.caches[cache].used_bytes();
            if after > before {
                // capacity is sized below free memory, so this holds
                self.nodes.node_mut(NodeId(node)).alloc_mem(after - before).ok();
            } else {
                self.nodes.node_mut(NodeId(node)).free_mem(before - after);
            }
        }
        if self.tel.is_on() {
            let track = self.web_track(web);
            let args = vec![("db_node", format!("{db_node}"))];
            self.tel.span_on(track, "rpc", "mysql_query", t_db_sent, now, args);
        }
        self.reqs.get_mut(&req_id).expect("req exists").db_delay =
            Some(now.since(t_db_sent).as_millis_f64());
        self.begin_stage2(req_id, now, sched);
        PathStep::Continue
    }

    fn begin_stage2(&mut self, req_id: u64, now: SimTime, sched: &mut SchedBuf<Ev>) {
        let (web, bytes) = {
            let r = self.reqs.get_mut(&req_id).expect("req exists");
            r.state = ReqState::Stage2;
            (r.web, r.query.reply_bytes)
        };
        let mi = (self.req_mi_of[web] * (1.0 - STAGE1_FRAC)
            + bytes as f64 / 1024.0 * calib::WEB_REQ_MI_PER_KIB)
            * self.cpu_factor[web];
        self.nodes.node_mut(NodeId(web)).add_cpu_task(now, req_id, mi);
        self.schedule_node_cpu(web, now, sched);
    }

    /// The reply reached the client: account the completion and either
    /// start the connection's next call or close it. With
    /// `record_span = false` the `http_request` span is *not* recorded
    /// here — the async task finishes its [`OpenSpan`] immediately after,
    /// with identical arguments, keeping the tracer byte-identical while
    /// the span value itself lives across the task's `.await`s.
    pub(crate) fn finish_reply(
        &mut self,
        req_id: u64,
        now: SimTime,
        record_span: bool,
        sched: &mut SchedBuf<Ev>,
    ) -> ReplyStep {
        let Some(r) = self.reqs.remove(&req_id) else { return ReplyStep::Vanished };
        if r.shed {
            // header-only rejection: no transfer was begun, no worker
            // taken — just retire the connection
            return self.finish_shed_reply(&r, now, record_span);
        }
        let client_host = self.client_hosts[r.client];
        let (path, _) = self.topo.path(self.node_hosts[r.web], client_host);
        self.gauge.end(&path);
        let (t_first_syn, calls_left, web) = match self.conns.get_mut(&r.conn) {
            Some(conn) => {
                conn.calls_left -= 1;
                (conn.t_first_syn, conn.calls_left, conn.web)
            }
            None => {
                if self.guard_on {
                    self.guard_req_failed("conn_lost");
                }
                return ReplyStep::Vanished;
            }
        };
        // delay: first call measured from the first SYN (includes
        // handshake + any retries), later calls from request send
        let start = if r.first_call { t_first_syn } else { r.t_sent };
        self.metrics.completed_total += 1;
        if self.guard_on {
            self.guard_probe_done(r.conn);
            self.guard_brk_success(web, now);
            if r.deadline.is_some_and(|d| d.passed(now)) {
                self.metrics.guard.deadline_miss += 1;
                self.tel.counter_inc(
                    guard_metrics::DEADLINE_MISS_TOTAL,
                    labels(&[("tier", "web")]),
                );
            }
            if r.degraded {
                self.metrics.guard.degraded += 1;
            } else {
                self.metrics.guard.completed += 1;
            }
        }
        if self.tel.is_on() {
            if record_span {
                let track = self.web_track(web);
                let args = vec![("path", span_path(&r).to_string())];
                self.tel.span_on(track, "request", "http_request", start, now, args);
            }
            self.tel_outcome(if r.degraded { "degraded" } else { "ok" });
            self.tel.observe(
                "web_request_delay_seconds",
                labels(&[]),
                DELAY_BOUNDS_S,
                now.since(start).as_secs_f64(),
            );
        }
        // degraded responses never count as full successes: the window
        // goodput/latency samples stay full-fidelity-only (availability
        // math in the sweep depends on this)
        if self.in_window(now) && r.t_sent >= self.measure_start && !r.degraded {
            self.metrics.completed += 1;
            self.metrics.delays_ms.push(now.since(start).as_millis_f64());
        }
        if self.in_window(now) {
            self.metrics.conn_delay_hist.record(now.since(t_first_syn).as_secs_f64());
        }
        if calls_left > 0 {
            let next = self.start_request(r.conn, false, now, sched);
            ReplyStep::NextCall { req: next }
        } else {
            if let Some(c) = self.conns.remove(&r.conn) {
                self.guard_conn_retired(&c);
            }
            self.nodes.node_mut(NodeId(web)).close_connection();
            ReplyStep::Closed
        }
    }

    /// A shed request's header-only rejection reached the client: retire
    /// the request (terminal `shed` bucket) and close its connection.
    fn finish_shed_reply(&mut self, r: &Req, now: SimTime, record_span: bool) -> ReplyStep {
        self.metrics.guard.shed += 1;
        let conn = self.conns.remove(&r.conn);
        if self.tel.is_on() && record_span {
            if let Some(c) = &conn {
                let start = if r.first_call { c.t_first_syn } else { r.t_sent };
                let track = self.web_track(r.web);
                self.tel.span_on(
                    track,
                    "request",
                    "http_request",
                    start,
                    now,
                    vec![("path", "shed".to_string())],
                );
            }
        }
        self.tel_outcome("shed");
        if let Some(c) = conn {
            self.guard_conn_retired(&c);
            self.nodes.node_mut(NodeId(c.web)).close_connection();
        }
        ReplyStep::Closed
    }

    /// A failover timeout elapsed: pick a fresh backend for `conn` (the
    /// follow-up SYN attempt is the caller's move) or retire it when the
    /// whole tier is out. See [`RedispatchStep`].
    pub(crate) fn redispatch(&mut self, conn_id: u64, now: SimTime) -> RedispatchStep {
        if !self.conns.contains_key(&conn_id) {
            return RedispatchStep::Gone;
        }
        // a retried probe is no longer probing the backend it left
        self.guard_probe_done(conn_id);
        match self.lb_pick_any(conn_id, now) {
            LbPick::Backend { web, probe } => {
                if let Some(c) = self.conns.get_mut(&conn_id) {
                    c.web = web;
                    c.probe = probe;
                }
                RedispatchStep::Go
            }
            LbPick::Blocked => {
                // backends alive but every breaker is open: shed rather
                // than hammer a recovering tier
                if let Some(c) = self.conns.remove(&conn_id) {
                    self.guard_conn_retired(&c);
                }
                self.guard_shed_lb("breaker");
                RedispatchStep::Gone
            }
            LbPick::AllDead => {
                // nothing left to fail over to
                if let Some(c) = self.conns.remove(&conn_id) {
                    self.guard_conn_retired(&c);
                }
                self.metrics.client_errors += 1;
                self.tel_outcome("client_error");
                RedispatchStep::Gone
            }
        }
    }

    // ---- fault layer --------------------------------------------------

    /// Total tier nodes (web + cache) addressable by NIC/CPU faults.
    fn n_tier(&self) -> usize {
        self.nodes.len()
    }

    /// Lazily start the health-check loop. Deferred to the first injected
    /// fault so fault-free runs (including plans whose every fault lands
    /// after the run ends) stay byte-identical to the pre-fault code path.
    fn ensure_health_checks(&mut self, now: SimTime, sched: &mut SchedBuf<Ev>) {
        if !self.hc_running {
            self.hc_running = true;
            sched.schedule_idle_at(now + HC_PERIOD, Ev::HealthCheck);
        }
    }

    /// Inject fault `idx` of the normalized plan. Requests torn down by a
    /// crash are appended to `crashes` so the async driver can cancel the
    /// matching tasks; the state machine passes a scratch vector.
    pub(crate) fn apply_fault_collect(
        &mut self,
        idx: usize,
        now: SimTime,
        sched: &mut SchedBuf<Ev>,
        crashes: &mut Vec<CrashOutcome>,
    ) {
        let Fault { node, kind, .. } = self.fplan.faults()[idx];
        let applied = match kind {
            FaultKind::NodeCrash => self.apply_crash(node, now, sched, crashes),
            FaultKind::NodeRestart => self.apply_restart(node, now),
            FaultKind::NicDegrade { loss, latency_mult } => {
                if node < self.n_tier() {
                    self.nic_loss[node] = loss;
                    self.nic_lat[node] = latency_mult;
                    // per-fault seed: the loss stream is reproducible even
                    // if earlier faults are edited out of the plan
                    self.fault_rng = SimRng::new(self.fplan.fault_seed(idx));
                    true
                } else {
                    false
                }
            }
            FaultKind::NicRestore => {
                if node < self.n_tier() && (self.nic_loss[node] > 0.0 || self.nic_lat[node] != 1.0) {
                    self.nic_loss[node] = 0.0;
                    self.nic_lat[node] = 1.0;
                    true
                } else {
                    false
                }
            }
            FaultKind::DiskSlow { factor } => {
                // the only disks in the web world are the two MySQL nodes
                if node < self.db_disk_factor.len() {
                    self.db_disk_factor[node] = factor;
                    true
                } else {
                    false
                }
            }
            FaultKind::DiskRestore => {
                if node < self.db_disk_factor.len() && self.db_disk_factor[node] != 1.0 {
                    self.db_disk_factor[node] = 1.0;
                    true
                } else {
                    false
                }
            }
            FaultKind::CpuThrottle { factor } => {
                if node < self.n_tier() {
                    self.cpu_factor[node] = factor;
                    true
                } else {
                    false
                }
            }
            FaultKind::CpuRestore => {
                if node < self.n_tier() && self.cpu_factor[node] != 1.0 {
                    self.cpu_factor[node] = 1.0;
                    true
                } else {
                    false
                }
            }
            FaultKind::CacheColdRestart => self.apply_cache_cold(node),
        };
        let name = if applied {
            self.metrics.faults_injected += 1;
            fault_metrics::FAULT_INJECTED_TOTAL
        } else {
            fault_metrics::FAULT_SKIPPED_TOTAL
        };
        self.tel.counter_inc(name, labels(&[("kind", kind.name()), ("tier", "web")]));
        self.ensure_health_checks(now, sched);
    }

    /// Kill web server `node`: in-flight work dies, the LB notices via
    /// health checks, clients burn retry budget (or eat hard errors).
    fn apply_crash(
        &mut self,
        node: usize,
        now: SimTime,
        sched: &mut SchedBuf<Ev>,
        crashes: &mut Vec<CrashOutcome>,
    ) -> bool {
        if node >= self.n_web() || self.dead[node] {
            return false;
        }
        self.dead[node] = true;
        self.crash_time[node] = Some(now);
        // in-flight CPU work on the node dies with it; sorted so the
        // retry re-dispatch order is independent of map iteration order
        let mut doomed: Vec<u64> = self
            .reqs
            .iter()
            .filter(|(_, r)| r.web == node)
            .map(|(&id, _)| id)
            .collect();
        doomed.sort_unstable();
        for id in doomed {
            self.nodes.node_mut(NodeId(node)).cancel_cpu_task(now, id);
            // requests with RPCs in flight are dropped when their
            // reply lands on the dead node (see the dead guards)
            if matches!(self.reqs[&id].state, ReqState::Stage1 | ReqState::Stage2) {
                let conn = self.reqs[&id].conn;
                self.drop_req_on_dead_node(id, now, sched);
                crashes.push(CrashOutcome {
                    req: id,
                    conn,
                    conn_survived: self.conns.contains_key(&conn),
                });
            }
        }
        self.workers[node].busy = 0;
        self.workers[node].backlog.clear();
        true
    }

    /// Bring a crashed web server back: empty pools, fresh accept gate,
    /// zero connections. It only rejoins the LB after RISE health checks.
    fn apply_restart(&mut self, node: usize, now: SimTime) -> bool {
        if node >= self.n_web() || !self.dead[node] {
            return false;
        }
        self.dead[node] = false;
        self.restart_time[node] = Some(now);
        self.syn_gates[node] = SynGate::new(self.accept_rate_of[node]);
        self.workers[node].busy = 0;
        self.workers[node].backlog.clear();
        self.nodes.node_mut(NodeId(node)).reset_connections();
        self.hc_ok[node] = 0;
        true
    }

    /// memcached cold restart: the store loses its contents (memory is
    /// released) and re-warms through the miss path (write-allocate on db
    /// replies from here on).
    fn apply_cache_cold(&mut self, cache: usize) -> bool {
        if cache >= self.caches.len() {
            return false;
        }
        let node = self.n_web() + cache;
        let used = self.caches[cache].used_bytes();
        self.nodes.node_mut(NodeId(node)).free_mem(used);
        self.caches[cache] = LruStore::new(self.cache_cap_of[cache]);
        self.cache_writeback = true;
        true
    }

    /// One HAProxy health-check round: FALL consecutive failures take a
    /// backend out of rotation (a failover), RISE consecutive passes put
    /// a restarted one back (closing the recovery-time measurement).
    pub(crate) fn health_check_tick(&mut self, now: SimTime, sched: &mut SchedBuf<Ev>) {
        for i in 0..self.n_web() {
            if self.dead[i] {
                self.hc_ok[i] = 0;
                self.hc_fail[i] = self.hc_fail[i].saturating_add(1);
                if !self.lb_dead[i] && self.hc_fail[i] >= HC_FALL {
                    self.lb_dead[i] = true;
                    self.metrics.failovers += 1;
                    self.tel.counter_inc(fault_metrics::FAILOVER_TOTAL, labels(&[("tier", "web")]));
                }
            } else {
                self.hc_fail[i] = 0;
                if self.lb_dead[i] {
                    self.hc_ok[i] += 1;
                    if self.hc_ok[i] >= HC_RISE {
                        self.lb_dead[i] = false;
                        self.hc_ok[i] = 0;
                        if let Some(t0) = self.crash_time[i].take() {
                            let rec = now.since(t0).as_secs_f64();
                            self.metrics.recovery_s.push(rec);
                            self.tel.observe(
                                fault_metrics::RECOVERY_SECONDS,
                                labels(&[("tier", "web")]),
                                fault_metrics::RECOVERY_BOUNDS_S,
                                rec,
                            );
                        }
                        if let Some(up) = self.restart_time[i].take() {
                            // restarted-but-not-in-rotation: the window
                            // simexplore probes with follow-up faults
                            self.metrics
                                .recovery_windows
                                .push(RecoveryWindow { node: i, start: up, end: now });
                        }
                    }
                }
            }
        }
        if now < self.measure_end {
            sched.schedule_idle_at(now + HC_PERIOD, Ev::HealthCheck);
        }
    }

    // ---- sampling -----------------------------------------------------

    fn sample(&mut self, now: SimTime) {
        self.metrics.power_w.push(now, self.nodes.power_now());
        let n_web = self.n_web();
        let mut web_cpu = 0.0;
        let mut cache_cpu = 0.0;
        let mut web_mem = 0.0;
        let mut cache_mem = 0.0;
        for (i, n) in self.nodes.iter().enumerate() {
            if i < n_web {
                web_cpu += n.cpu_utilization();
                web_mem += n.mem_utilization();
            } else {
                cache_cpu += n.cpu_utilization();
                cache_mem += n.mem_utilization();
            }
        }
        let n_cache = (self.nodes.len() - n_web).max(1);
        self.metrics.web_cpu.push(web_cpu / n_web as f64);
        self.metrics.cache_cpu.push(cache_cpu / n_cache as f64);
        self.metrics.web_mem.push(web_mem / n_web as f64);
        self.metrics.cache_mem.push(cache_mem / n_cache as f64);
        if self.tel.is_on() {
            let delta = self.metrics.completed_total - self.metrics.last_sampled_completed;
            self.tel.series_push("web_throughput_rps", labels(&[]), now, delta as f64);
        }
    }

    /// One 1 s measurement tick: sample gauges, close the throughput
    /// window, re-arm while the run is live.
    pub(crate) fn sample_tick(&mut self, now: SimTime, sched: &mut SchedBuf<Ev>) {
        self.sample(now);
        let delta = self.metrics.completed_total - self.metrics.last_sampled_completed;
        self.metrics.last_sampled_completed = self.metrics.completed_total;
        self.metrics.throughput_ts.push(now, delta as f64);
        if now < self.measure_end {
            // measurement tick, not model work: exempt from the
            // watchdog budget so quiescent (crashed) periods with
            // nothing but ticks cannot trip it
            sched.schedule_idle_at(now + SimDuration::from_secs(1), Ev::Sample);
        }
    }

    /// The warmup ended: snapshot the energy meter.
    pub(crate) fn measure_start_tick(&mut self, now: SimTime) {
        self.metrics.energy_at_start = self.nodes.energy_joules(now);
    }

    /// The measurement window ended: close the energy meter and stop.
    pub(crate) fn stop_tick(&mut self, now: SimTime, sched: &mut SchedBuf<Ev>) {
        if self.guard_on {
            // drain the conservation identity: whatever is still in
            // flight when the run ends lands in the `failed` bucket so
            // admitted = completed + degraded + shed + failed holds
            let inflight = u64::try_from(self.reqs.len()).unwrap_or(u64::MAX);
            if inflight > 0 {
                self.metrics.guard.failed += inflight;
                self.tel.counter_add(
                    guard_metrics::FAILED_TOTAL,
                    labels(&[("tier", "web"), ("reason", "inflight_at_stop")]),
                    inflight,
                );
            }
            if let Some(since) = self.brownout.active_since() {
                self.tel.gauge_set(
                    guard_metrics::BROWNOUT_ACTIVE,
                    labels(&[("tier", "web")]),
                    0.0,
                );
                if let Some(track) = self.guard_track {
                    self.tel.span_on(track, "guard", "brownout", since, now, vec![]);
                }
            }
        }
        self.metrics.energy_j = self.nodes.energy_joules(now) - self.metrics.energy_at_start;
        sched.stop();
    }

    /// Telemetry: fold the per-node power step logs (recorded by the
    /// cluster when tracing is on) into `node_power_watts{node=...}`
    /// timeseries. Called once after the run.
    pub(crate) fn harvest_power_series(&mut self) {
        if !self.tel.is_on() {
            return;
        }
        self.tel.help("node_power_watts", "Per-node power draw timeline, watts");
        let n_web = self.n_web();
        for i in 0..self.nodes.len() {
            let steps = self.nodes.node(NodeId(i)).power_trace().to_vec();
            let name = if i < n_web {
                format!("web-{i}")
            } else {
                format!("cache-{}", i - n_web)
            };
            for (t, w) in steps {
                self.tel.series_push("node_power_watts", labels(&[("node", &name)]), t, w);
            }
        }
        for i in 0..self.dbc.len() {
            let steps = self.dbc.node(NodeId(i)).power_trace().to_vec();
            let name = format!("db-{i}");
            for (t, w) in steps {
                self.tel.series_push("node_power_watts", labels(&[("node", &name)]), t, w);
            }
        }
    }
}

impl WebWorld {
    /// The legacy state-machine event dispatcher: one thin arm per
    /// [`Ev`], each delegating to the shared lifecycle helpers above and
    /// discarding the step verdicts the async driver branches on. The
    /// [`edison_simcore::Model`] impl in [`crate::stack`] wraps this in a
    /// [`SchedBuf`] and flushes it into the engine context.
    pub(crate) fn dispatch(&mut self, now: SimTime, event: Ev, sched: &mut SchedBuf<Ev>) {
        match event {
            Ev::GenConn => {
                if now < self.measure_end {
                    if let Some(conn) = self.open_conn_prepare(now) {
                        let _ = self.syn_attempt(conn, 0, now, sched);
                    }
                    let d = self.gen_next_delay();
                    sched.schedule_at(now + d, Ev::GenConn);
                }
            }
            Ev::SynRetry { conn, attempt } => {
                let _ = self.syn_attempt(conn, attempt, now, sched);
            }
            Ev::NodeCpu { node, epoch } => {
                if self.nodes.node(NodeId(node)).cpu_epoch() != epoch {
                    return;
                }
                let done = self.nodes.node_mut(NodeId(node)).take_finished_cpu(now);
                for tid in done {
                    if node < self.n_web() {
                        self.web_cpu_done(tid, now, sched);
                    } else {
                        let _ = self.cache_cpu_done(tid, now, sched);
                    }
                }
                self.schedule_node_cpu(node, now, sched);
            }
            Ev::DbCpu { node, epoch } => {
                if self.dbc.node(NodeId(node)).cpu_epoch() != epoch {
                    return;
                }
                let done = self.dbc.node_mut(NodeId(node)).take_finished_cpu(now);
                for tid in done {
                    let _ = self.db_cpu_done(tid, now, sched);
                }
                self.schedule_db_cpu(node, now, sched);
            }
            Ev::ReqAtWeb { req } => {
                let _ = self.admit_to_worker(req, now, sched);
            }
            Ev::ReqAtCache { req } => self.req_at_cache(req, now, sched),
            Ev::CacheReplyAtWeb { req, hit } => {
                let _ = self.cache_reply_at_web(req, hit, now, sched);
            }
            Ev::ReqAtDb { req } => self.req_at_db(req, now, sched),
            Ev::DbDiskDone { node, job } => {
                self.db_disk_pop(node, now, sched);
                self.db_send_reply(job, now, sched);
            }
            Ev::DbReplyAtWeb { req } => {
                let _ = self.db_reply_at_web(req, now, sched);
            }
            Ev::ReplyAtClient { req } => {
                let _ = self.finish_reply(req, now, true, sched);
            }
            Ev::Sample => self.sample_tick(now, sched),
            Ev::Fault { idx } => {
                // the state machine has no tasks to cancel: the crash
                // outcomes are fully handled inside the fault layer
                let mut crashes = Vec::new();
                self.apply_fault_collect(idx, now, sched, &mut crashes);
            }
            Ev::HealthCheck => self.health_check_tick(now, sched),
            Ev::RetryConn { conn } => {
                if let RedispatchStep::Go = self.redispatch(conn, now) {
                    let _ = self.syn_attempt(conn, 0, now, sched);
                }
            }
            Ev::MeasureStart => self.measure_start_tick(now),
            Ev::Stop => self.stop_tick(now, sched),
        }
    }
}
