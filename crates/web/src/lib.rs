//! # edison-web
//!
//! The Section-5.1 web-service workload: a full LLMP (Linux + Lighttpd +
//! MySQL + PHP) stack driven by an httperf-style load generator, re-built as
//! a discrete-event model over the `edison-cluster` / `edison-net`
//! substrates.
//!
//! The pieces map one-to-one onto the paper's testbed:
//!
//! | paper | here |
//! |---|---|
//! | 8 httperf machines + 8 HAProxy balancers | [`stack`]'s paced open-loop connection generator with round-robin server choice |
//! | Lighttpd + FastCGI PHP web servers | web-role nodes: accept gate → PHP worker pool (bounded backlog → 5xx) → two-stage CPU per request |
//! | memcached cache servers | cache-role nodes running a **real LRU keyed store** ([`memcached::LruStore`]) warmed to the target hit ratio |
//! | 2 Dell MySQL servers (20 GB wiki + images) | db-role nodes with per-query CPU + buffer-pool-miss disk reads ([`db`]) |
//! | python/urllib2 delay loggers | [`pyclient`] open-loop single-call connections with kernel SYN retry backoff (1 s, 3 s, 7 s) |
//!
//! [`httperf::run`] executes one (concurrency, workload) point and returns
//! throughput / delay / error / power — one point of Figures 4–9;
//! [`pyclient::run`] returns the Figure 10/11 delay histograms;
//! the Table 7 delay decomposition falls out of the same run's traces.

pub mod db;
pub mod httperf;
pub mod lifecycle;
pub mod memcached;
pub mod model;
pub mod pyclient;
pub mod scenario;
pub mod stack;

pub use httperf::HttperfResult;
pub use scenario::{ClusterScale, Platform, WebScenario, WorkloadMix};
