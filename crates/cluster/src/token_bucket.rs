//! A token bucket, used for the node accept-rate limit.
//!
//! The paper attributes the web clusters' throughput ceilings to "the
//! ability to create new TCP ports and new threads"; a token bucket with
//! rate = sustainable accepts/s and a small burst allowance reproduces both
//! the steady-state ceiling and tolerance of short SYN bursts.

use edison_simcore::time::SimTime;

/// Continuous-refill token bucket.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    last: SimTime,
}

impl TokenBucket {
    /// `rate` tokens/second, holding at most `burst` tokens. Starts full.
    pub fn new(rate: f64, burst: f64) -> Self {
        assert!(rate > 0.0 && burst > 0.0);
        TokenBucket { rate, burst, tokens: burst, last: SimTime::ZERO }
    }

    /// Refill for elapsed time, then take `n` tokens if available.
    pub fn try_take(&mut self, now: SimTime, n: f64) -> bool {
        self.refill(now);
        if self.tokens >= n {
            self.tokens -= n;
            true
        } else {
            false
        }
    }

    /// Tokens available right now.
    pub fn available(&mut self, now: SimTime) -> f64 {
        self.refill(now);
        self.tokens
    }

    fn refill(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last).as_secs_f64();
        if dt > 0.0 {
            self.tokens = (self.tokens + self.rate * dt).min(self.burst);
            self.last = now;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn starts_full_and_drains() {
        let mut b = TokenBucket::new(10.0, 5.0);
        for _ in 0..5 {
            assert!(b.try_take(t(0.0), 1.0));
        }
        assert!(!b.try_take(t(0.0), 1.0));
    }

    #[test]
    fn refills_at_rate() {
        let mut b = TokenBucket::new(10.0, 5.0);
        while b.try_take(t(0.0), 1.0) {}
        // after 0.35 s, 3.5 tokens accumulated
        assert!(b.try_take(t(0.35), 3.0));
        assert!(!b.try_take(t(0.35), 1.0));
    }

    #[test]
    fn burst_caps_accumulation() {
        let mut b = TokenBucket::new(10.0, 5.0);
        while b.try_take(t(0.0), 1.0) {}
        assert!((b.available(t(100.0)) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn sustained_rate_is_enforced() {
        let mut b = TokenBucket::new(60.0, 60.0);
        // offer 100 SYNs/s for 10 s → ~60/s accepted after the initial burst
        let mut accepted = 0;
        for i in 0..1000 {
            let now = t(i as f64 * 0.01);
            if b.try_take(now, 1.0) {
                accepted += 1;
            }
        }
        assert!((600..=700).contains(&accepted), "accepted {accepted}");
    }
}
