//! # edison-cluster
//!
//! The cluster substrate: a [`node::Node`] couples a hardware spec from
//! `edison-hw` with live resource state — a processor-sharing CPU, a disk
//! queue, memory / connection accounting, an accept-rate token bucket and a
//! power integrator. A [`Cluster`] is an indexed set of nodes with
//! aggregate energy and utilisation metrics, which is exactly what the
//! paper's figures report (cluster power lines in Figures 4/6, the
//! utilisation timelines of Figures 12–17, the energy columns of Table 8).

pub mod node;
pub mod token_bucket;

pub use node::{Node, NodeId};
pub use token_bucket::TokenBucket;

use edison_hw::ServerSpec;
use edison_simcore::time::SimTime;

/// An indexed set of nodes plus aggregate metrics.
#[derive(Debug)]
pub struct Cluster {
    nodes: Vec<Node>,
}

impl Cluster {
    /// Build a homogeneous cluster of `n` nodes from one spec.
    pub fn homogeneous(spec: &ServerSpec, n: usize) -> Self {
        let nodes = (0..n).map(|i| Node::new(NodeId(i), spec.clone())).collect();
        Cluster { nodes }
    }

    /// Empty cluster; nodes added via [`Cluster::push`].
    pub fn new() -> Self {
        Cluster { nodes: Vec::new() }
    }

    /// Append a node built from `spec`, returning its id.
    pub fn push(&mut self, spec: &ServerSpec) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node::new(id, spec.clone()));
        id
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Shared access to a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Exclusive access to a node.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.0]
    }

    /// Iterate nodes in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter()
    }

    /// Iterate nodes mutably in id order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Node> {
        self.nodes.iter_mut()
    }

    /// Instantaneous cluster power draw, watts.
    pub fn power_now(&self) -> f64 {
        self.nodes.iter().map(|n| n.power_now()).sum()
    }

    /// Total energy consumed through `now`, joules.
    pub fn energy_joules(&self, now: SimTime) -> f64 {
        self.nodes.iter().map(|n| n.energy_joules(now)).sum()
    }

    /// Start recording per-node power steps on every node (telemetry
    /// timelines). Idempotent.
    pub fn enable_power_trace(&mut self) {
        for n in &mut self.nodes {
            n.enable_power_trace();
        }
    }

    /// Mean CPU utilisation across nodes (instantaneous).
    pub fn mean_cpu_utilization(&self) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        self.nodes.iter().map(|n| n.cpu_utilization()).sum::<f64>() / self.nodes.len() as f64
    }

    /// Mean memory utilisation across nodes (instantaneous).
    pub fn mean_mem_utilization(&self) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        self.nodes.iter().map(|n| n.mem_utilization()).sum::<f64>() / self.nodes.len() as f64
    }
}

impl Default for Cluster {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edison_hw::presets;

    #[test]
    fn homogeneous_cluster_has_table3_idle_power() {
        let c = Cluster::homogeneous(&presets::edison(), 35);
        assert_eq!(c.len(), 35);
        // 35 idle Edison nodes: 49.0 W (Table 3)
        assert!((c.power_now() - 49.0).abs() < 0.01);
    }

    #[test]
    fn dell_cluster_idle_power() {
        let c = Cluster::homogeneous(&presets::dell_r620(), 3);
        assert!((c.power_now() - 156.0).abs() < 0.01);
    }

    #[test]
    fn idle_energy_integrates() {
        let c = Cluster::homogeneous(&presets::edison(), 35);
        let e = c.energy_joules(SimTime::from_secs(100));
        assert!((e - 4900.0).abs() < 1.0);
    }

    #[test]
    fn mixed_cluster_via_push() {
        let mut c = Cluster::new();
        let a = c.push(&presets::edison());
        let b = c.push(&presets::dell_r620());
        assert_eq!(a, NodeId(0));
        assert_eq!(b, NodeId(1));
        assert!((c.power_now() - (1.40 + 52.0)).abs() < 1e-9);
    }
}
