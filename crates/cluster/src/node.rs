//! A live server node: spec + CPU + disk + memory + connections + power.
//!
//! The node keeps its power integrator consistent automatically: every CPU
//! mutation re-evaluates utilisation and feeds the node's linear power model
//! (`edison_hw::PowerModel`) into a step integrator, so
//! [`Node::energy_joules`] is exact for any interleaving of work.

use edison_hw::ServerSpec;
use edison_simcore::energy::StepIntegrator;
use edison_simcore::fluid::{FluidResource, TaskId};
use edison_simcore::queue::FcfsQueue;
use edison_simcore::time::{SimDuration, SimTime};

use crate::token_bucket::TokenBucket;

/// Index of a node within its cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Why a resource admission failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitError {
    /// Node memory exhausted.
    OutOfMemory,
    /// Connection table full (fd / port exhaustion).
    TooManyConnections,
    /// SYN arrived faster than the accept path can drain (dropped SYN —
    /// the client will retry with backoff, Figures 10/11).
    AcceptOverrun,
}

/// A live node. See module docs.
#[derive(Debug)]
pub struct Node {
    id: NodeId,
    spec: ServerSpec,
    cpu: FluidResource,
    disk: FcfsQueue,
    accept_bucket: TokenBucket,
    mem_used: u64,
    connections: u32,
    power: StepIntegrator,
    /// Peak concurrent connections observed (diagnostics).
    peak_connections: u32,
}

impl Node {
    /// Build an idle node from a spec. Base OS memory is pre-charged.
    pub fn new(id: NodeId, spec: ServerSpec) -> Self {
        let cpu = FluidResource::new(spec.cpu.total_mips(), spec.cpu.per_thread_cap());
        let idle_power = spec.power.power_at(0.0);
        let accept_bucket = TokenBucket::new(spec.os.max_accept_rate, spec.os.max_accept_rate.max(8.0));
        Node {
            id,
            mem_used: spec.os.base_memory,
            disk: FcfsQueue::new(1),
            accept_bucket,
            connections: 0,
            power: StepIntegrator::new(SimTime::ZERO, idle_power),
            peak_connections: 0,
            cpu,
            spec,
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The hardware spec.
    pub fn spec(&self) -> &ServerSpec {
        &self.spec
    }

    // ---- CPU ----------------------------------------------------------

    /// Submit `mi` millions of instructions as CPU task `tid`.
    pub fn add_cpu_task(&mut self, now: SimTime, tid: TaskId, mi: f64) {
        self.cpu.add(now, tid, mi);
        self.sync_power(now);
    }

    /// Cancel a CPU task; returns remaining MI if it was in flight.
    pub fn cancel_cpu_task(&mut self, now: SimTime, tid: TaskId) -> Option<f64> {
        let r = self.cpu.cancel(now, tid);
        self.sync_power(now);
        r
    }

    /// Earliest CPU completion, if any (for event scheduling).
    pub fn next_cpu_completion(&self, now: SimTime) -> Option<(TaskId, SimTime)> {
        self.cpu.next_completion(now)
    }

    /// Collect finished CPU tasks at `now`, keeping power consistent.
    pub fn take_finished_cpu(&mut self, now: SimTime) -> Vec<TaskId> {
        let done = self.cpu.take_finished(now);
        self.sync_power(now);
        done
    }

    /// CPU epoch for the completion-event invalidation protocol.
    pub fn cpu_epoch(&self) -> u64 {
        self.cpu.epoch()
    }

    /// Instantaneous CPU utilisation [0, 1].
    pub fn cpu_utilization(&self) -> f64 {
        self.cpu.utilization()
    }

    /// Number of runnable CPU tasks.
    pub fn cpu_tasks(&self) -> usize {
        self.cpu.len()
    }

    /// Time to execute `mi` on an otherwise idle single thread (used for
    /// non-contended service-time estimates, e.g. ioping handling).
    pub fn single_thread_time(&self, mi: f64) -> SimDuration {
        SimDuration::from_secs_f64(mi / self.spec.cpu.single_thread_mips)
    }

    // ---- Disk ---------------------------------------------------------

    /// The disk's FCFS queue (sequential device semantics).
    pub fn disk(&mut self) -> &mut FcfsQueue {
        &mut self.disk
    }

    /// Service time for reading `bytes` (cached = page-cache hit).
    pub fn disk_read_time(&self, bytes: u64, cached: bool) -> SimDuration {
        SimDuration::from_secs_f64(self.spec.storage.read_time(bytes, cached))
    }

    /// Service time for writing `bytes` (direct = O_DSYNC).
    pub fn disk_write_time(&self, bytes: u64, direct: bool) -> SimDuration {
        SimDuration::from_secs_f64(self.spec.storage.write_time(bytes, direct))
    }

    // ---- Memory -------------------------------------------------------

    /// Reserve `bytes` of RAM.
    pub fn alloc_mem(&mut self, bytes: u64) -> Result<(), AdmitError> {
        if self.mem_used + bytes > self.spec.mem.total_bytes {
            Err(AdmitError::OutOfMemory)
        } else {
            self.mem_used += bytes;
            Ok(())
        }
    }

    /// Release `bytes` of RAM. Panics in debug builds on underflow.
    pub fn free_mem(&mut self, bytes: u64) {
        debug_assert!(bytes <= self.mem_used, "freeing more memory than allocated");
        self.mem_used = self.mem_used.saturating_sub(bytes);
    }

    /// Bytes currently allocated (including the OS base share).
    pub fn mem_used(&self) -> u64 {
        self.mem_used
    }

    /// Bytes still allocatable.
    pub fn mem_free(&self) -> u64 {
        self.spec.mem.total_bytes - self.mem_used
    }

    /// Memory utilisation [0, 1].
    pub fn mem_utilization(&self) -> f64 {
        self.mem_used as f64 / self.spec.mem.total_bytes as f64
    }

    // ---- Connections --------------------------------------------------

    /// Try to accept a new TCP connection at `now`.
    ///
    /// Fails with [`AdmitError::AcceptOverrun`] when SYNs outpace the accept
    /// path, or [`AdmitError::TooManyConnections`] when the fd table is
    /// full — the two exhaustion modes behind the paper's 5xx onset.
    pub fn try_accept(&mut self, now: SimTime) -> Result<(), AdmitError> {
        if self.connections >= self.spec.os.max_connections {
            return Err(AdmitError::TooManyConnections);
        }
        if !self.accept_bucket.try_take(now, 1.0) {
            return Err(AdmitError::AcceptOverrun);
        }
        self.connections += 1;
        self.peak_connections = self.peak_connections.max(self.connections);
        Ok(())
    }

    /// Close a connection. Panics in debug builds on underflow.
    pub fn close_connection(&mut self) {
        debug_assert!(self.connections > 0, "closing with no open connections");
        self.connections = self.connections.saturating_sub(1);
    }

    /// Drop every open connection — a reboot after a crash fault. Peak
    /// diagnostics survive; the fd table starts empty.
    pub fn reset_connections(&mut self) {
        self.connections = 0;
    }

    /// Open connections right now.
    pub fn connections(&self) -> u32 {
        self.connections
    }

    /// Peak concurrent connections seen.
    pub fn peak_connections(&self) -> u32 {
        self.peak_connections
    }

    // ---- Power --------------------------------------------------------

    /// Instantaneous power draw, watts.
    pub fn power_now(&self) -> f64 {
        self.power.value()
    }

    /// Total energy consumed through `now`, joules.
    pub fn energy_joules(&self, now: SimTime) -> f64 {
        self.power.integral_at(now)
    }

    /// Start recording this node's power steps (for telemetry timelines).
    /// Idempotent; costs one branch per power change when enabled.
    pub fn enable_power_trace(&mut self) {
        self.power.enable_trace();
    }

    /// The recorded `(t, watts)` power steps; empty unless
    /// [`enable_power_trace`](Self::enable_power_trace) was called.
    pub fn power_trace(&self) -> &[(SimTime, f64)] {
        self.power.trace()
    }

    fn sync_power(&mut self, now: SimTime) {
        let p = self.spec.power.power_at(self.cpu.utilization());
        self.power.set(now, p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edison_hw::presets;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn cpu_task_raises_power_to_busy() {
        let mut n = Node::new(NodeId(0), presets::edison());
        assert!((n.power_now() - 1.40).abs() < 1e-9);
        // saturate both threads
        n.add_cpu_task(t(0.0), 1, 1000.0);
        n.add_cpu_task(t(0.0), 2, 1000.0);
        assert!((n.power_now() - 1.68).abs() < 1e-9);
    }

    #[test]
    fn one_thread_is_half_utilisation_on_edison() {
        let mut n = Node::new(NodeId(0), presets::edison());
        n.add_cpu_task(t(0.0), 1, 1000.0);
        assert!((n.cpu_utilization() - 0.5).abs() < 1e-9);
        // power halfway between idle and busy
        assert!((n.power_now() - 1.54).abs() < 1e-9);
    }

    #[test]
    fn energy_tracks_busy_period() {
        let mut n = Node::new(NodeId(0), presets::dell_r620());
        // one full-machine second of work: submit 12 threads, 1s each at
        // shared rate. total_mips work split across 12 tasks.
        let per_task = n.spec().cpu.total_mips() / 12.0;
        for i in 0..12 {
            n.add_cpu_task(t(0.0), i, per_task);
        }
        let (_, done_at) = n.next_cpu_completion(t(0.0)).unwrap();
        assert!((done_at.as_secs_f64() - 1.0).abs() < 1e-6);
        let finished = n.take_finished_cpu(done_at);
        assert_eq!(finished.len(), 12);
        // 1 s at 109 W busy + 1 s at 52 W idle = 161 J after 2 s
        let e = n.energy_joules(t(2.0));
        assert!((e - 161.0).abs() < 0.01, "energy {e}");
    }

    #[test]
    fn memory_accounting_enforces_capacity() {
        let mut n = Node::new(NodeId(0), presets::edison());
        let free = n.mem_free();
        assert!(n.alloc_mem(free).is_ok());
        assert_eq!(n.alloc_mem(1), Err(AdmitError::OutOfMemory));
        n.free_mem(free);
        assert!(n.alloc_mem(1).is_ok());
    }

    #[test]
    fn connection_cap_and_accept_rate() {
        let mut n = Node::new(NodeId(0), presets::edison());
        let burst = n.spec().os.max_accept_rate as usize;
        let mut accepted = 0;
        let mut overrun = 0;
        // a SYN burst of 3× the bucket allowance at t=0
        for _ in 0..3 * burst {
            match n.try_accept(t(0.0)) {
                Ok(()) => accepted += 1,
                Err(AdmitError::AcceptOverrun) => overrun += 1,
                Err(e) => panic!("unexpected {e:?}"),
            }
        }
        assert_eq!(accepted, burst, "burst allowance {accepted}");
        assert_eq!(overrun, 2 * burst);
        // a second later the bucket refills
        assert!(n.try_accept(t(1.0)).is_ok());
    }

    #[test]
    fn fd_exhaustion_reports_too_many_connections() {
        let mut spec = presets::edison();
        spec.os.max_connections = 2;
        spec.os.max_accept_rate = 1e9;
        let mut n = Node::new(NodeId(0), spec);
        assert!(n.try_accept(t(0.0)).is_ok());
        assert!(n.try_accept(t(0.0)).is_ok());
        assert_eq!(n.try_accept(t(0.0)), Err(AdmitError::TooManyConnections));
        n.close_connection();
        assert!(n.try_accept(t(0.0)).is_ok());
        assert_eq!(n.peak_connections(), 2);
    }

    #[test]
    fn disk_times_use_spec() {
        let n = Node::new(NodeId(0), presets::edison());
        let t_read = n.disk_read_time(19_500_000, false);
        assert!((t_read.as_secs_f64() - 1.007).abs() < 1e-6);
    }
}
