//! The tracked benchmark workloads.
//!
//! Six fixed-seed, fixed-scale simulations whose engine profiles are
//! the benchmark trajectory's deterministic inputs: a three-point web
//! concurrency sweep, the same sweep through the `simasync` lifecycle
//! port, a scaled-down MapReduce wordcount (the Figure 12–17 family),
//! the web point again under a crash/restart fault plan, a small
//! simexplore candidate neighbourhood run end to end (the explore
//! experiment's hot path), and the guarded overload point (the simguard
//! hot path: sheds, brownout, breaker trips). Everything here is a pure
//! function of the constants below — no
//! wall clock, no ambient RNG — so two runs on any machine produce
//! bit-identical [`EngineProfile`]s. Wall-clock rates are measured by the
//! harness *around* these calls, never inside them.

use edison_mapreduce::engine::{run_job_profiled_checked, ClusterSetup};
use edison_mapreduce::jobs;
use edison_simcore::time::SimDuration;
use edison_simcore::EngineProfile;
use edison_simexplore::{candidates, ExploreBudget, PerturbSpace};
use edison_simfault::{FaultPlan, RecoveryWindow};
use edison_simguard::GuardConfig;
use edison_simrun::error::SimError;
use edison_simrun::{derive_seed, merge_profiles, ROOT_SEED};
use edison_simtel::Telemetry;
use edison_web::httperf::CALLS_PER_CONN;
use edison_web::lifecycle;
use edison_web::stack::{self, GenMode, StackConfig};
use edison_web::{ClusterScale, Platform, WebScenario, WorkloadMix};

/// The tracked workload names, in the (sorted) order they appear in the
/// trajectory file.
pub const TRACKED: [&str; 6] = [
    "async_web",
    "explore_worst",
    "fault_sweep",
    "mapreduce_wordcount",
    "overload_web",
    "web_sweep",
];

/// Concurrency points of the web sweep.
const WEB_POINTS: [f64; 3] = [32.0, 64.0, 96.0];
/// Web warmup / measurement window, seconds.
const WEB_WARMUP_S: u64 = 2;
const WEB_MEASURE_S: u64 = 6;

/// One eighth-scale Edison web point at `conc`, seeded from the named
/// stream, with an optional fault plan.
fn web_cfg(stream: &str, idx: u64, conc: f64, plan: FaultPlan) -> Result<StackConfig, SimError> {
    let scenario = WebScenario::table6_or_err(Platform::Edison, ClusterScale::Eighth)?;
    let mut cfg = StackConfig::new(
        scenario,
        WorkloadMix::lightest(),
        GenMode::Httperf { connections_per_sec: conc, calls_per_conn: CALLS_PER_CONN },
        derive_seed(ROOT_SEED, stream, idx),
    );
    cfg.warmup = SimDuration::from_secs(WEB_WARMUP_S);
    cfg.measure = SimDuration::from_secs(WEB_MEASURE_S);
    cfg.fault_plan = plan;
    Ok(cfg)
}

/// The web sweep: three concurrency points, profiles merged in input
/// order (the same fold [`merge_profiles`] applies to executor sweeps).
pub fn web_sweep() -> Result<EngineProfile, SimError> {
    let mut profiles = Vec::with_capacity(WEB_POINTS.len());
    for (i, &conc) in (0u64..).zip(WEB_POINTS.iter()) {
        let cfg = web_cfg("bench:web", i, conc, FaultPlan::new())?;
        let (_, p) = stack::run_profiled(cfg, Telemetry::profiled());
        profiles.push(p);
    }
    Ok(merge_profiles(profiles))
}

/// The same three web points driven through the `simasync` lifecycle
/// port instead of the legacy state machine. Its deterministic profile
/// is *identical* to [`web_sweep`]'s by the equivalence invariant (same
/// seed ⇒ same event stream), so the trajectory pins the ported path to
/// the legacy one; the advisory wall rates are where the two drivers'
/// relative cost shows up.
pub fn async_web() -> Result<EngineProfile, SimError> {
    let mut profiles = Vec::with_capacity(WEB_POINTS.len());
    for (i, &conc) in (0u64..).zip(WEB_POINTS.iter()) {
        let cfg = web_cfg("bench:web", i, conc, FaultPlan::new())?;
        let (_, p) = lifecycle::run_async_profiled(cfg, Telemetry::profiled());
        profiles.push(p);
    }
    Ok(merge_profiles(profiles))
}

/// Scaled-down wordcount on 8 Edison nodes — the Figure 12/17 job family
/// at an eighth of the paper's input, sized for CI.
pub fn mapreduce_wordcount() -> Result<EngineProfile, SimError> {
    let mut setup = ClusterSetup::edison(8);
    setup.seed = derive_seed(ROOT_SEED, "bench:mr", 0);
    let mut p = jobs::wordcount(setup.tune);
    p.input_bytes /= 8;
    p.map_tasks = (p.map_tasks / 8).max(4);
    let (_, _, profile) = run_job_profiled_checked(&p, &setup, Telemetry::profiled())?;
    Ok(profile)
}

/// The mid-curve web point under a crash/restart fault plan: web node 0
/// goes down 4 s in and returns 2 s later, with one retry budgeted.
pub fn fault_sweep() -> Result<EngineProfile, SimError> {
    let plan = FaultPlan::new().crash_restart(
        0,
        edison_simcore::time::SimTime::from_secs(4),
        SimDuration::from_secs(2),
    );
    let mut cfg = web_cfg("bench:fault", 0, 64.0, plan)?;
    cfg.retry_budget = 1;
    let (_, p) = stack::run_profiled(cfg, Telemetry::profiled());
    Ok(p)
}

/// A small simexplore neighbourhood, run end to end: enumerate the
/// candidate schedules around the `fault_sweep` plan (window probe on
/// the sibling node, pairwise reorders, start jitter — the explore
/// experiment's hot path), play every candidate at the mid-curve web
/// point, and fold the profiles in input order. The window is pinned
/// rather than observed so the workload stays a pure function of the
/// constants here.
pub fn explore_worst() -> Result<EngineProfile, SimError> {
    let base = FaultPlan::new().crash_restart(
        0,
        edison_simcore::time::SimTime::from_secs(4),
        SimDuration::from_secs(2),
    );
    let window = RecoveryWindow {
        node: 0,
        start: edison_simcore::time::SimTime::from_secs(6),
        end: edison_simcore::time::SimTime::from_secs(7),
    };
    let space =
        PerturbSpace::full(SimDuration::from_secs(1), vec![window], vec![1], SimDuration::from_secs(2));
    let budget = ExploreBudget::new(4, ROOT_SEED);
    let mut profiles = Vec::new();
    for (i, cand) in (0u64..).zip(candidates(&base, &space, &budget)) {
        let mut cfg = web_cfg("bench:explore", i, 64.0, cand.plan)?;
        cfg.retry_budget = 1;
        let (_, p) = stack::run_profiled(cfg, Telemetry::profiled());
        profiles.push(p);
    }
    Ok(merge_profiles(profiles))
}

/// The guarded overload point: a load level past the Eighth-scale knee
/// with the reference guard on and web node 0 crashing mid-run — the
/// simguard hot path (admission control, queue-gate sheds, brownout
/// degradation, breaker trips and half-open probing) under the profiler.
pub fn overload_web() -> Result<EngineProfile, SimError> {
    let plan = FaultPlan::new().crash_restart(
        0,
        edison_simcore::time::SimTime::from_secs(4),
        SimDuration::from_secs(2),
    );
    let mut cfg = web_cfg("bench:overload", 0, 384.0, plan)?;
    cfg.retry_budget = 2;
    cfg.guard = GuardConfig::web_defaults();
    let (_, p) = stack::run_profiled(cfg, Telemetry::profiled());
    Ok(p)
}

/// Run one tracked workload by trajectory name.
pub fn run_tracked(name: &str) -> Result<EngineProfile, SimError> {
    match name {
        "async_web" => async_web(),
        "explore_worst" => explore_worst(),
        "fault_sweep" => fault_sweep(),
        "mapreduce_wordcount" => mapreduce_wordcount(),
        "overload_web" => overload_web(),
        "web_sweep" => web_sweep(),
        other => Err(SimError::Config(format!("unknown tracked workload '{other}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracked_names_are_sorted_and_resolvable() {
        let mut sorted = TRACKED;
        sorted.sort_unstable();
        assert_eq!(sorted, TRACKED, "trajectory keys must be machine-sortable");
        for name in TRACKED {
            assert!(run_tracked(name).is_ok(), "workload {name} must run");
        }
        assert!(run_tracked("nope").is_err());
    }

    #[test]
    fn workloads_are_deterministic() {
        // the trajectory's whole premise: same constants, same profile
        assert_eq!(fault_sweep(), fault_sweep());
    }

    #[test]
    fn async_web_profile_equals_legacy_web_sweep() {
        // same seeds, same event stream: the ported driver must not add,
        // drop or reorder a single engine event relative to the legacy one
        assert_eq!(async_web(), web_sweep());
    }

    #[test]
    fn fault_plan_changes_the_profile() {
        let plain = web_sweep().expect("web sweep runs");
        let faulted = fault_sweep().expect("fault sweep runs");
        assert!(faulted.kinds.contains_key("fault"), "fault events dispatched");
        assert!(!plain.kinds.contains_key("fault"), "plain sweep has no fault events");
    }
}
