//! # edison-bench
//!
//! The benchmark harness: criterion benches under `benches/`, plus the
//! simprof-backed throughput trajectory.
//!
//! * [`workloads`] — the three tracked, fixed-seed workloads (web sweep,
//!   MapReduce wordcount, fault sweep) whose [`edison_simcore::EngineProfile`]s
//!   are the deterministic half of the trajectory.
//! * [`schema`] — the canonical `edison-bench/1` form of
//!   `BENCH_0010.json` (deterministic vs advisory sections, sorted keys,
//!   byte-stable round-trip).
//! * [`gate`] — the ±10% regression ratchet tier-1 runs against the
//!   committed trajectory (`cargo bench-gate`, `tests/bench_gate.rs`).
//! * [`alloc`] — a counting global allocator binaries opt into so the
//!   harness can report allocations per engine event.

pub mod alloc;
pub mod gate;
pub mod schema;
pub mod workloads;

pub use alloc::{alloc_counts, AllocCounts, CountingAlloc};
pub use gate::{check, find_workspace_root, GateOutcome, TOLERANCE, TRAJECTORY_FILE};
pub use schema::{Trajectory, WorkloadRecord, SCHEMA};
pub use workloads::{run_tracked, TRACKED};

use edison_simcore::EngineProfile;
use edison_simrun::error::SimError;

/// Measure every tracked workload and fill the *deterministic* fields of
/// a [`Trajectory`]; advisory fields are zeroed for the harness (binary /
/// bench) to overwrite with wall-clock context.
pub fn deterministic_trajectory() -> Result<Trajectory, SimError> {
    let mut t = Trajectory::default();
    for name in TRACKED {
        let p = run_tracked(name)?;
        t.workloads.insert(name.to_string(), record_from(&p));
    }
    Ok(t)
}

/// The deterministic half of one workload's record.
pub fn record_from(profile: &EngineProfile) -> WorkloadRecord {
    WorkloadRecord {
        events: profile.events(),
        heap_pushes: profile.heap_pushes,
        sim_seconds: profile.sim_seconds(),
        ..WorkloadRecord::default()
    }
}
