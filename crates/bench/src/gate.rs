//! The benchmark regression gate.
//!
//! Compares a freshly measured [`Trajectory`] against the committed
//! `BENCH_0010.json`, looking only at the `deterministic` sections. The
//! philosophy matches `simlint-baseline.json`: the committed file is a
//! ratchet. Engine-cost growth beyond [`TOLERANCE`] fails tier-1, and an
//! *improvement* beyond the same tolerance also fails until the
//! trajectory is refreshed (`cargo bench-gate -- update`) in the same
//! commit — so wins are locked in, not silently eroded later.
//!
//! Wall-clock (`advisory`) numbers never gate: they vary by machine and
//! would make CI flaky. They are refreshed on `update` as human context.

use crate::schema::Trajectory;
use std::path::{Path, PathBuf};

/// Committed trajectory file at the workspace root.
pub const TRAJECTORY_FILE: &str = "BENCH_0010.json";

/// Relative drift allowed on gated metrics before the gate fails.
pub const TOLERANCE: f64 = 0.10;

/// Result of a gate run: hard failures plus informational drift notes.
#[derive(Debug, Default)]
pub struct GateOutcome {
    /// Violations that must fail the build.
    pub failures: Vec<String>,
    /// In-tolerance drift worth a human glance.
    pub notes: Vec<String>,
}

impl GateOutcome {
    /// True when no gated metric regressed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Compare one gated metric; returns `Some(relative drift)` when parseable.
fn drift(committed: f64, fresh: f64) -> f64 {
    if committed == 0.0 {
        if fresh == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        fresh / committed - 1.0
    }
}

/// Gate `fresh` against `committed` (deterministic sections only).
pub fn check(committed: &Trajectory, fresh: &Trajectory) -> GateOutcome {
    let mut out = GateOutcome::default();
    for (name, c) in &committed.workloads {
        let Some(f) = fresh.workloads.get(name) else {
            out.failures.push(format!("{name}: tracked workload missing from fresh run"));
            continue;
        };
        let gated: [(&str, f64, f64); 3] = [
            ("events", c.events as f64, f.events as f64), // simlint: allow(R3) exact for counts ≤ 2^53
            ("heap_pushes", c.heap_pushes as f64, f.heap_pushes as f64), // simlint: allow(R3) exact for counts ≤ 2^53
            ("sim_seconds", c.sim_seconds, f.sim_seconds),
        ];
        for (metric, cv, fv) in gated {
            let d = drift(cv, fv);
            if d.abs() > TOLERANCE {
                let direction = if d > 0.0 { "regressed" } else { "improved" };
                out.failures.push(format!(
                    "{name}/{metric}: {direction} {:+.1}% (committed {cv}, fresh {fv}) — \
                     beyond ±{:.0}%; refresh with `cargo bench-gate -- update`",
                    d * 100.0,
                    TOLERANCE * 100.0
                ));
            } else if d != 0.0 {
                out.notes.push(format!(
                    "{name}/{metric}: drift {:+.2}% (committed {cv}, fresh {fv})",
                    d * 100.0
                ));
            }
        }
    }
    for name in fresh.workloads.keys() {
        if !committed.workloads.contains_key(name) {
            out.failures.push(format!(
                "{name}: new tracked workload not in {TRAJECTORY_FILE}; \
                 add it with `cargo bench-gate -- update`"
            ));
        }
    }
    out
}

/// Locate the workspace root (the ancestor whose `Cargo.toml` declares
/// `[workspace]`), starting from `from`.
pub fn find_workspace_root(from: &Path) -> Option<PathBuf> {
    from.ancestors().find_map(|dir| {
        let manifest = dir.join("Cargo.toml");
        match std::fs::read_to_string(&manifest) {
            Ok(text) if text.contains("[workspace]") => Some(dir.to_path_buf()),
            _ => None,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::WorkloadRecord;

    fn traj(events: u64, pushes: u64, sim_s: f64) -> Trajectory {
        let mut t = Trajectory::default();
        t.workloads.insert(
            "w".into(),
            WorkloadRecord { events, heap_pushes: pushes, sim_seconds: sim_s, ..Default::default() },
        );
        t
    }

    #[test]
    fn identical_passes_clean() {
        let out = check(&traj(1000, 1100, 8.0), &traj(1000, 1100, 8.0));
        assert!(out.passed());
        assert!(out.notes.is_empty());
    }

    #[test]
    fn small_drift_notes_but_passes() {
        let out = check(&traj(1000, 1100, 8.0), &traj(1050, 1100, 8.0));
        assert!(out.passed());
        assert_eq!(out.notes.len(), 1);
    }

    #[test]
    fn regression_beyond_tolerance_fails() {
        let out = check(&traj(1000, 1100, 8.0), &traj(1200, 1100, 8.0));
        assert!(!out.passed());
        assert!(out.failures[0].contains("regressed"));
    }

    #[test]
    fn big_improvement_requires_refresh() {
        let out = check(&traj(1000, 1100, 8.0), &traj(800, 1100, 8.0));
        assert!(!out.passed(), "ratchet: wins must be committed");
        assert!(out.failures[0].contains("improved"));
    }

    #[test]
    fn workload_set_mismatch_fails_both_ways() {
        let empty = Trajectory::default();
        assert!(!check(&traj(1, 1, 1.0), &empty).passed());
        assert!(!check(&empty, &traj(1, 1, 1.0)).passed());
    }

    #[test]
    fn advisory_fields_never_gate() {
        let committed = traj(1000, 1100, 8.0);
        let mut fresh = traj(1000, 1100, 8.0);
        if let Some(r) = fresh.workloads.get_mut("w") {
            r.events_per_sec = 1.0; // wildly different machine speed
            r.allocs_per_event = 99.0;
        }
        assert!(check(&committed, &fresh).passed());
    }

    #[test]
    fn workspace_root_found_from_here() {
        let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("root");
        assert!(root.join("Cargo.toml").exists());
    }
}
