//! A counting global allocator for the bench harness.
//!
//! Install in a *binary* (never in this library — a global allocator in a
//! lib would leak into every consumer):
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: edison_bench::CountingAlloc = edison_bench::CountingAlloc;
//! ```
//!
//! The wrapper delegates every call to [`std::alloc::System`] and counts
//! allocation events and requested bytes in relaxed atomics, so the
//! harness can report allocations-per-event alongside wall-clock rates.
//! Counts are process-global and monotone; snapshot with
//! [`alloc_counts`] before and after the region of interest and subtract.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// Counting wrapper around the system allocator (see module docs).
pub struct CountingAlloc;

/// A snapshot of the process-wide allocation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocCounts {
    /// Allocation events (`alloc` + `realloc` calls) since process start.
    pub allocs: u64,
    /// Bytes requested across those events.
    pub bytes: u64,
}

/// Read the counters. Zero forever unless a binary installed
/// [`CountingAlloc`] as its `#[global_allocator]`.
pub fn alloc_counts() -> AllocCounts {
    AllocCounts { allocs: ALLOCS.load(Ordering::Relaxed), bytes: BYTES.load(Ordering::Relaxed) }
}

// `GlobalAlloc` is an unsafe trait; this impl adds two relaxed counter
// bumps and otherwise forwards to `System` verbatim, preserving its
// entire contract.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(u64::try_from(layout.size()).unwrap_or(u64::MAX), Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(u64::try_from(new_size).unwrap_or(u64::MAX), Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}
