//! `bench_gate` — measure the tracked workloads and check or refresh the
//! committed benchmark trajectory (`BENCH_0010.json`, schema
//! `edison-bench/1`).
//!
//! ```text
//! bench_gate check     re-run the workloads, gate deterministic metrics
//!                      against the committed trajectory (±10%)
//! bench_gate update    rewrite the trajectory, including advisory
//!                      wall-clock rates measured on this machine
//! ```
//!
//! Exit codes: `0` pass, `1` gate failure, `2` usage / IO / simulation
//! error. Tier-1 runs the same comparison via `tests/bench_gate.rs`;
//! `cargo bench-gate` is the CLI alias.

use edison_bench::{alloc_counts, check, find_workspace_root, record_from, run_tracked};
use edison_bench::{CountingAlloc, Trajectory, TRACKED, TRAJECTORY_FILE};
use std::path::{Path, PathBuf};

/// Count allocations in this harness so `allocs_per_event` is real.
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn die(msg: String) -> ! {
    eprintln!("bench_gate: {msg}");
    std::process::exit(2);
}

fn trajectory_path() -> PathBuf {
    match find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))) {
        Some(root) => root.join(TRAJECTORY_FILE),
        None => die("workspace root not found".into()),
    }
}

/// Run every tracked workload, measuring wall time and allocations around
/// each deterministic simulation.
fn measure() -> Trajectory {
    let mut t = Trajectory::default();
    for name in TRACKED {
        let before = alloc_counts();
        // simlint: allow(R1) host-side wall timing for advisory rates; never feeds sim state
        let t0 = std::time::Instant::now();
        let profile = match run_tracked(name) {
            Ok(p) => p,
            Err(e) => die(format!("workload {name}: {e}")),
        };
        let wall_s = t0.elapsed().as_secs_f64().max(1e-9);
        let after = alloc_counts();
        let mut r = record_from(&profile);
        let events = r.events as f64; // simlint: allow(R3) exact for counts ≤ 2^53
        r.events_per_sec = events / wall_s;
        r.sim_seconds_per_wall_second = r.sim_seconds / wall_s;
        // simlint: allow(R3) exact for counts ≤ 2^53
        r.allocs_per_event = (after.allocs - before.allocs) as f64 / events.max(1.0);
        println!(
            "measured {name:<20} {:>9} events  {:>12.0} events/s  {:>8.1} sim-s/wall-s  {:>6.1} allocs/event",
            r.events, r.events_per_sec, r.sim_seconds_per_wall_second, r.allocs_per_event
        );
        t.workloads.insert(name.to_string(), r);
    }
    t
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = match args.as_slice() {
        [] => "check",
        [m] if m == "check" || m == "update" => m.as_str(),
        _ => die("usage: bench_gate [check|update]".into()),
    };
    let path = trajectory_path();
    let fresh = measure();
    match mode {
        "update" => {
            if let Err(e) = std::fs::write(&path, fresh.to_json()) {
                die(format!("write {}: {e}", path.display()));
            }
            println!("wrote {}", path.display());
        }
        _ => {
            let text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => die(format!(
                    "read {}: {e} (seed it with `bench_gate update`)",
                    path.display()
                )),
            };
            let committed = match Trajectory::parse(&text) {
                Ok(t) => t,
                Err(e) => die(format!("{}: {e}", path.display())),
            };
            let outcome = check(&committed, &fresh);
            for note in &outcome.notes {
                println!("note: {note}");
            }
            for failure in &outcome.failures {
                eprintln!("FAIL: {failure}");
            }
            if !outcome.passed() {
                eprintln!("bench gate failed against {}", path.display());
                std::process::exit(1);
            }
            println!("bench gate passed against {}", path.display());
        }
    }
}
