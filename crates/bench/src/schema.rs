//! The `edison-bench/1` trajectory file format.
//!
//! `BENCH_0010.json` at the workspace root is the committed benchmark
//! trajectory: one record per tracked workload, split into two sections.
//!
//! * `deterministic` — pure functions of the workload constants (engine
//!   event count, heap pushes, simulated seconds). Bit-identical on every
//!   machine; the regression gate compares these. **No wall-clock value
//!   may ever appear here.**
//! * `advisory` — wall-clock rates (events/sec, sim-seconds per wall
//!   second) and allocation counts measured on whatever machine last ran
//!   `cargo bench-gate -- update`. Context for humans; never gated.
//!
//! The serialization is canonical: keys sorted, two-space indent, floats
//! in Rust's shortest-roundtrip `{}` form, trailing newline. The parser
//! accepts exactly that shape — a hand-edited or re-ordered file is
//! rejected, which is what makes the golden byte-stability test (parse →
//! re-serialize → byte-equal) meaningful.

use std::collections::BTreeMap;

/// Schema tag, bumped on any layout change.
pub const SCHEMA: &str = "edison-bench/1";

/// One workload's entry in the trajectory.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WorkloadRecord {
    /// Advisory: allocation events per engine event (0 when the harness
    /// ran without the counting allocator installed).
    pub allocs_per_event: f64,
    /// Advisory: engine events per wall-clock second.
    pub events_per_sec: f64,
    /// Advisory: simulated seconds per wall-clock second.
    pub sim_seconds_per_wall_second: f64,
    /// Deterministic: engine events dispatched.
    pub events: u64,
    /// Deterministic: heap pushes (events scheduled).
    pub heap_pushes: u64,
    /// Deterministic: simulated seconds covered.
    pub sim_seconds: f64,
}

/// The whole trajectory: schema tag plus per-workload records, keyed by
/// (sorted) workload name.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trajectory {
    /// Records by workload name.
    pub workloads: BTreeMap<String, WorkloadRecord>,
}

impl Trajectory {
    /// Serialize to the canonical `edison-bench/1` form.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        out.push_str("  \"workloads\": {\n");
        let last = self.workloads.len().saturating_sub(1);
        for (i, (name, r)) in self.workloads.iter().enumerate() {
            out.push_str(&format!("    \"{name}\": {{\n"));
            out.push_str("      \"advisory\": {\n");
            out.push_str(&format!("        \"allocs_per_event\": {},\n", r.allocs_per_event));
            out.push_str(&format!("        \"events_per_sec\": {},\n", r.events_per_sec));
            out.push_str(&format!(
                "        \"sim_seconds_per_wall_second\": {}\n",
                r.sim_seconds_per_wall_second
            ));
            out.push_str("      },\n");
            out.push_str("      \"deterministic\": {\n");
            out.push_str(&format!("        \"events\": {},\n", r.events));
            out.push_str(&format!("        \"heap_pushes\": {},\n", r.heap_pushes));
            out.push_str(&format!("        \"sim_seconds\": {}\n", r.sim_seconds));
            out.push_str("      }\n");
            out.push_str(if i == last { "    }\n" } else { "    },\n" });
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Parse the canonical form produced by [`Trajectory::to_json`].
    /// Strict: key order, nesting and the schema tag must match exactly.
    pub fn parse(text: &str) -> Result<Trajectory, String> {
        let mut p = Lines::new(text);
        p.expect_line("{")?;
        p.expect_line(&format!("\"schema\": \"{SCHEMA}\","))?;
        p.expect_line("\"workloads\": {")?;
        let mut workloads = BTreeMap::new();
        loop {
            let line = p.next_line()?;
            if line == "}" {
                break;
            }
            let name = line
                .strip_prefix('"')
                .and_then(|s| s.split_once('"'))
                .filter(|(_, rest)| *rest == ": {")
                .map(|(n, _)| n.to_string())
                .ok_or_else(|| p.err("workload name"))?;
            if let Some((prev, _)) = workloads.last_key_value() {
                if *prev >= name {
                    return Err(format!("workload keys not sorted: '{prev}' before '{name}'"));
                }
            }
            let mut r = WorkloadRecord::default();
            p.expect_line("\"advisory\": {")?;
            r.allocs_per_event = p.float("allocs_per_event", ",")?;
            r.events_per_sec = p.float("events_per_sec", ",")?;
            r.sim_seconds_per_wall_second = p.float("sim_seconds_per_wall_second", "")?;
            p.expect_line("},")?;
            p.expect_line("\"deterministic\": {")?;
            r.events = p.int("events", ",")?;
            r.heap_pushes = p.int("heap_pushes", ",")?;
            r.sim_seconds = p.float("sim_seconds", "")?;
            p.expect_line("}")?;
            let closer = p.next_line()?;
            if closer != "}," && closer != "}" {
                return Err(p.err("record closer"));
            }
            workloads.insert(name, r);
        }
        p.expect_line("}")?;
        if p.next_line().is_ok() {
            return Err("trailing content after trajectory".into());
        }
        Ok(Trajectory { workloads })
    }
}

/// Line-oriented cursor over the canonical form (indentation-insensitive,
/// everything else strict).
struct Lines<'a> {
    lines: std::str::Lines<'a>,
    lineno: usize,
}

impl<'a> Lines<'a> {
    fn new(text: &'a str) -> Self {
        Lines { lines: text.lines(), lineno: 0 }
    }

    fn err(&self, what: &str) -> String {
        format!("{}: line {}: malformed {what}", SCHEMA, self.lineno)
    }

    fn next_line(&mut self) -> Result<&'a str, String> {
        for line in self.lines.by_ref() {
            self.lineno += 1;
            let t = line.trim();
            if !t.is_empty() {
                return Ok(t);
            }
        }
        Err(format!("{SCHEMA}: unexpected end of file"))
    }

    fn expect_line(&mut self, want: &str) -> Result<(), String> {
        let got = self.next_line()?;
        if got == want {
            Ok(())
        } else {
            Err(format!("{}: line {}: expected '{want}', got '{got}'", SCHEMA, self.lineno))
        }
    }

    /// Parse `"key": <value><suffix>`, returning the raw value text.
    fn value(&mut self, key: &str, suffix: &str) -> Result<&'a str, String> {
        let line = self.next_line()?;
        line.strip_prefix(&format!("\"{key}\": "))
            .and_then(|v| v.strip_suffix(suffix))
            .ok_or_else(|| self.err(key))
    }

    fn float(&mut self, key: &str, suffix: &str) -> Result<f64, String> {
        let v = self.value(key, suffix)?;
        v.parse::<f64>().map_err(|e| format!("{}: {key}: {e}", SCHEMA))
    }

    fn int(&mut self, key: &str, suffix: &str) -> Result<u64, String> {
        let v = self.value(key, suffix)?;
        v.parse::<u64>().map_err(|e| format!("{}: {key}: {e}", SCHEMA))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trajectory {
        let mut t = Trajectory::default();
        t.workloads.insert(
            "alpha".into(),
            WorkloadRecord {
                allocs_per_event: 1.5,
                events_per_sec: 250000.0,
                sim_seconds_per_wall_second: 40.25,
                events: 12345,
                heap_pushes: 12350,
                sim_seconds: 8.0,
            },
        );
        t.workloads.insert(
            "beta".into(),
            WorkloadRecord { events: 7, heap_pushes: 9, sim_seconds: 0.5, ..Default::default() },
        );
        t
    }

    #[test]
    fn roundtrip_is_exact() {
        let t = sample();
        let json = t.to_json();
        let back = Trajectory::parse(&json).expect("canonical form parses");
        assert_eq!(back, t);
        assert_eq!(back.to_json(), json, "parse → serialize must be byte-stable");
    }

    #[test]
    fn golden_bytes() {
        // the schema's exact canonical bytes — bump SCHEMA if this changes
        let mut t = Trajectory::default();
        t.workloads.insert(
            "w".into(),
            WorkloadRecord {
                allocs_per_event: 2.0,
                events_per_sec: 1000.0,
                sim_seconds_per_wall_second: 10.5,
                events: 42,
                heap_pushes: 43,
                sim_seconds: 6.0,
            },
        );
        let golden = "{\n  \"schema\": \"edison-bench/1\",\n  \"workloads\": {\n    \"w\": {\n      \"advisory\": {\n        \"allocs_per_event\": 2,\n        \"events_per_sec\": 1000,\n        \"sim_seconds_per_wall_second\": 10.5\n      },\n      \"deterministic\": {\n        \"events\": 42,\n        \"heap_pushes\": 43,\n        \"sim_seconds\": 6\n      }\n    }\n  }\n}\n";
        assert_eq!(t.to_json(), golden);
    }

    #[test]
    fn rejects_unsorted_and_malformed() {
        let good = sample().to_json();
        let swapped = good.replace("alpha", "zeta");
        assert!(Trajectory::parse(&swapped).is_err(), "unsorted keys rejected");
        assert!(Trajectory::parse("{}").is_err());
        assert!(Trajectory::parse(&good.replace("edison-bench/1", "edison-bench/2")).is_err());
        assert!(Trajectory::parse(&format!("{good}x")).is_err(), "trailing content rejected");
    }
}
