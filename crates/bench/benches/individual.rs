//! Regenerates the Section-4 artefacts (Tables 2, 3, 5; Figures 2–3; the
//! DMIPS / memory-bandwidth / iperf text numbers) and benches each
//! generator. The regenerated tables are printed once before timing.

use criterion::{criterion_group, criterion_main, Criterion};
use edison_core::experiments::individual;
use std::hint::black_box;

fn print_once() {
    for report in [
        individual::table1(),
        individual::table2(),
        individual::table3(),
        individual::table4(),
        individual::sec41_dmips(),
        individual::fig02_03(),
        individual::sec42_membw(),
        individual::table5(),
        individual::sec44_net(),
        individual::table6(),
        individual::table9(),
    ] {
        println!("{report}");
    }
}

fn bench_individual(c: &mut Criterion) {
    print_once();
    c.bench_function("table2/replacement_ratios", |b| b.iter(|| black_box(individual::table2())));
    c.bench_function("table3/power_endpoints", |b| b.iter(|| black_box(individual::table3())));
    c.bench_function("table5/storage", |b| b.iter(|| black_box(individual::table5())));
    c.bench_function("fig02_03/sysbench_cpu", |b| b.iter(|| black_box(individual::fig02_03())));
    c.bench_function("sec41/dhrystone", |b| b.iter(|| black_box(individual::sec41_dmips())));
    c.bench_function("sec42/membw", |b| b.iter(|| black_box(individual::sec42_membw())));
    c.bench_function("sec44/iperf_ping", |b| b.iter(|| black_box(individual::sec44_net())));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_individual
}
criterion_main!(benches);
