//! Regenerates Table 10 and benches the Equation-(1) evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use edison_core::experiments::tco_exp;
use std::hint::black_box;

fn bench_tco(c: &mut Criterion) {
    println!("{}", tco_exp::table10());
    c.bench_function("table10/equation1", |b| b.iter(|| black_box(edison_tco::table10())));
}

criterion_group!(benches, bench_tco);
criterion_main!(benches);
