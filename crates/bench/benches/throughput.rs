//! Raw engine throughput for the tracked trajectory workloads, plus the
//! profiler-overhead pair.
//!
//! Prints events/sec and sim-seconds per wall-second for each tracked
//! workload (the numbers `cargo bench-gate -- update` commits as the
//! advisory section of `BENCH_0010.json`), then benches a web point with
//! the profiler disabled vs enabled — the two must be indistinguishable,
//! since the unprofiled loop monomorphizes with `NoopProfiler`.

use criterion::{criterion_group, criterion_main, Criterion};
use edison_bench::{run_tracked, TRACKED};
use edison_web::httperf::{self, RunOpts};
use edison_web::{ClusterScale, Platform, WebScenario, WorkloadMix};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// One-shot events/sec report per tracked workload.
fn print_rates() {
    for name in TRACKED {
        let t0 = Instant::now();
        let profile = run_tracked(name).expect("tracked workload runs");
        let wall = t0.elapsed().as_secs_f64().max(1e-9);
        println!(
            "throughput {name:<20} {:>12.0} events/s  {:>8.1} sim-s/wall-s  ({} events, {:.1} sim-s)",
            profile.events() as f64 / wall,
            profile.sim_seconds() / wall,
            profile.events(),
            profile.sim_seconds(),
        );
    }
}

fn bench_throughput(c: &mut Criterion) {
    print_rates();
    let mut group = c.benchmark_group("throughput");
    group.sample_size(10);
    for name in TRACKED {
        group.bench_function(name, |b| b.iter(|| black_box(run_tracked(name).expect("runs"))));
    }
    group.finish();
}

/// The observer-equivalence cost claim: a plain run vs the same run
/// through an enabled profiling sink. Identical metrics, and the
/// disabled-profiler path must show no measurable overhead at all.
fn bench_profiler_overhead(c: &mut Criterion) {
    let scenario = WebScenario::table6(Platform::Edison, ClusterScale::Eighth).expect("table 6");
    let opts = RunOpts { seed: 7, warmup_s: 1, measure_s: 3, ..RunOpts::default() };
    let mut group = c.benchmark_group("profiler");
    group.sample_size(10);
    group.bench_function("web_point_plain", |b| {
        b.iter(|| {
            black_box(httperf::run_point(&scenario, WorkloadMix::lightest(), 64.0, opts.clone()))
        })
    });
    group.bench_function("web_point_profiled", |b| {
        b.iter(|| {
            black_box(httperf::run_point_traced(
                &scenario,
                WorkloadMix::lightest(),
                64.0,
                opts.clone(),
                edison_simtel::Telemetry::profiled(),
            ))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(Duration::from_secs(2));
    targets = bench_throughput, bench_profiler_overhead
}
criterion_main!(benches);
