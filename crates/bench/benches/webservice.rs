//! Regenerates the web-service artefacts (Figures 4–11, Table 7) at a
//! reduced measurement window and benches representative figure points.
//!
//! Full paper-scale regeneration: `cargo run --release -p edison-core
//! --bin repro -- --full fig04_07 fig05_08 fig06_09 fig10_11 table7`.

use criterion::{criterion_group, criterion_main, Criterion};
use edison_core::experiments::webservice;
use edison_core::registry::RunBudget;
use edison_web::httperf::{self, RunOpts};
use edison_web::{ClusterScale, Platform, WebScenario, WorkloadMix};
use std::hint::black_box;

fn print_once() {
    let budget = RunBudget::quick();
    for report in [
        webservice::fig04_07(&budget),
        webservice::fig06_09(&budget),
        webservice::fig10_11(&budget),
        webservice::table7(&budget),
    ] {
        println!("{report}");
    }
}

fn bench_web(c: &mut Criterion) {
    print_once();
    let opts = RunOpts { seed: 5, warmup_s: 1, measure_s: 3, ..RunOpts::default() };
    let eighth = WebScenario::table6(Platform::Edison, ClusterScale::Eighth).unwrap();
    c.bench_function("fig04/point_eighth_scale_conc64", |b| {
        b.iter(|| black_box(httperf::run_point(&eighth, WorkloadMix::lightest(), 64.0, opts.clone())))
    });
    let dell_half = WebScenario::table6(Platform::Dell, ClusterScale::Half).unwrap();
    c.bench_function("fig06/point_dell_half_img20_conc128", |b| {
        b.iter(|| black_box(httperf::run_point(&dell_half, WorkloadMix::img20(), 128.0, opts.clone())))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_web
}
criterion_main!(benches);
