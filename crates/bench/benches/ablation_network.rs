//! Ablation: exact max-min fair solver vs the snapshot-rate gauge
//! (DESIGN.md "Fluid-flow resources" / "Connection-resource model").
//!
//! Measures (a) the cost gap per flow-arrival under growing concurrency —
//! the reason the web stack uses the gauge — and (b) prints a one-shot
//! accuracy comparison of aggregate transfer times so the approximation
//! error is visible alongside the speedup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use edison_net::{LinkGauge, Network};
use edison_simcore::time::SimTime;
use std::hint::black_box;

/// Drive `n` staggered equal flows through one shared link with the exact
/// solver; returns the last completion time.
fn exact_last_completion(n: u64) -> f64 {
    let mut net = Network::new();
    let link = net.add_link_bytes(1e6);
    let mut now = SimTime::ZERO;
    for f in 0..n {
        net.start_flow(now, f, 1e5, vec![link], f64::INFINITY);
        now = SimTime::from_secs_f64(0.01 * (f + 1) as f64);
        net.take_finished(now);
    }
    let mut last = now;
    while let Some((_, at)) = net.next_completion(last) {
        last = at;
        net.take_finished(last);
    }
    last.as_secs_f64()
}

/// Same workload through the snapshot gauge.
fn gauge_last_completion(n: u64) -> f64 {
    let mut g = LinkGauge::new();
    let link = g.add_link_bps(8e6, 1.0); // 1e6 bytes/s
    let path = [link];
    let mut finishes: Vec<f64> = Vec::new();
    for f in 0..n {
        let t0 = 0.01 * f as f64;
        // release any finished claims first (approximation bookkeeping)
        finishes.retain(|&done| {
            if done <= t0 {
                g.end(&path);
                false
            } else {
                true
            }
        });
        let dur = g.begin_transfer(&path, 1e5);
        finishes.push(t0 + dur.as_secs_f64());
    }
    finishes.iter().copied().fold(0.0, f64::max)
}

fn bench_ablation(c: &mut Criterion) {
    // one-shot accuracy readout
    for n in [10u64, 50, 100] {
        let exact = exact_last_completion(n);
        let approx = gauge_last_completion(n);
        println!(
            "ablation_network: n={n}: exact makespan {exact:.3}s, snapshot {approx:.3}s, error {:+.1}%",
            (approx / exact - 1.0) * 100.0
        );
    }
    let mut group = c.benchmark_group("ablation_network");
    for n in [10u64, 100, 400] {
        group.bench_with_input(BenchmarkId::new("exact_maxmin", n), &n, |b, &n| {
            b.iter(|| black_box(exact_last_completion(n)))
        });
        group.bench_with_input(BenchmarkId::new("snapshot_gauge", n), &n, |b, &n| {
            b.iter(|| black_box(gauge_last_completion(n)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_ablation
}
criterion_main!(benches);
