//! Kernel microbenchmarks: the event loop, the fluid resource and the
//! max-min solver — the hot paths every experiment runs on.

use criterion::{criterion_group, criterion_main, Criterion};
use edison_net::Network;
use edison_simcore::fluid::FluidResource;
use edison_simcore::time::{SimDuration, SimTime};
use edison_simcore::{Ctx, Model, Simulation};
use std::hint::black_box;

struct Chain {
    left: u64,
}

impl Model for Chain {
    type Event = ();
    fn handle(&mut self, _now: SimTime, _ev: (), ctx: &mut Ctx<()>) {
        if self.left > 0 {
            self.left -= 1;
            ctx.schedule_in(SimDuration::from_micros(1), ());
        }
    }
}

fn bench_event_loop(c: &mut Criterion) {
    c.bench_function("kernel/event_chain_100k", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(Chain { left: 100_000 });
            sim.schedule_at(SimTime::ZERO, ());
            black_box(sim.run())
        })
    });
}

fn bench_fluid(c: &mut Criterion) {
    c.bench_function("kernel/fluid_churn_1k_tasks", |b| {
        b.iter(|| {
            let mut r = FluidResource::new(1000.0, 10.0);
            let mut now = SimTime::ZERO;
            for i in 0..1000u64 {
                r.add(now, i, 5.0 + (i % 17) as f64);
                now = now + SimDuration::from_micros(137);
                r.take_finished(now);
            }
            while let Some((_, at)) = r.next_completion(now) {
                now = at;
                r.take_finished(now);
            }
            black_box(r.work_done())
        })
    });
}

fn bench_maxmin(c: &mut Criterion) {
    c.bench_function("kernel/maxmin_50_flows_20_links", |b| {
        b.iter(|| {
            let mut n = Network::new();
            let links: Vec<_> = (0..20).map(|_| n.add_link_bytes(100.0)).collect();
            let t0 = SimTime::ZERO;
            for f in 0..50u64 {
                let path = vec![links[(f % 20) as usize], links[((f * 7 + 3) % 20) as usize]];
                let mut path = path;
                path.dedup();
                n.start_flow(t0, f, 1e6, path, f64::INFINITY);
            }
            black_box(n.flow_rate(0))
        })
    });
}

criterion_group!(benches, bench_event_loop, bench_fluid, bench_maxmin);
criterion_main!(benches);
