//! Ablation: exact fluid (processor-sharing) CPU model vs a quantised
//! time-stepped alternative (DESIGN.md "Fluid-flow resources").
//!
//! The fluid resource computes completion times in closed form between
//! mutations; a time-stepped model advances a fixed tick and apportions
//! rate. This bench quantifies both cost and the accuracy the tick buys.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use edison_simcore::fluid::FluidResource;
use edison_simcore::time::{SimDuration, SimTime};
use std::hint::black_box;

const CAPACITY: f64 = 1264.6; // one Edison node, MIPS
const PER_TASK: f64 = 632.3;

/// Exact fluid run: `n` staggered tasks of 500 MI; returns makespan.
fn fluid_makespan(n: u64) -> f64 {
    let mut r = FluidResource::new(CAPACITY, PER_TASK);
    let mut now = SimTime::ZERO;
    for i in 0..n {
        r.add(now, i, 500.0);
        now = now + SimDuration::from_millis(100);
        r.take_finished(now);
    }
    while let Some((_, at)) = r.next_completion(now) {
        now = at;
        r.take_finished(now);
    }
    now.as_secs_f64()
}

/// Time-stepped alternative with the given tick (seconds).
fn stepped_makespan(n: u64, tick: f64) -> f64 {
    let mut remaining: Vec<f64> = Vec::new();
    let mut arrivals: Vec<f64> = (0..n).map(|i| 0.1 * i as f64).collect();
    arrivals.reverse();
    let mut t = 0.0;
    loop {
        while arrivals.last().is_some_and(|&a| a <= t) {
            arrivals.pop();
            remaining.push(500.0);
        }
        if remaining.is_empty() && arrivals.is_empty() {
            return t;
        }
        let active = remaining.len().max(1) as f64;
        let rate = PER_TASK.min(CAPACITY / active);
        for w in remaining.iter_mut() {
            *w -= rate * tick;
        }
        remaining.retain(|&w| w > 0.0);
        t += tick;
    }
}

fn bench_ablation(c: &mut Criterion) {
    for n in [16u64, 64] {
        let exact = fluid_makespan(n);
        for tick in [0.1, 0.01, 0.001] {
            let approx = stepped_makespan(n, tick);
            println!(
                "ablation_fluid: n={n} tick={tick}: exact {exact:.3}s, stepped {approx:.3}s, error {:+.2}%",
                (approx / exact - 1.0) * 100.0
            );
        }
    }
    let mut group = c.benchmark_group("ablation_fluid");
    for n in [16u64, 64, 256] {
        group.bench_with_input(BenchmarkId::new("fluid_exact", n), &n, |b, &n| {
            b.iter(|| black_box(fluid_makespan(n)))
        });
        group.bench_with_input(BenchmarkId::new("stepped_10ms", n), &n, |b, &n| {
            b.iter(|| black_box(stepped_makespan(n, 0.01)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_ablation
}
criterion_main!(benches);
