//! Regenerates the MapReduce artefacts (Figures 12–19, Table 8) at a
//! reduced column set and benches representative job cells.
//!
//! Full paper-scale regeneration: `cargo run --release -p edison-core
//! --bin repro -- --full fig12_17 table8 sec53_speedup`.

use criterion::{criterion_group, criterion_main, Criterion};
use edison_core::experiments::mapred;
use edison_core::registry::RunBudget;
use edison_mapreduce::engine::{run_job, ClusterSetup};
use edison_mapreduce::jobs::{self, Tune};
use std::hint::black_box;

fn print_once() {
    let budget = RunBudget::quick();
    println!("{}", mapred::fig12_17(&budget));
    println!("{}", mapred::table8(&budget));
}

fn bench_mapreduce(c: &mut Criterion) {
    print_once();
    c.bench_function("table8/wordcount2_edison8", |b| {
        b.iter(|| black_box(run_job(&jobs::wordcount2(Tune::Edison), &ClusterSetup::edison(8))))
    });
    c.bench_function("table8/logcount2_dell2", |b| {
        b.iter(|| black_box(run_job(&jobs::logcount2(Tune::Dell), &ClusterSetup::dell(2))))
    });
    c.bench_function("fig14/pi_edison35", |b| {
        b.iter(|| black_box(run_job(&jobs::pi(Tune::Edison), &ClusterSetup::edison(35))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_mapreduce
}
criterion_main!(benches);
