//! # edison-tco
//!
//! The Section-6 total-cost-of-ownership model: Equation (1), the Table 9
//! constants, and the four Table 10 scenarios.
//!
//! ```text
//! C = Cs + Ce = Cs + Ts · Ceph · (U · Pp + (1 − U) · Pi)      (Eq. 1)
//! ```
//!
//! where `Cs` is equipment cost, `Ts` the server lifetime, `Ceph` the
//! electricity price, `U` the utilisation, and `Pp`/`Pi` the peak/idle
//! power. The paper evaluates two application scenarios (web service with
//! 35 Edison vs 3 Dell; big data with 35 Edison vs 2 Dell) at low and high
//! utilisation bounds.

use edison_hw::{presets, ServerSpec};
use serde::{Deserialize, Serialize};

/// Table 9 electricity price, $/kWh (US average per the paper).
pub const ELECTRICITY_PER_KWH: f64 = 0.10;
/// Table 9 server lifetime, years.
pub const LIFETIME_YEARS: f64 = 3.0;
/// Hours in the three-year lifetime.
pub const LIFETIME_HOURS: f64 = LIFETIME_YEARS * 365.0 * 24.0;
/// Table 9 high utilisation bound (Google datacenters).
pub const U_HIGH: f64 = 0.75;
/// Table 9 low utilisation bound (public-cloud measurement study).
pub const U_LOW: f64 = 0.10;

/// Inputs for one cluster's TCO under Equation (1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TcoInput {
    /// Nodes in the cluster.
    pub nodes: u32,
    /// Purchase cost per node, $.
    pub unit_cost: f64,
    /// Peak node power, W.
    pub peak_w: f64,
    /// Idle node power, W.
    pub idle_w: f64,
    /// Utilisation, [0, 1].
    pub utilization: f64,
}

impl TcoInput {
    /// Build from a hardware spec at a given size and utilisation.
    pub fn from_spec(spec: &ServerSpec, nodes: u32, utilization: f64) -> Self {
        TcoInput {
            nodes,
            unit_cost: spec.unit_cost_usd,
            peak_w: spec.power.node_busy(),
            idle_w: spec.power.node_idle(),
            utilization,
        }
    }
}

/// The Equation-(1) breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Tco {
    /// Total equipment cost, $.
    pub equipment: f64,
    /// Three-year electricity cost, $.
    pub electricity: f64,
}

impl Tco {
    /// Total cost of ownership, $.
    pub fn total(&self) -> f64 {
        self.equipment + self.electricity
    }
}

/// Evaluate Equation (1).
pub fn tco(input: &TcoInput) -> Tco {
    let u = input.utilization.clamp(0.0, 1.0);
    let mean_w = u * input.peak_w + (1.0 - u) * input.idle_w;
    let kwh = mean_w * input.nodes as f64 * LIFETIME_HOURS / 1000.0;
    Tco {
        equipment: input.nodes as f64 * input.unit_cost,
        electricity: kwh * ELECTRICITY_PER_KWH,
    }
}

/// One Table 10 row: a named scenario comparing the two clusters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table10Row {
    /// Scenario label as printed in the paper.
    pub scenario: &'static str,
    /// Dell-cluster 3-year TCO, $.
    pub dell_total: f64,
    /// Edison-cluster 3-year TCO, $.
    pub edison_total: f64,
}

impl Table10Row {
    /// Relative saving of the Edison cluster.
    pub fn saving(&self) -> f64 {
        1.0 - self.edison_total / self.dell_total
    }
}

/// Reproduce Table 10: web service (35 Edison vs 3 Dell, U ∈ {10 %, 75 %})
/// and big data (35 Edison at 100 % vs 2 Dell at 25 % / 74 %, per §6's
/// assumption that the Edison cluster runs constantly to finish the same
/// work).
pub fn table10() -> Vec<Table10Row> {
    let edison = presets::edison();
    let dell = presets::dell_r620();
    let row = |scenario, dell_n, dell_u, edison_u| {
        let d = tco(&TcoInput::from_spec(&dell, dell_n, dell_u));
        let e = tco(&TcoInput::from_spec(&edison, 35, edison_u));
        Table10Row { scenario, dell_total: d.total(), edison_total: e.total() }
    };
    vec![
        row("Web service, low utilization", 3, U_LOW, U_LOW),
        row("Web service, high utilization", 3, U_HIGH, U_HIGH),
        row("Big data, low utilization", 2, 0.25, 1.0),
        row("Big data, high utilization", 2, 0.74, 1.0),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equation_matches_hand_computation() {
        // one Dell at 75 %: mean power = 0.75·109 + 0.25·52 = 94.75 W
        let input = TcoInput {
            nodes: 1,
            unit_cost: 2500.0,
            peak_w: 109.0,
            idle_w: 52.0,
            utilization: 0.75,
        };
        let t = tco(&input);
        let expected_kwh = 94.75 * LIFETIME_HOURS / 1000.0;
        assert!((t.electricity - expected_kwh * 0.10).abs() < 1e-9);
        assert_eq!(t.equipment, 2500.0);
    }

    #[test]
    fn edison_cluster_costs_4200() {
        // §6: "the cost of the 35-node Edison cluster is $4200"
        let e = tco(&TcoInput::from_spec(&presets::edison(), 35, 0.0));
        assert_eq!(e.equipment, 4200.0);
    }

    #[test]
    fn table10_matches_paper_within_tolerance() {
        // Paper values: web (7948.7, 4329.5), (8236.8, 4346.1);
        // big data (5348.2, 4352.4), (5495.0, 4352.4).
        let rows = table10();
        let paper = [
            (7948.7, 4329.5),
            (8236.8, 4346.1),
            (5348.2, 4352.4),
            (5495.0, 4352.4),
        ];
        for (row, (pd, pe)) in rows.iter().zip(paper) {
            let dell_err = (row.dell_total - pd).abs() / pd;
            let edison_err = (row.edison_total - pe).abs() / pe;
            assert!(dell_err < 0.02, "{}: dell {} vs paper {pd}", row.scenario, row.dell_total);
            assert!(edison_err < 0.02, "{}: edison {} vs paper {pe}", row.scenario, row.edison_total);
        }
    }

    #[test]
    fn edison_saves_up_to_47_percent() {
        // §6: "can save the total cost up to 47%"
        let rows = table10();
        let max_saving = rows.iter().map(|r| r.saving()).fold(0.0, f64::max);
        assert!((max_saving - 0.47).abs() < 0.02, "max saving {max_saving}");
        // every scenario favours the Edison cluster
        assert!(rows.iter().all(|r| r.saving() > 0.0));
    }

    #[test]
    fn higher_utilization_raises_cost() {
        let lo = tco(&TcoInput::from_spec(&presets::dell_r620(), 3, 0.1));
        let hi = tco(&TcoInput::from_spec(&presets::dell_r620(), 3, 0.75));
        assert!(hi.total() > lo.total());
        assert_eq!(hi.equipment, lo.equipment);
    }
}
