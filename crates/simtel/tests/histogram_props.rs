//! Property tests for the telemetry histogram: whatever mix of values is
//! recorded — underflow, boundary hits, overflow, non-finite — the bucket
//! counts must sum to `count`, and the Prometheus cumulative export must end
//! at `count`.

use edison_simtel::{labels, Histogram, Telemetry};
use proptest::prelude::*;

const BOUNDS: &[f64] = &[0.001, 0.01, 0.1, 0.5, 1.0, 2.0, 8.0];

/// Decode a raw u64 into a value that stresses every boundary: exact bound
/// hits, underflow, overflow, and non-finite values.
fn decode(raw: u64) -> f64 {
    match raw % 16 {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3..=10 => BOUNDS[(raw % 16 - 3) as usize % BOUNDS.len()], // exact boundary hits
        _ => (raw % 2_000_001) as f64 / 100.0 - 10_000.0,        // wide range incl. underflow
    }
}

proptest! {
    #[test]
    fn bucket_counts_sum_to_count(raws in proptest::collection::vec(0u64..u64::MAX, 1..200)) {
        let mut h = Histogram::new(BOUNDS);
        for &r in &raws {
            h.record(decode(r));
        }
        prop_assert_eq!(h.buckets().iter().sum::<u64>(), h.count());
        prop_assert_eq!(h.count(), raws.len() as u64);
        // one bucket per bound plus +Inf
        prop_assert_eq!(h.buckets().len(), BOUNDS.len() + 1);
    }

    #[test]
    fn prometheus_cumulative_ends_at_count(vals in proptest::collection::vec(-10.0..10.0f64, 1..100)) {
        let mut tel = Telemetry::on();
        for v in &vals {
            tel.observe("h_seconds", labels(&[]), BOUNDS, *v);
        }
        let prom = tel.prometheus_text();
        edison_simtel::export::validate_prometheus(&prom).unwrap();
        let inf_line = prom
            .lines()
            .find(|l| l.starts_with("h_seconds_bucket{le=\"+Inf\"}"))
            .expect("+Inf bucket line");
        let count_line = prom
            .lines()
            .find(|l| l.starts_with("h_seconds_count"))
            .expect("count line");
        let inf: u64 = inf_line.rsplit(' ').next().unwrap().parse().unwrap();
        let count: u64 = count_line.rsplit(' ').next().unwrap().parse().unwrap();
        prop_assert_eq!(inf, count);
        prop_assert_eq!(count, vals.len() as u64);
    }
}
