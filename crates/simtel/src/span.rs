//! Span tracing: complete events on named (process, thread) tracks.
//!
//! A *track* is a (process, thread) name pair — e.g. `("web", "node-3")` or
//! `("mr", "edison-1")`. Tracks are interned in first-use order, which gives
//! every track a stable small id and makes the exported pid/tid assignment a
//! pure function of the event sequence (byte-identical across same-seed
//! runs).

use edison_simcore::time::SimTime;

/// One completed span on a track.
#[derive(Debug, Clone)]
pub struct Span {
    /// Index into [`Tracer::tracks`].
    pub track: usize,
    /// Perfetto category (used for filtering in the UI).
    pub cat: &'static str,
    /// Span name.
    pub name: &'static str,
    /// Start instant.
    pub start: SimTime,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Span arguments, shown in the Perfetto detail pane.
    pub args: Vec<(&'static str, String)>,
}

/// Collects spans and interns tracks.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    tracks: Vec<(String, String)>,
    spans: Vec<Span>,
}

impl Tracer {
    /// Empty tracer.
    pub fn new() -> Self {
        Tracer::default()
    }

    /// Intern the `(process, thread)` track, returning its id. Linear scan:
    /// real traces have tens of tracks, not thousands.
    pub fn track(&mut self, process: &str, thread: &str) -> usize {
        if let Some(i) = self
            .tracks
            .iter()
            .position(|(p, t)| p == process && t == thread)
        {
            return i;
        }
        self.tracks.push((process.to_string(), thread.to_string()));
        self.tracks.len() - 1
    }

    /// Record a complete span `[start, end)` on `track`. A backwards span is
    /// clamped to zero duration (and debug-asserted) rather than wrapping.
    pub fn span(
        &mut self,
        track: usize,
        cat: &'static str,
        name: &'static str,
        start: SimTime,
        end: SimTime,
        args: Vec<(&'static str, String)>,
    ) {
        debug_assert!(start <= end, "span '{name}' ends before it starts");
        self.spans.push(Span {
            track,
            cat,
            name,
            start,
            dur_ns: end.saturating_since(start).0,
            args,
        });
    }

    /// The interned `(process, thread)` track names, in first-use order.
    pub fn tracks(&self) -> &[(String, String)] {
        &self.tracks
    }

    /// All recorded spans, in recording order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Append `other`'s spans, re-interning its tracks into `self`.
    pub fn merge(&mut self, other: Tracer) {
        let remap: Vec<usize> = other
            .tracks
            .iter()
            .map(|(p, t)| self.track(p, t))
            .collect();
        for mut s in other.spans {
            s.track = remap.get(s.track).copied().unwrap_or(s.track);
            self.spans.push(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_intern_in_first_use_order() {
        let mut tr = Tracer::new();
        assert_eq!(tr.track("web", "client"), 0);
        assert_eq!(tr.track("web", "node-0"), 1);
        assert_eq!(tr.track("web", "client"), 0);
        assert_eq!(tr.tracks().len(), 2);
    }

    #[test]
    fn span_duration_is_exact_ns() {
        let mut tr = Tracer::new();
        let t = tr.track("p", "t");
        tr.span(t, "c", "x", SimTime(100), SimTime(350), vec![]);
        assert_eq!(tr.spans()[0].dur_ns, 250);
    }

    #[test]
    fn merge_remaps_tracks() {
        let mut a = Tracer::new();
        a.track("web", "client");
        let mut b = Tracer::new();
        let t = b.track("mr", "node-0");
        b.span(t, "mr", "map", SimTime::ZERO, SimTime(10), vec![]);
        a.merge(b);
        assert_eq!(a.tracks().len(), 2);
        assert_eq!(a.spans()[0].track, 1);
    }
}
