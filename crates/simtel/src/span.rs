//! Span tracing: complete events on named (process, thread) tracks.
//!
//! A *track* is a (process, thread) name pair — e.g. `("web", "node-3")` or
//! `("mr", "edison-1")`. Tracks are interned in first-use order, which gives
//! every track a stable small id and makes the exported pid/tid assignment a
//! pure function of the event sequence (byte-identical across same-seed
//! runs).
//!
//! Name strings are interned as `Arc<str>`: each distinct process or thread
//! name is allocated **once** and shared by every track that uses it, and a
//! repeat [`Tracer::track`] lookup with already-known names allocates
//! nothing. Hot paths should go one step further and cache the returned
//! track id (worlds hold a `Vec<usize>` of per-node ids), so per-event span
//! recording does no string work at all — previously every span re-built its
//! thread name with `format!` and the tracer compared `String`s linearly,
//! which was the profiler's largest self-induced distortion.

use crate::Telemetry;
use edison_simcore::time::SimTime;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// One completed span on a track.
#[derive(Debug, Clone)]
pub struct Span {
    /// Index into [`Tracer::tracks`].
    pub track: usize,
    /// Perfetto category (used for filtering in the UI).
    pub cat: &'static str,
    /// Span name.
    pub name: &'static str,
    /// Start instant.
    pub start: SimTime,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Span arguments, shown in the Perfetto detail pane.
    pub args: Vec<(&'static str, String)>,
}

/// Collects spans and interns tracks.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    /// Every distinct name, allocated exactly once.
    names: BTreeSet<Arc<str>>,
    /// `(process, thread)` → track id, for O(log n) repeat lookup.
    by_name: BTreeMap<(Arc<str>, Arc<str>), usize>,
    /// Track names in first-use order (the id space).
    tracks: Vec<(Arc<str>, Arc<str>)>,
    spans: Vec<Span>,
}

impl Tracer {
    /// Empty tracer.
    pub fn new() -> Self {
        Tracer::default()
    }

    /// Intern one name: clone the shared `Arc` if seen before, allocate once
    /// if not. (`BTreeSet<Arc<str>>` can be probed with a plain `&str`
    /// because `Arc<str>: Borrow<str>`.)
    fn intern(&mut self, name: &str) -> Arc<str> {
        if let Some(a) = self.names.get(name) {
            return Arc::clone(a);
        }
        let a: Arc<str> = Arc::from(name);
        self.names.insert(Arc::clone(&a));
        a
    }

    /// Intern the `(process, thread)` track, returning its id. Repeat calls
    /// with known names are two map probes and zero allocations.
    pub fn track(&mut self, process: &str, thread: &str) -> usize {
        if let (Some(p), Some(t)) = (self.names.get(process), self.names.get(thread)) {
            let key = (Arc::clone(p), Arc::clone(t));
            if let Some(&i) = self.by_name.get(&key) {
                return i;
            }
        }
        let p = self.intern(process);
        let t = self.intern(thread);
        let i = self.tracks.len();
        self.by_name.insert((Arc::clone(&p), Arc::clone(&t)), i);
        self.tracks.push((p, t));
        i
    }

    /// Record a complete span `[start, end)` on `track`. A backwards span is
    /// clamped to zero duration (and debug-asserted) rather than wrapping.
    pub fn span(
        &mut self,
        track: usize,
        cat: &'static str,
        name: &'static str,
        start: SimTime,
        end: SimTime,
        args: Vec<(&'static str, String)>,
    ) {
        debug_assert!(start <= end, "span '{name}' ends before it starts");
        self.spans.push(Span {
            track,
            cat,
            name,
            start,
            dur_ns: end.saturating_since(start).0,
            args,
        });
    }

    /// The interned `(process, thread)` track names, in first-use order.
    pub fn tracks(&self) -> &[(Arc<str>, Arc<str>)] {
        &self.tracks
    }

    /// Number of distinct interned name strings (diagnostic; each was
    /// allocated exactly once).
    pub fn interned_names(&self) -> usize {
        self.names.len()
    }

    /// All recorded spans, in recording order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Append `other`'s spans, re-interning its tracks into `self`.
    pub fn merge(&mut self, other: Tracer) {
        let remap: Vec<usize> = other
            .tracks
            .iter()
            .map(|(p, t)| self.track(p, t))
            .collect();
        for mut s in other.spans {
            s.track = remap.get(s.track).copied().unwrap_or(s.track);
            self.spans.push(s);
        }
    }
}

/// A span opened at a known start instant and finished later — the shape
/// async workload code wants: open before the first `.await`, carry the
/// value across suspension points, finish at the final resume. Recording
/// through an `OpenSpan` is byte-identical to calling
/// [`Telemetry::span_on`] with the same arguments at the finish point.
///
/// Deliberately plain data with no `Drop` impl: a task cancelled
/// mid-request simply drops its `OpenSpan` and nothing is recorded,
/// matching the state-machine worlds, which record no span for requests
/// that never complete.
#[derive(Debug, Clone)]
pub struct OpenSpan {
    track: usize,
    cat: &'static str,
    name: &'static str,
    start: SimTime,
}

impl OpenSpan {
    /// Open a span on a previously interned track id (see
    /// [`Telemetry::track_id`]).
    pub fn begin(track: usize, cat: &'static str, name: &'static str, start: SimTime) -> Self {
        OpenSpan { track, cat, name, start }
    }

    /// The instant this span was opened at.
    pub fn start(&self) -> SimTime {
        self.start
    }

    /// Close the span at `end` and record it into `tel`.
    pub fn finish(self, tel: &mut Telemetry, end: SimTime, args: Vec<(&'static str, String)>) {
        tel.span_on(self.track, self.cat, self.name, self.start, end, args);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_span_records_exactly_like_span_on() {
        let mut a = Telemetry::on();
        let mut b = Telemetry::on();
        let (t0, t1) = (SimTime(100), SimTime(450));
        let args = || vec![("k", "v".to_string())];
        let track_a = a.track_id("web", "web-0");
        let open = OpenSpan::begin(track_a, "request", "http_request", t0);
        assert_eq!(open.start(), t0);
        open.finish(&mut a, t1, args());
        let track_b = b.track_id("web", "web-0");
        b.span_on(track_b, "request", "http_request", t0, t1, args());
        assert_eq!(a.chrome_trace_json(), b.chrome_trace_json());
    }

    #[test]
    fn dropping_an_open_span_records_nothing() {
        let mut tel = Telemetry::on();
        let track = tel.track_id("web", "web-0");
        let open = OpenSpan::begin(track, "request", "http_request", SimTime::ZERO);
        drop(open);
        assert!(tel.tracer.spans().is_empty());
    }

    #[test]
    fn tracks_intern_in_first_use_order() {
        let mut tr = Tracer::new();
        assert_eq!(tr.track("web", "client"), 0);
        assert_eq!(tr.track("web", "node-0"), 1);
        assert_eq!(tr.track("web", "client"), 0);
        assert_eq!(tr.tracks().len(), 2);
    }

    #[test]
    fn names_are_shared_not_cloned() {
        let mut tr = Tracer::new();
        tr.track("web", "node-0");
        tr.track("web", "node-1");
        tr.track("mr", "node-0");
        // 4 distinct strings across 3 tracks (6 slots): "web", "mr",
        // "node-0", "node-1" — each allocated once and Arc-shared.
        assert_eq!(tr.interned_names(), 4);
        let tracks = tr.tracks();
        assert!(Arc::ptr_eq(&tracks[0].0, &tracks[1].0), "process name shared");
        assert!(Arc::ptr_eq(&tracks[0].1, &tracks[2].1), "thread name shared");
    }

    #[test]
    fn span_duration_is_exact_ns() {
        let mut tr = Tracer::new();
        let t = tr.track("p", "t");
        tr.span(t, "c", "x", SimTime(100), SimTime(350), vec![]);
        assert_eq!(tr.spans()[0].dur_ns, 250);
    }

    #[test]
    fn merge_remaps_tracks() {
        let mut a = Tracer::new();
        a.track("web", "client");
        let mut b = Tracer::new();
        let t = b.track("mr", "node-0");
        b.span(t, "mr", "map", SimTime::ZERO, SimTime(10), vec![]);
        a.merge(b);
        assert_eq!(a.tracks().len(), 2);
        assert_eq!(a.spans()[0].track, 1);
    }
}
