//! # edison-simtel
//!
//! Deterministic telemetry for the simulator: span tracing, a metrics
//! registry, and exporters (Chrome trace-event JSON for Perfetto,
//! Prometheus text exposition, CSV via `edison-core`).
//!
//! ## Design rules
//!
//! * **Zero overhead when disabled.** Every recording call on [`Telemetry`]
//!   early-returns on a single bool when the sink is off; worlds keep one
//!   `Telemetry` value and never branch on configuration themselves. The
//!   engine-level hooks ([`edison_simcore::Observer`]) monomorphize away
//!   entirely with `NoopObserver`.
//! * **Deterministic.** All timestamps are [`SimTime`] (never wall clock),
//!   every map is a `BTreeMap`, span/track identity is assigned in first-use
//!   order, and float formatting goes through Rust's shortest-roundtrip
//!   `{}`. Two same-seed runs therefore serialize to *byte-identical*
//!   output — enforced by golden tests in the workspace root.
//! * **Static metric names.** Metric and label *names* are `&'static str`;
//!   only label *values* are owned strings. Naming follows the Prometheus
//!   conventions: `<subsystem>_<noun>_<unit>` with `_total` for counters,
//!   e.g. `web_requests_total`, `web_request_delay_seconds`,
//!   `node_power_watts`, `sim_events_total`.
//!
//! ## Map of the crate
//!
//! * [`metrics`] — [`Registry`] of counters / gauges / histograms /
//!   timeseries keyed by `(name, labels)`.
//! * [`span`] — [`Tracer`]: complete-event spans on named (process, thread)
//!   tracks.
//! * [`observe`] — [`EventCounter`], an [`edison_simcore::Observer`] that
//!   aggregates engine-level event counts per kind.
//! * [`export`] — the serializers, plus a dependency-free JSON validity
//!   checker used by tests.

pub mod export;
pub mod metrics;
pub mod observe;
pub mod profile;
pub mod span;

pub use metrics::{labels, Histogram, Labels, Registry};
pub use observe::EventCounter;
pub use profile::record_engine_profile;
pub use span::{OpenSpan, Span, Tracer};

use edison_simcore::time::SimTime;

/// The telemetry sink handed through a simulation run.
///
/// Construct with [`Telemetry::off`] (all recording calls are no-ops, one
/// branch each) or [`Telemetry::on`]. Worlds record unconditionally; the
/// flag decides whether anything sticks.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    enabled: bool,
    /// Engine self-profiling requested (see [`Telemetry::profiled`]). Worlds
    /// that support it run the event loop through a
    /// [`edison_simcore::Profiler`] and record the resulting
    /// [`edison_simcore::EngineProfile`] as `profile_*` metrics.
    profiling: bool,
    /// Counters, gauges, histograms and timeseries.
    pub registry: Registry,
    /// Span-style traces.
    pub tracer: Tracer,
}

impl Telemetry {
    /// A disabled sink: every recording call is a cheap no-op.
    pub fn off() -> Self {
        Telemetry::default()
    }

    /// An enabled sink.
    pub fn on() -> Self {
        Telemetry { enabled: true, ..Telemetry::default() }
    }

    /// An enabled sink that also requests engine self-profiling.
    pub fn profiled() -> Self {
        Telemetry { enabled: true, profiling: true, ..Telemetry::default() }
    }

    /// Set the profiling request on an existing sink (builder-style).
    pub fn with_profiling(mut self, on: bool) -> Self {
        self.profiling = on;
        self
    }

    /// Whether recording is active. Worlds may use this to skip building
    /// expensive label values, but plain recording calls are already gated.
    pub fn is_on(&self) -> bool {
        self.enabled
    }

    /// Whether engine self-profiling was requested. Only meaningful when
    /// [`is_on`](Self::is_on); worlds check this to decide between
    /// `run_observed` and `run_profiled`.
    pub fn profiling(&self) -> bool {
        self.enabled && self.profiling
    }

    /// An empty sink with the same enablement and profiling flags as `self`.
    ///
    /// Sweeps hand one of these to each side-run and [`merge`](Self::merge)
    /// the results back, so per-run sinks inherit the parent's configuration
    /// instead of reconstructing it (which used to silently drop flags like
    /// the profiling request).
    pub fn child(&self) -> Telemetry {
        Telemetry {
            enabled: self.enabled,
            profiling: self.profiling,
            ..Telemetry::default()
        }
    }

    /// Register one-line help text for a metric (shown as `# HELP` in the
    /// Prometheus exposition).
    pub fn help(&mut self, name: &'static str, text: &'static str) {
        if self.enabled {
            self.registry.help(name, text);
        }
    }

    /// Add `delta` to the counter `name{labels}`.
    pub fn counter_add(&mut self, name: &'static str, labels: Labels, delta: u64) {
        if self.enabled {
            self.registry.counter_add(name, labels, delta);
        }
    }

    /// Increment the counter `name{labels}` by one.
    pub fn counter_inc(&mut self, name: &'static str, labels: Labels) {
        self.counter_add(name, labels, 1);
    }

    /// Set the gauge `name{labels}` to `v`.
    pub fn gauge_set(&mut self, name: &'static str, labels: Labels, v: f64) {
        if self.enabled {
            self.registry.gauge_set(name, labels, v);
        }
    }

    /// Record `v` into the histogram `name{labels}`; the histogram is
    /// created with `bounds` (strictly increasing upper bounds, `+Inf`
    /// implicit) on first use.
    pub fn observe(&mut self, name: &'static str, labels: Labels, bounds: &'static [f64], v: f64) {
        if self.enabled {
            self.registry.observe(name, labels, bounds, v);
        }
    }

    /// Append `(t, v)` to the timeseries `name{labels}`.
    pub fn series_push(&mut self, name: &'static str, labels: Labels, t: SimTime, v: f64) {
        if self.enabled {
            self.registry.series_push(name, labels, t, v);
        }
    }

    /// Record a complete span `[start, end)` on the `(process, thread)`
    /// track. `cat` is the Perfetto category; `args` become span arguments.
    #[allow(clippy::too_many_arguments)]
    pub fn span(
        &mut self,
        process: &str,
        thread: &str,
        cat: &'static str,
        name: &'static str,
        start: SimTime,
        end: SimTime,
        args: Vec<(&'static str, String)>,
    ) {
        if self.enabled {
            let track = self.tracer.track(process, thread);
            self.tracer.span(track, cat, name, start, end, args);
        }
    }

    /// Intern the `(process, thread)` track and return its id for use with
    /// [`span_on`](Self::span_on). Hot paths call this once per track (e.g.
    /// per node at world construction) and record every subsequent span by
    /// id, with no per-event string formatting or comparison. Returns 0 on a
    /// disabled sink (where [`span_on`](Self::span_on) is a no-op anyway).
    pub fn track_id(&mut self, process: &str, thread: &str) -> usize {
        if self.enabled {
            self.tracer.track(process, thread)
        } else {
            0
        }
    }

    /// Record a complete span on a previously interned track id (see
    /// [`track_id`](Self::track_id)).
    pub fn span_on(
        &mut self,
        track: usize,
        cat: &'static str,
        name: &'static str,
        start: SimTime,
        end: SimTime,
        args: Vec<(&'static str, String)>,
    ) {
        if self.enabled {
            self.tracer.span(track, cat, name, start, end, args);
        }
    }

    /// Fold `other` into `self`: counters add, gauges take `other`'s value,
    /// histograms with equal bounds merge, timeseries concatenate in time
    /// order, spans append with tracks re-interned. Deterministic given
    /// deterministic inputs and a fixed merge order.
    pub fn merge(&mut self, other: Telemetry) {
        self.enabled = self.enabled || other.enabled;
        self.profiling = self.profiling || other.profiling;
        self.registry.merge(other.registry);
        self.tracer.merge(other.tracer);
    }

    /// Serialize all spans and timeseries as a Chrome trace-event JSON
    /// array, loadable at <https://ui.perfetto.dev>.
    pub fn chrome_trace_json(&self) -> String {
        export::chrome_trace_json(self)
    }

    /// Serialize counters, gauges and histograms as Prometheus text
    /// exposition (timeseries appear as their final value).
    pub fn prometheus_text(&self) -> String {
        export::prometheus_text(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_records_nothing() {
        let mut t = Telemetry::off();
        t.counter_inc("x_total", labels(&[]));
        t.gauge_set("g", labels(&[]), 1.0);
        t.observe("h_seconds", labels(&[]), &[1.0], 0.5);
        t.series_push("s", labels(&[]), SimTime::ZERO, 1.0);
        t.span("p", "t", "c", "n", SimTime::ZERO, SimTime::from_secs(1), vec![]);
        assert!(!t.is_on());
        assert_eq!(t.registry.counters().count(), 0);
        assert_eq!(t.tracer.spans().len(), 0);
    }

    #[test]
    fn on_records_and_merges() {
        let mut a = Telemetry::on();
        a.counter_add("x_total", labels(&[("k", "1")]), 2);
        let mut b = Telemetry::on();
        b.counter_add("x_total", labels(&[("k", "1")]), 3);
        b.span("p", "t", "c", "n", SimTime::ZERO, SimTime::from_secs(1), vec![]);
        a.merge(b);
        let got: Vec<_> = a.registry.counters().collect();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].2, 5);
        assert_eq!(a.tracer.spans().len(), 1);
    }
}
