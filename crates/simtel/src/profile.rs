//! Export surface for engine self-profiles (simprof).
//!
//! [`record_engine_profile`] maps an
//! [`EngineProfile`](edison_simcore::EngineProfile) onto the ordinary
//! metric vocabulary, so profiles ride the existing exporters with no new
//! serialization code: every metric below appears in the Prometheus text
//! exposition and the long-form telemetry CSV under the `profile_` prefix,
//! and the heap-depth high-water track becomes a `"C"` counter track in the
//! Chrome trace JSON (rendered as a counter lane by Perfetto).
//!
//! Vocabulary (all deterministic — counts and sim-seconds only):
//!
//! | metric | type | labels |
//! |---|---|---|
//! | `profile_events_total` | counter | `world`, `kind` |
//! | `profile_scheduled_total` | counter | `world`, `kind` |
//! | `profile_advance_seconds` | gauge | `world`, `kind` |
//! | `profile_phase_events_total` | counter | `world`, `phase` |
//! | `profile_phase_advance_seconds` | gauge | `world`, `phase` |
//! | `profile_heap_pushes_total` | counter | `world` |
//! | `profile_heap_pops_total` | counter | `world` |
//! | `profile_heap_depth_max` | gauge | `world` |
//! | `profile_heap_depth` | series | `world` |
//! | `profile_end_seconds` | gauge | `world` |
//!
//! *Phases* roll event kinds up into a handful of coarse buckets (load
//! generation vs request path vs control traffic vs fault machinery) via a
//! world-supplied classifier, mirroring how the paper discusses workload
//! structure rather than individual event types.

use crate::{labels, Telemetry};
use edison_simcore::profile::EngineProfile;
use std::collections::BTreeMap;

/// Register `# HELP` texts for the `profile_*` vocabulary.
pub fn profile_help(tel: &mut Telemetry) {
    tel.help("profile_events_total", "events dispatched per kind (simprof)");
    tel.help("profile_scheduled_total", "follow-up events scheduled per kind (simprof)");
    tel.help("profile_advance_seconds", "sim-time advance attributed per kind (simprof)");
    tel.help("profile_phase_events_total", "events dispatched per phase (simprof)");
    tel.help("profile_phase_advance_seconds", "sim-time advance attributed per phase (simprof)");
    tel.help("profile_heap_pushes_total", "events pushed onto the heap (simprof)");
    tel.help("profile_heap_pops_total", "events popped off the heap (simprof)");
    tel.help("profile_heap_depth_max", "heap depth high-water mark (simprof)");
    tel.help("profile_heap_depth", "heap depth high-water steps over sim time (simprof)");
    tel.help("profile_end_seconds", "sim time of the last profiled event (simprof)");
}

/// Record `profile` into `tel` under the `profile_*` vocabulary, labelled
/// with `world`. `phase_of` maps each event-kind name to a coarse phase
/// bucket for the per-phase rollup.
///
/// Recording is ordinary metric traffic: deterministic given a
/// deterministic profile, byte-identical across same-seed runs, and merged
/// across worlds/runs by [`Telemetry::merge`] like any other metric.
pub fn record_engine_profile(
    tel: &mut Telemetry,
    world: &str,
    profile: &EngineProfile,
    phase_of: fn(&'static str) -> &'static str,
) {
    if !tel.is_on() {
        return;
    }
    profile_help(tel);
    let mut phases: BTreeMap<&'static str, (u64, f64)> = BTreeMap::new();
    for (kind, stats) in &profile.kinds {
        tel.counter_add(
            "profile_events_total",
            labels(&[("world", world), ("kind", kind)]),
            stats.dispatched,
        );
        tel.counter_add(
            "profile_scheduled_total",
            labels(&[("world", world), ("kind", kind)]),
            stats.scheduled,
        );
        tel.gauge_set(
            "profile_advance_seconds",
            labels(&[("world", world), ("kind", kind)]),
            stats.advance.as_secs_f64(),
        );
        let p = phases.entry(phase_of(kind)).or_insert((0, 0.0));
        p.0 += stats.dispatched;
        p.1 += stats.advance.as_secs_f64();
    }
    for (phase, (events, advance)) in phases {
        tel.counter_add(
            "profile_phase_events_total",
            labels(&[("world", world), ("phase", phase)]),
            events,
        );
        tel.gauge_set(
            "profile_phase_advance_seconds",
            labels(&[("world", world), ("phase", phase)]),
            advance,
        );
    }
    tel.counter_add("profile_heap_pushes_total", labels(&[("world", world)]), profile.heap_pushes);
    tel.counter_add("profile_heap_pops_total", labels(&[("world", world)]), profile.heap_pops);
    tel.gauge_set(
        "profile_heap_depth_max",
        labels(&[("world", world)]),
        profile.heap_depth_hwm as f64, // simlint: allow(R3) u64 HWM, exact ≤ 2^53
    );
    for &(t, depth) in &profile.hwm_track {
        tel.series_push(
            "profile_heap_depth",
            labels(&[("world", world)]),
            t,
            depth as f64, // simlint: allow(R3) u64 HWM, exact ≤ 2^53
        );
    }
    tel.gauge_set("profile_end_seconds", labels(&[("world", world)]), profile.sim_seconds());
}

#[cfg(test)]
mod tests {
    use super::*;
    use edison_simcore::profile::KindStats;
    use edison_simcore::{SimDuration, SimTime};

    fn sample_profile() -> EngineProfile {
        let mut p = EngineProfile::default();
        p.kinds.insert(
            "gen_conn",
            KindStats { dispatched: 10, scheduled: 10, advance: SimDuration::from_millis(5) },
        );
        p.kinds.insert(
            "node_cpu",
            KindStats { dispatched: 30, scheduled: 25, advance: SimDuration::from_millis(20) },
        );
        p.heap_pushes = 41;
        p.heap_pops = 40;
        p.heap_depth_hwm = 7;
        p.hwm_track = vec![(SimTime::from_millis(1), 3), (SimTime::from_millis(9), 7)];
        p.end = SimTime::from_millis(25);
        p
    }

    fn phase(kind: &'static str) -> &'static str {
        match kind {
            "gen_conn" => "load-gen",
            _ => "request-path",
        }
    }

    #[test]
    fn profile_lands_in_metric_vocabulary() {
        let mut tel = Telemetry::on();
        record_engine_profile(&mut tel, "web", &sample_profile(), phase);
        let prom = tel.prometheus_text();
        assert!(prom.contains("profile_events_total{kind=\"gen_conn\",world=\"web\"} 10"));
        assert!(prom.contains("profile_events_total{kind=\"node_cpu\",world=\"web\"} 30"));
        assert!(prom.contains("profile_phase_events_total{phase=\"load-gen\",world=\"web\"} 10"));
        assert!(prom.contains("profile_heap_pushes_total{world=\"web\"} 41"));
        assert!(prom.contains("profile_heap_depth_max{world=\"web\"} 7"));
        assert!(prom.contains("# HELP profile_events_total"));
    }

    #[test]
    fn hwm_track_becomes_counter_series() {
        let mut tel = Telemetry::on();
        record_engine_profile(&mut tel, "web", &sample_profile(), phase);
        let json = tel.chrome_trace_json();
        // series export as Perfetto "C" counter events in the metrics process
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("profile_heap_depth{world=web}"));
        crate::export::validate_json(&json).unwrap();
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let mut tel = Telemetry::off();
        record_engine_profile(&mut tel, "web", &sample_profile(), phase);
        assert_eq!(tel.registry.counters().count(), 0);
    }

    #[test]
    fn recording_is_deterministic() {
        let once = || {
            let mut tel = Telemetry::on();
            record_engine_profile(&mut tel, "web", &sample_profile(), phase);
            (tel.prometheus_text(), tel.chrome_trace_json())
        };
        assert_eq!(once(), once());
    }
}
