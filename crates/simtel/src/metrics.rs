//! The metrics registry: counters, gauges, histograms, timeseries.
//!
//! Every instrument is keyed by `(name, labels)` where `name` is a
//! `&'static str` in Prometheus naming style and `labels` is a
//! `BTreeMap<&'static str, String>` — map-ordered, so iteration (and thus
//! every exporter) is deterministic.

use edison_simcore::time::SimTime;
use std::collections::BTreeMap;

/// A label set: static label names, owned label values, deterministic order.
pub type Labels = BTreeMap<&'static str, String>;

/// Build a [`Labels`] from `(name, value)` pairs.
///
/// ```
/// let l = edison_simtel::labels(&[("node", "edison-3"), ("kind", "map")]);
/// assert_eq!(l.get("node").map(String::as_str), Some("edison-3"));
/// ```
pub fn labels(pairs: &[(&'static str, &str)]) -> Labels {
    pairs.iter().map(|&(k, v)| (k, v.to_string())).collect()
}

/// A Prometheus-style histogram: cumulative-`le` buckets over static upper
/// bounds, plus `sum` and `count`.
///
/// There is no underflow bucket — values at or below the first bound land in
/// the first bucket, values above the last bound land in the implicit `+Inf`
/// bucket — so bucket counts always sum to `count` exactly.
#[derive(Debug, Clone)]
pub struct Histogram {
    bounds: &'static [f64],
    /// One slot per bound plus the trailing `+Inf` slot (non-cumulative).
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
}

impl Histogram {
    /// New empty histogram over `bounds` (strictly increasing upper bounds).
    pub fn new(bounds: &'static [f64]) -> Self {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram { bounds, buckets: vec![0; bounds.len() + 1], count: 0, sum: 0.0 }
    }

    /// Record one value (`le` semantics: the bucket of bound `b` holds
    /// values `v <= b`). NaN lands in the `+Inf` bucket.
    pub fn record(&mut self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += v;
    }

    /// The configured upper bounds (excluding `+Inf`).
    pub fn bounds(&self) -> &'static [f64] {
        self.bounds
    }

    /// Per-bucket (non-cumulative) counts; last entry is the `+Inf` bucket.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Fold `other` into `self`. Merging histograms with different bounds is
    /// a caller bug; the mismatched histogram is dropped (debug-asserted).
    pub fn merge(&mut self, other: &Histogram) {
        debug_assert!(
            self.bounds == other.bounds,
            "merging histograms with different bounds"
        );
        if self.bounds == other.bounds {
            for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
                *a += b;
            }
            self.count += other.count;
            self.sum += other.sum;
        }
    }
}

/// All metrics of one run, keyed by `(name, labels)`.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    help: BTreeMap<&'static str, &'static str>,
    counters: BTreeMap<(&'static str, Labels), u64>,
    gauges: BTreeMap<(&'static str, Labels), f64>,
    histograms: BTreeMap<(&'static str, Labels), Histogram>,
    series: BTreeMap<(&'static str, Labels), Vec<(SimTime, f64)>>,
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Register `# HELP` text for `name` (first registration wins).
    pub fn help(&mut self, name: &'static str, text: &'static str) {
        self.help.entry(name).or_insert(text);
    }

    /// Help text for `name`, if registered.
    pub fn help_for(&self, name: &str) -> Option<&'static str> {
        self.help.get(name).copied()
    }

    /// Add `delta` to counter `name{labels}` (created at 0).
    pub fn counter_add(&mut self, name: &'static str, labels: Labels, delta: u64) {
        *self.counters.entry((name, labels)).or_insert(0) += delta;
    }

    /// Set gauge `name{labels}` to `v` (last write wins).
    pub fn gauge_set(&mut self, name: &'static str, labels: Labels, v: f64) {
        self.gauges.insert((name, labels), v);
    }

    /// Record `v` into histogram `name{labels}`, created over `bounds` on
    /// first use.
    pub fn observe(&mut self, name: &'static str, labels: Labels, bounds: &'static [f64], v: f64) {
        self.histograms
            .entry((name, labels))
            .or_insert_with(|| Histogram::new(bounds))
            .record(v);
    }

    /// Append `(t, v)` to timeseries `name{labels}`.
    pub fn series_push(&mut self, name: &'static str, labels: Labels, t: SimTime, v: f64) {
        self.series.entry((name, labels)).or_default().push((t, v));
    }

    /// Iterate counters as `(name, labels, value)` in deterministic order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, &Labels, u64)> {
        self.counters.iter().map(|((n, l), &v)| (*n, l, v))
    }

    /// Iterate gauges as `(name, labels, value)` in deterministic order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, &Labels, f64)> {
        self.gauges.iter().map(|((n, l), &v)| (*n, l, v))
    }

    /// Iterate histograms as `(name, labels, histogram)` in deterministic order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Labels, &Histogram)> {
        self.histograms.iter().map(|((n, l), h)| (*n, l, h))
    }

    /// Iterate timeseries as `(name, labels, points)` in deterministic order.
    pub fn series(&self) -> impl Iterator<Item = (&'static str, &Labels, &[(SimTime, f64)])> {
        self.series.iter().map(|((n, l), p)| (*n, l, p.as_slice()))
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.series.is_empty()
    }

    /// Fold `other` into `self` (see [`crate::Telemetry::merge`] for the
    /// per-instrument semantics).
    pub fn merge(&mut self, other: Registry) {
        for (name, text) in other.help {
            self.help.entry(name).or_insert(text);
        }
        for ((name, labels), v) in other.counters {
            *self.counters.entry((name, labels)).or_insert(0) += v;
        }
        for (key, v) in other.gauges {
            self.gauges.insert(key, v);
        }
        for (key, h) in other.histograms {
            match self.histograms.get_mut(&key) {
                Some(mine) => mine.merge(&h),
                None => {
                    self.histograms.insert(key, h);
                }
            }
        }
        for (key, mut pts) in other.series {
            match self.series.get_mut(&key) {
                Some(mine) => {
                    mine.append(&mut pts);
                    mine.sort_by_key(|&(t, _)| t); // stable: same-time points keep order
                }
                None => {
                    self.series.insert(key, pts);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BOUNDS: &[f64] = &[0.1, 0.5, 1.0];

    #[test]
    fn histogram_le_semantics() {
        let mut h = Histogram::new(BOUNDS);
        h.record(0.1); // le=0.1 (boundary is inclusive)
        h.record(0.3);
        h.record(2.0); // +Inf
        h.record(-5.0); // below first bound → first bucket
        assert_eq!(h.buckets(), &[2, 1, 0, 1]);
        assert_eq!(h.count(), 4);
        assert!((h.sum() - (0.1 + 0.3 + 2.0 - 5.0)).abs() < 1e-12);
    }

    #[test]
    fn histogram_nan_goes_to_inf_bucket() {
        let mut h = Histogram::new(BOUNDS);
        h.record(f64::NAN);
        assert_eq!(h.buckets(), &[0, 0, 0, 1]);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn histogram_merge_adds() {
        let mut a = Histogram::new(BOUNDS);
        a.record(0.05);
        let mut b = Histogram::new(BOUNDS);
        b.record(0.7);
        a.merge(&b);
        assert_eq!(a.buckets(), &[1, 0, 1, 0]);
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn registry_round_trip() {
        let mut r = Registry::new();
        r.counter_add("a_total", labels(&[("k", "x")]), 1);
        r.counter_add("a_total", labels(&[("k", "x")]), 2);
        r.gauge_set("g", labels(&[]), 4.0);
        r.observe("h_seconds", labels(&[]), BOUNDS, 0.2);
        r.series_push("s_watts", labels(&[("node", "0")]), SimTime::ZERO, 3.0);
        assert_eq!(r.counters().next(), Some(("a_total", &labels(&[("k", "x")]), 3)));
        assert_eq!(r.gauges().next().map(|(_, _, v)| v), Some(4.0));
        assert_eq!(r.histograms().next().map(|(_, _, h)| h.count()), Some(1));
        assert_eq!(r.series().next().map(|(_, _, p)| p.len()), Some(1));
        assert!(!r.is_empty());
    }

    #[test]
    fn merge_series_sorts_by_time() {
        let mut a = Registry::new();
        a.series_push("s", labels(&[]), SimTime::from_secs(2), 1.0);
        let mut b = Registry::new();
        b.series_push("s", labels(&[]), SimTime::from_secs(1), 2.0);
        a.merge(b);
        let pts: Vec<_> = a.series().next().map(|(_, _, p)| p.to_vec()).unwrap_or_default();
        assert_eq!(pts, vec![(SimTime::from_secs(1), 2.0), (SimTime::from_secs(2), 1.0)]);
    }
}
