//! Engine-level observation: an [`Observer`] that aggregates event counts.
//!
//! [`EventCounter`] plugs into `Simulation::run_observed` and tallies
//! delivered events per kind (via a caller-supplied classifier), the peak
//! heap depth, total follow-up scheduling, and the final sim time — then
//! dumps the lot into a [`Telemetry`] registry under the `sim_*` metric
//! names.

use crate::{labels, Telemetry};
use edison_simcore::time::SimTime;
use edison_simcore::Observer;
use std::collections::BTreeMap;

/// Counts events per kind while a simulation runs.
///
/// `F` classifies each event into a static kind string (typically an
/// `Ev::kind()` method on the world's event enum). The counter never
/// influences scheduling; it only reads.
#[derive(Debug, Clone)]
pub struct EventCounter<F> {
    classify: F,
    counts: BTreeMap<&'static str, u64>,
    max_heap_depth: usize,
    scheduled: u64,
    end: SimTime,
    watchdog: Option<(SimTime, u64)>,
}

impl<F> EventCounter<F> {
    /// New counter using `classify` to name event kinds.
    pub fn new(classify: F) -> Self {
        EventCounter {
            classify,
            counts: BTreeMap::new(),
            max_heap_depth: 0,
            scheduled: 0,
            end: SimTime::ZERO,
            watchdog: None,
        }
    }

    /// Per-kind delivered-event counts.
    pub fn counts(&self) -> &BTreeMap<&'static str, u64> {
        &self.counts
    }

    /// Total delivered events across all kinds.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Largest observed heap depth (events still queued at delivery time).
    pub fn max_heap_depth(&self) -> usize {
        self.max_heap_depth
    }

    /// `(time, processed)` if the max-events watchdog halted the run.
    pub fn watchdog(&self) -> Option<(SimTime, u64)> {
        self.watchdog
    }

    /// Dump the aggregates into `tel` under the `sim_*` metric names,
    /// labelled `world=<world>`.
    pub fn record_into(&self, tel: &mut Telemetry, world: &str) {
        if !tel.is_on() {
            return;
        }
        tel.help("sim_events_total", "events delivered by the engine, by kind");
        tel.help("sim_events_scheduled_total", "follow-up events scheduled by handlers");
        tel.help("sim_heap_depth_max", "peak event-heap depth during the run");
        tel.help("sim_end_seconds", "sim time when the run finished");
        tel.help("sim_watchdog_trips_total", "runs halted by the max-events watchdog");
        for (&kind, &n) in &self.counts {
            tel.counter_add("sim_events_total", labels(&[("world", world), ("kind", kind)]), n);
        }
        tel.counter_add("sim_events_scheduled_total", labels(&[("world", world)]), self.scheduled);
        tel.gauge_set(
            "sim_heap_depth_max",
            labels(&[("world", world)]),
            self.max_heap_depth as f64,
        );
        tel.gauge_set("sim_end_seconds", labels(&[("world", world)]), self.end.as_secs_f64());
        if self.watchdog.is_some() {
            tel.counter_inc("sim_watchdog_trips_total", labels(&[("world", world)]));
        }
    }
}

impl<E, F: FnMut(&E) -> &'static str> Observer<E> for EventCounter<F> {
    fn pre_event(&mut self, _now: SimTime, event: &E, heap_depth: usize) {
        *self.counts.entry((self.classify)(event)).or_insert(0) += 1;
        self.max_heap_depth = self.max_heap_depth.max(heap_depth);
    }

    fn post_event(&mut self, now: SimTime, newly_scheduled: usize, _processed: u64) {
        self.scheduled += u64::try_from(newly_scheduled).unwrap_or(u64::MAX);
        self.end = now;
    }

    fn on_watchdog(&mut self, now: SimTime, processed: u64) {
        self.watchdog = Some((now, processed));
        self.end = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edison_simcore::time::SimDuration;
    use edison_simcore::{Ctx, Model, Simulation};

    struct PingPong {
        left: u32,
    }
    #[derive(Clone, Copy)]
    enum Ev {
        Ping,
        Pong,
    }
    impl Ev {
        fn kind(&self) -> &'static str {
            match self {
                Ev::Ping => "ping",
                Ev::Pong => "pong",
            }
        }
    }
    impl Model for PingPong {
        type Event = Ev;
        fn handle(&mut self, _now: SimTime, ev: Ev, ctx: &mut Ctx<Ev>) {
            if self.left == 0 {
                return;
            }
            self.left -= 1;
            let next = match ev {
                Ev::Ping => Ev::Pong,
                Ev::Pong => Ev::Ping,
            };
            ctx.schedule_in(SimDuration::from_millis(1), next);
        }
    }

    #[test]
    fn counts_by_kind_and_records_metrics() {
        let mut sim = Simulation::new(PingPong { left: 5 });
        sim.schedule_at(SimTime::ZERO, Ev::Ping);
        let mut obs = EventCounter::new(Ev::kind);
        sim.run_observed(&mut obs);
        assert_eq!(obs.counts().get("ping"), Some(&3));
        assert_eq!(obs.counts().get("pong"), Some(&3));
        assert_eq!(obs.total(), 6);
        assert_eq!(obs.end, SimTime::from_millis(5));

        let mut tel = Telemetry::on();
        obs.record_into(&mut tel, "pingpong");
        let counters: Vec<_> = tel.registry.counters().collect();
        assert!(counters
            .iter()
            .any(|&(n, l, v)| n == "sim_events_total"
                && l.get("kind").map(String::as_str) == Some("ping")
                && v == 3));
    }

    #[test]
    fn watchdog_is_surfaced() {
        let mut sim = Simulation::new(PingPong { left: u32::MAX });
        sim.set_max_events(Some(10));
        sim.schedule_at(SimTime::ZERO, Ev::Ping);
        let mut obs = EventCounter::new(Ev::kind);
        sim.run_observed(&mut obs);
        assert_eq!(obs.watchdog(), Some((SimTime::from_millis(9), 10)));
        let mut tel = Telemetry::on();
        obs.record_into(&mut tel, "pingpong");
        assert!(tel
            .registry
            .counters()
            .any(|(n, _, v)| n == "sim_watchdog_trips_total" && v == 1));
    }
}
