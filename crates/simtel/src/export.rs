//! Serializers: Chrome trace-event JSON (Perfetto), Prometheus text
//! exposition — plus a dependency-free JSON/Prometheus validity checker used
//! by the golden and smoke tests.
//!
//! Everything here is byte-deterministic: timestamps are formatted from
//! integer nanoseconds (`ns/1000.ns%1000` microseconds, the trace-event
//! unit), floats go through Rust's shortest-roundtrip `{}`, and all
//! iteration is over `BTreeMap`s or first-use-ordered vectors.

use crate::{Labels, Telemetry};

/// Format a nanosecond count as fractional microseconds (the Chrome
/// trace-event timestamp unit) using pure integer math: `1_234_567 ns` →
/// `"1234.567"`.
pub fn fmt_micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Format an `f64` as a JSON number; non-finite values (which only arise
/// from upstream bugs) degrade to `null` rather than emitting invalid JSON.
pub fn fmt_json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Format an `f64` for Prometheus exposition (`+Inf`/`-Inf`/`NaN` spelled
/// the Prometheus way).
pub fn fmt_prom_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else if v.is_nan() {
        "NaN".to_string()
    } else if v > 0.0 {
        "+Inf".to_string()
    } else {
        "-Inf".to_string()
    }
}

/// Escape a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => out.push_str(&format!("\\u{:04x}", u32::from(c))),
            c => out.push(c),
        }
    }
    out
}

fn json_args(args: &[(&'static str, String)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)));
    }
    out.push('}');
    out
}

/// `name` or `name{k=v,...}` — the display name used for counter tracks.
fn series_display_name(name: &str, labels: &Labels) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut out = format!("{name}{{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{k}={v}"));
    }
    out.push('}');
    out
}

/// Serialize spans and timeseries as a Chrome trace-event JSON array.
///
/// Layout: one Perfetto *process* per distinct process name (pid assigned in
/// first-use order, 1-based), one *thread* per track (tid 1-based within its
/// process); all timeseries live in a synthetic final process named
/// `metrics` as `"C"` (counter) events. Load the file at
/// <https://ui.perfetto.dev>.
pub fn chrome_trace_json(tel: &Telemetry) -> String {
    let tracks = tel.tracer.tracks();
    // Assign pids/tids in first-use order.
    let mut procs: Vec<&str> = Vec::new();
    let mut thread_counts: Vec<usize> = Vec::new();
    let mut track_ids: Vec<(usize, usize)> = Vec::with_capacity(tracks.len());
    for (p, _) in tracks {
        let pi = match procs.iter().position(|q| *q == p.as_ref()) {
            Some(i) => i,
            None => {
                procs.push(p.as_ref());
                thread_counts.push(0);
                procs.len() - 1
            }
        };
        thread_counts[pi] += 1;
        track_ids.push((pi + 1, thread_counts[pi]));
    }
    let metrics_pid = procs.len() + 1;
    let have_series = tel.registry.series().next().is_some();

    let mut lines: Vec<String> = Vec::new();
    for (i, p) in procs.iter().enumerate() {
        lines.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\"args\":{{\"name\":\"{}\"}}}}",
            i + 1,
            json_escape(p)
        ));
    }
    if have_series {
        lines.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{metrics_pid},\"tid\":0,\"args\":{{\"name\":\"metrics\"}}}}"
        ));
    }
    for (ti, (_, thread)) in tracks.iter().enumerate() {
        let (pid, tid) = track_ids[ti];
        lines.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":\"{}\"}}}}",
            json_escape(thread)
        ));
    }
    for s in tel.tracer.spans() {
        let (pid, tid) = track_ids.get(s.track).copied().unwrap_or((0, 0));
        lines.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{pid},\"tid\":{tid},\"args\":{}}}",
            json_escape(s.name),
            json_escape(s.cat),
            fmt_micros(s.start.0),
            fmt_micros(s.dur_ns),
            json_args(&s.args)
        ));
    }
    for (name, labels, points) in tel.registry.series() {
        let display = json_escape(&series_display_name(name, labels));
        for &(t, v) in points {
            lines.push(format!(
                "{{\"name\":\"{display}\",\"ph\":\"C\",\"ts\":{},\"pid\":{metrics_pid},\"tid\":0,\"args\":{{\"value\":{}}}}}",
                fmt_micros(t.0),
                fmt_json_num(v)
            ));
        }
    }
    let mut out = String::from("[\n");
    out.push_str(&lines.join(",\n"));
    out.push_str("\n]\n");
    out
}

fn prom_escape(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// `{k="v",...}` or the empty string; `extra` appends one more pair (used
/// for histogram `le`).
fn prom_labels(labels: &Labels, extra: Option<(&str, &str)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", prom_escape(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", prom_escape(v)));
    }
    format!("{{{}}}", parts.join(","))
}

/// Serialize counters, gauges, histograms (cumulative `le` buckets +
/// `_sum`/`_count`) and timeseries (as their final value) in Prometheus
/// text exposition format.
pub fn prometheus_text(tel: &Telemetry) -> String {
    let mut out = String::new();
    let mut headed: Vec<&str> = Vec::new();
    let head = |out: &mut String, headed: &mut Vec<&str>, name: &'static str, ty: &str| {
        if !headed.contains(&name) {
            headed.push(name);
            if let Some(text) = tel.registry.help_for(name) {
                out.push_str(&format!("# HELP {name} {text}\n"));
            }
            out.push_str(&format!("# TYPE {name} {ty}\n"));
        }
    };
    for (name, labels, v) in tel.registry.counters() {
        head(&mut out, &mut headed, name, "counter");
        out.push_str(&format!("{name}{} {v}\n", prom_labels(labels, None)));
    }
    for (name, labels, v) in tel.registry.gauges() {
        head(&mut out, &mut headed, name, "gauge");
        out.push_str(&format!("{name}{} {}\n", prom_labels(labels, None), fmt_prom_num(v)));
    }
    for (name, labels, h) in tel.registry.histograms() {
        head(&mut out, &mut headed, name, "histogram");
        let mut cum = 0u64;
        for (i, &n) in h.buckets().iter().enumerate() {
            cum += n;
            let le = match h.bounds().get(i) {
                Some(&b) => fmt_prom_num(b),
                None => "+Inf".to_string(),
            };
            out.push_str(&format!(
                "{name}_bucket{} {cum}\n",
                prom_labels(labels, Some(("le", &le)))
            ));
        }
        out.push_str(&format!(
            "{name}_sum{} {}\n",
            prom_labels(labels, None),
            fmt_prom_num(h.sum())
        ));
        out.push_str(&format!("{name}_count{} {}\n", prom_labels(labels, None), h.count()));
    }
    for (name, labels, points) in tel.registry.series() {
        head(&mut out, &mut headed, name, "gauge");
        let last = points.last().map(|&(_, v)| v).unwrap_or(0.0);
        out.push_str(&format!(
            "{name}{} {}\n",
            prom_labels(labels, None),
            fmt_prom_num(last)
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// Validity checkers (no external parser crates are available offline; the
// golden/smoke tests need *some* independent check that exporter output is
// well-formed).
// ---------------------------------------------------------------------------

struct JsonParser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> JsonParser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.i)
    }
    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }
    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }
    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", char::from(c))))
        }
    }
    fn value(&mut self) -> Result<(), String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }
    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }
    fn object(&mut self) -> Result<(), String> {
        self.eat(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
    fn array(&mut self) -> Result<(), String> {
        self.eat(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }
    fn string(&mut self) -> Result<(), String> {
        self.eat(b'"')?;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.i += 1;
                        }
                        Some(b'u') => {
                            self.i += 1;
                            for _ in 0..4 {
                                if !self.peek().is_some_and(|c| c.is_ascii_hexdigit()) {
                                    return Err(self.err("bad \\u escape"));
                                }
                                self.i += 1;
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control char in string")),
                Some(_) => self.i += 1,
            }
        }
    }
    fn number(&mut self) -> Result<(), String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.i += 1;
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        if self.i == start || (self.i == start + 1 && self.b[start] == b'-') {
            Err(self.err("bad number"))
        } else {
            Ok(())
        }
    }
}

/// Check that `s` is one well-formed JSON document. Returns a message with
/// a byte offset on the first error.
pub fn validate_json(s: &str) -> Result<(), String> {
    let mut p = JsonParser { b: s.as_bytes(), i: 0 };
    p.value()?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(p.err("trailing garbage after JSON document"));
    }
    Ok(())
}

/// Check that `s` looks like valid Prometheus text exposition: every
/// non-comment, non-blank line is `name[{labels}] <number>` with balanced
/// braces and a parseable value.
pub fn validate_prometheus(s: &str) -> Result<(), String> {
    for (i, line) in s.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((metric, value)) = line.rsplit_once(' ') else {
            return Err(format!("line {}: no value separator", i + 1));
        };
        let name_end = metric.find('{').unwrap_or(metric.len());
        let name = &metric[..name_end];
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
            || name.chars().next().is_some_and(|c| c.is_ascii_digit())
        {
            return Err(format!("line {}: bad metric name '{name}'", i + 1));
        }
        if metric.matches('{').count() != metric.matches('}').count() {
            return Err(format!("line {}: unbalanced braces", i + 1));
        }
        let ok = value.parse::<f64>().is_ok()
            || matches!(value, "+Inf" | "-Inf" | "NaN");
        if !ok {
            return Err(format!("line {}: bad value '{value}'", i + 1));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels;
    use edison_simcore::time::SimTime;

    #[test]
    fn micros_formatting_zero_pads() {
        assert_eq!(fmt_micros(0), "0.000");
        assert_eq!(fmt_micros(1_234_567), "1234.567");
        assert_eq!(fmt_micros(1_000), "1.000");
        assert_eq!(fmt_micros(999), "0.999");
    }

    fn sample_tel() -> Telemetry {
        let mut t = Telemetry::on();
        t.help("web_requests_total", "completed requests");
        t.counter_add("web_requests_total", labels(&[("outcome", "ok")]), 7);
        t.gauge_set("sim_heap_depth_max", labels(&[("world", "web")]), 42.0);
        t.observe("web_request_delay_seconds", labels(&[]), &[0.1, 1.0], 0.25);
        t.observe("web_request_delay_seconds", labels(&[]), &[0.1, 1.0], 5.0);
        t.series_push("node_power_watts", labels(&[("node", "edison-0")]), SimTime::ZERO, 3.2);
        t.series_push(
            "node_power_watts",
            labels(&[("node", "edison-0")]),
            SimTime::from_secs(1),
            4.7,
        );
        t.span(
            "web",
            "node-0",
            "web",
            "request",
            SimTime::ZERO,
            SimTime::from_secs(1),
            vec![("id", "7".to_string())],
        );
        t
    }

    #[test]
    fn chrome_trace_is_valid_json_with_expected_parts() {
        let json = sample_tel().chrome_trace_json();
        validate_json(&json).unwrap();
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\"name\":\"request\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("node_power_watts{node=edison-0}"));
        assert!(json.contains("\"ts\":1000000.000"));
    }

    #[test]
    fn prometheus_text_is_valid_and_cumulative() {
        let prom = sample_tel().prometheus_text();
        validate_prometheus(&prom).unwrap();
        assert!(prom.contains("# HELP web_requests_total completed requests"));
        assert!(prom.contains("# TYPE web_requests_total counter"));
        assert!(prom.contains("web_requests_total{outcome=\"ok\"} 7"));
        // cumulative buckets: 0.25 ≤ 1.0, 5.0 → +Inf
        assert!(prom.contains("web_request_delay_seconds_bucket{le=\"0.1\"} 0"));
        assert!(prom.contains("web_request_delay_seconds_bucket{le=\"1\"} 1"));
        assert!(prom.contains("web_request_delay_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(prom.contains("web_request_delay_seconds_count 2"));
        // series exported as final value
        assert!(prom.contains("node_power_watts{node=\"edison-0\"} 4.7"));
    }

    #[test]
    fn exports_are_deterministic() {
        let a = sample_tel();
        let b = sample_tel();
        assert_eq!(a.chrome_trace_json(), b.chrome_trace_json());
        assert_eq!(a.prometheus_text(), b.prometheus_text());
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_json("[1, 2,]").is_err());
        assert!(validate_json("{\"a\" 1}").is_err());
        assert!(validate_json("[1] trailing").is_err());
        assert!(validate_json("[{\"a\":[1,2.5,\"x\"],\"b\":null}]").is_ok());
        assert!(validate_prometheus("9bad_name 1\n").is_err());
        assert!(validate_prometheus("x_total{a=\"b\"} notanumber\n").is_err());
        assert!(validate_prometheus("x_total{a=\"b\"} 12\n").is_ok());
    }

    #[test]
    fn escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(prom_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
