//! Fixture tests: one positive and one negative case per rule, driven
//! through the public `check_file` API exactly as the scanner calls it,
//! plus an end-to-end ratchet test against a throwaway workspace on disk.
//!
//! All rule-triggering tokens live inside string literals so that
//! simlint's own scan of this file stays clean.

use edison_simlint::index::Suppressions;
use edison_simlint::lexer::lex;
use edison_simlint::rules::check_file;
use edison_simlint::{baseline, check, update_baseline};
use std::fs;
use std::path::PathBuf;

const LIB: &str = "crates/demo/src/lib.rs";

fn rules_of(src: &str) -> Vec<&'static str> {
    check_file(LIB, &lex(src, false), &Suppressions::default()).into_iter().map(|f| f.rule).collect()
}

// ---- R1: nondeterminism sources ------------------------------------------

#[test]
fn r1_positive_wallclock_ambient_rng_and_hash_maps() {
    assert_eq!(rules_of("fn f() { let t0 = Instant::now(); }"), vec!["R1"]);
    assert_eq!(rules_of("fn f() { let t0 = SystemTime::now(); }"), vec!["R1"]);
    assert_eq!(rules_of("fn f() -> f64 { rand::random() }"), vec!["R1"]);
    assert_eq!(rules_of("struct S { m: HashMap<u64, f64> }"), vec!["R1"]);
    assert_eq!(rules_of("fn f() { let s: HashSet<u8> = HashSet::default(); }"), vec!["R1", "R1"]);
}

#[test]
fn r1_negative_btreemap_tests_uses_and_vetted_sites() {
    assert!(rules_of("struct S { m: BTreeMap<u64, f64> }").is_empty());
    assert!(rules_of("use std::collections::HashMap;").is_empty());
    assert!(rules_of("#[cfg(test)]\nmod tests { fn f() { let t = Instant::now(); } }").is_empty());
    // an allow marker on the line above vouches for a keyed-only map
    assert!(rules_of("struct S {\n    // simlint: allow(R1) keyed lookup only\n    m: HashMap<u64, f64>,\n}").is_empty());
    // `Instant` inside a string or comment is not a finding
    assert!(rules_of("fn f() { let s = \"Instant::now()\"; } // Instant::now()").is_empty());
}

// ---- R2: RNG construction outside simcore/src/rng.rs ---------------------

#[test]
fn r2_positive_rng_construction_even_in_tests() {
    assert_eq!(rules_of("fn f() { let r = SmallRng::seed_from_u64(7); }"), vec!["R2", "R2"]);
    // R2 deliberately applies inside test regions too
    assert_eq!(
        rules_of("#[cfg(test)]\nmod tests { fn f() { let r = StdRng::seed_from_u64(1); } }"),
        vec!["R2", "R2"]
    );
}

#[test]
fn r2_negative_inside_rng_home_and_via_simrng() {
    let src = "fn mk() { let r = SmallRng::seed_from_u64(7); }";
    assert!(check_file("crates/simcore/src/rng.rs", &lex(src, false), &Suppressions::default()).is_empty());
    assert!(rules_of("fn f(rng: &mut SimRng) { let sub = rng.split(\"net\"); }").is_empty());
}

// ---- R3: lossy numeric casts ---------------------------------------------

#[test]
fn r3_positive_truncating_casts() {
    assert_eq!(rules_of("fn f(x: u64) -> u32 { x as u32 }"), vec!["R3"]);
    assert_eq!(rules_of("fn f(x: f64) -> i64 { x as i64 }"), vec!["R3"]);
    assert_eq!(rules_of("fn f(x: f64) -> f32 { x as f32 }"), vec!["R3"]);
}

#[test]
fn r3_negative_widening_and_test_code() {
    assert!(rules_of("fn f(x: u32) -> f64 { x as f64 }").is_empty());
    assert!(rules_of("#[cfg(test)]\nmod tests { fn f(x: u64) -> u8 { x as u8 } }").is_empty());
}

// ---- R4: panic-macro budget -----------------------------------------------

#[test]
fn r4_positive_panic_macros() {
    assert_eq!(rules_of("fn f() { panic!(\"boom\") }"), vec!["R4"]);
    assert_eq!(rules_of("fn f() { unreachable!() }"), vec!["R4"]);
    assert_eq!(rules_of("fn f() { todo!() }"), vec!["R4"]);
}

#[test]
fn r4_negative_asserts_and_test_code() {
    assert!(rules_of("fn f(x: u8) { assert!(x > 0); debug_assert_eq!(x, 1); }").is_empty());
    assert!(rules_of("#[cfg(test)]\nmod tests { fn f() { panic!(\"boom\") } }").is_empty());
}

// ---- R5: unit-mixing signatures ------------------------------------------

#[test]
fn r5_positive_mixed_unit_vocabulary() {
    assert_eq!(rules_of("fn charge(watts: f64, duration_s: f64) -> f64 { watts * duration_s }"), vec!["R5"]);
    assert_eq!(rules_of("fn e(idle_w: f64, ramp_ms: f64) {}"), vec!["R5"]);
}

#[test]
fn r5_negative_single_class_newtypes_and_unclassified() {
    assert!(rules_of("fn f(warmup_s: f64, measure_s: f64) {}").is_empty());
    assert!(rules_of("fn f(watts: f64, t: SimTime) {}").is_empty());
    assert!(rules_of("fn f(a: f64, b: f64) {}").is_empty());
}

// ---- R6: unwrap/expect budget ---------------------------------------------

#[test]
fn r6_positive_unwrap_expect_method_calls() {
    assert_eq!(rules_of("fn f(o: Option<u8>) -> u8 { o.unwrap() }"), vec!["R6"]);
    assert_eq!(rules_of("fn f(o: Option<u8>) -> u8 { o.expect(\"set\") }"), vec!["R6"]);
}

#[test]
fn r6_negative_or_family_free_fns_and_test_code() {
    assert!(rules_of("fn f(o: Option<u8>) -> u8 { o.unwrap_or(0) }").is_empty());
    assert!(rules_of("fn f(o: Option<u8>) -> u8 { o.unwrap_or_else(|| 0) }").is_empty());
    assert!(rules_of("#[cfg(test)]\nmod tests { fn f(o: Option<u8>) -> u8 { o.unwrap() } }").is_empty());
}

// ---- end to end: the ratchet against a real directory tree ---------------

/// Build a throwaway single-crate workspace, then walk the full ratchet
/// cycle: a violating tree fails with no baseline, passes once the debt
/// is grandfathered, and fails again as soon as a *new* violation lands.
#[test]
fn ratchet_cycle_on_disk() {
    let root = PathBuf::from(std::env::temp_dir())
        .join(format!("simlint-fixture-{}", std::process::id()));
    let src_dir = root.join("crates/demo/src");
    fs::create_dir_all(&src_dir).expect("mkdir");
    fs::write(root.join("Cargo.toml"), "[workspace]\nmembers = [\"crates/*\"]\n").expect("manifest");
    fs::write(src_dir.join("lib.rs"), "pub fn f(o: Option<u8>) -> u8 { o.unwrap() }\n").expect("lib");

    // No baseline on disk: every finding is a regression (a deleted
    // ratchet file cannot silently disable the gate).
    let report = check(&root).expect("scan");
    assert!(!report.passed(), "missing baseline must not pass a dirty tree");
    assert_eq!(report.regressions.len(), 1);
    assert_eq!(report.regressions[0].rule, "R6");

    // Grandfather the debt; the same tree now passes.
    let scan = update_baseline(&root).expect("update");
    assert_eq!(baseline::aggregate(&scan.findings), scan.counts);
    let report = check(&root).expect("scan");
    assert!(report.passed(), "grandfathered tree must pass: {:?}", report.regressions);
    assert!(report.stale.is_empty());

    // One *new* violation over the budget fails again.
    fs::write(
        src_dir.join("extra.rs"),
        "pub fn g() { let t0 = Instant::now(); let _ = t0; }\n",
    )
    .expect("extra");
    let report = check(&root).expect("scan");
    assert!(!report.passed(), "new violation must fail the ratchet");
    assert_eq!(report.regressions.len(), 1);
    assert_eq!(report.regressions[0].rule, "R1");
    assert_eq!(report.regressions[0].file, "crates/demo/src/extra.rs");

    // Cleaning the new file up again leaves the tree passing and the
    // baseline exactly reproducible.
    fs::remove_file(src_dir.join("extra.rs")).expect("rm");
    let report = check(&root).expect("scan");
    assert!(report.passed());
    let committed = fs::read_to_string(root.join(edison_simlint::BASELINE_FILE)).expect("read");
    assert_eq!(committed, baseline::to_json(&report.scan.counts));

    fs::remove_dir_all(&root).ok();
}

/// A baseline entry naming a file that no longer exists is rot: the gate
/// must fail until `--update-baseline` drops it, so dead debt cannot be
/// silently inherited by a future file of the same name.
#[test]
fn rotten_baseline_entries_fail_the_gate() {
    let root = PathBuf::from(std::env::temp_dir())
        .join(format!("simlint-rot-{}", std::process::id()));
    fs::remove_dir_all(&root).ok();
    let src_dir = root.join("crates/demo/src");
    fs::create_dir_all(&src_dir).expect("mkdir");
    fs::write(root.join("Cargo.toml"), "[workspace]\nmembers = [\"crates/*\"]\n").expect("manifest");
    fs::write(src_dir.join("lib.rs"), "pub fn f() -> u8 { 0 }\n").expect("lib");
    fs::write(
        root.join(edison_simlint::BASELINE_FILE),
        "{\n  \"R6\": {\n    \"crates/demo/src/deleted.rs\": 3\n  }\n}\n",
    )
    .expect("baseline");

    let report = check(&root).expect("scan");
    assert!(!report.passed(), "rot must fail the gate");
    assert!(report.regressions.is_empty(), "rot is not a regression: {:?}", report.regressions);
    assert_eq!(
        report.rot,
        vec![("R6".to_string(), "crates/demo/src/deleted.rs".to_string())]
    );

    // `--update-baseline` clears the rot and the tree passes again.
    update_baseline(&root).expect("update");
    let report = check(&root).expect("scan");
    assert!(report.passed(), "rot should be gone after update: {:?}", report.rot);

    fs::remove_dir_all(&root).ok();
}
