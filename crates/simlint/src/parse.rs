//! A hand-rolled, dependency-free Rust item/expression parser.
//!
//! This is **not** a full Rust front end: it covers the subset this
//! workspace actually writes — modules, `use` trees, structs/enums,
//! traits, impl blocks, and function signatures *with bodies parsed down
//! to expressions* — which is exactly what the cross-file analyses
//! ([`crate::taint`], [`crate::units`]) need. Everything it does not
//! understand degrades to an [`ExprKind::Opaque`] / [`ItemKind::Other`]
//! node that still records its token range, so analyses skip it instead
//! of mis-reading it.
//!
//! ### Losslessness contract
//!
//! The tokenizer assigns every token a byte span into the original
//! source; the parser assigns every AST node a contiguous token range,
//! and sibling items tile the file. [`Ast::reassemble`] walks the item
//! tree emitting each token's source slice plus the trivia
//! (whitespace/comments) between tokens, and must reproduce the input
//! byte-for-byte — `tests/parser_roundtrip.rs` asserts this over every
//! `.rs` file in the workspace, which is the forcing function keeping
//! the parser honest as the codebase grows.
//!
//! ### Token-level choices that keep the grammar small
//!
//! `<`, `>`, `&` and `|` are always lexed as single-character tokens;
//! the expression parser merges byte-adjacent pairs (`>` `=` → `>=`,
//! `&` `&` → `&&`, …) on demand. This sidesteps the classic `Vec<Vec<u8>>`
//! shift-right ambiguity without parser state: in type position the two
//! `>`s are simply two closers.

use std::fmt;
use std::ops::Range;

// ---------------------------------------------------------------------------
// Tokens
// ---------------------------------------------------------------------------

/// Classification of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// `'a` — produced so reassembly is exact; the parser mostly skips them.
    Lifetime,
    /// Integer literal (any radix, with suffix).
    Int,
    /// Float literal (decimal point or exponent, with suffix).
    Float,
    /// String literal (incl. raw/byte strings).
    Str,
    /// Char or byte-char literal.
    Char,
    /// Punctuation; compound tokens are `::`, `->`, `=>`, `==`, `!=`,
    /// `..=`, `..`, and the `op=` assignment family.
    Punct,
}

/// One token with its byte span and 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// Byte offset of the first byte.
    pub lo: usize,
    /// Byte offset one past the last byte.
    pub hi: usize,
    /// 1-based line of the first byte.
    pub line: u32,
}

impl Tok {
    /// The source text of this token.
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.lo..self.hi]
    }
}

/// Tokenize `src` into spanned tokens (trivia — whitespace and comments —
/// is represented only by the gaps between spans).
pub fn tokenize(src: &str) -> Vec<Tok> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
            }
            b'"' => {
                let lo = i;
                let l0 = line;
                i = scan_string(b, i, &mut line);
                toks.push(Tok { kind: TokKind::Str, lo, hi: i, line: l0 });
            }
            b'\'' => {
                let lo = i;
                let l0 = line;
                let (hi, kind) = scan_quote(b, i, &mut line);
                i = hi;
                toks.push(Tok { kind, lo, hi: i, line: l0 });
            }
            c if c.is_ascii_digit() => {
                let lo = i;
                let l0 = line;
                let (hi, kind) = scan_number(b, i);
                i = hi;
                toks.push(Tok { kind, lo, hi: i, line: l0 });
            }
            c if c.is_ascii_alphabetic() || c == b'_' || c >= 0x80 => {
                let lo = i;
                let l0 = line;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_' || b[i] >= 0x80) {
                    i += 1;
                }
                let word = &src[lo..i];
                // Raw/byte string & byte-char prefixes attach to the literal.
                if matches!(word, "r" | "b" | "br") && matches!(b.get(i), Some(b'"') | Some(b'#')) {
                    i = scan_raw_string(b, i, &mut line);
                    toks.push(Tok { kind: TokKind::Str, lo, hi: i, line: l0 });
                } else if word == "b" && b.get(i) == Some(&b'\'') {
                    let (hi, _) = scan_quote(b, i, &mut line);
                    i = hi;
                    toks.push(Tok { kind: TokKind::Char, lo, hi: i, line: l0 });
                } else {
                    toks.push(Tok { kind: TokKind::Ident, lo, hi: i, line: l0 });
                }
            }
            _ => {
                let lo = i;
                let two = |a: u8| b.get(i + 1) == Some(&a);
                let three = |a: u8, c2: u8| b.get(i + 1) == Some(&a) && b.get(i + 2) == Some(&c2);
                let len = match c {
                    b':' if two(b':') => 2,
                    b'-' if two(b'>') || two(b'=') => 2,
                    b'=' if two(b'>') || two(b'=') => 2,
                    b'!' if two(b'=') => 2,
                    b'.' if three(b'.', b'=') => 3,
                    b'.' if two(b'.') => 2,
                    b'+' | b'*' | b'/' | b'%' | b'^' if two(b'=') => 2,
                    b'|' | b'&' if two(b'=') => 2,
                    _ => 1,
                };
                i += len;
                toks.push(Tok { kind: TokKind::Punct, lo, hi: i, line });
            }
        }
    }
    toks
}

fn scan_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    i += 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

fn scan_raw_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    let mut hashes = 0usize;
    while b.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    if b.get(i) != Some(&b'"') {
        return i;
    }
    i += 1;
    'outer: while i < b.len() {
        if b[i] == b'\n' {
            *line += 1;
        } else if b[i] == b'"' {
            for k in 0..hashes {
                if b.get(i + 1 + k) != Some(&b'#') {
                    i += 1;
                    continue 'outer;
                }
            }
            return i + 1 + hashes;
        }
        i += 1;
    }
    i
}

/// Scan from a `'`: either a char literal or a lifetime.
fn scan_quote(b: &[u8], i: usize, line: &mut u32) -> (usize, TokKind) {
    match b.get(i + 1) {
        Some(b'\\') => {
            // The escaped character belongs to the literal even when it is
            // a quote (`'\''`): skip it before hunting for the closer.
            let mut j = i + 2;
            if j < b.len() {
                if b[j] == b'\n' {
                    *line += 1;
                }
                j += 1;
            }
            while j < b.len() && b[j] != b'\'' {
                if b[j] == b'\n' {
                    *line += 1;
                }
                j += 1;
            }
            ((j + 1).min(b.len()), TokKind::Char)
        }
        Some(c) if b.get(i + 2) == Some(&b'\'') && *c != b'\'' => (i + 3, TokKind::Char),
        _ => {
            let mut j = i + 1;
            while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                j += 1;
            }
            (j, TokKind::Lifetime)
        }
    }
}

fn scan_number(b: &[u8], mut i: usize) -> (usize, TokKind) {
    let start = i;
    let hex = b[i] == b'0' && matches!(b.get(i + 1), Some(b'x') | Some(b'o') | Some(b'b'));
    let mut float = false;
    let alnum = |c: u8| c.is_ascii_alphanumeric() || c == b'_';
    while i < b.len() && alnum(b[i]) {
        i += 1;
    }
    // `1.5`, `1.5e-3` — a dot only continues the number if a digit follows
    // (so `0..10` and `x.0` lex correctly).
    if !hex && b.get(i) == Some(&b'.') && b.get(i + 1).is_some_and(|c| c.is_ascii_digit()) {
        float = true;
        i += 1;
        while i < b.len() && alnum(b[i]) {
            i += 1;
        }
    }
    // Exponent sign: `1e-9` stops the alnum run at `-`; resume if the
    // previous char was e/E in a decimal literal.
    if !hex
        && matches!(b.get(i), Some(b'+') | Some(b'-'))
        && matches!(b.get(i.wrapping_sub(1)), Some(b'e') | Some(b'E'))
    {
        float = true;
        i += 1;
        while i < b.len() && alnum(b[i]) {
            i += 1;
        }
    }
    if !hex && b[start..i].iter().any(|&c| c == b'e' || c == b'E') {
        float = true;
    }
    (i, if float { TokKind::Float } else { TokKind::Int })
}

// ---------------------------------------------------------------------------
// AST
// ---------------------------------------------------------------------------

/// Index of an expression in [`Ast::exprs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExprId(pub u32);

/// A parsed type, reduced to what the analyses need: the head path
/// segment (`f64`, `Vec`, `HashMap`, …) with structured generic args,
/// seen through references.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Ty {
    /// Last path segment of the type (empty for opaque types).
    pub head: String,
    /// Structured generic arguments, where recognisable.
    pub args: Vec<Ty>,
    /// True if the type was behind `&`/`&mut`.
    pub refd: bool,
}

impl Ty {
    /// A type with just a head.
    pub fn named(head: &str) -> Ty {
        Ty { head: head.to_string(), args: Vec::new(), refd: false }
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.head)?;
        if !self.args.is_empty() {
            write!(f, "<")?;
            for (i, a) in self.args.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{a}")?;
            }
            write!(f, ">")?;
        }
        Ok(())
    }
}

/// One function parameter.
#[derive(Debug, Clone)]
pub struct Param {
    /// Binding name (`_` when the pattern is not a plain identifier;
    /// `self` for receivers).
    pub name: String,
    /// Declared type (empty head for `self`).
    pub ty: Ty,
}

/// A function definition (free, method, or trait item).
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// Parameters, in order (`self` receiver included).
    pub params: Vec<Param>,
    /// Declared return type, if any.
    pub ret: Option<Ty>,
    /// Body, absent for trait method signatures.
    pub body: Option<Block>,
    /// 1-based line of the `fn` name.
    pub line: u32,
}

/// A struct definition: name and named fields (tuple structs get
/// positional names `"0"`, `"1"`, …).
#[derive(Debug, Clone)]
pub struct StructDef {
    /// Struct name.
    pub name: String,
    /// Field name → declared type.
    pub fields: Vec<(String, Ty)>,
}

/// What an item is. Unhandled constructs become [`ItemKind::Other`].
#[derive(Debug, Clone)]
pub enum ItemKind {
    /// `fn` (free function or method — methods appear inside `Impl`/`Trait`).
    Fn(FnDef),
    /// `struct`.
    Struct(StructDef),
    /// `enum` (variants are not modelled).
    Enum(String),
    /// `mod name;` or `mod name { items }`.
    Mod(String, Option<Vec<Item>>),
    /// `use ...;` — the raw path text, whitespace-normalised.
    Use(String),
    /// `impl [Trait for] Type { items }`: (trait head, self-type head, items).
    Impl(Option<String>, String, Vec<Item>),
    /// `trait Name { items }`.
    Trait(String, Vec<Item>),
    /// Item-position macro invocation: name and inner token range.
    MacroItem(String, Range<usize>),
    /// Anything else (`const`, `static`, `type`, `extern`, …).
    Other,
}

/// One item with its token range.
#[derive(Debug, Clone)]
pub struct Item {
    /// What the item is.
    pub kind: ItemKind,
    /// Token-index range this item covers (attributes included).
    pub toks: Range<usize>,
    /// True when the item is test-only (`#[cfg(test)]`, `mod tests`, …).
    pub in_test: bool,
}

/// A `{ ... }` block: statements plus token range (braces included).
#[derive(Debug, Clone)]
pub struct Block {
    /// Statements in order; a trailing expression is a `Stmt::Expr` with
    /// `semi == false`.
    pub stmts: Vec<Stmt>,
    /// Token range including the braces.
    pub toks: Range<usize>,
}

/// One statement.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// `let <pat>[: ty] [= init] [else { .. }];`
    Let {
        /// Names bound by the pattern (heuristic for non-trivial patterns).
        names: Vec<String>,
        /// Declared type, if annotated.
        ty: Option<Ty>,
        /// Initializer, if present.
        init: Option<ExprId>,
        /// 1-based line of the `let`.
        line: u32,
    },
    /// Expression statement; `semi == false` for tail expressions and
    /// block-like statements.
    Expr {
        /// The expression.
        expr: ExprId,
        /// Whether a `;` followed.
        semi: bool,
    },
    /// Nested item (fn, use, const, …) in statement position.
    Item(Box<Item>),
}

/// Binary operators the analyses distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`, `!=`
    Eq,
    /// `<`, `>`, `<=`, `>=`
    Cmp,
    /// `&&`, `||`
    Logic,
    /// `&`, `|`, `^`, `<<`, `>>`
    Bit,
}

/// Expression shapes. Everything carries its token range via the arena
/// side table ([`Ast::spans`]).
#[derive(Debug, Clone)]
pub enum ExprKind {
    /// Path: `x`, `a::b::c`, `Self::X` (turbofish args dropped).
    Path(Vec<String>),
    /// Literal: int/float/str/char/bool.
    Lit(TokKind),
    /// Unary `-`/`!`/`*`/`&`.
    Unary(ExprId),
    /// Binary operation.
    Binary {
        /// The operator class.
        op: BinOp,
        /// Source text of the operator (for messages).
        op_text: &'static str,
        /// Left operand.
        lhs: ExprId,
        /// Right operand.
        rhs: ExprId,
    },
    /// `lhs = rhs` or `lhs op= rhs`.
    Assign {
        /// Compound operator, `None` for plain `=`.
        op: Option<BinOp>,
        /// Assignee.
        lhs: ExprId,
        /// Value.
        rhs: ExprId,
    },
    /// `callee(args)`.
    Call {
        /// The callee expression (usually a path).
        callee: ExprId,
        /// Arguments.
        args: Vec<ExprId>,
    },
    /// `recv.name(args)`.
    MethodCall {
        /// Receiver.
        recv: ExprId,
        /// Method name.
        name: String,
        /// 1-based line of the method-name token (for suppression of
        /// token-level findings, which record that line).
        name_line: u32,
        /// Arguments.
        args: Vec<ExprId>,
    },
    /// `recv.name` (also tuple indices `t.0`).
    Field {
        /// Receiver.
        recv: ExprId,
        /// Field name or tuple index.
        name: String,
    },
    /// `recv[index]`.
    Index {
        /// Receiver.
        recv: ExprId,
        /// Index expression.
        index: ExprId,
    },
    /// `expr as Ty`.
    Cast {
        /// The value being cast.
        expr: ExprId,
        /// Target type.
        ty: Ty,
        /// 1-based line of the `as` token itself.
        as_line: u32,
    },
    /// `expr?`.
    Try(ExprId),
    /// `(e)` or `(a, b, ...)` — single-element = paren group.
    Tuple(Vec<ExprId>),
    /// `[a, b]` / `[x; n]`.
    Array(Vec<ExprId>),
    /// A block expression (also bodies of `unsafe`).
    Block(Block),
    /// `if [let pat =] cond { .. } [else ..]`; pattern names recorded.
    If {
        /// Names bound by `if let`, empty otherwise.
        let_names: Vec<String>,
        /// Condition (scrutinee for `if let`).
        cond: ExprId,
        /// Then-block.
        then: Block,
        /// Else branch (`Block` or nested `If`).
        else_: Option<ExprId>,
    },
    /// `match scrut { arms }`.
    Match {
        /// Scrutinee.
        scrut: ExprId,
        /// Arms: (bound names, body).
        arms: Vec<(Vec<String>, ExprId)>,
    },
    /// `while [let ..] cond { .. }`.
    While {
        /// Condition.
        cond: ExprId,
        /// Body.
        body: Block,
    },
    /// `loop { .. }`.
    Loop(Block),
    /// `for pat in iter { .. }`.
    For {
        /// Names bound by the loop pattern.
        names: Vec<String>,
        /// Iterated expression.
        iter: ExprId,
        /// Body.
        body: Block,
    },
    /// Closure `|params| body` (`move` included).
    Closure {
        /// Parameter names.
        params: Vec<String>,
        /// Body expression.
        body: ExprId,
    },
    /// `return [expr]` / `break [expr]` / `continue`.
    Jump(Option<ExprId>),
    /// Struct literal `Path { field: expr, .. }`.
    StructLit {
        /// Struct path head.
        path: String,
        /// Field initializers (shorthand fields map name → path expr).
        fields: Vec<(String, ExprId)>,
    },
    /// `lo..hi` / `..hi` / `lo..` / `..=`.
    RangeLit(Option<ExprId>, Option<ExprId>),
    /// Macro invocation `name!(…)`; inner token range kept for scanning.
    MacroCall {
        /// Macro name (last path segment).
        name: String,
        /// Tokens inside the delimiters.
        inner: Range<usize>,
    },
    /// Anything unparseable — consumed blindly but losslessly.
    Opaque,
}

/// One expression with its token range and line.
#[derive(Debug, Clone)]
pub struct Expr {
    /// The shape.
    pub kind: ExprKind,
    /// Token range covered.
    pub toks: Range<usize>,
    /// 1-based line of the first token.
    pub line: u32,
}

/// A parsed file.
#[derive(Debug, Clone)]
pub struct Ast {
    /// Top-level items, tiling the whole token stream.
    pub items: Vec<Item>,
    /// Expression arena.
    pub exprs: Vec<Expr>,
    /// Total number of tokens (for coverage checks).
    pub n_tokens: usize,
}

impl Ast {
    /// Look up an expression.
    pub fn expr(&self, id: ExprId) -> &Expr {
        &self.exprs[id.0 as usize]
    }

    /// Reassemble the original source from the item tree: each item
    /// contributes the source slice spanning its token range plus the
    /// trivia gap that precedes it. Byte-identical to the input whenever
    /// the parser upheld its coverage contract (asserted by
    /// [`Ast::validate`] and the round-trip tests).
    pub fn reassemble(&self, src: &str, toks: &[Tok]) -> String {
        let mut out = String::with_capacity(src.len());
        let mut byte = 0usize; // bytes emitted so far
        for item in &self.items {
            if let Some(first) = toks.get(item.toks.start) {
                // trivia before the item, then the item's own bytes
                let end = toks
                    .get(item.toks.end.wrapping_sub(1))
                    .map_or(first.lo, |t| t.hi);
                out.push_str(&src[byte..first.lo]);
                out.push_str(&src[first.lo..end]);
                byte = end;
            }
        }
        out.push_str(&src[byte..]);
        out
    }

    /// Check the coverage contract: top-level items are contiguous and
    /// tile `0..n_tokens`; nested containers tile their interiors.
    pub fn validate(&self) -> Result<(), String> {
        validate_items(&self.items, 0, self.n_tokens)
    }
}

fn validate_items(items: &[Item], start: usize, end: usize) -> Result<(), String> {
    let mut at = start;
    for item in items {
        if item.toks.start != at {
            return Err(format!("item gap: expected token {at}, item starts at {}", item.toks.start));
        }
        if item.toks.end < item.toks.start || item.toks.end > end {
            return Err(format!("item overrun: {:?} beyond {end}", item.toks));
        }
        at = item.toks.end;
        if let ItemKind::Mod(_, Some(inner)) | ItemKind::Impl(_, _, inner) | ItemKind::Trait(_, inner) = &item.kind {
            // interior: first inner item starts after the `{`, last ends
            // before the `}` — checked loosely (contiguity among siblings).
            if let (Some(first), Some(last)) = (inner.first(), inner.last()) {
                validate_items(inner, first.toks.start, last.toks.end)?;
            }
        }
    }
    if at != end {
        return Err(format!("trailing tokens: items end at {at}, expected {end}"));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Parse one file. Never fails: unrecognised constructs degrade to
/// `Other`/`Opaque` nodes that still cover their tokens.
pub fn parse(src: &str) -> (Vec<Tok>, Ast) {
    let toks = tokenize(src);
    let mut p = Parser { src, toks: &toks, pos: 0, exprs: Vec::new() };
    let mut items = Vec::new();
    loop {
        let mut chunk = p.items_until(toks.len(), false);
        items.append(&mut chunk);
        if p.pos >= toks.len() {
            break;
        }
        // A stray top-level `}` (unbalanced input) stalls items_until;
        // absorb it as an opaque item so the ranges still tile the file.
        let start = p.pos;
        p.pos += 1;
        items.push(Item { kind: ItemKind::Other, toks: start..p.pos, in_test: false });
    }
    let ast = Ast { items, exprs: p.exprs, n_tokens: toks.len() };
    debug_assert_eq!(ast.validate(), Ok(()), "parser coverage broken");
    (toks, ast)
}

struct Parser<'s> {
    src: &'s str,
    toks: &'s [Tok],
    pos: usize,
    exprs: Vec<Expr>,
}

impl<'s> Parser<'s> {
    // -- token helpers ----------------------------------------------------

    fn at(&self, k: usize) -> Option<&Tok> {
        self.toks.get(self.pos + k)
    }

    fn text_at(&self, k: usize) -> &'s str {
        self.at(k).map_or("", |t| t.text(self.src))
    }

    fn peek(&self) -> &'s str {
        self.text_at(0)
    }

    fn line(&self) -> u32 {
        self.at(0).map_or(0, |t| t.line)
    }

    fn bump(&mut self) {
        self.pos += 1;
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.peek() == s {
            self.bump();
            true
        } else {
            false
        }
    }

    fn done(&self) -> bool {
        self.pos >= self.toks.len()
    }

    /// Two tokens are byte-adjacent (no trivia between) — used to merge
    /// `>` `=` into `>=`, `&` `&` into `&&`, etc.
    fn adjacent(&self, k: usize) -> bool {
        match (self.at(k), self.at(k + 1)) {
            (Some(a), Some(b)) => a.hi == b.lo,
            _ => false,
        }
    }

    /// Skip tokens with delimiter balancing until `pred` holds at depth 0
    /// or the enclosing delimiter closes. Returns without consuming the
    /// stop token. Guaranteed to terminate.
    fn skip_until(&mut self, stop: impl Fn(&str) -> bool) {
        let mut depth = 0i32;
        while let Some(t) = self.at(0) {
            let s = t.text(self.src);
            // The stop test must precede the bracket bookkeeping: a stop
            // token that is itself an opener (`{` in `enum E { … }`) would
            // otherwise raise `depth` first and never match at depth 0,
            // silently swallowing everything to the next top-level brace.
            if depth == 0 && stop(s) {
                return;
            }
            match s {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    if depth == 0 {
                        return;
                    }
                    depth -= 1;
                }
                _ => {}
            }
            self.bump();
        }
    }

    /// Consume a balanced group starting at the current open delimiter.
    fn skip_balanced(&mut self) {
        let open = self.peek();
        let close = match open {
            "(" => ")",
            "[" => "]",
            "{" => "}",
            "<" => ">",
            _ => {
                self.bump();
                return;
            }
        };
        self.bump();
        let mut depth = 1i32;
        while let Some(t) = self.at(0) {
            let s = t.text(self.src);
            if s == open && open != "<" {
                depth += 1;
            } else if s == close {
                depth -= 1;
                if depth == 0 {
                    self.bump();
                    return;
                }
            } else if open == "<" {
                // angle groups: track nested <> only; other delimiters
                // balance independently.
                match s {
                    "<" => depth += 1,
                    "(" | "[" | "{" => {
                        self.skip_balanced();
                        continue;
                    }
                    ")" | "]" | "}" => return, // mismatched; bail out
                    _ => {}
                }
            }
            self.bump();
        }
    }

    // -- items ------------------------------------------------------------

    /// Parse items until token index `end` (exclusive) or a `}` at depth 0.
    fn items_until(&mut self, end: usize, in_test: bool) -> Vec<Item> {
        let mut items = Vec::new();
        while self.pos < end && !self.done() && self.peek() != "}" {
            items.push(self.item(in_test));
        }
        items
    }

    fn item(&mut self, in_test: bool) -> Item {
        let start = self.pos;
        let mut test_here = in_test;

        // Attributes. `#[cfg(test)]` (and `cfg(all(test, ..))`, but not
        // `cfg(not(test))`) marks the item as test-only.
        while self.peek() == "#" {
            let attr_start = self.pos;
            self.bump();
            self.eat("!");
            if self.peek() == "[" {
                self.skip_balanced();
            }
            let attr_text: String = self.toks[attr_start..self.pos]
                .iter()
                .map(|t| t.text(self.src))
                .collect::<Vec<_>>()
                .join(" ");
            if attr_text.contains("cfg") && attr_text.contains("test") && !attr_text.contains("not") {
                test_here = true;
            }
        }

        // Visibility and qualifiers.
        if self.eat("pub") && self.peek() == "(" {
            self.skip_balanced();
        }
        loop {
            match self.peek() {
                "unsafe" | "async" => self.bump(),
                "extern" => {
                    self.bump();
                    if self.at(0).is_some_and(|t| t.kind == TokKind::Str) {
                        self.bump();
                    }
                    // `extern crate foo;` / `extern "C" { .. }`
                    if self.peek() == "crate" {
                        self.skip_until(|s| s == ";");
                        self.eat(";");
                        return self.finish_other(start, test_here);
                    }
                }
                "const" | "static" => {
                    if self.text_at(1) == "fn" {
                        self.bump();
                    } else {
                        // const/static item: consume to `;`.
                        self.skip_until(|s| s == ";");
                        self.eat(";");
                        return self.finish_other(start, test_here);
                    }
                }
                _ => break,
            }
        }

        let kind = match self.peek() {
            "fn" => {
                let f = self.fn_def();
                ItemKind::Fn(f)
            }
            "struct" => self.struct_def(),
            "enum" => {
                self.bump();
                let name = self.ident_or("_");
                self.skip_until(|s| s == "{" || s == ";");
                if self.peek() == "{" {
                    self.skip_balanced();
                } else {
                    self.eat(";");
                }
                ItemKind::Enum(name)
            }
            "mod" => {
                self.bump();
                let name = self.ident_or("_");
                let test_mod = test_here || matches!(name.as_str(), "tests" | "test" | "proptests");
                if self.eat("{") {
                    let inner = self.items_until(self.toks.len(), test_mod);
                    self.eat("}");
                    if test_mod {
                        test_here = true;
                    }
                    ItemKind::Mod(name, Some(inner))
                } else {
                    self.eat(";");
                    ItemKind::Mod(name, None)
                }
            }
            "use" => {
                let s = self.pos;
                self.skip_until(|t| t == ";");
                self.eat(";");
                let text: String =
                    self.toks[s + 1..self.pos.saturating_sub(1)].iter().map(|t| t.text(self.src)).collect();
                ItemKind::Use(text)
            }
            "impl" => {
                self.bump();
                if self.peek() == "<" {
                    self.skip_balanced();
                }
                // Collect path heads up to `{`; `impl Trait for Type` puts
                // the self type after `for`.
                let mut head_before_for: Option<String> = None;
                let mut last_head = String::new();
                let mut saw_for = false;
                while !self.done() && self.peek() != "{" {
                    let t = self.peek();
                    if t == "for" {
                        saw_for = true;
                        head_before_for = Some(last_head.clone());
                        last_head.clear();
                        self.bump();
                    } else if t == "where" {
                        self.skip_until(|s| s == "{");
                    } else if t == "<" {
                        self.skip_balanced();
                    } else {
                        if self.at(0).is_some_and(|x| x.kind == TokKind::Ident)
                            && !matches!(t, "dyn" | "mut" | "const")
                        {
                            last_head = t.to_string();
                        }
                        self.bump();
                    }
                }
                let trait_head = if saw_for { head_before_for } else { None };
                let self_ty = last_head;
                self.eat("{");
                let inner = self.items_until(self.toks.len(), test_here);
                self.eat("}");
                ItemKind::Impl(trait_head, self_ty, inner)
            }
            "trait" => {
                self.bump();
                let name = self.ident_or("_");
                self.skip_until(|s| s == "{" || s == ";");
                if self.eat("{") {
                    let inner = self.items_until(self.toks.len(), test_here);
                    self.eat("}");
                    ItemKind::Trait(name, inner)
                } else {
                    self.eat(";");
                    ItemKind::Other
                }
            }
            "type" => {
                self.skip_until(|s| s == ";");
                self.eat(";");
                ItemKind::Other
            }
            "macro_rules" => {
                self.bump();
                self.eat("!");
                let name = self.ident_or("_");
                if matches!(self.peek(), "{" | "(" | "[") {
                    let brace = self.peek() == "{";
                    self.skip_balanced();
                    if !brace {
                        self.eat(";");
                    }
                }
                ItemKind::MacroItem(name, start..self.pos)
            }
            _ => {
                // Item-position macro call: `name! { .. }` / `name!(..);`
                if self.at(0).is_some_and(|t| t.kind == TokKind::Ident) && self.text_at(1) == "!" {
                    let name = self.ident_or("_");
                    self.eat("!");
                    let inner_start = self.pos + 1;
                    let brace = self.peek() == "{";
                    if matches!(self.peek(), "{" | "(" | "[") {
                        self.skip_balanced();
                    }
                    let inner_end = self.pos.saturating_sub(1);
                    if !brace {
                        self.eat(";");
                    }
                    ItemKind::MacroItem(name, inner_start..inner_end)
                } else {
                    // Unknown: consume one balanced run to `;` or `{..}`.
                    self.skip_until(|s| s == ";" || s == "{");
                    if self.peek() == "{" {
                        self.skip_balanced();
                    } else {
                        self.eat(";");
                        // make progress even on a lone stray token
                    }
                    if self.pos == start {
                        self.bump();
                    }
                    ItemKind::Other
                }
            }
        };
        Item { kind, toks: start..self.pos, in_test: test_here }
    }

    fn finish_other(&mut self, start: usize, in_test: bool) -> Item {
        if self.pos == start {
            self.bump();
        }
        Item { kind: ItemKind::Other, toks: start..self.pos, in_test }
    }

    fn ident_or(&mut self, fallback: &str) -> String {
        if self.at(0).is_some_and(|t| t.kind == TokKind::Ident) {
            let s = self.peek().to_string();
            self.bump();
            s
        } else {
            fallback.to_string()
        }
    }

    fn struct_def(&mut self) -> ItemKind {
        self.bump(); // struct
        let name = self.ident_or("_");
        if self.peek() == "<" {
            self.skip_balanced();
        }
        if self.peek() == "where" {
            self.skip_until(|s| s == "{" || s == ";" || s == "(");
        }
        let mut fields = Vec::new();
        match self.peek() {
            "{" => {
                self.bump();
                while !self.done() && self.peek() != "}" {
                    while self.peek() == "#" {
                        self.bump();
                        if self.peek() == "[" {
                            self.skip_balanced();
                        }
                    }
                    if self.eat("pub") && self.peek() == "(" {
                        self.skip_balanced();
                    }
                    if self.at(0).is_some_and(|t| t.kind == TokKind::Ident) && self.text_at(1) == ":" {
                        let fname = self.ident_or("_");
                        self.bump(); // :
                        let ty = self.type_expr();
                        fields.push((fname, ty));
                    } else {
                        self.skip_until(|s| s == ",");
                    }
                    self.eat(",");
                }
                self.eat("}");
            }
            "(" => {
                // tuple struct: positional field names
                self.bump();
                let mut idx = 0usize;
                while !self.done() && self.peek() != ")" {
                    if self.eat("pub") && self.peek() == "(" {
                        self.skip_balanced();
                    }
                    let ty = self.type_expr();
                    fields.push((idx.to_string(), ty));
                    idx += 1;
                    if !self.eat(",") {
                        break;
                    }
                }
                self.eat(")");
                self.eat(";");
            }
            _ => {
                self.eat(";");
            }
        }
        ItemKind::Struct(StructDef { name, fields })
    }

    fn fn_def(&mut self) -> FnDef {
        self.bump(); // fn
        let line = self.line();
        let name = self.ident_or("_");
        if self.peek() == "<" {
            self.skip_balanced();
        }
        let mut params = Vec::new();
        if self.eat("(") {
            while !self.done() && self.peek() != ")" {
                while self.peek() == "#" {
                    self.bump();
                    if self.peek() == "[" {
                        self.skip_balanced();
                    }
                }
                // receiver forms: self / &self / &mut self / &'a mut self / mut self
                let mut k = 0usize;
                while matches!(self.text_at(k), "&" | "mut") || self.at(k).is_some_and(|t| t.kind == TokKind::Lifetime) {
                    k += 1;
                }
                if self.text_at(k) == "self" {
                    for _ in 0..=k {
                        self.bump();
                    }
                    params.push(Param { name: "self".into(), ty: Ty::default() });
                } else {
                    self.eat("mut");
                    if self.at(0).is_some_and(|t| t.kind == TokKind::Ident) && self.text_at(1) == ":" {
                        let pname = self.ident_or("_");
                        self.bump(); // :
                        let ty = self.type_expr();
                        params.push(Param { name: pname, ty });
                    } else {
                        // non-identifier pattern: consume to `,`/`)`
                        self.skip_until(|s| s == ",");
                        params.push(Param { name: "_".into(), ty: Ty::default() });
                    }
                }
                if !self.eat(",") {
                    break;
                }
            }
            self.eat(")");
        }
        let ret = if self.eat("->") { Some(self.type_expr()) } else { None };
        if self.peek() == "where" {
            self.skip_until(|s| s == "{" || s == ";");
        }
        let body = if self.peek() == "{" { Some(self.block()) } else {
            self.eat(";");
            None
        };
        FnDef { name, params, ret, body, line }
    }

    // -- types ------------------------------------------------------------

    /// Parse a type where one is expected. Consumes conservatively: path
    /// types with structured generics; anything else balanced-skipped.
    fn type_expr(&mut self) -> Ty {
        let mut refd = false;
        while self.peek() == "&" {
            refd = true;
            self.bump();
            if self.at(0).is_some_and(|t| t.kind == TokKind::Lifetime) {
                self.bump();
            }
            self.eat("mut");
        }
        if self.eat("dyn") || self.eat("impl") {
            let mut t = self.type_expr();
            t.refd |= refd;
            return t;
        }
        match self.peek() {
            "(" => {
                self.bump();
                let mut args = Vec::new();
                while !self.done() && self.peek() != ")" {
                    args.push(self.type_expr());
                    if !self.eat(",") {
                        break;
                    }
                }
                self.eat(")");
                if args.len() == 1 {
                    let mut t = args.pop().unwrap_or_default();
                    t.refd |= refd;
                    t
                } else {
                    Ty { head: "(tuple)".into(), args, refd }
                }
            }
            "[" => {
                self.bump();
                let inner = self.type_expr();
                self.skip_until(|s| s == "]");
                self.eat("]");
                Ty { head: "[]".into(), args: vec![inner], refd }
            }
            _ => {
                if self.at(0).map(|t| t.kind) != Some(TokKind::Ident) {
                    // not a type we understand: skip one balanced token
                    self.skip_balanced();
                    return Ty { head: String::new(), args: Vec::new(), refd };
                }
                let mut head = self.ident_or("_");
                loop {
                    if self.peek() == "::" && self.at(1).is_some_and(|t| t.kind == TokKind::Ident) {
                        self.bump();
                        head = self.ident_or("_");
                    } else {
                        break;
                    }
                }
                let mut args = Vec::new();
                if self.peek() == "<" {
                    self.bump();
                    while !self.done() {
                        match self.peek() {
                            ">" => {
                                self.bump();
                                break;
                            }
                            "," => {
                                self.bump();
                            }
                            _ => {
                                if self.at(0).is_some_and(|t| {
                                    t.kind == TokKind::Lifetime
                                        || t.kind == TokKind::Int
                                        || t.text(self.src) == "'"
                                }) {
                                    self.bump();
                                } else if self.at(0).is_some_and(|t| t.kind == TokKind::Ident)
                                    || matches!(self.peek(), "&" | "(" | "[")
                                {
                                    args.push(self.type_expr());
                                } else {
                                    self.bump();
                                }
                            }
                        }
                    }
                }
                // `Fn(..) -> T` sugar and fn pointers: consume the tail.
                if matches!(head.as_str(), "Fn" | "FnMut" | "FnOnce" | "fn") && self.peek() == "(" {
                    self.skip_balanced();
                    if self.eat("->") {
                        args.push(self.type_expr());
                    }
                }
                Ty { head, args, refd }
            }
        }
    }

    // -- blocks & statements ----------------------------------------------

    fn block(&mut self) -> Block {
        let start = self.pos;
        self.eat("{");
        let mut stmts = Vec::new();
        while !self.done() && self.peek() != "}" {
            stmts.push(self.stmt());
        }
        self.eat("}");
        Block { stmts, toks: start..self.pos }
    }

    fn stmt(&mut self) -> Stmt {
        // leading attributes on statements
        while self.peek() == "#" {
            self.bump();
            if self.peek() == "[" {
                self.skip_balanced();
            }
        }
        if self.eat(";") {
            // stray empty statement
            let id = self.mk(ExprKind::Opaque, self.pos.saturating_sub(1)..self.pos, self.line());
            return Stmt::Expr { expr: id, semi: true };
        }
        match self.peek() {
            "let" => {
                let line = self.line();
                self.bump();
                let names = self.pattern_names(&["=", ":", ";"]);
                let ty = if self.eat(":") { Some(self.type_expr()) } else { None };
                let init = if self.eat("=") { Some(self.expr(true)) } else { None };
                if self.peek() == "else" {
                    // let-else
                    self.bump();
                    if self.peek() == "{" {
                        self.block();
                    }
                }
                self.eat(";");
                Stmt::Let { names, ty, init, line }
            }
            "fn" | "struct" | "enum" | "impl" | "trait" | "mod" | "use" | "type" | "macro_rules"
            | "const" | "static" => {
                // `const` could also start a const-block expr; in this
                // workspace const-in-fn is always an item.
                Stmt::Item(Box::new(self.item(false)))
            }
            _ => {
                let expr = self.expr(true);
                let semi = self.eat(";");
                Stmt::Expr { expr, semi }
            }
        }
    }

    /// Consume a pattern, collecting likely binding names, stopping at any
    /// of `stops` at depth 0. A name is an identifier that is not a path
    /// segment prefix (`X::`), not a struct/variant head (`X(`/`X {`,
    /// detected by a following `(`/`{`/`::`), and not a field key
    /// (`name:` inside braces is kept — shorthand bindings).
    fn pattern_names(&mut self, stops: &[&str]) -> Vec<String> {
        let mut names = Vec::new();
        let mut depth = 0i32;
        while let Some(t) = self.at(0) {
            let s = t.text(self.src);
            match s {
                "(" | "[" | "{" | "<" => depth += 1,
                ")" | "]" | "}" | ">" => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                _ => {}
            }
            if depth == 0 && stops.contains(&s) {
                break;
            }
            if t.kind == TokKind::Ident
                && !matches!(s, "ref" | "mut" | "box" | "_" | "true" | "false" | "None")
                && !s.chars().next().is_some_and(|c| c.is_ascii_uppercase())
                && self.text_at(1) != "::"
                && self.text_at(1) != "("
            {
                // `field: sub` inside a struct pattern — the key is not a
                // binding, the sub-pattern is. Only inside delimiters: at
                // depth 0 a following `:` is the let type annotation.
                if depth > 0 && self.text_at(1) == ":" && self.text_at(2) != ":" {
                    // skip key
                } else {
                    names.push(s.to_string());
                }
            }
            self.bump();
        }
        names
    }

    // -- expressions ------------------------------------------------------

    fn mk(&mut self, kind: ExprKind, toks: Range<usize>, line: u32) -> ExprId {
        self.exprs.push(Expr { kind, toks, line });
        // simlint: allow(R3) a source file with 4 billion expressions is unreachable
        ExprId((self.exprs.len() - 1) as u32)
    }

    /// Parse one expression. `allow_struct` disables struct-literal
    /// parsing in `if`/`while`/`for`/`match` headers.
    fn expr(&mut self, allow_struct: bool) -> ExprId {
        self.assign_expr(allow_struct)
    }

    fn assign_expr(&mut self, allow_struct: bool) -> ExprId {
        let start = self.pos;
        let line = self.line();
        let lhs = self.range_expr(allow_struct);
        let op = match self.peek() {
            "=" if self.text_at(1) != "=" => {
                self.bump();
                Some(None)
            }
            "+=" => {
                self.bump();
                Some(Some(BinOp::Add))
            }
            "-=" => {
                self.bump();
                Some(Some(BinOp::Sub))
            }
            "*=" => {
                self.bump();
                Some(Some(BinOp::Mul))
            }
            "/=" => {
                self.bump();
                Some(Some(BinOp::Div))
            }
            "%=" => {
                self.bump();
                Some(Some(BinOp::Rem))
            }
            "^=" | "|=" | "&=" => {
                self.bump();
                Some(Some(BinOp::Bit))
            }
            // `<<=` / `>>=` arrive as `<` `<` `=` — merge if adjacent.
            "<" | ">" if self.peek() == self.text_at(1) && self.text_at(2) == "=" && self.adjacent(0) && self.adjacent(1) => {
                self.bump();
                self.bump();
                self.bump();
                Some(Some(BinOp::Bit))
            }
            _ => None,
        };
        if let Some(op) = op {
            let rhs = self.assign_expr(allow_struct);
            self.mk(ExprKind::Assign { op, lhs, rhs }, start..self.pos, line)
        } else {
            lhs
        }
    }

    fn range_expr(&mut self, allow_struct: bool) -> ExprId {
        let start = self.pos;
        let line = self.line();
        if matches!(self.peek(), ".." | "..=") {
            self.bump();
            let hi = if self.starts_expr() { Some(self.or_expr(allow_struct)) } else { None };
            return self.mk(ExprKind::RangeLit(None, hi), start..self.pos, line);
        }
        let lo = self.or_expr(allow_struct);
        if matches!(self.peek(), ".." | "..=") {
            self.bump();
            let hi = if self.starts_expr() { Some(self.or_expr(allow_struct)) } else { None };
            return self.mk(ExprKind::RangeLit(Some(lo), hi), start..self.pos, line);
        }
        lo
    }

    /// Whether the current token can begin an expression operand.
    fn starts_expr(&self) -> bool {
        match self.at(0) {
            None => false,
            Some(t) => {
                let s = t.text(self.src);
                !matches!(s, ")" | "]" | "}" | "," | ";" | "=>" | "{") || s == "{"
            }
        }
    }

    /// Binary-operator spine, precedence-climbing. Levels (loose→tight):
    /// `||`, `&&`, comparisons, `|`, `^`, `&`, shifts, `+ -`, `* / %`.
    fn or_expr(&mut self, allow_struct: bool) -> ExprId {
        self.binary_level(0, allow_struct)
    }

    fn binary_level(&mut self, level: u8, allow_struct: bool) -> ExprId {
        if level >= 9 {
            return self.unary_expr(allow_struct);
        }
        let start = self.pos;
        let line = self.line();
        let mut lhs = self.binary_level(level + 1, allow_struct);
        loop {
            let Some((op, op_text, n_toks)) = self.binop_at_level(level) else { break };
            for _ in 0..n_toks {
                self.bump();
            }
            let rhs = self.binary_level(level + 1, allow_struct);
            lhs = self.mk(ExprKind::Binary { op, op_text, lhs, rhs }, start..self.pos, line);
        }
        lhs
    }

    /// Identify a binary operator of precedence `level` at the cursor.
    /// Returns (op, text, tokens to consume).
    fn binop_at_level(&self, level: u8) -> Option<(BinOp, &'static str, usize)> {
        let t = self.peek();
        let next = self.text_at(1);
        let adj = self.adjacent(0);
        match level {
            0 => (t == "|" && next == "|" && adj).then_some((BinOp::Logic, "||", 2)),
            1 => (t == "&" && next == "&" && adj).then_some((BinOp::Logic, "&&", 2)),
            2 => match (t, next, adj) {
                ("==", _, _) => Some((BinOp::Eq, "==", 1)),
                ("!=", _, _) => Some((BinOp::Eq, "!=", 1)),
                ("<", "=", true) => Some((BinOp::Cmp, "<=", 2)),
                (">", "=", true) => Some((BinOp::Cmp, ">=", 2)),
                ("<", n, _) if n != "<" => Some((BinOp::Cmp, "<", 1)),
                (">", n, _) if n != ">" => Some((BinOp::Cmp, ">", 1)),
                _ => None,
            },
            3 => (t == "|" && !(next == "|" && adj) && next != "=").then_some((BinOp::Bit, "|", 1)),
            4 => (t == "^").then_some((BinOp::Bit, "^", 1)),
            5 => (t == "&" && !(next == "&" && adj) && next != "=").then_some((BinOp::Bit, "&", 1)),
            6 => match (t, next, adj) {
                ("<", "<", true) if self.text_at(2) != "=" => Some((BinOp::Bit, "<<", 2)),
                (">", ">", true) if self.text_at(2) != "=" => Some((BinOp::Bit, ">>", 2)),
                _ => None,
            },
            7 => match t {
                "+" => Some((BinOp::Add, "+", 1)),
                "-" => Some((BinOp::Sub, "-", 1)),
                _ => None,
            },
            8 => match t {
                "*" => Some((BinOp::Mul, "*", 1)),
                "/" => Some((BinOp::Div, "/", 1)),
                "%" => Some((BinOp::Rem, "%", 1)),
                _ => None,
            },
            _ => None,
        }
    }

    fn unary_expr(&mut self, allow_struct: bool) -> ExprId {
        let start = self.pos;
        let line = self.line();
        match self.peek() {
            "-" | "!" | "*" => {
                self.bump();
                let inner = self.unary_expr(allow_struct);
                self.mk(ExprKind::Unary(inner), start..self.pos, line)
            }
            "&" => {
                self.bump();
                self.eat("mut");
                let inner = self.unary_expr(allow_struct);
                self.mk(ExprKind::Unary(inner), start..self.pos, line)
            }
            _ => self.postfix_expr(allow_struct),
        }
    }

    fn postfix_expr(&mut self, allow_struct: bool) -> ExprId {
        let start = self.pos;
        let line = self.line();
        let mut e = self.operand(allow_struct);
        loop {
            match self.peek() {
                "." => {
                    self.bump();
                    // `.await`, `.0`, `.name`, `.name(...)`, `.name::<T>(...)`
                    let name_line = self.line();
                    let name = if self.at(0).is_some_and(|t| {
                        t.kind == TokKind::Ident || t.kind == TokKind::Int || t.kind == TokKind::Float
                    }) {
                        let s = self.peek().to_string();
                        self.bump();
                        s
                    } else {
                        "_".to_string()
                    };
                    if self.peek() == "::" && self.text_at(1) == "<" {
                        self.bump();
                        self.skip_balanced();
                    }
                    if self.peek() == "(" {
                        let args = self.call_args();
                        e = self.mk(ExprKind::MethodCall { recv: e, name, name_line, args }, start..self.pos, line);
                    } else {
                        e = self.mk(ExprKind::Field { recv: e, name }, start..self.pos, line);
                    }
                }
                "(" => {
                    let args = self.call_args();
                    e = self.mk(ExprKind::Call { callee: e, args }, start..self.pos, line);
                }
                "[" => {
                    self.bump();
                    let index = self.expr(true);
                    self.eat("]");
                    e = self.mk(ExprKind::Index { recv: e, index }, start..self.pos, line);
                }
                "?" => {
                    self.bump();
                    e = self.mk(ExprKind::Try(e), start..self.pos, line);
                }
                "as" => {
                    let as_line = self.line();
                    self.bump();
                    let ty = self.type_expr();
                    e = self.mk(ExprKind::Cast { expr: e, ty, as_line }, start..self.pos, line);
                }
                _ => break,
            }
        }
        e
    }

    fn call_args(&mut self) -> Vec<ExprId> {
        self.eat("(");
        let mut args = Vec::new();
        while !self.done() && self.peek() != ")" {
            args.push(self.expr(true));
            if !self.eat(",") {
                break;
            }
        }
        self.eat(")");
        args
    }

    fn operand(&mut self, allow_struct: bool) -> ExprId {
        let start = self.pos;
        let line = self.line();
        let Some(tok) = self.at(0) else {
            return self.mk(ExprKind::Opaque, start..start, line);
        };
        match tok.kind {
            TokKind::Int | TokKind::Float | TokKind::Str | TokKind::Char => {
                let k = tok.kind;
                self.bump();
                self.mk(ExprKind::Lit(k), start..self.pos, line)
            }
            TokKind::Lifetime => {
                // loop label: `'outer: loop/while/for { .. }`
                self.bump();
                self.eat(":");
                self.operand(allow_struct)
            }
            _ => match self.peek() {
                "true" | "false" => {
                    self.bump();
                    self.mk(ExprKind::Lit(TokKind::Ident), start..self.pos, line)
                }
                "(" => {
                    self.bump();
                    let mut parts = Vec::new();
                    while !self.done() && self.peek() != ")" {
                        parts.push(self.expr(true));
                        if !self.eat(",") {
                            break;
                        }
                    }
                    self.eat(")");
                    self.mk(ExprKind::Tuple(parts), start..self.pos, line)
                }
                "[" => {
                    self.bump();
                    let mut parts = Vec::new();
                    while !self.done() && self.peek() != "]" {
                        parts.push(self.expr(true));
                        if !self.eat(",") && !self.eat(";") {
                            break;
                        }
                    }
                    self.eat("]");
                    self.mk(ExprKind::Array(parts), start..self.pos, line)
                }
                "{" => {
                    let b = self.block();
                    self.mk(ExprKind::Block(b), start..self.pos, line)
                }
                "unsafe" if self.text_at(1) == "{" => {
                    self.bump();
                    let b = self.block();
                    self.mk(ExprKind::Block(b), start..self.pos, line)
                }
                "if" => self.if_expr(),
                "match" => self.match_expr(),
                "while" => {
                    self.bump();
                    let cond = if self.eat("let") {
                        let _names = self.pattern_names(&["="]);
                        self.eat("=");
                        self.expr(false)
                    } else {
                        self.expr(false)
                    };
                    let body = self.block();
                    self.mk(ExprKind::While { cond, body }, start..self.pos, line)
                }
                "loop" => {
                    self.bump();
                    let body = self.block();
                    self.mk(ExprKind::Loop(body), start..self.pos, line)
                }
                "for" => {
                    self.bump();
                    let names = self.pattern_names(&["in"]);
                    self.eat("in");
                    let iter = self.expr(false);
                    let body = self.block();
                    self.mk(ExprKind::For { names, iter, body }, start..self.pos, line)
                }
                "return" | "break" => {
                    self.bump();
                    if self.at(0).is_some_and(|t| t.kind == TokKind::Lifetime) {
                        self.bump();
                    }
                    let v = if !matches!(self.peek(), ";" | "}" | ")" | "," | "]") && !self.done() {
                        Some(self.expr(allow_struct))
                    } else {
                        None
                    };
                    self.mk(ExprKind::Jump(v), start..self.pos, line)
                }
                "continue" => {
                    self.bump();
                    if self.at(0).is_some_and(|t| t.kind == TokKind::Lifetime) {
                        self.bump();
                    }
                    self.mk(ExprKind::Jump(None), start..self.pos, line)
                }
                "move" | "|" => {
                    self.eat("move");
                    let params = if self.eat("|") {
                        if self.adjacentish_close_pipe() {
                            self.eat("|");
                            Vec::new()
                        } else {
                            let names = self.pattern_names(&["|"]);
                            self.eat("|");
                            names
                        }
                    } else {
                        Vec::new()
                    };
                    let body = self.expr(allow_struct);
                    self.mk(ExprKind::Closure { params, body }, start..self.pos, line)
                }
                _ if tok.kind == TokKind::Ident || self.peek() == "::" || self.peek() == "<" => {
                    self.path_operand(allow_struct)
                }
                _ => {
                    // Unparseable: consume one balanced token and move on.
                    self.skip_balanced();
                    if self.pos == start {
                        self.bump();
                    }
                    self.mk(ExprKind::Opaque, start..self.pos, line)
                }
            },
        }
    }

    /// After consuming the opening `|` of a closure, is the parameter list
    /// empty (i.e. the very next token is the closing `|`)?
    fn adjacentish_close_pipe(&self) -> bool {
        self.peek() == "|"
    }

    fn if_expr(&mut self) -> ExprId {
        let start = self.pos;
        let line = self.line();
        self.bump(); // if
        let let_names = if self.eat("let") {
            let names = self.pattern_names(&["="]);
            self.eat("=");
            names
        } else {
            Vec::new()
        };
        let cond = self.expr(false);
        let then = self.block();
        let else_ = if self.eat("else") {
            if self.peek() == "if" {
                Some(self.if_expr())
            } else {
                let b_start = self.pos;
                let b_line = self.line();
                let b = self.block();
                Some(self.mk(ExprKind::Block(b), b_start..self.pos, b_line))
            }
        } else {
            None
        };
        self.mk(ExprKind::If { let_names, cond, then, else_ }, start..self.pos, line)
    }

    fn match_expr(&mut self) -> ExprId {
        let start = self.pos;
        let line = self.line();
        self.bump(); // match
        let scrut = self.expr(false);
        self.eat("{");
        let mut arms = Vec::new();
        while !self.done() && self.peek() != "}" {
            while self.peek() == "#" {
                self.bump();
                if self.peek() == "[" {
                    self.skip_balanced();
                }
            }
            let names = self.pattern_names(&["=>"]);
            self.eat("=>");
            let body = self.expr(true);
            self.eat(",");
            arms.push((names, body));
        }
        self.eat("}");
        self.mk(ExprKind::Match { scrut, arms }, start..self.pos, line)
    }

    fn path_operand(&mut self, allow_struct: bool) -> ExprId {
        let start = self.pos;
        let line = self.line();
        let mut segs: Vec<String> = Vec::new();
        if self.at(0).is_some_and(|t| t.kind == TokKind::Ident) {
            segs.push(self.peek().to_string());
            self.bump();
        }
        loop {
            if self.peek() == "::" {
                if self.text_at(1) == "<" {
                    // turbofish
                    self.bump();
                    self.skip_balanced();
                } else if self.at(1).is_some_and(|t| t.kind == TokKind::Ident) {
                    self.bump();
                    segs.push(self.peek().to_string());
                    self.bump();
                } else {
                    self.bump();
                }
            } else {
                break;
            }
        }
        // macro invocation
        if self.peek() == "!" && matches!(self.text_at(1), "(" | "[" | "{") {
            self.bump();
            let inner_start = self.pos + 1;
            self.skip_balanced();
            let inner_end = self.pos.saturating_sub(1);
            let name = segs.last().cloned().unwrap_or_default();
            return self.mk(ExprKind::MacroCall { name, inner: inner_start..inner_end }, start..self.pos, line);
        }
        // struct literal: `Path { field: ..., }` — heads are capitalized
        // in this workspace, which disambiguates from block-starts.
        if allow_struct
            && self.peek() == "{"
            && segs
                .last()
                .is_some_and(|s| s.chars().next().is_some_and(|c| c.is_ascii_uppercase()))
        {
            self.bump();
            let mut fields = Vec::new();
            while !self.done() && self.peek() != "}" {
                if matches!(self.peek(), ".." | "..=") {
                    // struct update syntax
                    self.bump();
                    if self.peek() != "}" {
                        self.expr(true);
                    }
                    break;
                }
                let fname = self.ident_or("_");
                if self.eat(":") {
                    let v = self.expr(true);
                    fields.push((fname, v));
                } else {
                    // shorthand: `Struct { name }` — value is a path expr
                    let span = self.pos.saturating_sub(1)..self.pos;
                    let v = self.mk(ExprKind::Path(vec![fname.clone()]), span, line);
                    fields.push((fname, v));
                }
                if !self.eat(",") {
                    break;
                }
            }
            self.eat("}");
            let path = segs.last().cloned().unwrap_or_default();
            return self.mk(ExprKind::StructLit { path, fields }, start..self.pos, line);
        }
        if segs.is_empty() {
            // lone `::` or `<...>` qualified path — treat as opaque
            self.skip_balanced();
            if self.pos == start {
                self.bump();
            }
            return self.mk(ExprKind::Opaque, start..self.pos, line);
        }
        self.mk(ExprKind::Path(segs), start..self.pos, line)
    }
}

// ---------------------------------------------------------------------------
// Walking helpers shared by the analyses
// ---------------------------------------------------------------------------

/// Visit every function definition in the item tree (including methods in
/// impl/trait blocks and fns in nested modules), with the impl/trait
/// context: (trait head, self type head) when inside an impl.
pub fn visit_fns<'a>(
    items: &'a [Item],
    ctx: Option<(&'a Option<String>, &'a str)>,
    f: &mut impl FnMut(&'a FnDef, Option<(&'a Option<String>, &'a str)>, bool),
) {
    for item in items {
        match &item.kind {
            ItemKind::Fn(def) => f(def, ctx, item.in_test),
            ItemKind::Mod(_, Some(inner)) => visit_fns(inner, ctx, f),
            ItemKind::Impl(trait_head, self_ty, inner) => {
                visit_fns(inner, Some((trait_head, self_ty.as_str())), f);
            }
            ItemKind::Trait(_, inner) => visit_fns(inner, ctx, f),
            _ => {}
        }
    }
}

/// Visit every struct definition in the item tree.
pub fn visit_structs<'a>(items: &'a [Item], f: &mut impl FnMut(&'a StructDef)) {
    for item in items {
        match &item.kind {
            ItemKind::Struct(def) => f(def),
            ItemKind::Mod(_, Some(inner)) => visit_structs(inner, f),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(src: &str) {
        let (toks, ast) = parse(src);
        assert_eq!(ast.validate(), Ok(()), "coverage: {src:?}");
        assert_eq!(ast.reassemble(src, &toks), src, "reassembly: {src:?}");
    }

    #[test]
    fn escaped_quote_char_literals_lex_as_one_token() {
        // `'\''` and `b'\''` once split into Char + stray Lifetime, which
        // desynchronised every later token's meaning.
        for src in ["let c = '\\'';", "let c = b'\\'';", "let c = '\\\\';", "let u = '\\u{1F600}';"] {
            let toks = tokenize(src);
            let chars: Vec<&str> =
                toks.iter().filter(|t| t.kind == TokKind::Char).map(|t| t.text(src)).collect();
            assert_eq!(chars.len(), 1, "{src:?} lexed as {toks:?}");
            assert!(chars[0].ends_with('\''), "{src:?} char token {:?}", chars[0]);
        }
    }

    #[test]
    fn enum_body_does_not_swallow_following_items() {
        // skip_until once raised depth on a `{` stop token, so an enum
        // consumed everything to the next top-level brace.
        let src = "enum E { A(u32), B { x: u64 } }\npub struct S { pub f: f64 }\nfn g() {}";
        let (_, ast) = parse(src);
        let kinds: Vec<&str> = ast
            .items
            .iter()
            .map(|i| match &i.kind {
                ItemKind::Enum(_) => "enum",
                ItemKind::Struct(_) => "struct",
                ItemKind::Fn(_) => "fn",
                _ => "?",
            })
            .collect();
        assert_eq!(kinds, ["enum", "struct", "fn"]);
        roundtrip(src);
    }

    #[test]
    fn tokenizer_spans_cover_nontrivia() {
        let src = "fn f() -> u64 { 1.5e-3; a..b; x.0; m >>= 2 }";
        let toks = tokenize(src);
        for w in toks.windows(2) {
            assert!(w[0].hi <= w[1].lo, "overlap: {w:?}");
        }
        let texts: Vec<&str> = toks.iter().map(|t| t.text(src)).collect();
        assert!(texts.contains(&"1.5e-3"));
        assert!(texts.contains(&".."));
        assert!(texts.contains(&"->"));
    }

    #[test]
    fn simple_fn_parses() {
        let src = "pub fn charge(watts: f64, secs: f64) -> f64 { watts * secs }";
        let (_, ast) = parse(src);
        let ItemKind::Fn(f) = &ast.items[0].kind else { panic!("not a fn") };
        assert_eq!(f.name, "charge");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0].ty.head, "f64");
        assert_eq!(f.ret.as_ref().map(|t| t.head.as_str()), Some("f64"));
        let body = f.body.as_ref().expect("body");
        assert_eq!(body.stmts.len(), 1);
        roundtrip(src);
    }

    #[test]
    fn struct_fields_parse() {
        let src = "struct S { pub a: f64, b: Vec<HashMap<u8, u8>>, }";
        let (_, ast) = parse(src);
        let ItemKind::Struct(s) = &ast.items[0].kind else { panic!("not a struct") };
        assert_eq!(s.fields.len(), 2);
        assert_eq!(s.fields[1].1.head, "Vec");
        assert_eq!(s.fields[1].1.args[0].head, "HashMap");
        roundtrip(src);
    }

    #[test]
    fn impl_methods_and_trait_heads() {
        let src = "impl Experiment for FaultSweep { fn run(&self) -> u8 { 0 } }";
        let (_, ast) = parse(src);
        let ItemKind::Impl(trait_head, self_ty, inner) = &ast.items[0].kind else { panic!() };
        assert_eq!(trait_head.as_deref(), Some("Experiment"));
        assert_eq!(self_ty, "FaultSweep");
        assert!(matches!(inner[0].kind, ItemKind::Fn(_)));
        roundtrip(src);
    }

    #[test]
    fn generics_shift_ambiguity() {
        roundtrip("fn f(x: Vec<Vec<u8>>) -> u64 { (x.len() as u64) >> 2 }");
        roundtrip("fn g(a: u64) -> u64 { let mut z = a; z <<= 3; z >>= 1; z }");
        roundtrip("fn h(a: u64, b: u64) -> bool { a >= b && a <= b || a != b }");
    }

    #[test]
    fn control_flow_parses() {
        roundtrip(
            "fn f(xs: &[u64]) -> u64 {\n    let mut s = 0;\n    'outer: for (i, x) in xs.iter().enumerate() {\n        if *x > 3 { s += x; } else if *x == 0 { break 'outer; } else { continue; }\n    }\n    match s { 0 => 1, n if n > 10 => n, _ => 2 }\n}",
        );
    }

    #[test]
    fn closures_and_ranges() {
        roundtrip("fn f() -> u64 { (0..10).map(|x| x * 2).filter(|&x| x > 1).sum() }");
        roundtrip("fn g() { let h = move || 3; let _ = h(); }");
    }

    #[test]
    fn struct_literals_and_update() {
        roundtrip("fn f() -> S { S { a: 1, b: 2, ..Default::default() } }");
        roundtrip("fn g(a: u8) -> S { S { a } }");
        // no struct literal in `if` headers: `S {` there is a block
        roundtrip("fn h(s: u8) { if s == 1 { foo(); } }");
    }

    #[test]
    fn macros_are_opaque_but_lossless() {
        roundtrip("fn f() { assert!(x > 0, \"bad {x}\"); let v = vec![1, 2, 3]; write!(out, \"{}\", v.len()).ok(); }");
        roundtrip("macro_rules! m { ($x:expr) => { $x + 1 }; }");
    }

    #[test]
    fn cfg_test_items_are_marked() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests { fn b() {} }\nmod proptests { fn c() {} }";
        let (_, ast) = parse(src);
        assert!(!ast.items[0].in_test);
        let ItemKind::Mod(_, Some(inner)) = &ast.items[1].kind else { panic!() };
        assert!(inner[0].in_test);
        let ItemKind::Mod(_, Some(inner2)) = &ast.items[2].kind else { panic!() };
        assert!(inner2[0].in_test, "mod proptests is test code");
        roundtrip(src);
    }

    #[test]
    fn let_else_and_if_let() {
        roundtrip("fn f(o: Option<u8>) -> u8 { let Some(x) = o else { return 0; }; if let Some(y) = o { y } else { x } }");
    }

    #[test]
    fn opaque_recovery_is_lossless() {
        // deliberately weird constructs the parser does not model
        roundtrip("const X: &[u8] = b\"abc\";\nstatic Y: u8 = 1;\ntype Z = fn(u8) -> u8;\nextern crate std;");
        roundtrip("fn f() { let p = &raw const X; }");
    }

    #[test]
    fn unit_struct_and_tuple_struct() {
        let src = "struct A;\nstruct B(pub f64, u64);";
        let (_, ast) = parse(src);
        let ItemKind::Struct(b) = &ast.items[1].kind else { panic!() };
        assert_eq!(b.fields[0].0, "0");
        assert_eq!(b.fields[0].1.head, "f64");
        roundtrip(src);
    }

    #[test]
    fn method_chain_shape() {
        let src = "fn f(m: &B) -> f64 { m.vals().iter().map(|v| v.x).sum::<f64>() / 2.0 }";
        let (_, ast) = parse(src);
        let ItemKind::Fn(f) = &ast.items[0].kind else { panic!() };
        let body = f.body.as_ref().unwrap();
        let Stmt::Expr { expr, semi: false } = &body.stmts[0] else { panic!("tail expr") };
        let ExprKind::Binary { op: BinOp::Div, .. } = &ast.expr(*expr).kind else { panic!("div") };
        roundtrip(src);
    }
}
