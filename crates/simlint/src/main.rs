//! CLI for the workspace determinism & unit-safety lint.
//!
//! ```text
//! cargo run -p edison-simlint -- check                     # gate (exit 1 on new violations)
//! cargo run -p edison-simlint -- check --update-baseline   # lock in cleanups
//! cargo run -p edison-simlint -- check --list              # dump every grandfathered finding
//! cargo run -p edison-simlint -- check --json              # machine-readable report
//! cargo run -p edison-simlint -- explain R7                # long-form rule documentation
//! ```

use edison_simlint::rules::{rule_explain, rule_summary};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command = None;
    let mut update = false;
    let mut list = false;
    let mut json = false;
    let mut explain_rule: Option<String> = None;
    let mut root_arg: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "check" if command.is_none() => command = Some("check"),
            "explain" if command.is_none() => {
                command = Some("explain");
                match it.next() {
                    Some(r) => explain_rule = Some(r.clone()),
                    None => return usage("`explain` needs a rule id (R1..R8)"),
                }
            }
            // `cargo lint-gate -- --json` forwards the separator itself.
            "--" => {}
            "--update-baseline" => update = true,
            "--list" => list = true,
            "--json" => json = true,
            "--root" => match it.next() {
                Some(p) => root_arg = Some(PathBuf::from(p)),
                None => return usage("--root needs a path"),
            },
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    if command == Some("explain") {
        let rule = explain_rule.unwrap_or_default();
        return match rule_explain(&rule) {
            Some(doc) => {
                println!("{rule}: {}", rule_summary(&rule));
                println!();
                println!("{doc}");
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("simlint: unknown rule {rule:?} (known: R1..R8)");
                ExitCode::from(2)
            }
        };
    }
    if command != Some("check") {
        return usage("expected the `check` or `explain` subcommand");
    }

    let root = match root_arg.or_else(|| {
        std::env::current_dir().ok().and_then(|d| edison_simlint::find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("simlint: could not find a workspace root (run from inside the repo or pass --root)");
            return ExitCode::from(2);
        }
    };
    if !root.join("Cargo.toml").is_file() {
        // A bad --root must not silently scan zero files and pass.
        eprintln!("simlint: {} is not a workspace root (no Cargo.toml)", root.display());
        return ExitCode::from(2);
    }

    if update {
        return match edison_simlint::update_baseline(&root) {
            Ok(scan) => {
                let total: usize = scan.counts.values().flat_map(|m| m.values()).sum();
                println!(
                    "simlint: baseline rewritten with {} grandfathered finding(s) across {} file(s)",
                    total, scan.files_scanned
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("simlint: {e}");
                ExitCode::from(2)
            }
        };
    }

    let report = match edison_simlint::check(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("simlint: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        // Machine-readable mode: the JSON document is the whole contract, so the
        // human-oriented chatter stays off stdout.
        println!("{}", edison_simlint::report_to_json(&report));
        return if report.passed() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }

    if list {
        for f in &report.scan.findings {
            println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.msg);
        }
    }

    let total: usize = report.scan.counts.values().flat_map(|m| m.values()).sum();
    println!(
        "simlint: scanned {} file(s); {} finding(s) against the committed budget",
        report.scan.files_scanned, total
    );

    if !report.stale.is_empty() {
        println!("simlint: {} baseline entr(ies) are stale (cleanups not locked in):", report.stale.len());
        for s in &report.stale {
            println!("  {} {}: baseline {} -> now {}", s.rule, s.file, s.baseline, s.current);
        }
        println!("simlint: run `cargo run -p edison-simlint -- check --update-baseline` to ratchet down");
    }

    if !report.rot.is_empty() {
        eprintln!("simlint: {} baseline entr(ies) name files that no longer exist:", report.rot.len());
        for (rule, file) in &report.rot {
            eprintln!("  {rule} {file}");
        }
        eprintln!("simlint: rerun with --update-baseline to drop the dead entries");
    }

    if report.passed() {
        println!("simlint: OK");
        ExitCode::SUCCESS
    } else {
        if !report.regressions.is_empty() {
            eprintln!("simlint: FAIL — new violations over the committed budget:");
            for r in &report.regressions {
                eprintln!("  {} {}: baseline {} -> now {}  ({})", r.rule, r.file, r.baseline, r.current, rule_summary(&r.rule));
            }
            for f in report.regressed_findings() {
                eprintln!("  {}:{}: [{}] {}", f.file, f.line, f.rule, f.msg);
            }
            eprintln!("simlint: fix the new sites (preferred), annotate a vetted site with `// simlint: allow(Rn) reason`,");
            eprintln!("simlint: or — only for a conscious grandfathering — rerun with --update-baseline.");
        }
        ExitCode::FAILURE
    }
}

fn usage(error: &str) -> ExitCode {
    if !error.is_empty() {
        eprintln!("simlint: {error}");
    }
    eprintln!("usage: edison-simlint check [--update-baseline] [--list] [--json] [--root <workspace>]");
    eprintln!("       edison-simlint explain <rule>");
    eprintln!();
    eprintln!("rules:");
    for id in edison_simlint::rules::RULE_IDS {
        eprintln!("  {id}: {}", rule_summary(id));
    }
    if error.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
