//! R7 — determinism taint tracking.
//!
//! v1's R1 says "a `HashMap` anywhere in sim code is suspicious". This
//! pass says something sharper: *this* HashMap's iteration order (or this
//! wall-clock read, ambient RNG draw, or thread id) **reaches an exported
//! artefact** — a `Telemetry` sink, a `Report`/CSV writer, or the return
//! value of an `Experiment::run`. A keyed-only map vetted with
//! `allow(R1)` stays legal right up until someone iterates it into a
//! metric, at which point R7 fires even though R1 is suppressed.
//!
//! ### Model
//!
//! Taint is a pair of bits per value: *source-tainted* (derives from a
//! nondeterminism source) and *param-tainted* (derives from a function
//! parameter). Per function we evaluate the body once, propagating both
//! bits through lets, assignments, arithmetic, method chains, `for`
//! loops and calls; the param bit yields an interprocedural summary —
//!
//! * `returns_source`: returns a source-tainted value outright,
//! * `taints_through`: a tainted argument reaches the return value,
//! * `sinks_params`: an argument reaches a sink inside the callee,
//!
//! — and summaries are iterated to a fixpoint per crate (call resolution
//! is by function name within the crate, matching the issue's
//! "across function calls within a crate" scope). Findings are emitted
//! where source taint meets a sink: directly, or at a call site whose
//! callee `sinks_params`.
//!
//! ### Sanitizers
//!
//! Order-insensitive reductions (`len`, `count`, `min`, `max`,
//! `contains*`, `get`, `is_empty`) drop the taint, as does collecting
//! into / binding as a `BTreeMap`/`BTreeSet` or an explicit `sort*()`
//! call on the binding. Float `sum`/`fold` deliberately do **not**: float
//! addition is non-associative, so summing a hash iteration is exactly
//! the bug class R7 exists for.
//!
//! ### simasync sources
//!
//! The deterministic async layer introduces values that encode *scheduler
//! state* rather than model state: a [`TaskId`] from `spawn` counts how
//! many tasks were spawned before this one, a `select2` winner records
//! which future won a race, and `try_recv` reports whether a message had
//! arrived *at poll time*. All three are stable for a fixed seed but
//! shift under any refactor that reorders spawns or wakes — exactly the
//! silent-export-drift R7 exists to catch — so they are sources here.
//! Channels must not launder taint either: on `let (tx, rx) = mpsc()`
//! (or `oneshot`/`channel`) the pair is remembered, and a tainted
//! `tx.send(v)` re-emerges tainted from the matching `rx.recv()`.
//!
//! Known blind spots (documented, not bugs): taint through struct-field
//! writes, through `if`/`match` *values* (their bodies are still
//! scanned), and through macro invocations (`write!`-family formatting is
//! invisible; raw sources inside macros are still caught by R1).
//!
//! [`TaskId`]: ../../edison_simasync/struct.TaskId.html

use crate::index::{blocks, children, FileUnit, Index};
use crate::parse::{self, Block, ExprId, ExprKind, FnDef, Stmt};
use crate::rules::Finding;
use std::collections::BTreeMap;

/// Iteration methods whose order is hasher-randomised on a hash
/// collection receiver.
const ITER_SOURCES: [&str; 8] =
    ["iter", "iter_mut", "into_iter", "keys", "values", "values_mut", "drain", "entry_iter"];

/// Method names that end order-sensitivity: the result does not depend on
/// iteration order.
const SANITIZERS: [&str; 9] =
    ["len", "count", "is_empty", "contains", "contains_key", "get", "min", "max", "capacity"];

/// Telemetry / recorder methods — a tainted argument is an exported
/// nondeterministic artefact. (`Telemetry` and `MetricsRegistry` in
/// `simtel`, plus the shared `record` verb.)
const SINK_METHODS: [&str; 8] =
    ["counter_add", "counter_inc", "gauge_set", "observe", "series_push", "record", "record_into", "write_record"];

/// simasync method results whose value encodes scheduler state (stable
/// per seed, but silently shifted by any spawn/wake reordering): the
/// `TaskId` from a spawn counts prior spawns; `try_recv` snapshots
/// whether a message had arrived at poll time.
const ASYNC_SOURCE_METHODS: [(&str, &str); 3] = [
    ("spawn", "task spawn order (TaskId)"),
    ("spawn_and_drain", "task spawn order (TaskId)"),
    ("try_recv", "try_recv poll-time arrival state"),
];

/// Channel constructors returning a `(sender, receiver)` pair; a
/// tuple-destructuring `let` on one links the two bindings so `send`
/// taint re-emerges from `recv`.
const CHANNEL_CTORS: [&str; 3] = ["mpsc", "oneshot", "channel"];

/// Free/assoc functions that render report artefacts.
const SINK_FNS: [&str; 3] = ["table", "series_table", "trim_float"];

/// Struct literals whose fields are report payloads.
const SINK_STRUCTS: [&str; 3] = ["Comparison", "Series", "Report"];

/// What one function does with taint, learned by fixpoint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Summary {
    /// Returns a source-tainted value even with clean arguments.
    pub returns_source: bool,
    /// Tainted arguments reach the return value.
    pub taints_through: bool,
    /// Arguments reach a sink inside the function.
    pub sinks_params: bool,
}

/// Per-crate summaries: fn name → merged summary.
pub type Summaries = BTreeMap<String, Summary>;

/// Taint state of one value.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Taint {
    /// Which nondeterminism source this derives from, if any.
    source: Option<&'static str>,
    /// Derives from a function parameter.
    param: bool,
}

impl Taint {
    fn clean() -> Taint {
        Taint::default()
    }
    fn or(self, other: Taint) -> Taint {
        Taint { source: self.source.or(other.source), param: self.param || other.param }
    }
    fn is_sourced(self) -> bool {
        self.source.is_some()
    }
}

/// Compute fixpoint summaries for one crate's files.
pub fn summarize_crate(files: &[&FileUnit], ix: &Index) -> Summaries {
    let mut summaries = Summaries::new();
    for _round in 0..5 {
        let mut next = summaries.clone();
        for unit in files {
            parse::visit_fns(&unit.ast.items, None, &mut |f, ctx, in_test| {
                if in_test || f.body.is_none() {
                    return;
                }
                let (summary, _) = eval_fn(unit, ix, f, ctx.map(|(_, st)| st), &summaries, false);
                let entry = next.entry(f.name.clone()).or_default();
                entry.returns_source |= summary.returns_source;
                entry.taints_through |= summary.taints_through;
                entry.sinks_params |= summary.sinks_params;
            });
        }
        if next == summaries {
            break;
        }
        summaries = next;
    }
    summaries
}

/// Run R7 over one file given its crate's summaries. Findings come back
/// un-vetted; the caller applies allow markers.
pub fn check_file(unit: &FileUnit, ix: &Index, summaries: &Summaries) -> Vec<Finding> {
    let mut findings = Vec::new();
    if unit.testish {
        return findings;
    }
    parse::visit_fns(&unit.ast.items, None, &mut |f, ctx, in_test| {
        if in_test || f.body.is_none() {
            return;
        }
        let (_, mut fnd) = eval_fn(unit, ix, f, ctx.map(|(_, st)| st), summaries, true);
        findings.append(&mut fnd);
    });
    findings
}

/// Evaluate one function body: returns its summary, and (when `emit`)
/// the findings where source taint met a sink.
fn eval_fn(
    unit: &FileUnit,
    ix: &Index,
    f: &FnDef,
    self_ty: Option<&str>,
    summaries: &Summaries,
    emit: bool,
) -> (Summary, Vec<Finding>) {
    let mut cx = Cx {
        unit,
        ix,
        summaries,
        taints: BTreeMap::new(),
        hashy: BTreeMap::new(),
        chan_peer: BTreeMap::new(),
        self_ty,
        ret: Taint::clean(),
        sinks_params: false,
        emit,
        findings: Vec::new(),
        is_experiment_run: f.name == "run"
            && self_ty.is_some_and(|st| ix.is_experiment_impl(&unit.krate, st)),
    };
    for p in &f.params {
        if p.name != "self" && p.name != "_" {
            cx.taints.insert(p.name.clone(), Taint { source: None, param: true });
            if is_hash_head(&p.ty.head) {
                cx.hashy.insert(p.name.clone(), true);
            }
        }
    }
    let Some(body) = f.body.as_ref() else {
        // Trait signatures and extern fns carry no body; nothing to learn.
        return (Summary::default(), Vec::new());
    };
    let tail = cx.block(body);
    let ret = cx.ret.or(tail);
    if cx.is_experiment_run && ret.is_sourced() {
        let src = ret.source.unwrap_or("a nondeterminism source");
        cx.findings.push(Finding {
            rule: "R7",
            file: unit.rel.clone(),
            line: f.line,
            msg: format!("Experiment::run for {} returns a value derived from {src}", self_ty.unwrap_or("?")),
        });
    }
    let summary = Summary {
        returns_source: ret.is_sourced(),
        taints_through: ret.param,
        sinks_params: cx.sinks_params,
    };
    (summary, cx.findings)
}

fn is_hash_head(head: &str) -> bool {
    head == "HashMap" || head == "HashSet"
}

struct Cx<'a> {
    unit: &'a FileUnit,
    ix: &'a Index,
    summaries: &'a Summaries,
    /// binding name → taint.
    taints: BTreeMap<String, Taint>,
    /// binding name → is a hash collection.
    hashy: BTreeMap<String, bool>,
    /// channel-pair bindings: each side of a `let (tx, rx) = mpsc()`
    /// destructure maps to the other, so `send` taints the receiver.
    chan_peer: BTreeMap<String, String>,
    self_ty: Option<&'a str>,
    /// union of `return`-ed taints.
    ret: Taint,
    /// a param-tainted value reached a sink.
    sinks_params: bool,
    emit: bool,
    findings: Vec<Finding>,
    /// this fn is `run` in an `impl Experiment for …` block.
    is_experiment_run: bool,
}

impl<'a> Cx<'a> {
    fn sink_hit(&mut self, taint: Taint, line: u32, sink: &str) {
        if let Some(src) = taint.source {
            if self.emit {
                self.findings.push(Finding {
                    rule: "R7",
                    file: self.unit.rel.clone(),
                    line,
                    msg: format!("value derived from {src} flows into {sink}"),
                });
            }
        }
        if taint.param {
            self.sinks_params = true;
        }
    }

    /// Walk a block; returns the tail expression's taint.
    fn block(&mut self, b: &Block) -> Taint {
        let mut tail = Taint::clean();
        for (i, stmt) in b.stmts.iter().enumerate() {
            tail = Taint::clean();
            match stmt {
                Stmt::Let { names, ty, init, .. } => {
                    let mut t = init.map(|e| self.eval(e)).unwrap_or_default();
                    let mut hashy = init.is_some_and(|e| self.is_hash(e));
                    if let Some(ann) = ty {
                        if is_hash_head(&ann.head) {
                            hashy = true;
                        }
                        // binding into an ordered collection re-sorts:
                        // iteration-order taint does not survive a BTree
                        if ann.head.starts_with("BTree") {
                            t = Taint { source: None, param: t.param };
                        }
                    }
                    for name in names {
                        self.taints.insert(name.clone(), t);
                        self.hashy.insert(name.clone(), hashy);
                    }
                    // `let (tx, rx) = mpsc()` — link the pair so a
                    // tainted send re-emerges from the matching recv
                    if names.len() == 2 && init.is_some_and(|e| self.is_channel_ctor(e)) {
                        self.chan_peer.insert(names[0].clone(), names[1].clone());
                        self.chan_peer.insert(names[1].clone(), names[0].clone());
                    }
                }
                Stmt::Expr { expr, semi } => {
                    let t = self.eval(*expr);
                    if !semi && i + 1 == b.stmts.len() {
                        tail = t;
                    }
                }
                Stmt::Item(_) => {}
            }
        }
        tail
    }

    /// Is this expression a call to a channel constructor returning a
    /// `(sender, receiver)` pair?
    fn is_channel_ctor(&self, id: ExprId) -> bool {
        let expr = self.unit.ast.expr(id);
        if let ExprKind::Call { callee, .. } = &expr.kind {
            if let ExprKind::Path(segs) = &self.unit.ast.expr(*callee).kind {
                return segs
                    .last()
                    .is_some_and(|s| CHANNEL_CTORS.contains(&s.as_str()));
            }
        }
        false
    }

    /// Is this expression a hash collection (so its iteration methods are
    /// nondeterminism sources)?
    fn is_hash(&self, id: ExprId) -> bool {
        let expr = self.unit.ast.expr(id);
        match &expr.kind {
            ExprKind::Path(segs) => match segs.as_slice() {
                [one] => self.hashy.get(one).copied().unwrap_or(false),
                _ => false,
            },
            ExprKind::Field { recv, name } => {
                let recv_expr = self.unit.ast.expr(*recv);
                let ty = match (&recv_expr.kind, self.self_ty) {
                    (ExprKind::Path(segs), Some(st)) if segs.as_slice() == ["self"] => {
                        self.ix.field_ty(&self.unit.krate, st, name)
                    }
                    _ => self.ix.field_ty_any(&self.unit.krate, name),
                };
                ty.is_some_and(|t| is_hash_head(&t.head))
            }
            ExprKind::Call { callee, .. } => {
                let callee_expr = self.unit.ast.expr(*callee);
                if let ExprKind::Path(segs) = &callee_expr.kind {
                    segs.len() >= 2
                        && is_hash_head(&segs[0])
                        && matches!(segs[1].as_str(), "new" | "with_capacity" | "from" | "default")
                } else {
                    false
                }
            }
            ExprKind::Unary(inner) | ExprKind::Try(inner) => self.is_hash(*inner),
            ExprKind::Tuple(parts) if parts.len() == 1 => self.is_hash(parts[0]),
            ExprKind::MethodCall { recv, name, .. } if name == "clone" => self.is_hash(*recv),
            _ => false,
        }
    }

    /// Evaluate an expression's taint, emitting findings at sinks.
    fn eval(&mut self, id: ExprId) -> Taint {
        let expr = self.unit.ast.expr(id).clone();
        match &expr.kind {
            ExprKind::Lit(_) => Taint::clean(),
            ExprKind::Path(segs) => match segs.as_slice() {
                [one] => self.taints.get(one).copied().unwrap_or_default(),
                _ => Taint::clean(),
            },
            ExprKind::Field { recv, .. } => {
                // field reads propagate the receiver's taint (self.x is clean)
                self.eval(*recv)
            }
            ExprKind::Unary(a) | ExprKind::Try(a) | ExprKind::Cast { expr: a, .. } => self.eval(*a),
            ExprKind::Index { recv, index } => {
                let t = self.eval(*recv).or(self.eval(*index));
                t
            }
            ExprKind::Tuple(parts) | ExprKind::Array(parts) => {
                parts.iter().fold(Taint::clean(), |acc, p| acc.or(self.eval(*p)))
            }
            ExprKind::Binary { lhs, rhs, .. } => self.eval(*lhs).or(self.eval(*rhs)),
            ExprKind::Assign { lhs, rhs, op } => {
                let r = self.eval(*rhs);
                let lhs_expr = self.unit.ast.expr(*lhs).clone();
                if let ExprKind::Path(segs) = &lhs_expr.kind {
                    if let [one] = segs.as_slice() {
                        let prev = if op.is_some() {
                            self.taints.get(one).copied().unwrap_or_default()
                        } else {
                            Taint::clean()
                        };
                        self.taints.insert(one.clone(), prev.or(r));
                    }
                } else {
                    self.eval(*lhs);
                }
                Taint::clean()
            }
            ExprKind::MethodCall { recv, name, name_line, args } => {
                let recv_taint = self.eval(*recv);
                let arg_taint =
                    args.iter().fold(Taint::clean(), |acc, a| acc.or(self.eval(*a)));
                // sort() on a binding launders iteration-order taint
                if name.starts_with("sort") {
                    if let ExprKind::Path(segs) = &self.unit.ast.expr(*recv).kind.clone() {
                        if let [one] = segs.as_slice() {
                            if let Some(t) = self.taints.get_mut(one.as_str()) {
                                t.source = None;
                            }
                        }
                    }
                    return Taint::clean();
                }
                if SINK_METHODS.contains(&name.as_str()) {
                    self.sink_hit(arg_taint, *name_line, &format!("telemetry/report sink `.{name}()`"));
                }
                // `tx.send(v)` on a linked channel pair: the payload's
                // taint crosses to the receiver binding, so it is still
                // there when `rx.recv()` hands the value back
                if name == "send" {
                    if let ExprKind::Path(segs) = &self.unit.ast.expr(*recv).kind {
                        if let [one] = segs.as_slice() {
                            if let Some(peer) = self.chan_peer.get(one).cloned() {
                                let prev = self.taints.get(&peer).copied().unwrap_or_default();
                                self.taints.insert(peer, prev.or(arg_taint));
                            }
                        }
                    }
                }
                if SANITIZERS.contains(&name.as_str()) {
                    return Taint { source: None, param: recv_taint.param || arg_taint.param };
                }
                let mut t = recv_taint.or(arg_taint);
                if ITER_SOURCES.contains(&name.as_str()) && self.is_hash(*recv) {
                    t = t.or(Taint { source: Some("HashMap/HashSet iteration order"), param: false });
                }
                if let Some((_, src)) =
                    ASYNC_SOURCE_METHODS.iter().find(|(m, _)| *m == name.as_str())
                {
                    t = t.or(Taint { source: Some(src), param: false });
                }
                // crate-local callee summaries (methods resolved by name)
                if let Some(s) = self.summaries.get(name.as_str()) {
                    if s.sinks_params && arg_taint.is_sourced() {
                        self.sink_hit(arg_taint, *name_line, &format!("`{name}` (which sinks its arguments)"));
                    }
                    if s.sinks_params && arg_taint.param {
                        self.sinks_params = true;
                    }
                    if s.returns_source {
                        t = t.or(Taint { source: Some("a nondeterministic callee"), param: false });
                    }
                    if !s.taints_through && !ITER_SOURCES.contains(&name.as_str()) {
                        // callee provably drops its inputs' influence on
                        // the return value — but only trust that for
                        // crate-local fns we actually summarized
                    }
                }
                t
            }
            ExprKind::Call { callee, args } => {
                let arg_taint =
                    args.iter().fold(Taint::clean(), |acc, a| acc.or(self.eval(*a)));
                let callee_expr = self.unit.ast.expr(*callee).clone();
                let segs: Vec<String> = match &callee_expr.kind {
                    ExprKind::Path(segs) => segs.clone(),
                    _ => {
                        self.eval(*callee);
                        Vec::new()
                    }
                };
                let last = segs.last().map(|s| s.as_str()).unwrap_or("");
                let line = callee_expr.line;
                // ambient sources
                let source = match segs.iter().map(|s| s.as_str()).collect::<Vec<_>>().as_slice() {
                    [.., "Instant", "now"] => Some("Instant::now (wall clock)"),
                    [.., "SystemTime", "now"] => Some("SystemTime::now (wall clock)"),
                    [.., "thread_rng"] | [.., "rand", "random"] | [.., "random"] => {
                        Some("ambient (unseeded) randomness")
                    }
                    [.., "thread", "current"] | [.., "current"] if segs.len() >= 2 && segs[segs.len() - 2] == "thread" => {
                        Some("a thread id")
                    }
                    // the winner of a select race encodes wake order
                    [.., "select2"] => Some("a select2 winner (wake order)"),
                    _ => None,
                };
                if let Some(src) = source {
                    return Taint { source: Some(src), param: false };
                }
                if SINK_FNS.contains(&last) {
                    self.sink_hit(arg_taint, line, &format!("report writer `{last}()`"));
                }
                // `Comparison::new(...)` carries paper-vs-measured payload
                if segs.len() >= 2 && SINK_STRUCTS.contains(&segs[segs.len() - 2].as_str()) {
                    self.sink_hit(arg_taint, line, &format!("report payload `{}::{last}`", segs[segs.len() - 2]));
                }
                let mut t = arg_taint;
                if let Some(s) = self.summaries.get(last) {
                    if s.sinks_params {
                        self.sink_hit(arg_taint, line, &format!("`{last}` (which sinks its arguments)"));
                    }
                    if s.returns_source {
                        t = t.or(Taint { source: Some("a nondeterministic callee"), param: false });
                    }
                }
                t
            }
            ExprKind::StructLit { path, fields } => {
                let mut t = Taint::clean();
                for (_, v) in fields {
                    t = t.or(self.eval(*v));
                }
                if SINK_STRUCTS.contains(&path.as_str()) {
                    self.sink_hit(t, expr.line, &format!("report payload `{path} {{ .. }}`"));
                }
                t
            }
            ExprKind::For { names, iter, body } => {
                let iter_taint = self.eval(*iter);
                let hash_iter = self.is_hash(*iter)
                    || matches!(
                        &self.unit.ast.expr(*iter).kind,
                        ExprKind::MethodCall { recv, name, .. }
                            if ITER_SOURCES.contains(&name.as_str()) && self.is_hash(*recv)
                    );
                let bind = if hash_iter {
                    iter_taint.or(Taint { source: Some("HashMap/HashSet iteration order"), param: false })
                } else {
                    iter_taint
                };
                for n in names {
                    self.taints.insert(n.clone(), bind);
                }
                self.block(body);
                Taint::clean()
            }
            ExprKind::If { let_names, cond, then, else_ } => {
                let c = self.eval(*cond);
                for n in let_names {
                    self.taints.insert(n.clone(), c);
                }
                let a = self.block(then);
                let b = else_.map(|e| self.eval(e)).unwrap_or_default();
                a.or(b)
            }
            ExprKind::Match { scrut, arms } => {
                let s = self.eval(*scrut);
                let mut t = Taint::clean();
                for (names, body) in arms {
                    for n in names {
                        self.taints.insert(n.clone(), s);
                    }
                    t = t.or(self.eval(*body));
                }
                t
            }
            ExprKind::Block(b) => self.block(b),
            ExprKind::Loop(b) => {
                self.block(b);
                Taint::clean()
            }
            ExprKind::While { cond, body } => {
                self.eval(*cond);
                self.block(body);
                Taint::clean()
            }
            ExprKind::Closure { body, .. } => self.eval(*body),
            ExprKind::Jump(v) => {
                if let Some(e) = v {
                    let t = self.eval(*e);
                    self.ret = self.ret.or(t);
                }
                Taint::clean()
            }
            _ => {
                let mut t = Taint::clean();
                for c in children(&expr.kind) {
                    t = t.or(self.eval(c));
                }
                for b in blocks(&expr.kind) {
                    self.block(b);
                }
                t
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::crate_of;
    use crate::lexer;

    fn unit(src: &str) -> FileUnit {
        let rel = "crates/demo/src/lib.rs";
        let (toks, ast) = parse::parse(src);
        FileUnit {
            rel: rel.to_string(),
            krate: crate_of(rel),
            src: src.to_string(),
            toks,
            ast,
            lexed: lexer::lex(src, false),
            testish: false,
        }
    }

    fn findings(src: &str) -> Vec<Finding> {
        let u = unit(src);
        let ix = Index::build(std::slice::from_ref(&u));
        let summaries = summarize_crate(&[&u], &ix);
        check_file(&u, &ix, &summaries)
    }

    #[test]
    fn hashmap_values_to_telemetry_is_one_finding() {
        let src = "struct S { m: HashMap<u64, f64> }\n\
                   impl S { fn export(&self, tel: &mut Telemetry) {\n\
                   \x20   let worst: f64 = self.m.values().sum();\n\
                   \x20   tel.gauge_set(\"worst\", Labels::none(), worst);\n\
                   } }";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "R7");
        assert!(f[0].msg.contains("iteration order"), "{}", f[0].msg);
    }

    #[test]
    fn keyed_access_is_clean() {
        let src = "struct S { m: HashMap<u64, f64> }\n\
                   impl S { fn export(&self, tel: &mut Telemetry, k: u64) {\n\
                   \x20   let v = self.m.get(k);\n\
                   \x20   tel.gauge_set(\"v\", Labels::none(), v);\n\
                   \x20   tel.counter_add(\"n\", Labels::none(), self.m.len() as u64);\n\
                   } }";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn wall_clock_to_report_is_flagged() {
        let src = "fn f() -> Comparison {\n\
                   \x20   let t = Instant::now();\n\
                   \x20   Comparison::new(\"x\", 1.0, t)\n\
                   }";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].msg.contains("wall clock"), "{}", f[0].msg);
    }

    #[test]
    fn taint_flows_through_a_crate_local_helper() {
        // helper returns hash-iteration data; caller sinks it
        let src = "struct S { m: HashMap<u64, f64> }\n\
                   impl S {\n\
                   \x20   fn spread(&self) -> f64 { let s: f64 = self.m.values().sum(); s }\n\
                   \x20   fn export(&self, tel: &mut Telemetry) {\n\
                   \x20       tel.gauge_set(\"spread\", Labels::none(), self.spread());\n\
                   \x20   }\n\
                   }";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn helper_that_sinks_its_argument_flags_the_tainted_call_site() {
        let src = "struct S { m: HashMap<u64, f64> }\n\
                   impl S {\n\
                   \x20   fn emit(&self, tel: &mut Telemetry, v: f64) { tel.gauge_set(\"v\", Labels::none(), v); }\n\
                   \x20   fn export(&self, tel: &mut Telemetry) {\n\
                   \x20       let s: f64 = self.m.values().sum();\n\
                   \x20       self.emit(tel, s);\n\
                   \x20   }\n\
                   }";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].msg.contains("sinks its arguments"), "{}", f[0].msg);
    }

    #[test]
    fn experiment_run_return_is_a_sink() {
        let src = "struct E { m: HashMap<u64, f64> }\n\
                   impl Experiment for E {\n\
                   \x20   fn run(&mut self) -> f64 { let s: f64 = self.m.values().sum(); s }\n\
                   }";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].msg.contains("Experiment::run"), "{}", f[0].msg);
    }

    #[test]
    fn btreemap_iteration_is_clean() {
        let src = "struct S { m: BTreeMap<u64, f64> }\n\
                   impl S { fn export(&self, tel: &mut Telemetry) {\n\
                   \x20   let s: f64 = self.m.values().sum();\n\
                   \x20   tel.gauge_set(\"s\", Labels::none(), s);\n\
                   } }";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn sorting_launders_iteration_order() {
        let src = "struct S { m: HashMap<u64, f64> }\n\
                   impl S { fn export(&self, tel: &mut Telemetry) {\n\
                   \x20   let mut vs: Vec<f64> = self.m.values().collect();\n\
                   \x20   vs.sort_by(f64::total_cmp);\n\
                   \x20   tel.gauge_set(\"min\", Labels::none(), vs);\n\
                   } }";
        assert!(findings(src).is_empty(), "{:?}", findings(src));
    }

    #[test]
    fn for_loop_over_hash_taints_bindings() {
        let src = "struct S { m: HashMap<u64, f64> }\n\
                   impl S { fn export(&self, tel: &mut Telemetry) {\n\
                   \x20   let mut acc = 0.0;\n\
                   \x20   for (_k, v) in self.m.iter() { acc += v; }\n\
                   \x20   tel.gauge_set(\"acc\", Labels::none(), acc);\n\
                   } }";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn spawn_task_id_into_report_is_flagged() {
        let src = "fn f(exec: &mut Executor) -> Comparison {\n\
                   \x20   let tid = exec.spawn(fut());\n\
                   \x20   Comparison::new(\"winner\", 1.0, tid)\n\
                   }";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].msg.contains("spawn order"), "{}", f[0].msg);
    }

    #[test]
    fn select2_winner_into_telemetry_is_flagged() {
        let src = "fn f(tel: &mut Telemetry, a: Sleep, b: Sleep) {\n\
                   \x20   let won = select2(a, b);\n\
                   \x20   tel.gauge_set(\"won\", Labels::none(), won);\n\
                   }";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].msg.contains("select2 winner"), "{}", f[0].msg);
    }

    #[test]
    fn try_recv_arrival_state_into_telemetry_is_flagged() {
        let src = "fn f(tel: &mut Telemetry, rx: &mut Receiver<f64>) {\n\
                   \x20   if let Some(v) = rx.try_recv() {\n\
                   \x20       tel.gauge_set(\"v\", Labels::none(), v);\n\
                   \x20   }\n\
                   }";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].msg.contains("try_recv"), "{}", f[0].msg);
    }

    #[test]
    fn channel_send_does_not_launder_iteration_order() {
        let src = "struct S { m: HashMap<u64, f64> }\n\
                   impl S { fn export(&self, tel: &mut Telemetry) {\n\
                   \x20   let (tx, rx) = mpsc();\n\
                   \x20   let worst: f64 = self.m.values().sum();\n\
                   \x20   let _ = tx.send(worst);\n\
                   \x20   let got = rx.recv();\n\
                   \x20   tel.gauge_set(\"worst\", Labels::none(), got);\n\
                   } }";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].msg.contains("iteration order"), "{}", f[0].msg);
    }

    #[test]
    fn clean_channel_traffic_and_len_stay_clean() {
        let src = "fn f(tel: &mut Telemetry) {\n\
                   \x20   let (tx, rx) = oneshot();\n\
                   \x20   let _ = tx.send(1.0);\n\
                   \x20   let got = rx.recv();\n\
                   \x20   tel.gauge_set(\"g\", Labels::none(), got);\n\
                   \x20   tel.counter_add(\"n\", Labels::none(), rx.len() as u64);\n\
                   }";
        assert!(findings(src).is_empty(), "{:?}", findings(src));
    }

    #[test]
    fn test_code_is_skipped() {
        let src = "#[cfg(test)]\nmod tests { struct S { m: HashMap<u64, f64> }\n\
                   impl S { fn f(&self, tel: &mut Telemetry) { let s: f64 = self.m.values().sum(); tel.gauge_set(\"s\", Labels::none(), s); } } }";
        assert!(findings(src).is_empty());
    }
}
