//! `edison-simlint` — determinism & unit-safety static analysis for this
//! workspace.
//!
//! The repo's headline claim is that every experiment is exactly
//! reproducible from a single `u64` seed and that energy figures come
//! from exact piecewise-constant integration. Nothing in the type system
//! enforces that, so this crate does: it lexes every workspace `.rs` file
//! (comments/strings stripped, test regions tracked) and applies six
//! repo-specific rules — see [`rules`] for the table — with a ratcheting
//! baseline ([`baseline`]) that grandfathers existing violations and
//! fails the build on new ones.
//!
//! Run it as `cargo run -p edison-simlint -- check` (or the
//! `cargo lint-gate` alias); the root-package integration test
//! `tests/simlint_gate.rs` runs the same scan in tier-1.

pub mod baseline;
pub mod lexer;
pub mod rules;

use baseline::{Baseline, Regression, StaleEntry};
use rules::Finding;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Name of the committed ratchet file at the workspace root.
pub const BASELINE_FILE: &str = "simlint-baseline.json";

/// Source trees scanned, relative to the workspace root. `vendor/` and
/// `target/` are deliberately absent: the offline dependency stubs are
/// not simulation code.
const SCAN_ROOTS: [&str; 4] = ["crates", "src", "tests", "examples"];

/// Directory names whose whole subtree is treated as test code (lenient
/// for R1/R3/R4/R5/R6; R2 still applies).
const TESTISH_DIRS: [&str; 3] = ["tests", "benches", "examples"];

/// Everything `check` learned in one scan.
#[derive(Debug)]
pub struct ScanResult {
    /// Every un-suppressed finding, in path/line order.
    pub findings: Vec<Finding>,
    /// Findings aggregated into baseline shape.
    pub counts: Baseline,
    /// Number of files scanned.
    pub files_scanned: usize,
}

/// Result of comparing a scan to the committed baseline.
#[derive(Debug)]
pub struct CheckReport {
    /// The fresh scan the comparison was made against.
    pub scan: ScanResult,
    /// (rule, file) pairs over budget — these fail the check.
    pub regressions: Vec<Regression>,
    /// (rule, file) pairs under budget — cleanups not yet locked in.
    pub stale: Vec<StaleEntry>,
}

impl CheckReport {
    /// True when no (rule, file) pair exceeds the baseline.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }

    /// The fresh findings belonging to regressed (rule, file) pairs —
    /// what the developer must fix (or consciously re-baseline).
    pub fn regressed_findings(&self) -> Vec<&Finding> {
        self.scan
            .findings
            .iter()
            .filter(|f| self.regressions.iter().any(|r| r.rule == f.rule && r.file == f.file))
            .collect()
    }
}

/// Walk the workspace from `root`, lex and lint every `.rs` file.
pub fn scan_workspace(root: &Path) -> io::Result<ScanResult> {
    let mut files = Vec::new();
    for tree in SCAN_ROOTS {
        let dir = root.join(tree);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    files.sort();

    let mut findings = Vec::new();
    for path in &files {
        let source = fs::read_to_string(path)?;
        let rel = rel_path(root, path);
        let force_test = is_testish(&rel);
        let lexed = lexer::lex(&source, force_test);
        findings.extend(rules::check_file(&rel, &lexed));
    }
    findings.sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    let counts = baseline::aggregate(&findings);
    Ok(ScanResult { findings, counts, files_scanned: files.len() })
}

/// Scan and compare against the committed baseline. A missing baseline
/// file is treated as empty (every finding is then a regression), so a
/// deleted ratchet file cannot silently disable the gate.
pub fn check(root: &Path) -> io::Result<CheckReport> {
    let scan = scan_workspace(root)?;
    let baseline_path = root.join(BASELINE_FILE);
    let committed: Baseline = if baseline_path.is_file() {
        let text = fs::read_to_string(&baseline_path)?;
        baseline::from_json(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?
    } else {
        Baseline::new()
    };
    let (regressions, stale) = baseline::compare(&committed, &scan.counts);
    Ok(CheckReport { scan, regressions, stale })
}

/// Rewrite the baseline from a fresh scan.
pub fn update_baseline(root: &Path) -> io::Result<ScanResult> {
    let scan = scan_workspace(root)?;
    fs::write(root.join(BASELINE_FILE), baseline::to_json(&scan.counts))?;
    Ok(scan)
}

/// Find the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` contains a `[workspace]` table.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "vendor" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

fn is_testish(rel: &str) -> bool {
    rel.split('/').any(|seg| TESTISH_DIRS.contains(&seg))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testish_paths_are_recognized() {
        assert!(is_testish("crates/net/tests/prop.rs"));
        assert!(is_testish("crates/bench/benches/kernel.rs"));
        assert!(is_testish("examples/quickstart.rs"));
        assert!(is_testish("tests/headline_results.rs"));
        assert!(!is_testish("crates/net/src/network.rs"));
        assert!(!is_testish("src/lib.rs"));
    }

    #[test]
    fn workspace_root_is_found_from_this_crate() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        assert!(root.join("Cargo.toml").is_file());
        assert!(root.join("crates").is_dir());
    }
}
