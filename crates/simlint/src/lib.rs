//! `edison-simlint` — determinism & unit-safety static analysis for this
//! workspace.
//!
//! The repo's headline claim is that every experiment is exactly
//! reproducible from a single `u64` seed and that energy figures come
//! from exact piecewise-constant integration. Nothing in the type system
//! enforces that, so this crate does, in a four-stage pipeline:
//!
//! 1. **lex** ([`lexer`]) — v1 token stream with test regions and allow
//!    markers; feeds the six token rules R1–R6.
//! 2. **parse** ([`parse`]) — a hand-rolled, span-preserving
//!    item/expression parser (lossless: reassembling spans reproduces the
//!    input byte-for-byte).
//! 3. **index** ([`index`]) — workspace symbol tables (struct fields,
//!    impl methods, `Experiment` impls) scoped per crate, plus
//!    AST-derived suppressions that silence token-rule false positives
//!    (provably-widening casts for R3, crate-local `expect`/`unwrap`
//!    methods for R6).
//! 4. **rules** — the token rules ([`rules`]) plus two AST analyses:
//!    determinism taint tracking R7 ([`taint`]) and dimensional analysis
//!    R8 ([`units`]).
//!
//! All eight rules share the ratcheting baseline ([`baseline`]) that
//! grandfathers existing violations and fails the build on new ones —
//! and, since v2, on baseline entries pointing at files that no longer
//! exist (stale-debt rot).
//!
//! Run it as `cargo run -p edison-simlint -- check` (or the
//! `cargo lint-gate` alias; `cargo lint-explain R7` prints rule docs);
//! the root-package integration test `tests/simlint_gate.rs` runs the
//! same scan in tier-1.

pub mod baseline;
pub mod index;
pub mod lexer;
pub mod parse;
pub mod rules;
pub mod taint;
pub mod units;

use baseline::{Baseline, Regression, StaleEntry};
use index::{FileUnit, Index};
use rules::Finding;
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Name of the committed ratchet file at the workspace root.
pub const BASELINE_FILE: &str = "simlint-baseline.json";

/// Source trees scanned, relative to the workspace root. `vendor/` and
/// `target/` are deliberately absent: the offline dependency stubs are
/// not simulation code.
const SCAN_ROOTS: [&str; 4] = ["crates", "src", "tests", "examples"];

/// Directory names whose whole subtree is treated as test code (lenient
/// for R1/R3/R4/R5/R6; R2 still applies).
const TESTISH_DIRS: [&str; 3] = ["tests", "benches", "examples"];

/// Everything `check` learned in one scan.
#[derive(Debug)]
pub struct ScanResult {
    /// Every un-suppressed finding, in path/line order.
    pub findings: Vec<Finding>,
    /// Findings aggregated into baseline shape.
    pub counts: Baseline,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Workspace-relative paths of every scanned file (sorted) — used to
    /// detect baseline entries whose files no longer exist.
    pub files: Vec<String>,
}

/// Result of comparing a scan to the committed baseline.
#[derive(Debug)]
pub struct CheckReport {
    /// The fresh scan the comparison was made against.
    pub scan: ScanResult,
    /// (rule, file) pairs over budget — these fail the check.
    pub regressions: Vec<Regression>,
    /// (rule, file) pairs under budget — cleanups not yet locked in.
    pub stale: Vec<StaleEntry>,
    /// Baseline entries naming files that no longer exist (stale-debt
    /// rot) — these fail the check too: dead entries hide real budget.
    pub rot: Vec<(String, String)>,
}

impl CheckReport {
    /// True when no (rule, file) pair exceeds the baseline and no
    /// baseline entry points at a deleted file.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty() && self.rot.is_empty()
    }

    /// The fresh findings belonging to regressed (rule, file) pairs —
    /// what the developer must fix (or consciously re-baseline).
    pub fn regressed_findings(&self) -> Vec<&Finding> {
        self.scan
            .findings
            .iter()
            .filter(|f| self.regressions.iter().any(|r| r.rule == f.rule && r.file == f.file))
            .collect()
    }
}

/// Walk the workspace from `root`; lex, parse, index and lint every
/// `.rs` file (the full v2 pipeline).
pub fn scan_workspace(root: &Path) -> io::Result<ScanResult> {
    let mut paths = Vec::new();
    for tree in SCAN_ROOTS {
        let dir = root.join(tree);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut paths)?;
        }
    }
    paths.sort();

    // Pass 1: read + lex + parse every file.
    let mut file_units: Vec<FileUnit> = Vec::with_capacity(paths.len());
    for path in &paths {
        let source = fs::read_to_string(path)?;
        let rel = rel_path(root, path);
        let force_test = is_testish(&rel);
        let lexed = lexer::lex(&source, force_test);
        let (toks, ast) = parse::parse(&source);
        file_units.push(FileUnit {
            krate: index::crate_of(&rel),
            rel,
            src: source,
            toks,
            ast,
            lexed,
            testish: force_test,
        });
    }

    // Pass 2: build the workspace index and per-crate taint summaries.
    let ix = Index::build(&file_units);
    let mut by_crate: BTreeMap<&str, Vec<&FileUnit>> = BTreeMap::new();
    for u in &file_units {
        by_crate.entry(u.krate.as_str()).or_default().push(u);
    }
    let summaries: BTreeMap<&str, taint::Summaries> = by_crate
        .iter()
        .map(|(k, files)| (*k, taint::summarize_crate(files, &ix)))
        .collect();

    // Pass 3: token rules (with AST suppressions) + AST rules.
    let mut findings = Vec::new();
    for u in &file_units {
        let sup = index::suppressions(u, &ix);
        findings.extend(rules::check_file(&u.rel, &u.lexed, &sup));
        let crate_summaries = &summaries[u.krate.as_str()];
        let mut ast_findings = taint::check_file(u, &ix, crate_summaries);
        ast_findings.extend(units::check_file(u, &ix));
        findings.extend(rules::apply_allows(ast_findings, &u.lexed.allows));
    }
    findings.sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    let counts = baseline::aggregate(&findings);
    let files: Vec<String> = file_units.iter().map(|u| u.rel.clone()).collect();
    Ok(ScanResult { findings, counts, files_scanned: files.len(), files })
}

/// Scan and compare against the committed baseline. A missing baseline
/// file is treated as empty (every finding is then a regression), so a
/// deleted ratchet file cannot silently disable the gate.
pub fn check(root: &Path) -> io::Result<CheckReport> {
    let scan = scan_workspace(root)?;
    let baseline_path = root.join(BASELINE_FILE);
    let committed: Baseline = if baseline_path.is_file() {
        let text = fs::read_to_string(&baseline_path)?;
        baseline::from_json(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?
    } else {
        Baseline::new()
    };
    let (regressions, stale) = baseline::compare(&committed, &scan.counts);
    let mut rot = Vec::new();
    for (rule, by_file) in &committed {
        for file in by_file.keys() {
            if !scan.files.contains(file) {
                rot.push((rule.clone(), file.clone()));
            }
        }
    }
    Ok(CheckReport { scan, regressions, stale, rot })
}

/// Render a `CheckReport` as stable, machine-readable JSON (the
/// `--json` output). Deterministic: findings are in (file, line, rule)
/// order, deltas in (rule, file) order, keys always emitted.
pub fn report_to_json(report: &CheckReport) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                c if u32::from(c) < 0x20 => out.push_str(&format!("\\u{:04x}", u32::from(c))),
                c => out.push(c),
            }
        }
        out
    }
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"edison-simlint/2\",\n");
    out.push_str(&format!("  \"files_scanned\": {},\n", report.scan.files_scanned));
    out.push_str(&format!("  \"passed\": {},\n", report.passed()));
    out.push_str("  \"findings\": [");
    for (i, f) in report.scan.findings.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"msg\": \"{}\"}}",
            esc(f.rule),
            esc(&f.file),
            f.line,
            esc(&f.msg)
        ));
    }
    out.push_str(if report.scan.findings.is_empty() { "],\n" } else { "\n  ],\n" });
    // per-(rule, file) deltas vs the committed baseline: regressions
    // (delta > 0) and stale entries (delta < 0), in (rule, file) order
    let mut deltas: Vec<(&str, &str, usize, usize)> = Vec::new();
    for r in &report.regressions {
        deltas.push((&r.rule, &r.file, r.baseline, r.current));
    }
    for s in &report.stale {
        deltas.push((&s.rule, &s.file, s.baseline, s.current));
    }
    deltas.sort();
    out.push_str("  \"deltas\": [");
    for (i, (rule, file, base, cur)) in deltas.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"rule\": \"{}\", \"file\": \"{}\", \"baseline\": {}, \"current\": {}}}",
            esc(rule),
            esc(file),
            base,
            cur
        ));
    }
    out.push_str(if deltas.is_empty() { "],\n" } else { "\n  ],\n" });
    out.push_str("  \"rot\": [");
    for (i, (rule, file)) in report.rot.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!("    {{\"rule\": \"{}\", \"file\": \"{}\"}}", esc(rule), esc(file)));
    }
    out.push_str(if report.rot.is_empty() { "]\n" } else { "\n  ]\n" });
    out.push_str("}\n");
    out
}

/// Rewrite the baseline from a fresh scan.
pub fn update_baseline(root: &Path) -> io::Result<ScanResult> {
    let scan = scan_workspace(root)?;
    fs::write(root.join(BASELINE_FILE), baseline::to_json(&scan.counts))?;
    Ok(scan)
}

/// Find the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` contains a `[workspace]` table.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "vendor" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

fn is_testish(rel: &str) -> bool {
    rel.split('/').any(|seg| TESTISH_DIRS.contains(&seg))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testish_paths_are_recognized() {
        assert!(is_testish("crates/net/tests/prop.rs"));
        assert!(is_testish("crates/bench/benches/kernel.rs"));
        assert!(is_testish("examples/quickstart.rs"));
        assert!(is_testish("tests/headline_results.rs"));
        assert!(!is_testish("crates/net/src/network.rs"));
        assert!(!is_testish("src/lib.rs"));
    }

    #[test]
    fn workspace_root_is_found_from_this_crate() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        assert!(root.join("Cargo.toml").is_file());
        assert!(root.join("crates").is_dir());
    }
}
