//! The eight repo-specific rules. R1–R6 run over one lexed file at a
//! time (token level); R7/R8 live in [`crate::taint`] and
//! [`crate::units`] and run over the parsed AST with the workspace
//! symbol index — this module owns the rule table, the finding type, the
//! allow-marker vetting, and the `--explain` docs for all eight.
//!
//! | id | name              | what it catches                                        |
//! |----|-------------------|--------------------------------------------------------|
//! | R1 | nondeterminism    | wall-clock/ambient-RNG calls; `HashMap`/`HashSet` use   |
//! | R2 | rng-construction  | RNG built outside `simcore/src/rng.rs`                  |
//! | R3 | lossy-cast        | `as` casts to truncating numeric types in library code  |
//! | R4 | panic-macro       | `panic!`/`unreachable!`/`todo!`/`unimplemented!`        |
//! | R5 | unit-mix          | `fn` taking 2+ raw `f64`s mixing time/power/energy names|
//! | R6 | unwrap            | `.unwrap()` / `.expect(` method calls in library code   |
//! | R7 | determinism-taint | nondeterminism source reaching an exported artefact     |
//! | R8 | units             | dimensional mismatch in arithmetic or assignment        |
//!
//! R1/R3/R4/R5/R6/R7/R8 skip test code (`#[cfg(test)]`, `mod tests`, and
//! whole `tests/`/`benches/`/`examples/` trees); R2 applies everywhere,
//! because a stray RNG in a test breaks reproducibility of the test
//! itself. Individual sites can be vetted with
//! `// simlint: allow(Rn) reason` on the offending line or the line
//! above.
//!
//! Since v2, two token rules consult AST-derived [`Suppressions`]: R3
//! stays quiet on provably-widening integer casts (`usize as u64` on the
//! 64-bit targets this workspace supports), and R6 stays quiet when
//! `.expect(`/`.unwrap(` resolves to a *crate-local* method of that name
//! rather than `Option`/`Result`.
//!
//! R6 was split out of R4 when the simrun error taxonomy landed: panics by
//! macro are a deliberate authorial act (R4), while `.unwrap()`-style
//! option/result punts are exactly what `RunError`/`SimError` replace —
//! the baseline for R6 is grandfathered shrink-only debt.

use crate::index::Suppressions;
use crate::lexer::{AllowMarker, Lexed, Token};

/// A single rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id, `R1`..`R6`.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description of the site.
    pub msg: String,
}

/// All rule ids, in report order.
pub const RULE_IDS: [&str; 8] = ["R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8"];

/// One-line description per rule, for `--explain`-style output.
pub fn rule_summary(rule: &str) -> &'static str {
    match rule {
        "R1" => "nondeterminism: wall-clock/ambient RNG, or HashMap/HashSet in sim code (use BTreeMap or annotate keyed-only use)",
        "R2" => "rng-construction: randomness must flow through SimRng in simcore/src/rng.rs",
        "R3" => "lossy-cast: `as` to a truncating numeric type; prefer try_from/checked helpers (widening casts exempt)",
        "R4" => "panic-macro: panic!/unreachable!/todo!/unimplemented! in library code; budget may never grow",
        "R5" => "unit-mix: fn takes 2+ raw f64s mixing time/power/energy names; use SimTime-style newtypes",
        "R6" => "unwrap: .unwrap()/.expect() in library code; return RunError/SimError instead (shrink-only baseline)",
        "R7" => "determinism-taint: HashMap/HashSet iteration order, wall clock, ambient RNG, thread ids or simasync scheduler state (spawn TaskIds, select2 winners, try_recv) flowing into Telemetry, Report/CSV writers or Experiment::run returns",
        "R8" => "units: dimensionally-incompatible +/-/comparison, or a */÷ result assigned into a name implying a different unit",
        _ => "unknown rule",
    }
}

/// Long-form documentation for `explain <rule>` / `cargo lint-explain`.
pub fn rule_explain(rule: &str) -> Option<&'static str> {
    Some(match rule {
        "R1" => "R1 — nondeterminism (token rule, zero budget)\n\n\
            Flags wall-clock reads (Instant::now, SystemTime::now), ambient RNG\n\
            (thread_rng, rand::random), and any non-`use` mention of HashMap/HashSet\n\
            outside test code. The simulator's contract is exact reproducibility from\n\
            one u64 seed; all three break it. Hash collections are flagged on *mention*\n\
            because the lexer cannot prove absence of iteration — vet keyed-only maps\n\
            with `// simlint: allow(R1) reason`, and R7 will still catch the day their\n\
            iteration order leaks into an exported artefact.",
        "R2" => "R2 — rng-construction (token rule, zero budget, applies in tests too)\n\n\
            RNG construction (SmallRng, StdRng, ThreadRng, seed_from_u64) is legal only\n\
            in simcore/src/rng.rs. Everything else derives streams via SimRng::split so\n\
            that one seed reproduces every draw in the whole workspace, tests included.",
        "R3" => "R3 — lossy-cast (token rule, ratcheted)\n\n\
            `expr as T` for a truncating/wrapping numeric T silently destroys value\n\
            bits. Prefer try_from or a checked helper. Since v2 the AST pass exempts\n\
            provably-widening integer casts on the 64-bit targets this workspace\n\
            supports: same-signedness to an equal-or-wider type (u32 as u64,\n\
            usize as u64, u64 as usize), and unsigned into a strictly wider signed\n\
            (u32 as i64). Sign-losing and narrowing casts still count.",
        "R4" => "R4 — panic-macro (token rule, ratcheted)\n\n\
            panic!/unreachable!/todo!/unimplemented! in library code abort the whole\n\
            simulation instead of failing one run. assert!/debug_assert! remain the\n\
            sanctioned invariant mechanism; recoverable paths return SimError/RunError.",
        "R5" => "R5 — unit-mix (token rule, zero budget)\n\n\
            A fn signature taking two or more *raw* f64 parameters whose names span\n\
            different unit vocabularies (watts + secs) is one transposed call away from\n\
            a silent wrong number. Wrap one side in a newtype (SimTime, SimDuration).\n\
            R8 supersedes this check inside function bodies; R5 remains as the cheap\n\
            signature-level guard.",
        "R6" => "R6 — unwrap (token rule, shrink-only baseline)\n\n\
            .unwrap()/.expect() in library code panics at runtime; the simrun/simfault\n\
            error taxonomy (SimError, RunError) exists to make these recoverable. The\n\
            grandfathered budget may only shrink. Since v2 the symbol index exempts\n\
            calls that resolve to a crate-local method named unwrap/expect (e.g. the\n\
            baseline JSON parser's own `Parser::expect`).",
        "R7" => "R7 — determinism-taint (AST rule, ratcheted)\n\n\
            Cross-file, per-crate taint analysis. Sources: HashMap/HashSet iteration\n\
            (.iter/.keys/.values/.drain, or `for _ in map`), Instant::now,\n\
            SystemTime::now, thread_rng/rand::random, thread ids, and simasync\n\
            scheduler state — the TaskId from .spawn()/.spawn_and_drain() (spawn\n\
            order), select2 winners (wake order) and .try_recv() (poll-time arrival\n\
            state): stable per seed, silently shifted by spawn/wake reordering.\n\
            Channels do not launder: on `let (tx, rx) = mpsc()` a tainted send\n\
            re-emerges tainted from the matching recv. Sinks: Telemetry\n\
            methods (counter_add, counter_inc, gauge_set, observe, series_push,\n\
            record*), Report/CSV writers (table, series_table, trim_float,\n\
            Comparison/Series/Report payloads), and Experiment::run return values.\n\
            Taint propagates through lets, arithmetic, method chains and crate-local\n\
            calls (fixpoint summaries); order-insensitive reductions (len, count, min,\n\
            max, contains*, get) and explicit sort()/BTree re-collection sanitize it.\n\
            Float sum/fold do NOT sanitize — float addition is order-dependent, which\n\
            is precisely the exported-flakiness bug this rule exists to catch.\n\
            Vet a site with `// simlint: allow(R7) reason`.",
        "R8" => "R8 — units (AST rule, ratcheted)\n\n\
            Dimensional analysis over function bodies. Units (time, watts, joules,\n\
            bytes, bytes/sec, requests) are inferred from newtypes (SimTime,\n\
            SimDuration and their as_secs_f64-style accessors), from snake_case name\n\
            segments (busy_w, total_j, window_secs), and propagated through arithmetic\n\
            (W x s -> J, J / s -> W, B / s -> B/s, X / X -> dimensionless). Two finding\n\
            shapes: (a) +/-/comparison between two confidently-known different units;\n\
            (b) a value assigned into a binding whose name implies a different unit\n\
            (`let busy_w = watts * secs`). Unknown or dimensionless operands never\n\
            fire. Vet a site with `// simlint: allow(R8) reason`.",
        _ => return None,
    })
}

/// Calls that read ambient state and so break seed-reproducibility.
const WALLCLOCK: [(&str, &str); 2] = [("SystemTime", "now"), ("Instant", "now")];
const AMBIENT_RNG: [&str; 2] = ["thread_rng", "from_entropy"];
/// RNG construction surface that must stay inside `simcore/src/rng.rs`.
const RNG_CONSTRUCTION: [&str; 4] = ["SmallRng", "StdRng", "ThreadRng", "seed_from_u64"];
/// Hash collections whose iteration order is hasher-randomised.
const HASH_COLLECTIONS: [&str; 2] = ["HashMap", "HashSet"];
/// Numeric `as`-targets that can truncate, wrap or lose precision.
/// (`as f64` is exempt: pervasive and lossless for every integer this
/// codebase feeds it below 2^53.)
const LOSSY_TARGETS: [&str; 13] =
    ["u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32"];

/// Run every token rule over one lexed file.
///
/// `rel_path` is the workspace-relative path (used for per-file rule
/// scoping like R2's rng.rs exemption). `sup` carries the AST-derived
/// per-line exemptions (R3 widening casts, R6 crate-local methods).
pub fn check_file(rel_path: &str, lexed: &Lexed, sup: &Suppressions) -> Vec<Finding> {
    let mut findings = Vec::new();
    let toks = &lexed.tokens;
    let is_rng_home = rel_path.ends_with("simcore/src/rng.rs");
    let is_simlint_self = rel_path.contains("crates/simlint/");

    for (i, tok) in toks.iter().enumerate() {
        let t = tok.text.as_str();
        let next = |k: usize| toks.get(i + k).map(|t| t.text.as_str());

        // R1: wall-clock reads — `SystemTime::now(` / `Instant::now(`.
        if !tok.in_test && !tok.in_use {
            for (ty, method) in WALLCLOCK {
                if t == ty && next(1) == Some("::") && next(2) == Some(method) {
                    push(&mut findings, "R1", rel_path, tok.line, format!("{ty}::{method} reads the wall clock"));
                }
            }
            // R1: ambient RNG — `thread_rng()` / `rand::random`.
            if AMBIENT_RNG.contains(&t) && next(1) == Some("(") {
                push(&mut findings, "R1", rel_path, tok.line, format!("{t}() draws from ambient (unseeded) randomness"));
            }
            if t == "rand" && next(1) == Some("::") && next(2) == Some("random") {
                push(&mut findings, "R1", rel_path, tok.line, "rand::random draws from ambient randomness".into());
            }
            // R1: hash collections in simulation code. The lexer cannot
            // prove an iteration, so any non-`use` mention outside tests
            // needs either a BTreeMap or an allow marker vouching that the
            // map is never iterated (keyed access only).
            if HASH_COLLECTIONS.contains(&t) && !is_simlint_self {
                push(
                    &mut findings,
                    "R1",
                    rel_path,
                    tok.line,
                    format!("{t} has hasher-randomised iteration order; use BTreeMap/BTreeSet or annotate keyed-only use"),
                );
            }
        }

        // R2: RNG construction outside the one sanctioned module.
        if !is_rng_home && !tok.in_use && RNG_CONSTRUCTION.contains(&t) {
            push(
                &mut findings,
                "R2",
                rel_path,
                tok.line,
                format!("{t} constructs an RNG outside simcore/src/rng.rs; derive a stream with SimRng::split instead"),
            );
        }

        // R3: lossy numeric casts in library code. The AST pass exempts
        // lines whose casts are provably widening.
        if !tok.in_test && !tok.in_use && t == "as" && !sup.r3_widening.contains(&tok.line) {
            if let Some(target) = next(1) {
                if LOSSY_TARGETS.contains(&target) {
                    push(
                        &mut findings,
                        "R3",
                        rel_path,
                        tok.line,
                        format!("`as {target}` can truncate/wrap silently; prefer try_from or a checked helper"),
                    );
                }
            }
        }

        // R4: the panic-macro budget; R6: the unwrap/expect budget.
        if !tok.in_test {
            if (t == "unwrap" || t == "expect") && next(1) == Some("(") {
                // Only count method calls `.unwrap()` — a local fn named
                // `expect` would be unusual but shouldn't be punished —
                // and skip calls the index resolved to crate-local methods.
                let is_method = i > 0 && toks[i - 1].text == ".";
                if is_method && !sup.r6_local_method.contains(&tok.line) {
                    push(&mut findings, "R6", rel_path, tok.line, format!(".{t}() can panic at runtime; return RunError/SimError instead"));
                }
            }
            if (t == "panic" || t == "unreachable" || t == "todo" || t == "unimplemented")
                && next(1) == Some("!")
            {
                push(&mut findings, "R4", rel_path, tok.line, format!("{t}! in library code"));
            }
        }

        // R5: unit-mixing fn signatures.
        if !tok.in_test && t == "fn" {
            if let Some(finding) = check_unit_mix(toks, i, rel_path) {
                findings.push(finding);
            }
        }
    }

    apply_allows(findings, &lexed.allows)
}

fn push(findings: &mut Vec<Finding>, rule: &'static str, file: &str, line: u32, msg: String) {
    findings.push(Finding { rule, file: file.to_string(), line, msg });
}

/// Drop findings vetted by `simlint: allow(...)` markers. A line marker
/// suppresses matches on its own line and the next (so it can sit above
/// the offending statement); `allow-file` suppresses the rule everywhere
/// in the file. Shared by the token rules and the AST rules (R7/R8).
pub fn apply_allows(findings: Vec<Finding>, allows: &[AllowMarker]) -> Vec<Finding> {
    findings
        .into_iter()
        .filter(|f| {
            !allows.iter().any(|a| {
                a.rule == f.rule && (a.whole_file || a.line == f.line || a.line + 1 == f.line)
            })
        })
        .collect()
}

/// Vocabulary classes for R5. A parameter name belongs to at most one
/// class; matching is by whole word segments of the snake_case name, so
/// `watts` matches but `wattage_class` ("wattage") does not.
fn unit_class(name: &str) -> Option<&'static str> {
    const TIME: [&str; 12] = ["s", "secs", "sec", "seconds", "ms", "millis", "us", "ns", "nanos", "duration", "latency", "delay"];
    const POWER: [&str; 3] = ["w", "watt", "watts"];
    const ENERGY: [&str; 4] = ["j", "joule", "joules", "energy"];
    for seg in name.split('_') {
        if TIME.contains(&seg) {
            return Some("time");
        }
        if POWER.contains(&seg) {
            return Some("power");
        }
        if ENERGY.contains(&seg) {
            return Some("energy");
        }
    }
    None
}

/// R5: starting at the `fn` token, parse the parameter list and flag
/// signatures taking two or more *raw* `f64`s whose names span more than
/// one unit vocabulary (e.g. `fn charge(watts: f64, secs: f64)`).
fn check_unit_mix(toks: &[Token], fn_idx: usize, rel_path: &str) -> Option<Finding> {
    let name_tok = toks.get(fn_idx + 1)?;
    // Find the opening paren (skipping generic params `<...>`).
    let mut i = fn_idx + 2;
    let mut angle = 0i32;
    loop {
        let t = toks.get(i)?.text.as_str();
        match t {
            "<" => angle += 1,
            ">" => angle -= 1,
            "(" if angle <= 0 => break,
            "{" | ";" => return None, // no parameter list found
            _ => {}
        }
        i += 1;
    }
    // Split the top-level parameter list on commas.
    let mut depth = 1i32;
    let mut param: Vec<&Token> = Vec::new();
    let mut classes: Vec<(&'static str, String)> = Vec::new();
    let mut f64_params = 0usize;
    i += 1;
    while let Some(tok) = toks.get(i) {
        match tok.text.as_str() {
            "(" | "[" | "{" | "<" => depth += 1,
            ")" | "]" | "}" | ">" => depth -= 1,
            _ => {}
        }
        if depth == 0 || (depth == 1 && tok.text == ",") {
            // One parameter collected: `name : type...` (maybe `mut name`).
            let colon = param.iter().position(|t| t.text == ":");
            if let Some(c) = colon {
                let ty: Vec<&str> = param[c + 1..].iter().map(|t| t.text.as_str()).collect();
                if ty == ["f64"] {
                    f64_params += 1;
                    let name = param[..c].iter().rev().find(|t| t.text != "mut")?;
                    if let Some(class) = unit_class(&name.text) {
                        if !classes.iter().any(|(cl, _)| *cl == class) {
                            classes.push((class, name.text.clone()));
                        }
                    }
                }
            }
            param.clear();
            if depth == 0 {
                break;
            }
        } else {
            param.push(tok);
        }
        i += 1;
    }
    if f64_params >= 2 && classes.len() >= 2 {
        let names: Vec<&str> = classes.iter().map(|(_, n)| n.as_str()).collect();
        return Some(Finding {
            rule: "R5",
            file: rel_path.to_string(),
            line: name_tok.line,
            msg: format!(
                "fn {} mixes {} in raw f64 params ({}); wrap one side in a unit newtype like SimTime",
                name_tok.text,
                classes.iter().map(|(c, _)| *c).collect::<Vec<_>>().join("/"),
                names.join(", ")
            ),
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn findings(src: &str) -> Vec<Finding> {
        check_file("crates/demo/src/lib.rs", &lex(src, false), &Suppressions::default())
    }

    fn rules_of(src: &str) -> Vec<&'static str> {
        findings(src).into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn r1_fires_on_wallclock_and_ambient_rng() {
        assert_eq!(rules_of("fn f() { let t = Instant::now(); }"), vec!["R1"]);
        assert_eq!(rules_of("fn f() { let t = SystemTime::now(); }"), vec!["R1"]);
        assert!(rules_of("fn f() { let mut r = thread_rng(); }").contains(&"R1"));
        assert_eq!(rules_of("fn f() -> f64 { rand::random() }"), vec!["R1"]);
    }

    #[test]
    fn r1_hash_collection_needs_marker() {
        assert_eq!(rules_of("struct S { m: HashMap<u8, u8> }"), vec!["R1"]);
        assert!(findings("struct S { m: BTreeMap<u8, u8> }").is_empty());
        // vetted keyed-only use passes
        assert!(findings("struct S {\n    // simlint: allow(R1) keyed access only\n    m: HashMap<u8, u8>,\n}").is_empty());
        // use-declarations and test code don't count
        assert!(findings("use std::collections::HashMap;").is_empty());
        assert!(findings("#[cfg(test)]\nmod tests { fn f() { let m: HashMap<u8,u8> = HashMap::new(); } }").is_empty());
    }

    #[test]
    fn r2_fires_outside_rng_home_only() {
        let src = "fn f() { let r = SmallRng::seed_from_u64(1); }";
        let hits = rules_of(src);
        assert_eq!(hits, vec!["R2", "R2"], "SmallRng and seed_from_u64 each flag: {hits:?}");
        assert!(check_file("crates/simcore/src/rng.rs", &lex(src, false), &Suppressions::default()).is_empty());
        // R2 applies inside test code too
        assert!(!findings("#[cfg(test)]\nmod tests { fn f() { let r = StdRng::from_entropy(); } }").is_empty());
    }

    #[test]
    fn r3_fires_on_truncating_casts_not_f64() {
        assert_eq!(rules_of("fn f(x: u64) -> u32 { x as u32 }"), vec!["R3"]);
        assert_eq!(rules_of("fn f(x: f64) -> u64 { x as u64 }"), vec!["R3"]);
        assert!(findings("fn f(x: u32) -> f64 { x as f64 }").is_empty());
        assert!(findings("#[cfg(test)]\nmod tests { fn f(x: u64) { let _ = x as u8; } }").is_empty());
    }

    #[test]
    fn r4_counts_panic_macros_in_library_code_only() {
        assert_eq!(rules_of("fn f() { panic!(\"boom\") }"), vec!["R4"]);
        assert_eq!(rules_of("fn f() { unreachable!() }"), vec!["R4"]);
        assert!(findings("#[cfg(test)]\nmod tests { fn f() { panic!(\"boom\") } }").is_empty());
        // assert! is the sanctioned mechanism, not flagged
        assert!(findings("fn f(x: u8) { assert!(x > 0); debug_assert!(x < 10); }").is_empty());
    }

    #[test]
    fn r6_counts_unwrap_expect_method_calls_only() {
        assert_eq!(rules_of("fn f(o: Option<u8>) -> u8 { o.unwrap() }"), vec!["R6"]);
        assert_eq!(rules_of("fn f(o: Option<u8>) -> u8 { o.expect(\"set\") }"), vec!["R6"]);
        // non-method identifiers and the *_or family are not unwraps
        assert!(findings("fn f(o: Option<u8>) -> u8 { o.unwrap_or(0) }").is_empty());
        assert!(findings("fn expect(x: u8) -> u8 { expect(x) }").is_empty());
        assert!(findings("#[cfg(test)]\nmod tests { fn f(o: Option<u8>) -> u8 { o.unwrap() } }").is_empty());
        // an allow marker with a reason vets a deliberate site
        assert!(findings("fn f(o: Option<u8>) -> u8 {\n    // simlint: allow(R6) statically always Some\n    o.unwrap()\n}").is_empty());
    }

    #[test]
    fn r5_fires_on_mixed_unit_vocabulary() {
        assert_eq!(rules_of("fn charge(watts: f64, duration_s: f64) -> f64 { watts * duration_s }"), vec!["R5"]);
        assert_eq!(rules_of("fn e(idle_w: f64, busy_w: f64, window_secs: f64) {}"), vec!["R5"]);
        // same class twice: fine
        assert!(findings("fn f(warmup_s: f64, measure_s: f64) {}").is_empty());
        // only one raw f64: fine
        assert!(findings("fn f(watts: f64, t: SimTime) {}").is_empty());
        // unclassified names: fine
        assert!(findings("fn f(a: f64, b: f64) {}").is_empty());
    }

    #[test]
    fn allow_marker_on_same_line_works() {
        assert!(findings("fn f() { let m: HashMap<u8,u8> = HashMap::new(); } // simlint: allow(R1) shadow map\n").is_empty());
    }

    #[test]
    fn findings_carry_file_line_and_message() {
        let f = findings("fn f() {\n    let t = Instant::now();\n}");
        assert_eq!(f.len(), 1);
        assert_eq!((f[0].rule, f[0].line), ("R1", 2));
        assert!(f[0].msg.contains("wall clock"));
        assert_eq!(f[0].file, "crates/demo/src/lib.rs");
    }
}
