//! R8 — dimensional analysis over function bodies.
//!
//! Every `f64` in this workspace *means* something — seconds, watts,
//! joules, bytes, bytes/sec, requests — but the type system erases it.
//! This pass reconstructs units from three signals, in priority order:
//!
//! 1. **Newtypes**: `SimTime`/`SimDuration` values (and their
//!    `as_secs_f64()`-style accessors) are time.
//! 2. **Names**: snake_case segments of params/locals/fields against a
//!    fixed vocabulary (`watts`, `busy_j`, `bytes_per_sec`, …) — the same
//!    convention R5 policed at signature level, now applied to every
//!    binding.
//! 3. **Arithmetic propagation**: `W × s → J`, `J ÷ s → W`, `B ÷ s → B/s`,
//!    `X ÷ X → dimensionless`, and unit-preserving `+`/`-`/`min`/`max`.
//!
//! Two finding shapes:
//!
//! * additive/comparison mismatch — `secs + watts`, `joules < bytes` —
//!   where **both** sides infer to distinct, confident, non-dimensionless
//!   units;
//! * assignment mismatch — a `*`/`/` result (or any confidently-united
//!   expression) bound to a name whose vocabulary implies a *different*
//!   unit, e.g. `let total_j = watts * watts;`.
//!
//! Unknown stays silent: the pass only speaks when it can say *which two
//! units* disagree, which is what keeps it usable as a ratcheted gate
//! rather than a noise fountain.

use crate::index::{blocks, children, FileUnit, Index};
use crate::parse::{self, BinOp, Block, ExprId, ExprKind, FnDef, Stmt, TokKind, Ty};
use crate::rules::Finding;
use std::collections::BTreeMap;

/// The unit lattice. `Unknown` absorbs everything it meets; findings are
/// only raised between two non-`Unknown`, non-`Dimensionless` members.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Unit {
    /// Time (any scale — s/ms/us/ns are one dimension here).
    Seconds,
    /// Power.
    Watts,
    /// Energy.
    Joules,
    /// Data volume.
    Bytes,
    /// Data rate.
    BytesPerSec,
    /// Request/operation counts.
    Requests,
    /// Pure numbers: ratios, literals, counters.
    Dimensionless,
    /// No confident inference.
    Unknown,
}

impl Unit {
    /// Human name used in findings and `--explain R8`.
    pub fn name(self) -> &'static str {
        match self {
            Unit::Seconds => "time",
            Unit::Watts => "power (W)",
            Unit::Joules => "energy (J)",
            Unit::Bytes => "bytes",
            Unit::BytesPerSec => "bytes/sec",
            Unit::Requests => "requests",
            Unit::Dimensionless => "dimensionless",
            Unit::Unknown => "unknown",
        }
    }

    fn confident(self) -> bool {
        !matches!(self, Unit::Unknown | Unit::Dimensionless)
    }
}

/// Unit implied by a binding/field name, via whole snake_case segments —
/// `busy_w` is power, `wattage_class` is nothing. This extends R5's
/// time/power/energy vocabulary with bytes, rates, and request counts.
pub fn unit_of_name(name: &str) -> Unit {
    const TIME: [&str; 13] =
        ["s", "secs", "sec", "seconds", "ms", "millis", "us", "ns", "nanos", "duration", "latency", "delay", "elapsed"];
    const POWER: [&str; 3] = ["w", "watt", "watts"];
    const ENERGY: [&str; 4] = ["j", "joule", "joules", "energy"];
    const BYTES: [&str; 2] = ["bytes", "byte"];
    const RATE: [&str; 2] = ["bps", "bandwidth"];
    const REQUESTS: [&str; 3] = ["requests", "reqs", "req"];
    let segs: Vec<&str> = name.split('_').collect();
    // `bytes_per_sec` / `bytes_per_s`: the compound wins over `bytes`.
    for w in segs.windows(3) {
        if BYTES.contains(&w[0]) && w[1] == "per" && TIME.contains(&w[2]) {
            return Unit::BytesPerSec;
        }
    }
    for seg in &segs {
        if TIME.contains(seg) {
            return Unit::Seconds;
        }
        if POWER.contains(seg) {
            return Unit::Watts;
        }
        if ENERGY.contains(seg) {
            return Unit::Joules;
        }
        if BYTES.contains(seg) {
            return Unit::Bytes;
        }
        if RATE.contains(seg) {
            return Unit::BytesPerSec;
        }
        if REQUESTS.contains(seg) {
            return Unit::Requests;
        }
    }
    Unit::Unknown
}

/// Unit implied by a declared type: the time newtypes are the only types
/// that carry a unit of their own.
fn unit_of_ty(ty: &Ty) -> Unit {
    match ty.head.as_str() {
        "SimTime" | "SimDuration" | "Duration" => Unit::Seconds,
        // simguard's deadline algebra: budgets, absolute deadlines, and
        // their scalar views are all time-dimensioned
        "Budget" | "Deadline" | "Millis" | "Secs" => Unit::Seconds,
        _ => Unit::Unknown,
    }
}

/// Unit of a name *given* its declared type: a unit-bearing newtype
/// always wins; a raw `f64`/`u64`-style number falls back to the name
/// vocabulary; any other type is opaque (a `Vec<f64>` named `watts` is
/// not itself watts).
fn unit_of_binding(name: &str, ty: Option<&Ty>) -> Unit {
    match ty {
        Some(t) => {
            let from_ty = unit_of_ty(t);
            if from_ty != Unit::Unknown {
                from_ty
            } else if matches!(t.head.as_str(), "f64" | "f32" | "u64" | "u32" | "usize" | "i64") {
                unit_of_name(name)
            } else {
                Unit::Unknown
            }
        }
        None => unit_of_name(name),
    }
}

/// `a * b` through the dimension table.
fn mul(a: Unit, b: Unit) -> Unit {
    use Unit::*;
    match (a, b) {
        (Watts, Seconds) | (Seconds, Watts) => Joules,
        (BytesPerSec, Seconds) | (Seconds, BytesPerSec) => Bytes,
        (Dimensionless, x) | (x, Dimensionless) => x,
        _ => Unknown,
    }
}

/// `a / b` through the dimension table.
fn div(a: Unit, b: Unit) -> Unit {
    use Unit::*;
    match (a, b) {
        (Joules, Seconds) => Watts,
        (Joules, Watts) => Seconds,
        (Bytes, Seconds) => BytesPerSec,
        (Bytes, BytesPerSec) => Seconds,
        (x, y) if x == y && x.confident() => Dimensionless,
        (x, Dimensionless) => x,
        _ => Unknown,
    }
}

/// Methods that preserve the receiver's unit.
const UNIT_PRESERVING: [&str; 10] =
    ["min", "max", "abs", "clamp", "round", "ceil", "floor", "sqrt", "clone", "copied"];
/// Accessor methods that *produce* time from the newtypes (or std
/// `Duration`), regardless of receiver inference.
const TIME_ACCESSORS: [&str; 6] =
    ["as_secs_f64", "as_millis_f64", "as_secs", "as_millis", "as_micros", "as_nanos"];

/// Run R8 over one file. `Finding`s come back un-vetted; the caller
/// applies the allow markers.
pub fn check_file(unit: &FileUnit, ix: &Index) -> Vec<Finding> {
    let mut findings = Vec::new();
    if unit.testish {
        return findings;
    }
    parse::visit_fns(&unit.ast.items, None, &mut |f: &FnDef, ctx, in_test| {
        if in_test {
            return;
        }
        let Some(body) = &f.body else { return };
        let mut env: BTreeMap<String, Unit> = BTreeMap::new();
        for p in &f.params {
            let u = unit_of_binding(&p.name, Some(&p.ty));
            if u.confident() {
                env.insert(p.name.clone(), u);
            }
        }
        let self_ty = ctx.map(|(_, st)| st);
        let mut cx = Cx { unit, ix, env, findings: &mut findings, self_ty };
        cx.block(body);
    });
    findings
}

struct Cx<'a> {
    unit: &'a FileUnit,
    ix: &'a Index,
    env: BTreeMap<String, Unit>,
    findings: &'a mut Vec<Finding>,
    self_ty: Option<&'a str>,
}

impl<'a> Cx<'a> {
    fn push(&mut self, line: u32, msg: String) {
        self.findings.push(Finding { rule: "R8", file: self.unit.rel.clone(), line, msg });
    }

    fn block(&mut self, b: &Block) {
        for stmt in &b.stmts {
            match stmt {
                Stmt::Let { names, ty, init, line } => {
                    let init_unit = init.map(|e| self.infer(e)).unwrap_or(Unit::Unknown);
                    if let [name] = names.as_slice() {
                        let declared = unit_of_binding(name, ty.as_ref());
                        // assignment mismatch: RHS confidently-united,
                        // name implies a different unit
                        if declared.confident() && init_unit.confident() && declared != init_unit {
                            let l = *line;
                            self.push(
                                l,
                                format!(
                                    "`{name}` reads as {} but is assigned a {} value",
                                    declared.name(),
                                    init_unit.name()
                                ),
                            );
                        }
                        let resolved = if declared.confident() { declared } else { init_unit };
                        if resolved.confident() {
                            self.env.insert(name.clone(), resolved);
                        } else {
                            self.env.remove(name);
                        }
                    }
                }
                Stmt::Expr { expr, .. } => {
                    self.infer(*expr);
                }
                Stmt::Item(_) => {}
            }
        }
    }

    /// Infer the unit of an expression, raising findings on mismatched
    /// arithmetic along the way.
    fn infer(&mut self, id: ExprId) -> Unit {
        let expr = self.unit.ast.expr(id).clone();
        match &expr.kind {
            ExprKind::Lit(TokKind::Int) | ExprKind::Lit(TokKind::Float) => Unit::Dimensionless,
            ExprKind::Path(segs) => match segs.as_slice() {
                [one] => self.env.get(one).copied().unwrap_or_else(|| {
                    let u = unit_of_name(one);
                    if u.confident() { u } else { Unit::Unknown }
                }),
                _ => Unit::Unknown,
            },
            ExprKind::Field { recv, name } => {
                self.infer(*recv);
                // field type via the index when the receiver is `self`
                let recv_expr = self.unit.ast.expr(*recv);
                let field_ty = match (&recv_expr.kind, self.self_ty) {
                    (ExprKind::Path(segs), Some(st)) if segs.as_slice() == ["self"] => {
                        self.ix.field_ty(&self.unit.krate, st, name)
                    }
                    _ => None,
                };
                unit_of_binding(name, field_ty)
            }
            ExprKind::Unary(inner) | ExprKind::Try(inner) => self.infer(*inner),
            ExprKind::Tuple(parts) if parts.len() == 1 => self.infer(parts[0]),
            ExprKind::Cast { expr: inner, .. } => self.infer(*inner),
            ExprKind::Binary { op, op_text, lhs, rhs } => {
                let l = self.infer(*lhs);
                let r = self.infer(*rhs);
                match op {
                    BinOp::Add | BinOp::Sub | BinOp::Eq | BinOp::Cmp => {
                        if l.confident() && r.confident() && l != r {
                            self.push(
                                expr.line,
                                format!("{} `{}` {}: incompatible units", l.name(), op_text, r.name()),
                            );
                            return Unit::Unknown;
                        }
                        if matches!(op, BinOp::Eq | BinOp::Cmp) {
                            Unit::Dimensionless
                        } else if l.confident() {
                            l
                        } else if r.confident() {
                            r
                        } else {
                            Unit::Unknown
                        }
                    }
                    BinOp::Mul => mul(l, r),
                    BinOp::Div => div(l, r),
                    BinOp::Rem => l,
                    BinOp::Logic | BinOp::Bit => Unit::Unknown,
                }
            }
            ExprKind::Assign { op, lhs, rhs } => {
                let r = self.infer(*rhs);
                let lhs_expr = self.unit.ast.expr(*lhs).clone();
                let target = match &lhs_expr.kind {
                    ExprKind::Path(segs) => match segs.as_slice() {
                        [one] => Some((one.clone(), self.env.get(one).copied().unwrap_or_else(|| unit_of_name(one)))),
                        _ => None,
                    },
                    ExprKind::Field { name, .. } => Some((name.clone(), unit_of_name(name))),
                    _ => {
                        self.infer(*lhs);
                        None
                    }
                };
                if let Some((name, l)) = target {
                    let effective = match op {
                        None => r,
                        Some(BinOp::Add) | Some(BinOp::Sub) => {
                            if l.confident() && r.confident() && l != r {
                                self.push(
                                    expr.line,
                                    format!("{} `{}=` {}: incompatible units", l.name(), if *op == Some(BinOp::Add) { "+" } else { "-" }, r.name()),
                                );
                            }
                            l
                        }
                        Some(BinOp::Mul) => mul(l, r),
                        Some(BinOp::Div) => div(l, r),
                        _ => Unit::Unknown,
                    };
                    if op.is_none() && l.confident() && effective.confident() && l != effective {
                        self.push(
                            expr.line,
                            format!("`{name}` reads as {} but is assigned a {} value", l.name(), effective.name()),
                        );
                    }
                }
                Unit::Unknown
            }
            ExprKind::MethodCall { recv, name, args, .. } => {
                let r = self.infer(*recv);
                for a in args {
                    self.infer(*a);
                }
                if TIME_ACCESSORS.contains(&name.as_str()) {
                    Unit::Seconds
                } else if UNIT_PRESERVING.contains(&name.as_str()) {
                    // min/max/clamp against a mismatched argument is also
                    // a comparison — but only flag the binary forms to
                    // keep the rule's surface predictable.
                    r
                } else if name == "mul_add" {
                    r
                } else {
                    Unit::Unknown
                }
            }
            ExprKind::Call { callee, args } => {
                for a in args {
                    self.infer(*a);
                }
                // `SimDuration::from_secs_f64(x)` and friends are time
                let callee_expr = self.unit.ast.expr(*callee);
                if let ExprKind::Path(segs) = &callee_expr.kind {
                    if segs.iter().any(|s| s == "SimTime" || s == "SimDuration" || s == "Duration") {
                        return Unit::Seconds;
                    }
                }
                Unit::Unknown
            }
            ExprKind::If { cond, then, else_, .. } => {
                self.infer(*cond);
                self.block(then);
                if let Some(e) = else_ {
                    self.infer(*e);
                }
                Unit::Unknown
            }
            ExprKind::Match { scrut, arms } => {
                self.infer(*scrut);
                for (_, body) in arms {
                    self.infer(*body);
                }
                Unit::Unknown
            }
            ExprKind::Block(b) | ExprKind::Loop(b) => {
                self.block(b);
                Unit::Unknown
            }
            ExprKind::While { cond, body } => {
                self.infer(*cond);
                self.block(body);
                Unit::Unknown
            }
            ExprKind::For { iter, body, .. } => {
                self.infer(*iter);
                self.block(body);
                Unit::Unknown
            }
            _ => {
                for c in children(&expr.kind) {
                    self.infer(c);
                }
                for b in blocks(&expr.kind) {
                    self.block(b);
                }
                Unit::Unknown
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{crate_of, FileUnit};
    use crate::lexer;

    fn findings(src: &str) -> Vec<Finding> {
        let (toks, ast) = parse::parse(src);
        let u = FileUnit {
            rel: "crates/demo/src/lib.rs".into(),
            krate: crate_of("crates/demo/src/lib.rs"),
            src: src.to_string(),
            toks,
            ast,
            lexed: lexer::lex(src, false),
            testish: false,
        };
        let ix = Index::build(std::slice::from_ref(&u));
        check_file(&u, &ix)
    }

    #[test]
    fn seconds_plus_watts_is_one_finding() {
        let f = findings("fn f(watts: f64, secs: f64) -> f64 { watts + secs }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].msg.contains("power"), "{}", f[0].msg);
        assert!(f[0].msg.contains("time"), "{}", f[0].msg);
    }

    #[test]
    fn watts_times_secs_is_joules() {
        assert!(findings("fn f(watts: f64, secs: f64) -> f64 { watts * secs }").is_empty());
        let f = findings("fn f(watts: f64, secs: f64) { let total_j = watts * secs; let _ = total_j; }");
        assert!(f.is_empty(), "W×s assigned to a J name is correct: {f:?}");
        let bad = findings("fn f(watts: f64, other_w: f64) { let total_j = watts * other_w; let _ = total_j; }");
        assert!(bad.is_empty(), "W×W is Unknown — stays silent, not a false claim: {bad:?}");
        let wrong = findings("fn f(watts: f64, secs: f64) { let busy_w = watts * secs; let _ = busy_w; }");
        assert_eq!(wrong.len(), 1, "W×s is J, assigned into a watts name: {wrong:?}");
    }

    #[test]
    fn division_table() {
        assert!(findings("fn f(total_j: f64, secs: f64) { let avg_w = total_j / secs; let _ = avg_w; }").is_empty());
        assert!(findings("fn f(bytes: f64, secs: f64) { let bps = bytes / secs; let _ = bps; }").is_empty());
        let f = findings("fn f(total_j: f64, secs: f64) { let avg_s = total_j / secs; let _ = avg_s; }");
        assert_eq!(f.len(), 1, "J/s is W, not time: {f:?}");
    }

    #[test]
    fn comparisons_and_compound_assign() {
        assert_eq!(findings("fn f(secs: f64, bytes: f64) -> bool { secs < bytes }").len(), 1);
        assert_eq!(findings("fn f(secs: f64, watts: f64) { let mut t = secs; t += watts; }").len(), 1);
        assert!(findings("fn f(a_secs: f64, b_secs: f64) -> bool { a_secs < b_secs }").is_empty());
    }

    #[test]
    fn newtype_accessors_are_time() {
        let f = findings("fn f(t: SimDuration, watts: f64) -> f64 { t.as_secs_f64() + watts }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(findings("fn f(t: SimDuration, secs: f64) -> f64 { t.as_secs_f64() + secs }").is_empty());
    }

    #[test]
    fn simguard_newtypes_are_time() {
        // Budget/Deadline/Millis/Secs (simguard's deadline algebra) carry
        // the time dimension: mixing one with another unit is a finding
        assert_eq!(findings("fn f(b: Budget, bytes: f64) -> bool { b < bytes }").len(), 1);
        assert_eq!(findings("fn f(m: Millis, watts: f64) -> f64 { m + watts }").len(), 1);
        // ...while they stay mutually compatible with the core newtypes
        assert!(findings("fn f(b: Budget, t: SimDuration) -> bool { b < t }").is_empty());
        assert!(findings("fn f(d: Deadline, t: SimTime) -> bool { d < t }").is_empty());
    }

    #[test]
    fn locals_are_tracked_r5_cannot_see_this() {
        // one f64 param only — R5's 2+-raw-f64 signature check is blind here
        let f = findings("fn f(p: f64) -> f64 { let watts = p; let secs = 2.0; watts + secs }");
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn dimensionless_and_unknown_stay_silent() {
        assert!(findings("fn f(secs: f64) -> f64 { secs * 2.0 }").is_empty());
        assert!(findings("fn f(secs: f64, n: f64) -> f64 { secs / n }").is_empty());
        assert!(findings("fn f(a_secs: f64, b_secs: f64) -> f64 { a_secs / b_secs }").is_empty());
        assert!(findings("fn f(x: f64, secs: f64) -> f64 { x + secs }").is_empty());
    }

    #[test]
    fn self_fields_resolve_through_the_index() {
        let f = findings(
            "struct M { busy_w: f64, window: SimDuration }\n\
             impl M { fn bad(&self) -> f64 { self.busy_w + self.window.as_secs_f64() } }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn test_code_is_skipped() {
        assert!(findings("#[cfg(test)]\nmod tests { fn f(watts: f64, secs: f64) -> f64 { watts + secs } }").is_empty());
    }
}
