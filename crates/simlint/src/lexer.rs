//! A small hand-rolled Rust lexer: just enough to see identifiers and
//! punctuation with comments/strings stripped, plus the two pieces of
//! context the rules need — whether a token sits inside test-only code
//! (`#[cfg(test)]` / `mod tests` regions) and whether it sits inside a
//! `use` declaration. Also collects `// simlint: allow(Rn)` markers.
//!
//! This is not a full lexer (no float-literal subtleties, no macro
//! expansion); it is deliberately conservative and dependency-free. The
//! rules in [`crate::rules`] are written to tolerate its approximations.

/// One lexed token with the context the rules need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Identifier text, or the punctuation itself (`::` is one token).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// Inside a `#[cfg(test)]` item or a `mod tests { .. }` block.
    pub in_test: bool,
    /// Inside a `use ...;` declaration.
    pub in_use: bool,
}

/// A `// simlint: allow(<rule>)` marker found in a comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowMarker {
    /// 1-based line the marker appears on.
    pub line: u32,
    /// Rule id inside the parentheses, e.g. `R1`.
    pub rule: String,
    /// True for `allow-file(...)`: suppresses the rule in the whole file.
    pub whole_file: bool,
}

/// Lexer output for one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order, with test/use context attached.
    pub tokens: Vec<Token>,
    /// All `simlint: allow(...)` markers found in comments.
    pub allows: Vec<AllowMarker>,
}

/// Lex `source`. `force_test` marks the whole file as test code (used for
/// `tests/`, `benches/` and `examples/` trees).
pub fn lex(source: &str, force_test: bool) -> Lexed {
    let mut out = Lexed::default();
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Raw token pass: strip comments/strings, collect markers.
    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if chars.get(i + 1) == Some(&'/') => {
                let start = i + 2;
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                scan_marker(&text, line, &mut out.allows);
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                // Nested block comment; markers inside still count on
                // the line they appear.
                let mut depth = 1;
                let mut buf = String::new();
                i += 2;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if chars[i] == '\n' {
                            scan_marker(&buf, line, &mut out.allows);
                            buf.clear();
                            line += 1;
                        } else {
                            buf.push(chars[i]);
                        }
                        i += 1;
                    }
                }
                scan_marker(&buf, line, &mut out.allows);
            }
            '"' => i = skip_string(&chars, i, &mut line),
            '\'' => i = skip_char_or_lifetime(&chars, i, &mut line, &mut out.tokens),
            c if c.is_alphanumeric() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                // Raw/byte string prefixes: r"..", r#".."#, b"..", br#".."#.
                if matches!(word.as_str(), "r" | "b" | "br")
                    && matches!(chars.get(i), Some('"') | Some('#'))
                {
                    i = skip_raw_string(&chars, i, &mut line);
                } else {
                    out.tokens.push(Token { text: word, line, in_test: false, in_use: false });
                }
            }
            ':' if chars.get(i + 1) == Some(&':') => {
                out.tokens.push(Token { text: "::".into(), line, in_test: false, in_use: false });
                i += 2;
            }
            _ => {
                out.tokens.push(Token { text: c.to_string(), line, in_test: false, in_use: false });
                i += 1;
            }
        }
    }

    annotate_context(&mut out.tokens, force_test);
    out
}

/// Skip a `"..."` string literal (with escapes); returns the index after
/// the closing quote.
fn skip_string(chars: &[char], mut i: usize, line: &mut u32) -> usize {
    i += 1; // opening quote
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '\n' => {
                *line += 1;
                i += 1;
            }
            '"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Skip a raw/byte string starting at the `"`/`#` after its prefix.
fn skip_raw_string(chars: &[char], mut i: usize, line: &mut u32) -> usize {
    let mut hashes = 0usize;
    while chars.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    if chars.get(i) != Some(&'"') {
        return i; // not actually a raw string; resume normally
    }
    i += 1;
    'outer: while i < chars.len() {
        if chars[i] == '\n' {
            *line += 1;
        } else if chars[i] == '"' {
            for k in 0..hashes {
                if chars.get(i + 1 + k) != Some(&'#') {
                    i += 1;
                    continue 'outer;
                }
            }
            return i + 1 + hashes;
        }
        i += 1;
    }
    i
}

/// Distinguish a char literal (`'x'`, `'\n'`) from a lifetime (`'a`).
/// Lifetimes are emitted as no tokens (rules never need them).
fn skip_char_or_lifetime(chars: &[char], i: usize, line: &mut u32, _tokens: &mut Vec<Token>) -> usize {
    match chars.get(i + 1) {
        Some('\\') => {
            // Escaped char literal: skip to the closing quote.
            let mut j = i + 2;
            while j < chars.len() && chars[j] != '\'' {
                if chars[j] == '\n' {
                    *line += 1;
                }
                j += 1;
            }
            j + 1
        }
        Some(c) if chars.get(i + 2) == Some(&'\'') && *c != '\'' => i + 3, // 'x'
        _ => {
            // Lifetime: consume the identifier after the quote.
            let mut j = i + 1;
            while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                j += 1;
            }
            j
        }
    }
}

/// Extract `simlint: allow(<rule>)` / `allow-file(<rule>)` from one
/// comment line.
fn scan_marker(comment: &str, line: u32, allows: &mut Vec<AllowMarker>) {
    let Some(pos) = comment.find("simlint:") else { return };
    let rest = comment[pos + "simlint:".len()..].trim_start();
    let (whole_file, rest) = if let Some(r) = rest.strip_prefix("allow-file(") {
        (true, r)
    } else if let Some(r) = rest.strip_prefix("allow(") {
        (false, r)
    } else {
        return;
    };
    let Some(end) = rest.find(')') else { return };
    for rule in rest[..end].split(',') {
        allows.push(AllowMarker { line, rule: rule.trim().to_string(), whole_file });
    }
}

/// Second pass: mark test regions and `use` declarations.
///
/// A region is test code when a `#[cfg(test)]` attribute or a
/// `mod tests`/`mod test` header precedes its opening `{`; regions nest.
fn annotate_context(tokens: &mut [Token], force_test: bool) {
    let mut depth: u32 = 0;
    let mut test_stack: Vec<u32> = Vec::new();
    let mut pending_test = false;
    let mut in_use = false;

    let texts: Vec<String> = tokens.iter().map(|t| t.text.clone()).collect();
    for (idx, tok) in tokens.iter_mut().enumerate() {
        let t = tok.text.as_str();
        match t {
            "#" => {
                // #[cfg(test)] / #[cfg(all(test, ...))], but not
                // #[cfg(not(test))] — scan the attribute's tokens only.
                if texts.get(idx + 1).is_some_and(|s| s == "[")
                    && texts.get(idx + 2).is_some_and(|s| s == "cfg")
                {
                    let attr: Vec<&str> = texts[idx + 3..]
                        .iter()
                        .take_while(|s| *s != "]")
                        .take(12)
                        .map(String::as_str)
                        .collect();
                    if attr.contains(&"test") && !attr.contains(&"not") {
                        pending_test = true;
                    }
                }
            }
            "mod" => {
                if texts.get(idx + 1).is_some_and(|s| s == "tests" || s == "test" || s == "proptests")
                {
                    pending_test = true;
                }
            }
            "use" => in_use = true,
            ";" => in_use = false,
            "{" => {
                depth += 1;
                if pending_test {
                    test_stack.push(depth);
                    pending_test = false;
                }
            }
            "}" => {
                if test_stack.last() == Some(&depth) {
                    test_stack.pop();
                }
                depth = depth.saturating_sub(1);
            }
            _ => {}
        }
        tok.in_test = force_test || !test_stack.is_empty();
        tok.in_use = in_use && t != ";";
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src, false).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn strips_comments_and_strings() {
        let toks = texts("let x = \"Instant::now()\"; // Instant::now()\nfoo();");
        assert!(toks.iter().all(|t| t != "Instant"), "{toks:?}");
        assert!(toks.contains(&"foo".to_string()));
    }

    #[test]
    fn raw_strings_and_chars_are_skipped() {
        let toks = texts(r####"let s = r#"HashMap "quoted""#; let c = '"'; let l: &'static str = "x"; bar();"####);
        assert!(toks.iter().all(|t| t != "HashMap"), "{toks:?}");
        assert!(toks.contains(&"bar".to_string()));
        // lifetimes ('static) produce no tokens at all
        assert!(toks.iter().all(|t| t != "static"), "{toks:?}");
    }

    #[test]
    fn double_colon_is_one_token() {
        let toks = texts("Instant::now()");
        assert_eq!(toks, vec!["Instant", "::", "now", "(", ")"]);
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let lexed = lex("fn a() { b(); }\n#[cfg(test)]\nmod t { fn c() { d(); } }\nfn e() {}", false);
        let flag = |name: &str| lexed.tokens.iter().find(|t| t.text == name).map(|t| t.in_test);
        assert_eq!(flag("b"), Some(false));
        assert_eq!(flag("d"), Some(true));
        assert_eq!(flag("e"), Some(false));
    }

    #[test]
    fn mod_tests_region_is_marked_without_cfg() {
        let lexed = lex("mod tests { fn c() { d(); } }\nfn e() {}", false);
        let flag = |name: &str| lexed.tokens.iter().find(|t| t.text == name).map(|t| t.in_test);
        assert_eq!(flag("d"), Some(true));
        assert_eq!(flag("e"), Some(false));
    }

    #[test]
    fn use_statements_are_marked() {
        let lexed = lex("use std::collections::HashMap;\nfn f(m: HashMap<u8, u8>) {}", false);
        let flags: Vec<bool> = lexed
            .tokens
            .iter()
            .filter(|t| t.text == "HashMap")
            .map(|t| t.in_use)
            .collect();
        assert_eq!(flags, vec![true, false]);
    }

    #[test]
    fn allow_markers_are_collected() {
        let lexed = lex(
            "// simlint: allow(R1) keyed access only\nlet m: HashMap<u8,u8> = HashMap::new();\n// simlint: allow-file(R4)\n",
            false,
        );
        assert_eq!(
            lexed.allows,
            vec![
                AllowMarker { line: 1, rule: "R1".into(), whole_file: false },
                AllowMarker { line: 3, rule: "R4".into(), whole_file: true },
            ]
        );
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let lexed = lex("let s = \"a\nb\nc\";\nfoo();", false);
        let foo = lexed.tokens.iter().find(|t| t.text == "foo").map(|t| t.line);
        assert_eq!(foo, Some(4));
    }
}
