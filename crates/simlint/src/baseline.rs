//! The ratchet baseline: grandfathered violation counts per (rule, file).
//!
//! `simlint-baseline.json` at the workspace root maps rule id → file →
//! count. `check` fails when any (rule, file) pair exceeds its committed
//! count; counts only ever shrink, via `--update-baseline` after a
//! cleanup. The format is a tiny hand-rolled JSON subset (objects of
//! objects of non-negative integers) because this crate is deliberately
//! dependency-free.

use crate::rules::Finding;
use std::collections::BTreeMap;
use std::fmt;

/// rule id → file → grandfathered count. BTreeMaps keep serialization
/// stable so the committed file never churns.
pub type Baseline = BTreeMap<String, BTreeMap<String, usize>>;

/// Aggregate findings into baseline shape.
pub fn aggregate(findings: &[Finding]) -> Baseline {
    let mut out = Baseline::new();
    for f in findings {
        *out.entry(f.rule.to_string()).or_default().entry(f.file.clone()).or_default() += 1;
    }
    out
}

/// Serialize with sorted keys and stable formatting.
pub fn to_json(b: &Baseline) -> String {
    let mut s = String::from("{\n");
    let mut first_rule = true;
    for (rule, files) in b {
        if !first_rule {
            s.push_str(",\n");
        }
        first_rule = false;
        s.push_str(&format!("  {:?}: {{\n", rule));
        let mut first_file = true;
        for (file, count) in files {
            if !first_file {
                s.push_str(",\n");
            }
            first_file = false;
            s.push_str(&format!("    {:?}: {}", file, count));
        }
        s.push_str("\n  }");
    }
    s.push_str("\n}\n");
    s
}

/// Baseline parse error with byte offset context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "baseline parse error at byte {}: {}", self.at, self.msg)
    }
}

/// Parse the JSON subset written by [`to_json`].
pub fn from_json(text: &str) -> Result<Baseline, ParseError> {
    let mut p = Parser { bytes: text.as_bytes(), i: 0 };
    p.skip_ws();
    let mut out = Baseline::new();
    p.expect(b'{')?;
    p.skip_ws();
    if p.peek() == Some(b'}') {
        return Ok(out);
    }
    loop {
        p.skip_ws();
        let rule = p.string()?;
        p.skip_ws();
        p.expect(b':')?;
        p.skip_ws();
        p.expect(b'{')?;
        let mut files = BTreeMap::new();
        p.skip_ws();
        if p.peek() == Some(b'}') {
            p.i += 1;
        } else {
            loop {
                p.skip_ws();
                let file = p.string()?;
                p.skip_ws();
                p.expect(b':')?;
                p.skip_ws();
                let count = p.number()?;
                files.insert(file, count);
                p.skip_ws();
                match p.next()? {
                    b',' => continue,
                    b'}' => break,
                    c => return Err(p.err(format!("expected ',' or '}}', got {:?}", c as char))),
                }
            }
        }
        out.insert(rule, files);
        p.skip_ws();
        match p.next()? {
            b',' => continue,
            b'}' => break,
            c => return Err(p.err(format!("expected ',' or '}}', got {:?}", c as char))),
        }
    }
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err(&self, msg: String) -> ParseError {
        ParseError { at: self.i, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.i).copied()
    }

    fn next(&mut self) -> Result<u8, ParseError> {
        let c = self.peek().ok_or_else(|| self.err("unexpected end of input".into()))?;
        self.i += 1;
        Ok(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\n' | b'\r' | b'\t')) {
            self.i += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), ParseError> {
        let got = self.next()?;
        if got == want {
            Ok(())
        } else {
            self.i -= 1;
            Err(self.err(format!("expected {:?}, got {:?}", want as char, got as char)))
        }
    }

    /// A JSON string; paths in this file never need escapes beyond `\\`
    /// and `\"`, which are unescaped.
    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next()? {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.next()?;
                    out.push(match esc {
                        b'"' => '"',
                        b'\\' => '\\',
                        other => return Err(self.err(format!("unsupported escape \\{}", other as char))),
                    });
                }
                c => out.push(c as char),
            }
        }
    }

    fn number(&mut self) -> Result<usize, ParseError> {
        let start = self.i;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.i += 1;
        }
        if start == self.i {
            return Err(self.err("expected a number".into()));
        }
        let mut value: usize = 0;
        for &b in &self.bytes[start..self.i] {
            value = value
                .checked_mul(10)
                .and_then(|v| v.checked_add(usize::from(b - b'0')))
                .ok_or_else(|| self.err("count overflows usize".into()))?;
        }
        Ok(value)
    }
}

/// One (rule, file) pair whose fresh count exceeds the baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Regression {
    /// Rule id, e.g. `R4`.
    pub rule: String,
    /// Workspace-relative file path.
    pub file: String,
    /// Grandfathered count from the committed baseline.
    pub baseline: usize,
    /// Count found by the fresh scan.
    pub current: usize,
}

/// One (rule, file) pair whose fresh count undershoots the baseline (a
/// cleanup that should be locked in with `--update-baseline`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaleEntry {
    /// Rule id, e.g. `R4`.
    pub rule: String,
    /// Workspace-relative file path.
    pub file: String,
    /// Grandfathered count from the committed baseline.
    pub baseline: usize,
    /// Count found by the fresh scan.
    pub current: usize,
}

/// Compare a fresh scan against the committed baseline.
pub fn compare(baseline: &Baseline, current: &Baseline) -> (Vec<Regression>, Vec<StaleEntry>) {
    let mut regressions = Vec::new();
    let mut stale = Vec::new();
    let empty = BTreeMap::new();
    let mut rules: Vec<&String> = baseline.keys().chain(current.keys()).collect();
    rules.sort();
    rules.dedup();
    for rule in rules {
        let base_files = baseline.get(rule).unwrap_or(&empty);
        let cur_files = current.get(rule).unwrap_or(&empty);
        let mut files: Vec<&String> = base_files.keys().chain(cur_files.keys()).collect();
        files.sort();
        files.dedup();
        for file in files {
            let b = base_files.get(file).copied().unwrap_or(0);
            let c = cur_files.get(file).copied().unwrap_or(0);
            if c > b {
                regressions.push(Regression { rule: rule.clone(), file: file.clone(), baseline: b, current: c });
            } else if c < b {
                stale.push(StaleEntry { rule: rule.clone(), file: file.clone(), baseline: b, current: c });
            }
        }
    }
    (regressions, stale)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, file: &str) -> Finding {
        Finding { rule, file: file.into(), line: 1, msg: String::new() }
    }

    #[test]
    fn roundtrip() {
        let findings = vec![finding("R3", "a.rs"), finding("R3", "a.rs"), finding("R4", "b.rs")];
        let b = aggregate(&findings);
        let parsed = from_json(&to_json(&b)).expect("roundtrip");
        assert_eq!(parsed, b);
        assert_eq!(parsed["R3"]["a.rs"], 2);
    }

    #[test]
    fn empty_roundtrip() {
        let b = Baseline::new();
        assert_eq!(from_json(&to_json(&b)).expect("roundtrip"), b);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_json("not json").is_err());
        assert!(from_json("{\"R1\": {\"f\": }}").is_err());
        assert!(from_json("{\"R1\"").is_err());
    }

    #[test]
    fn compare_detects_growth_and_shrinkage() {
        let base = from_json("{\"R4\": {\"a.rs\": 2, \"gone.rs\": 1}}").expect("base");
        let cur = aggregate(&[finding("R4", "a.rs"), finding("R4", "a.rs"), finding("R4", "a.rs")]);
        let (reg, stale) = compare(&base, &cur);
        assert_eq!(reg.len(), 1);
        assert_eq!((reg[0].baseline, reg[0].current), (2, 3));
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].file, "gone.rs");
    }

    #[test]
    fn new_file_with_findings_is_a_regression() {
        let base = Baseline::new();
        let cur = aggregate(&[finding("R1", "new.rs")]);
        let (reg, stale) = compare(&base, &cur);
        assert_eq!(reg.len(), 1);
        assert!(stale.is_empty());
    }
}
