//! Workspace symbol index: every parsed file plus cross-file lookup
//! tables the AST analyses share.
//!
//! The index answers three kinds of questions that single-file passes
//! cannot:
//!
//! * **Field types** — `self.flows` is a `BTreeMap<FlowId, Flow>` because
//!   the `Network` struct in the same crate says so ([`Index::field_ty`]).
//! * **Local methods** — `self.expect(b'{')` in the baseline parser is a
//!   call to a *crate-local* method named `expect`, not `Option::expect`
//!   ([`Index::has_local_method`]) — the v1 lexer could not tell and
//!   counted five such sites as R6 debt.
//! * **Trait roles** — which types implement `Experiment`, so the taint
//!   analysis knows whose `run` return values are exported artefacts
//!   ([`Index::is_experiment_impl`]).
//!
//! Lookups are scoped per crate (`crates/<name>/…`, with the root
//! package's `src`/`tests` as crate `"root"`): the analyses are
//! deliberately intraprocedural *across files* but not across crates,
//! matching the issue's "within a crate" contract and keeping name
//! resolution trivial.

use crate::lexer::Lexed;
use crate::parse::{self, Ast, Item, ItemKind, Tok, Ty};
use std::collections::{BTreeMap, BTreeSet};

/// One parsed workspace file.
#[derive(Debug)]
pub struct FileUnit {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// Crate name (`crates/net/...` → `net`; root package → `root`).
    pub krate: String,
    /// Raw source.
    pub src: String,
    /// Spanned tokens.
    pub toks: Vec<Tok>,
    /// Item/expression tree.
    pub ast: Ast,
    /// v1 lexer output for the same file (allow markers, test regions).
    pub lexed: Lexed,
    /// Whole file is test-ish (`tests/`, `benches/`, `examples/` trees).
    pub testish: bool,
}

/// Cross-file lookup tables over every [`FileUnit`].
#[derive(Debug, Default)]
pub struct Index {
    /// crate → struct name → (field name → type).
    pub structs: BTreeMap<String, BTreeMap<String, BTreeMap<String, Ty>>>,
    /// crate → type name → method names its impl blocks define.
    pub methods: BTreeMap<String, BTreeMap<String, BTreeSet<String>>>,
    /// crate → type names with an `impl Experiment for …` block.
    pub experiment_impls: BTreeMap<String, BTreeSet<String>>,
    /// crate → free/assoc fn name → summary (filled by the taint pass).
    pub fn_names: BTreeMap<String, BTreeSet<String>>,
}

impl Index {
    /// Build the index from parsed files.
    pub fn build(files: &[FileUnit]) -> Index {
        let mut ix = Index::default();
        for f in files {
            if f.testish {
                continue;
            }
            parse::visit_structs(&f.ast.items, &mut |s| {
                ix.structs
                    .entry(f.krate.clone())
                    .or_default()
                    .entry(s.name.clone())
                    .or_default()
                    .extend(s.fields.iter().cloned());
            });
            collect_impls(&f.ast.items, &f.krate, &mut ix);
        }
        ix
    }

    /// Type of `Struct.field` in `krate`, if known.
    pub fn field_ty(&self, krate: &str, struct_name: &str, field: &str) -> Option<&Ty> {
        self.structs.get(krate)?.get(struct_name)?.get(field)
    }

    /// Field type looked up across all structs of a crate — used when the
    /// receiver's struct is unknown but the field name is unambiguous.
    pub fn field_ty_any(&self, krate: &str, field: &str) -> Option<&Ty> {
        let mut found: Option<&Ty> = None;
        for fields in self.structs.get(krate)?.values() {
            if let Some(t) = fields.get(field) {
                match found {
                    None => found = Some(t),
                    Some(prev) if prev.head == t.head => {}
                    _ => return None, // ambiguous across structs
                }
            }
        }
        found
    }

    /// Does `type_name` in `krate` define a method called `method`?
    pub fn has_local_method(&self, krate: &str, type_name: &str, method: &str) -> bool {
        self.methods
            .get(krate)
            .and_then(|m| m.get(type_name))
            .is_some_and(|set| set.contains(method))
    }

    /// Does any type in `krate` define a method called `method`?
    pub fn any_local_method(&self, krate: &str, method: &str) -> bool {
        self.methods
            .get(krate)
            .is_some_and(|m| m.values().any(|set| set.contains(method)))
    }

    /// Does `type_name` implement `Experiment` in `krate`?
    pub fn is_experiment_impl(&self, krate: &str, type_name: &str) -> bool {
        self.experiment_impls.get(krate).is_some_and(|s| s.contains(type_name))
    }
}

fn collect_impls(items: &[Item], krate: &str, ix: &mut Index) {
    for item in items {
        match &item.kind {
            ItemKind::Impl(trait_head, self_ty, inner) => {
                if trait_head.as_deref() == Some("Experiment") {
                    ix.experiment_impls.entry(krate.to_string()).or_default().insert(self_ty.clone());
                }
                for it in inner {
                    if let ItemKind::Fn(f) = &it.kind {
                        ix.methods
                            .entry(krate.to_string())
                            .or_default()
                            .entry(self_ty.clone())
                            .or_default()
                            .insert(f.name.clone());
                        ix.fn_names.entry(krate.to_string()).or_default().insert(f.name.clone());
                    }
                }
            }
            ItemKind::Trait(name, inner) => {
                for it in inner {
                    if let ItemKind::Fn(f) = &it.kind {
                        ix.methods
                            .entry(krate.to_string())
                            .or_default()
                            .entry(name.clone())
                            .or_default()
                            .insert(f.name.clone());
                    }
                }
            }
            ItemKind::Fn(f) => {
                ix.fn_names.entry(krate.to_string()).or_default().insert(f.name.clone());
            }
            ItemKind::Mod(_, Some(inner)) => collect_impls(inner, krate, ix),
            _ => {}
        }
    }
}

/// Crate name for a workspace-relative path.
pub fn crate_of(rel: &str) -> String {
    let mut parts = rel.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(name)) => name.to_string(),
        _ => "root".to_string(),
    }
}

// ---------------------------------------------------------------------------
// Token-rule suppressions derived from the AST
// ---------------------------------------------------------------------------

/// Lines in one file where a token-level rule must stay quiet because the
/// AST proves the match benign.
#[derive(Debug, Default)]
pub struct Suppressions {
    /// R3: lines whose `as` casts are provably widening on 64-bit targets.
    pub r3_widening: BTreeSet<u32>,
    /// R6: lines whose `.unwrap(`/`.expect(` is a crate-local method, not
    /// `Option`/`Result`.
    pub r6_local_method: BTreeSet<u32>,
}

/// Integer rank for the widening lattice. On the 64-bit targets this
/// workspace supports (`usize`≡`u64`, `isize`≡`i64`), `small as big` of
/// the same signedness — or unsigned into a strictly wider signed — can
/// neither truncate nor wrap.
fn int_rank(ty: &str) -> Option<(u8, bool)> {
    // (bit rank, signed)
    Some(match ty {
        "u8" => (8, false),
        "u16" => (16, false),
        "u32" => (32, false),
        "u64" | "usize" => (64, false),
        "u128" => (128, false),
        "i8" => (8, true),
        "i16" => (16, true),
        "i32" => (32, true),
        "i64" | "isize" => (64, true),
        "i128" => (128, true),
        _ => return None,
    })
}

/// Is `src as dst` provably lossless?
pub fn is_widening(src: &str, dst: &str) -> bool {
    let (Some((sr, ss)), Some((dr, ds))) = (int_rank(src), int_rank(dst)) else {
        return false;
    };
    match (ss, ds) {
        (false, false) | (true, true) => sr <= dr,
        (false, true) => sr < dr, // u32 as i64 fits; u64 as i64 does not
        (true, false) => false,   // sign loss is never widening
    }
}

/// Compute per-file suppressions for the token rules.
pub fn suppressions(unit: &FileUnit, ix: &Index) -> Suppressions {
    use crate::parse::{Block, ExprKind, FnDef, Stmt};

    let mut sup = Suppressions::default();
    let krate = unit.krate.as_str();

    // Walk each fn with a flat local type environment (params + annotated
    // lets + a few inferable initializer shapes).
    parse::visit_fns(&unit.ast.items, None, &mut |f: &FnDef, ctx, _in_test| {
        let self_ty = ctx.map(|(_, st)| st);
        let mut env: BTreeMap<String, String> = BTreeMap::new();
        for p in &f.params {
            if !p.ty.head.is_empty() {
                env.insert(p.name.clone(), p.ty.head.clone());
            }
        }
        if let Some(body) = &f.body {
            walk_block(unit, ix, krate, self_ty, body, &mut env, &mut sup);
        }
    });

    fn walk_block(
        unit: &FileUnit,
        ix: &Index,
        krate: &str,
        self_ty: Option<&str>,
        block: &Block,
        env: &mut BTreeMap<String, String>,
        sup: &mut Suppressions,
    ) {
        for stmt in &block.stmts {
            match stmt {
                Stmt::Let { names, ty, init, .. } => {
                    if let Some(e) = init {
                        walk_expr(unit, ix, krate, self_ty, *e, env, sup);
                    }
                    if let (Some(t), [name]) = (ty, names.as_slice()) {
                        env.insert(name.clone(), t.head.clone());
                    } else if let ([name], Some(e)) = (names.as_slice(), init) {
                        if let Some(t) = infer_head(unit, ix, krate, self_ty, *e, env) {
                            env.insert(name.clone(), t);
                        }
                    }
                }
                Stmt::Expr { expr, .. } => walk_expr(unit, ix, krate, self_ty, *expr, env, sup),
                Stmt::Item(_) => {}
            }
        }
    }

    fn walk_expr(
        unit: &FileUnit,
        ix: &Index,
        krate: &str,
        self_ty: Option<&str>,
        id: crate::parse::ExprId,
        env: &mut BTreeMap<String, String>,
        sup: &mut Suppressions,
    ) {
        let expr = unit.ast.expr(id);
        match &expr.kind {
            ExprKind::Cast { expr: inner, ty, as_line } => {
                walk_expr(unit, ix, krate, self_ty, *inner, env, sup);
                if let Some(src_ty) = infer_head(unit, ix, krate, self_ty, *inner, env) {
                    if is_widening(&src_ty, &ty.head) {
                        sup.r3_widening.insert(*as_line);
                    }
                }
            }
            ExprKind::MethodCall { recv, name, name_line, args } => {
                walk_expr(unit, ix, krate, self_ty, *recv, env, sup);
                for a in args {
                    walk_expr(unit, ix, krate, self_ty, *a, env, sup);
                }
                if name == "unwrap" || name == "expect" {
                    let recv_ty = infer_head(unit, ix, krate, self_ty, *recv, env);
                    if let Some(t) = recv_ty {
                        if ix.has_local_method(krate, &t, name) {
                            sup.r6_local_method.insert(*name_line);
                        }
                    }
                }
            }
            _ => {
                for child in children(&expr.kind) {
                    walk_expr(unit, ix, krate, self_ty, child, env, sup);
                }
                // blocks inside expressions get their own sub-walk
                for b in blocks(&expr.kind) {
                    walk_block(unit, ix, krate, self_ty, b, env, sup);
                }
            }
        }
    }

    /// Best-effort head-type of an expression, for the cast/receiver checks.
    fn infer_head(
        unit: &FileUnit,
        ix: &Index,
        krate: &str,
        self_ty: Option<&str>,
        id: crate::parse::ExprId,
        env: &BTreeMap<String, String>,
    ) -> Option<String> {
        let expr = unit.ast.expr(id);
        match &expr.kind {
            ExprKind::Path(segs) => match segs.as_slice() {
                [one] if one == "self" => self_ty.map(|s| s.to_string()),
                [one] => env.get(one).cloned(),
                _ => None,
            },
            ExprKind::Lit(crate::parse::TokKind::Int) => {
                // suffixed literals carry their own type: `3u32 as u64`
                let text = unit.toks.get(expr.toks.start)?.text(&unit.src);
                for suffix in ["u8", "u16", "u32", "u64", "usize", "i8", "i16", "i32", "i64", "isize"] {
                    if text.ends_with(suffix) {
                        return Some(suffix.to_string());
                    }
                }
                None
            }
            ExprKind::Cast { ty, .. } => Some(ty.head.clone()),
            ExprKind::Tuple(parts) if parts.len() == 1 => {
                infer_head(unit, ix, krate, self_ty, parts[0], env)
            }
            ExprKind::MethodCall { name, .. } if name == "len" || name == "count" || name == "capacity" => {
                Some("usize".to_string())
            }
            ExprKind::Field { recv, name } => {
                let recv_head = infer_head(unit, ix, krate, self_ty, *recv, env);
                let t = match recv_head {
                    Some(h) => ix.field_ty(krate, &h, name).cloned(),
                    None => None,
                };
                t.map(|t| t.head)
            }
            ExprKind::Unary(inner) | ExprKind::Try(inner) => {
                infer_head(unit, ix, krate, self_ty, *inner, env)
            }
            ExprKind::Binary { op, lhs, rhs, .. } => {
                use crate::parse::BinOp;
                if matches!(op, BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem | BinOp::Bit) {
                    let l = infer_head(unit, ix, krate, self_ty, *lhs, env);
                    let r = infer_head(unit, ix, krate, self_ty, *rhs, env);
                    match (l, r) {
                        (Some(a), Some(b)) if a == b => Some(a),
                        (Some(a), None) => Some(a),
                        (None, Some(b)) => Some(b),
                        _ => None,
                    }
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    sup
}

/// Child expressions of a node (blocks excluded — see [`blocks`]).
pub fn children(kind: &crate::parse::ExprKind) -> Vec<crate::parse::ExprId> {
    use crate::parse::ExprKind as E;
    match kind {
        E::Unary(a) | E::Try(a) => vec![*a],
        E::Binary { lhs, rhs, .. } | E::Assign { lhs, rhs, .. } => vec![*lhs, *rhs],
        E::Call { callee, args } => {
            let mut v = vec![*callee];
            v.extend(args.iter().copied());
            v
        }
        E::MethodCall { recv, args, .. } => {
            let mut v = vec![*recv];
            v.extend(args.iter().copied());
            v
        }
        E::Field { recv, .. } => vec![*recv],
        E::Index { recv, index } => vec![*recv, *index],
        E::Cast { expr, .. } => vec![*expr],
        E::Tuple(xs) | E::Array(xs) => xs.clone(),
        E::If { cond, else_, .. } => {
            let mut v = vec![*cond];
            v.extend(else_.iter().copied());
            v
        }
        E::Match { scrut, arms } => {
            let mut v = vec![*scrut];
            v.extend(arms.iter().map(|(_, e)| *e));
            v
        }
        E::While { cond, .. } => vec![*cond],
        E::For { iter, .. } => vec![*iter],
        E::Closure { body, .. } => vec![*body],
        E::Jump(Some(e)) => vec![*e],
        E::StructLit { fields, .. } => fields.iter().map(|(_, e)| *e).collect(),
        E::RangeLit(a, b) => a.iter().chain(b.iter()).copied().collect(),
        _ => Vec::new(),
    }
}

/// Blocks directly owned by a node.
pub fn blocks(kind: &crate::parse::ExprKind) -> Vec<&crate::parse::Block> {
    use crate::parse::ExprKind as E;
    match kind {
        E::Block(b) | E::Loop(b) => vec![b],
        E::If { then, .. } => vec![then],
        E::While { body, .. } | E::For { body, .. } => vec![body],
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    fn unit(rel: &str, src: &str) -> FileUnit {
        let (toks, ast) = parse::parse(src);
        FileUnit {
            rel: rel.to_string(),
            krate: crate_of(rel),
            src: src.to_string(),
            toks,
            ast,
            lexed: lexer::lex(src, false),
            testish: false,
        }
    }

    #[test]
    fn crate_names_resolve() {
        assert_eq!(crate_of("crates/net/src/network.rs"), "net");
        assert_eq!(crate_of("src/lib.rs"), "root");
        assert_eq!(crate_of("tests/simlint_gate.rs"), "root");
    }

    #[test]
    fn widening_lattice() {
        assert!(is_widening("u32", "u64"));
        assert!(is_widening("usize", "u64"));
        assert!(is_widening("u64", "usize"));
        assert!(is_widening("u32", "i64"));
        assert!(is_widening("i32", "i64"));
        assert!(!is_widening("u64", "i64"));
        assert!(!is_widening("u64", "u32"));
        assert!(!is_widening("i32", "u64"));
        assert!(!is_widening("f64", "u64"));
        assert!(!is_widening("u32", "f32"));
    }

    #[test]
    fn index_sees_fields_methods_and_experiment_impls() {
        let files = vec![
            unit(
                "crates/demo/src/a.rs",
                "struct Net { flows: BTreeMap<u64, Flow>, m: HashMap<u8, u8> }\n\
                 impl Net { fn expect(&self, b: u8) -> u8 { b } }\n\
                 impl Experiment for Net { fn run(&mut self) -> u8 { 0 } }",
            ),
        ];
        let ix = Index::build(&files);
        assert_eq!(ix.field_ty("demo", "Net", "flows").unwrap().head, "BTreeMap");
        assert!(ix.has_local_method("demo", "Net", "expect"));
        assert!(!ix.has_local_method("demo", "Net", "unwrap"));
        assert!(ix.is_experiment_impl("demo", "Net"));
        assert!(!ix.is_experiment_impl("demo", "Other"));
    }

    #[test]
    fn widening_casts_are_suppressed_lossy_ones_are_not() {
        let u = unit(
            "crates/demo/src/b.rs",
            "fn f(xs: &Vec<u8>, n: u32) -> u64 {\n\
             \x20   let a = xs.len() as u64;\n\
             \x20   let b = n as u64;\n\
             \x20   let c = n as u16;\n\
             \x20   a + b + c as u64\n\
             }",
        );
        let ix = Index::build(std::slice::from_ref(&u));
        let sup = suppressions(&u, &ix);
        assert!(sup.r3_widening.contains(&2), "len() as u64 is widening");
        assert!(sup.r3_widening.contains(&3), "u32 as u64 is widening");
        assert!(!sup.r3_widening.contains(&4), "u32 as u16 truncates");
        // line 5: `c as u64` where c: u16 (inferred from cast) — widening
        assert!(sup.r3_widening.contains(&5));
    }

    #[test]
    fn local_method_expect_is_suppressed() {
        let u = unit(
            "crates/demo/src/c.rs",
            "struct P { pos: usize }\n\
             impl P {\n\
             \x20   fn expect(&mut self, b: u8) -> u8 { b }\n\
             \x20   fn go(&mut self) -> u8 { self.expect(1) }\n\
             }\n\
             fn f(o: Option<u8>) -> u8 { o.expect(\"boom\") }",
        );
        let ix = Index::build(std::slice::from_ref(&u));
        let sup = suppressions(&u, &ix);
        assert!(sup.r6_local_method.contains(&4), "self.expect is a local method");
        assert!(!sup.r6_local_method.contains(&6), "Option::expect still counts");
    }
}
