//! # edison-microbench
//!
//! The paper's Section-4 individual-server benchmarks, re-implemented
//! against the simulated hardware:
//!
//! * [`dhrystone`] — §4.1, DMIPS via 100 M iterations on one thread;
//! * [`sysbench_cpu`] — §4.1 / Figures 2–3, primes < 20000 with 1–8 threads;
//! * [`sysbench_mem`] — §4.2, block-size × thread-count bandwidth sweep;
//! * [`storage`] — §4.3 / Table 5, `dd` throughput and `ioping` latency;
//! * [`network`] — §4.4, `iperf3` pairwise throughput and `ping` RTTs.
//!
//! Each benchmark drives the same `Node` / `Topology` machinery the cluster
//! workloads use — they are *executions over the model*, not table lookups,
//! so a change to the hardware model propagates into every figure.

pub mod dhrystone;
pub mod network;
pub mod storage;
pub mod sysbench_cpu;
pub mod sysbench_mem;
