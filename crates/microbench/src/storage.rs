//! `dd` and `ioping` storage tests (§4.3, Table 5).
//!
//! `dd` streams a large file through the node's FCFS disk queue in
//! `bs`-sized requests — with `oflag=dsync` every block commits before the
//! next is issued (direct path), otherwise the page cache absorbs writes at
//! the buffered rate. `ioping` issues one small random I/O and reports its
//! latency.

use edison_cluster::{Node, NodeId};
use edison_hw::ServerSpec;
use edison_simcore::time::SimTime;

/// Direction + caching mode of a dd run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DdMode {
    /// `oflag=dsync` write: every block waits for the medium.
    DirectWrite,
    /// Page-cache write-back.
    BufferedWrite,
    /// Read with caches dropped.
    DirectRead,
    /// Read served from the page cache.
    BufferedRead,
}

/// Result of a dd streaming run.
#[derive(Debug, Clone, PartialEq)]
pub struct DdResult {
    pub mode: DdMode,
    /// Total bytes streamed.
    pub bytes: u64,
    /// Wall time, seconds.
    pub seconds: f64,
    /// Observed throughput, bytes/s.
    pub throughput: f64,
}

/// Stream `bytes` in `block`-sized requests through a fresh node of `spec`.
pub fn dd(spec: &ServerSpec, mode: DdMode, bytes: u64, block: u64) -> DdResult {
    assert!(block > 0 && bytes >= block);
    let mut node = Node::new(NodeId(0), spec.clone());
    let blocks = bytes / block;
    let mut now = SimTime::ZERO;
    // dd issues blocks sequentially: each service time includes the device
    // latency only when the request actually reaches the medium. Buffered
    // streams amortise the latency (write-back / read-ahead), which we model
    // as one latency charge up front.
    let per_block = |n: &Node, with_latency: bool| {
        let t = match mode {
            DdMode::DirectWrite => n.disk_write_time(block, true),
            DdMode::BufferedWrite => n.disk_write_time(block, false),
            DdMode::DirectRead => n.disk_read_time(block, false),
            DdMode::BufferedRead => n.disk_read_time(block, true),
        };
        if with_latency {
            t
        } else {
            let lat = match mode {
                DdMode::DirectWrite | DdMode::BufferedWrite => n.spec().storage.write_latency_s,
                DdMode::DirectRead | DdMode::BufferedRead => n.spec().storage.read_latency_s,
            };
            edison_simcore::SimDuration::from_secs_f64(t.as_secs_f64() - lat)
        }
    };
    let amortised = matches!(mode, DdMode::BufferedWrite | DdMode::BufferedRead | DdMode::DirectRead);
    for i in 0..blocks {
        // Direct writes pay the sync latency per block; buffered paths and
        // sequential reads (read-ahead) pay it once.
        let with_latency = !amortised || i == 0;
        let service = per_block(&node, with_latency);
        let scheduled = node.disk().submit(now, i, service);
        let (_, done) = scheduled.expect("sequential dd never queues");
        node.disk().complete(done);
        now = done;
    }
    let seconds = now.as_secs_f64();
    DdResult { mode, bytes, seconds, throughput: bytes as f64 / seconds }
}

/// Result of an ioping latency probe.
#[derive(Debug, Clone, PartialEq)]
pub struct IopingResult {
    /// Random-read latency, seconds.
    pub read_latency: f64,
    /// Random-write latency, seconds.
    pub write_latency: f64,
}

/// Probe random I/O latency (small random requests hitting the medium;
/// the reported figure is dominated by the access latency itself).
pub fn ioping(spec: &ServerSpec) -> IopingResult {
    let node = Node::new(NodeId(0), spec.clone());
    let block = 1024;
    IopingResult {
        read_latency: node.disk_read_time(block, false).as_secs_f64(),
        write_latency: node.disk_write_time(block, true).as_secs_f64(),
    }
}

/// The full Table 5 for one platform.
#[derive(Debug, Clone, PartialEq)]
pub struct Table5Row {
    pub platform: String,
    pub write_mbps: f64,
    pub buffered_write_mbps: f64,
    pub read_mbps: f64,
    pub buffered_read_mbps: f64,
    pub write_latency_ms: f64,
    pub read_latency_ms: f64,
}

/// Run every Table 5 cell for `spec` (256 MiB streams, 1 MiB blocks — large
/// enough that the one-off latency charge is negligible).
pub fn table5(spec: &ServerSpec) -> Table5Row {
    let sz = 256 * 1024 * 1024;
    let blk = 1024 * 1024;
    let mb = 1e6;
    let io = ioping(spec);
    Table5Row {
        platform: spec.name.clone(),
        write_mbps: dd(spec, DdMode::DirectWrite, sz, blk).throughput / mb,
        buffered_write_mbps: dd(spec, DdMode::BufferedWrite, sz, blk).throughput / mb,
        read_mbps: dd(spec, DdMode::DirectRead, sz, blk).throughput / mb,
        buffered_read_mbps: dd(spec, DdMode::BufferedRead, sz, blk).throughput / mb,
        write_latency_ms: io.write_latency * 1e3,
        read_latency_ms: io.read_latency * 1e3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edison_hw::presets;

    #[test]
    fn edison_row_matches_table5() {
        let r = table5(&presets::edison());
        assert!((r.read_mbps - 19.5).abs() < 0.6, "read {}", r.read_mbps);
        assert!((r.buffered_read_mbps - 737.0).abs() < 25.0);
        assert!((r.buffered_write_mbps - 9.3).abs() < 0.3);
        assert!((r.write_latency_ms - 18.0).abs() < 0.3);
        assert!((r.read_latency_ms - 7.0).abs() < 0.2);
        // direct write pays 18 ms per 1 MiB block: throughput drops below
        // the raw 4.5 MB/s medium rate, as dsync dd does in practice.
        assert!(r.write_mbps <= 4.5);
    }

    #[test]
    fn dell_row_matches_table5() {
        let r = table5(&presets::dell_r620());
        assert!((r.read_mbps - 86.1).abs() < 1.0);
        assert!((r.buffered_read_mbps - 3100.0).abs() < 150.0);
        assert!((r.buffered_write_mbps - 83.2).abs() < 1.5);
        assert!((r.write_latency_ms - 5.04).abs() < 0.1);
        assert!((r.read_latency_ms - 0.829).abs() < 0.05);
    }

    #[test]
    fn direct_write_gap_is_about_5x() {
        // Table 5 discussion: Dell direct write 5.3× faster.
        let e = table5(&presets::edison());
        let d = table5(&presets::dell_r620());
        let gap = d.write_mbps / e.write_mbps;
        assert!((3.5..7.0).contains(&gap), "gap {gap}");
    }

    #[test]
    fn dd_throughput_approaches_spec_for_large_streams() {
        let spec = presets::edison();
        let small = dd(&spec, DdMode::DirectRead, 8 * 1024 * 1024, 1024 * 1024);
        let large = dd(&spec, DdMode::DirectRead, 512 * 1024 * 1024, 1024 * 1024);
        assert!(large.throughput > small.throughput * 0.99);
        assert!((large.throughput - 19.5e6).abs() / 19.5e6 < 0.01);
    }

    #[test]
    fn latency_gap_matches_paper() {
        // §4.3: read and write latencies 8.4× / 3.6× larger on Edison.
        let e = ioping(&presets::edison());
        let d = ioping(&presets::dell_r620());
        assert!((e.read_latency / d.read_latency - 8.4).abs() < 0.2);
        assert!((e.write_latency / d.write_latency - 3.6).abs() < 0.1);
    }
}
