//! Dhrystone 2.1 (§4.1).
//!
//! The paper runs 100 million iterations on one core/one thread, divides
//! the iterations-per-second score by 1757 and reports DMIPS: 632.3 for the
//! Edison, 11383 for the Dell. Our CPU model is *anchored* in DMIPS, so
//! this benchmark closes the loop: it executes the iteration load through a
//! live [`Node`]'s fluid CPU and re-derives the score from simulated time.

use edison_cluster::{Node, NodeId};
use edison_hw::ServerSpec;
use edison_simcore::time::SimTime;

/// VAX 11/780 dhrystones/second — the DMIPS normalisation constant.
pub const DMIPS_DIVISOR: f64 = 1757.0;

/// Result of one Dhrystone run.
#[derive(Debug, Clone, PartialEq)]
pub struct DhrystoneResult {
    /// Iterations executed.
    pub runs: u64,
    /// Wall time, seconds (simulated).
    pub seconds: f64,
    /// Dhrystones per second.
    pub score: f64,
    /// score / 1757.
    pub dmips: f64,
}

/// Run `runs` Dhrystone iterations single-threaded on a fresh node of
/// `spec`.
pub fn run(spec: &ServerSpec, runs: u64) -> DhrystoneResult {
    let mut node = Node::new(NodeId(0), spec.clone());
    // DMIPS anchoring: the 1-MIPS VAX 11/780 ran 1757 dhrystones/s, so a
    // machine of D DMIPS retires 1757·D iterations/s while executing D
    // MI/s — i.e. `runs` iterations cost `runs / 1757` MI (≈569
    // instructions per iteration).
    let work_mi = runs as f64 / DMIPS_DIVISOR;
    let t0 = SimTime::ZERO;
    node.add_cpu_task(t0, 1, work_mi);
    let (_, done) = node.next_cpu_completion(t0).expect("task scheduled");
    let finished = node.take_finished_cpu(done);
    debug_assert_eq!(finished, vec![1]);
    let seconds = done.as_secs_f64();
    let score = runs as f64 / seconds;
    DhrystoneResult { runs, seconds, score, dmips: score / DMIPS_DIVISOR }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edison_hw::presets;

    #[test]
    fn edison_reports_632_dmips() {
        let r = run(&presets::edison(), 100_000_000);
        assert!((r.dmips - 632.3).abs() < 0.5, "dmips {}", r.dmips);
        // 100 M iterations at 632.3 DMIPS · 1757 dhry/s/DMIPS ≈ 90 s
        assert!((r.seconds - 90.0).abs() < 0.5);
    }

    #[test]
    fn dell_reports_11383_dmips() {
        let r = run(&presets::dell_r620(), 100_000_000);
        assert!((r.dmips - 11_383.0).abs() < 5.0, "dmips {}", r.dmips);
    }

    #[test]
    fn single_core_gap_is_an_18x() {
        let e = run(&presets::edison(), 10_000_000);
        let d = run(&presets::dell_r620(), 10_000_000);
        let gap = d.dmips / e.dmips;
        // §4.1: "1 Edison core only has 5.6% performance of 1 Dell core"
        assert!((gap - 18.0).abs() < 0.5, "gap {gap}");
        assert!((e.dmips / d.dmips - 0.056).abs() < 0.002);
    }

    #[test]
    fn score_is_independent_of_run_count() {
        let a = run(&presets::edison(), 1_000_000);
        let b = run(&presets::edison(), 50_000_000);
        assert!((a.dmips - b.dmips).abs() < 1e-6);
    }
}
