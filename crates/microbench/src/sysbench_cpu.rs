//! Sysbench 0.5 CPU test (§4.1, Figures 2 and 3).
//!
//! Sysbench computes all primes below 20000 for a fixed number of events,
//! split across N worker threads; it reports total time and the average
//! per-event response time. We execute the event load through a node's
//! processor-sharing CPU: with ≤ `threads` workers each runs at the
//! single-thread rate; beyond the core count workers share.
//!
//! The per-event cost constant is fitted so the Edison single-thread total
//! lands at the ≈600 s Figure 2 reports; the Dell curve (Figure 3) and both
//! response-time curves then *follow* from the hardware model — including
//! the paper's "15–18× faster single-thread" observation.

use edison_cluster::{Node, NodeId};
use edison_hw::ServerSpec;
use edison_simcore::time::SimTime;

/// Number of sysbench events in one run (`--cpu-max-prime=20000` default
/// event count used by the paper's sysbench 0.5).
pub const EVENTS: u64 = 10_000;

/// CPU cost of one prime-search event, MI. Fitted to the Edison
/// single-thread total time (≈600 s, Figure 2).
pub const EVENT_MI: f64 = 37.9;

/// Result of one sysbench CPU run.
#[derive(Debug, Clone, PartialEq)]
pub struct SysbenchCpuResult {
    /// Worker threads used.
    pub threads: u32,
    /// Total wall time for all events, seconds.
    pub total_seconds: f64,
    /// Mean per-event latency, milliseconds (sysbench "avg response time").
    pub avg_response_ms: f64,
}

/// Run sysbench-cpu with `threads` workers on a fresh node of `spec`.
///
/// Each worker executes `EVENTS / threads` events back to back; events of
/// the final partial batch are distributed round-robin, matching sysbench's
/// shared event counter.
pub fn run(spec: &ServerSpec, threads: u32) -> SysbenchCpuResult {
    assert!(threads >= 1);
    let mut node = Node::new(NodeId(0), spec.clone());
    let t0 = SimTime::ZERO;
    // Each worker is one long CPU task of its share of events. Workers all
    // start together and the fluid CPU shares capacity exactly as the real
    // scheduler does on average.
    let base = EVENTS / threads as u64;
    let extra = EVENTS % threads as u64;
    for w in 0..threads as u64 {
        let events = base + u64::from(w < extra);
        if events > 0 {
            node.add_cpu_task(t0, w, events as f64 * EVENT_MI);
        }
    }
    // Drain to completion, tracking per-event response times via the
    // per-thread service rate at each instant.
    let mut now = t0;
    let mut resp_weighted = 0.0;
    let mut last_rate_events = 0.0;
    while let Some((_, at)) = node.next_cpu_completion(now) {
        // response time while the current task mix runs
        let per_thread_rate = spec.cpu.per_thread_cap().min(
            spec.cpu.total_mips() / node.cpu_tasks() as f64,
        );
        let dt = at.saturating_since(now).as_secs_f64();
        let events_in_window = per_thread_rate * node.cpu_tasks() as f64 * dt / EVENT_MI;
        resp_weighted += events_in_window * (EVENT_MI / per_thread_rate);
        last_rate_events += events_in_window;
        now = at;
        node.take_finished_cpu(now);
    }
    let avg_response_s = if last_rate_events > 0.0 { resp_weighted / last_rate_events } else { 0.0 };
    SysbenchCpuResult {
        threads,
        total_seconds: now.as_secs_f64(),
        avg_response_ms: avg_response_s * 1e3,
    }
}

/// The Figure 2/3 sweep: threads ∈ {1, 2, 4, 8}.
pub fn sweep(spec: &ServerSpec) -> Vec<SysbenchCpuResult> {
    [1u32, 2, 4, 8].iter().map(|&n| run(spec, n)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use edison_hw::presets;

    #[test]
    fn edison_single_thread_is_about_600s() {
        let r = run(&presets::edison(), 1);
        assert!((570.0..630.0).contains(&r.total_seconds), "t {}", r.total_seconds);
    }

    #[test]
    fn edison_flattens_beyond_two_threads() {
        // Figure 2: halves at 2 threads, flat afterwards (2 cores).
        let s = sweep(&presets::edison());
        assert!((s[1].total_seconds / s[0].total_seconds - 0.5).abs() < 0.02);
        assert!((s[2].total_seconds / s[1].total_seconds - 1.0).abs() < 0.02);
        assert!((s[3].total_seconds / s[1].total_seconds - 1.0).abs() < 0.02);
    }

    #[test]
    fn dell_keeps_scaling_past_six_threads() {
        // Figure 3: 12 hardware threads keep helping (SMT headroom).
        let s = sweep(&presets::dell_r620());
        assert!(s[3].total_seconds < s[2].total_seconds);
        assert!(s[0].total_seconds < 45.0, "1-thread {}", s[0].total_seconds);
    }

    #[test]
    fn single_thread_ratio_matches_paper_band() {
        // §4.1: Dell 15–18× faster single-thread under sysbench.
        let e = run(&presets::edison(), 1);
        let d = run(&presets::dell_r620(), 1);
        let ratio = e.total_seconds / d.total_seconds;
        assert!((15.0..19.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn edison_response_time_grows_with_oversubscription() {
        // Figure 2 right axis: response time roughly flat to 2 threads,
        // then grows linearly with thread count.
        let s = sweep(&presets::edison());
        assert!((s[0].avg_response_ms - 60.0).abs() < 5.0, "{}", s[0].avg_response_ms);
        assert!(s[3].avg_response_ms > 3.0 * s[1].avg_response_ms);
    }

    #[test]
    fn dell_response_stays_in_single_digit_ms() {
        // Figure 3 right axis: 3–5 ms across the sweep.
        for r in sweep(&presets::dell_r620()) {
            assert!((2.0..6.0).contains(&r.avg_response_ms), "{:?}", r);
        }
    }

    #[test]
    fn all_events_complete_exactly() {
        // Work conservation: total CPU-seconds equal events × cost / rate.
        let spec = presets::edison();
        let r = run(&spec, 3);
        let ideal = EVENTS as f64 * EVENT_MI / spec.cpu.total_mips();
        assert!(r.total_seconds >= ideal * 0.999, "{} vs {}", r.total_seconds, ideal);
    }
}
