//! Sysbench memory-transfer test (§4.2).
//!
//! The paper iterates block sizes from 4 KiB to 1 MiB and thread counts
//! from 1 to 16, observing that transfer rate saturates from 256 KiB
//! upward, beyond 2 threads on the Edison and beyond 12 threads on the
//! Dell, peaking at 2.2 GB/s and 36 GB/s respectively. The run here sweeps
//! the same grid over the `MemSpec` bandwidth surface.

use edison_hw::ServerSpec;

/// One cell of the block-size × threads sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct MemBwPoint {
    /// Transfer block size, bytes.
    pub block: u64,
    /// Worker threads.
    pub threads: u32,
    /// Measured aggregate bandwidth, bytes/s.
    pub bandwidth: f64,
}

/// Result of the full sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct MemBwResult {
    /// All grid points in (block, threads) iteration order.
    pub points: Vec<MemBwPoint>,
    /// Peak bandwidth observed, bytes/s.
    pub peak: f64,
    /// Smallest thread count reaching ≥ 99 % of peak at 1 MiB blocks.
    pub saturation_threads: u32,
    /// Smallest block size reaching ≥ 85 % of peak at saturation threads.
    pub saturation_block: u64,
}

/// The paper's grid: 4 KiB – 1 MiB blocks, 1–16 threads.
pub fn sweep(spec: &ServerSpec) -> MemBwResult {
    let blocks: Vec<u64> = (0..9).map(|i| 4 * 1024u64 << i).collect(); // 4K..1M
    let threads: Vec<u32> = vec![1, 2, 4, 8, 12, 16];
    let mut points = Vec::with_capacity(blocks.len() * threads.len());
    let mut peak = 0.0f64;
    for &b in &blocks {
        for &n in &threads {
            let bw = spec.mem.effective_bw(n, b);
            peak = peak.max(bw);
            points.push(MemBwPoint { block: b, threads: n, bandwidth: bw });
        }
    }
    let max_block = *blocks.last().unwrap();
    let saturation_threads = threads
        .iter()
        .copied()
        .find(|&n| spec.mem.effective_bw(n, max_block) >= 0.99 * peak)
        .unwrap_or(16);
    let saturation_block = blocks
        .iter()
        .copied()
        .find(|&b| spec.mem.effective_bw(saturation_threads, b) >= 0.85 * peak)
        .unwrap_or(max_block);
    MemBwResult { points, peak, saturation_threads, saturation_block }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edison_hw::presets;

    #[test]
    fn edison_peaks_at_2_2_gbps() {
        let r = sweep(&presets::edison());
        assert!((r.peak / 1e9 - 2.2).abs() < 0.15, "peak {}", r.peak / 1e9);
    }

    #[test]
    fn dell_peaks_at_36_gbps() {
        let r = sweep(&presets::dell_r620());
        assert!((r.peak / 1e9 - 36.0).abs() < 2.0, "peak {}", r.peak / 1e9);
    }

    #[test]
    fn edison_saturates_at_two_threads() {
        let r = sweep(&presets::edison());
        assert_eq!(r.saturation_threads, 2);
    }

    #[test]
    fn dell_saturates_at_twelve_threads() {
        let r = sweep(&presets::dell_r620());
        assert_eq!(r.saturation_threads, 12);
    }

    #[test]
    fn bandwidth_saturates_by_256k_blocks() {
        for spec in [presets::edison(), presets::dell_r620()] {
            let r = sweep(&spec);
            assert!(
                r.saturation_block <= 256 * 1024,
                "{}: saturation at {} bytes",
                spec.name,
                r.saturation_block
            );
        }
    }

    #[test]
    fn bandwidth_is_monotone_in_block_and_threads() {
        let r = sweep(&presets::dell_r620());
        for w in r.points.windows(2) {
            if w[0].block == w[1].block {
                assert!(w[1].bandwidth >= w[0].bandwidth - 1e-6);
            }
        }
    }

    #[test]
    fn memory_gap_is_16x() {
        // §4 summary: memory bandwidth gap ≈ 16×.
        let e = sweep(&presets::edison());
        let d = sweep(&presets::dell_r620());
        let gap = d.peak / e.peak;
        assert!((gap - 16.36).abs() < 0.5, "gap {gap}");
    }
}
