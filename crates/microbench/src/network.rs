//! `iperf3` and `ping` network tests (§4.4).
//!
//! The paper transfers 1 GB over TCP and UDP between three node pairs
//! (Dell↔Dell, Dell↔Edison, Edison↔Edison) and pings each pair. We build
//! the two-room fabric and run the same flows through the max-min network.

use edison_hw::ServerSpec;
use edison_net::topology::TwoRooms;
use edison_simcore::time::SimTime;

/// Protocol used for the iperf transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Proto {
    Tcp,
    Udp,
}

/// The three pairs of §4.4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pair {
    DellToDell,
    DellToEdison,
    EdisonToEdison,
}

/// Result of an iperf transfer.
#[derive(Debug, Clone, PartialEq)]
pub struct IperfResult {
    pub pair: Pair,
    pub proto: Proto,
    /// Bytes transferred (the paper: 1 GB).
    pub bytes: u64,
    /// Wall time, seconds.
    pub seconds: f64,
    /// Goodput, Mbit/s — the unit the paper reports.
    pub mbits_per_sec: f64,
}

/// Run one iperf transfer of `bytes` between the given pair.
pub fn iperf(pair: Pair, proto: Proto, bytes: u64, edison: &ServerSpec, dell: &ServerSpec) -> IperfResult {
    let mut rooms = TwoRooms::new();
    let eff = |spec: &ServerSpec| match proto {
        Proto::Tcp => spec.nic.tcp_efficiency,
        Proto::Udp => spec.nic.udp_efficiency,
    };
    let (src, dst) = match pair {
        Pair::DellToDell => (
            rooms.topo.add_host(rooms.dell_room, dell.nic.line_rate_bps, eff(dell)),
            rooms.topo.add_host(rooms.dell_room, dell.nic.line_rate_bps, eff(dell)),
        ),
        Pair::DellToEdison => (
            rooms.topo.add_host(rooms.dell_room, dell.nic.line_rate_bps, eff(dell)),
            rooms.topo.add_host(rooms.edison_room, edison.nic.line_rate_bps, eff(edison)),
        ),
        Pair::EdisonToEdison => (
            rooms.topo.add_host(rooms.edison_room, edison.nic.line_rate_bps, eff(edison)),
            rooms.topo.add_host(rooms.edison_room, edison.nic.line_rate_bps, eff(edison)),
        ),
    };
    let (path, latency) = rooms.topo.path(src, dst);
    let t0 = SimTime::ZERO;
    let net = rooms.topo.network_mut();
    net.start_flow(t0, 1, bytes as f64, path, f64::INFINITY);
    let done = match net.next_completion(t0) {
        Some((_, done)) => done,
        // A just-started flow always schedules a completion; the only way
        // to get none is a zero-byte transfer, which finishes instantly.
        None => t0,
    };
    net.take_finished(done);
    let seconds = (done + latency).as_secs_f64();
    IperfResult {
        pair,
        proto,
        bytes,
        seconds,
        mbits_per_sec: bytes as f64 * 8.0 / seconds / 1e6,
    }
}

/// Ping RTT between a pair, milliseconds.
pub fn ping_rtt_ms(pair: Pair, edison: &ServerSpec, dell: &ServerSpec) -> f64 {
    let mut rooms = TwoRooms::new();
    let (src, dst) = match pair {
        Pair::DellToDell => (
            rooms.topo.add_host(rooms.dell_room, dell.nic.line_rate_bps, 1.0),
            rooms.topo.add_host(rooms.dell_room, dell.nic.line_rate_bps, 1.0),
        ),
        Pair::DellToEdison => (
            rooms.topo.add_host(rooms.dell_room, dell.nic.line_rate_bps, 1.0),
            rooms.topo.add_host(rooms.edison_room, edison.nic.line_rate_bps, 1.0),
        ),
        Pair::EdisonToEdison => (
            rooms.topo.add_host(rooms.edison_room, edison.nic.line_rate_bps, 1.0),
            rooms.topo.add_host(rooms.edison_room, edison.nic.line_rate_bps, 1.0),
        ),
    };
    rooms.topo.rtt(src, dst).as_millis_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use edison_hw::presets;

    const GB: u64 = 1_000_000_000;

    #[test]
    fn dell_to_dell_tcp_is_942_mbps() {
        let r = iperf(Pair::DellToDell, Proto::Tcp, GB, &presets::edison(), &presets::dell_r620());
        assert!((r.mbits_per_sec - 942.0).abs() < 2.0, "{}", r.mbits_per_sec);
    }

    #[test]
    fn dell_to_dell_udp_is_948_mbps() {
        let r = iperf(Pair::DellToDell, Proto::Udp, GB, &presets::edison(), &presets::dell_r620());
        assert!((r.mbits_per_sec - 948.0).abs() < 2.0, "{}", r.mbits_per_sec);
    }

    #[test]
    fn edison_paths_cap_at_94_mbps() {
        for pair in [Pair::DellToEdison, Pair::EdisonToEdison] {
            let tcp = iperf(pair, Proto::Tcp, GB, &presets::edison(), &presets::dell_r620());
            assert!((tcp.mbits_per_sec - 93.9).abs() < 0.5, "{:?} {}", pair, tcp.mbits_per_sec);
            let udp = iperf(pair, Proto::Udp, GB, &presets::edison(), &presets::dell_r620());
            assert!((udp.mbits_per_sec - 94.8).abs() < 0.5, "{:?} {}", pair, udp.mbits_per_sec);
        }
    }

    #[test]
    fn ping_rtts_match_section_4_4() {
        let e = presets::edison();
        let d = presets::dell_r620();
        assert!((ping_rtt_ms(Pair::DellToDell, &e, &d) - 0.24).abs() < 0.01);
        assert!((ping_rtt_ms(Pair::DellToEdison, &e, &d) - 0.8).abs() < 0.01);
        assert!((ping_rtt_ms(Pair::EdisonToEdison, &e, &d) - 1.3).abs() < 0.01);
    }

    #[test]
    fn network_gap_is_10x() {
        let d = iperf(Pair::DellToDell, Proto::Tcp, GB, &presets::edison(), &presets::dell_r620());
        let e = iperf(Pair::EdisonToEdison, Proto::Tcp, GB, &presets::edison(), &presets::dell_r620());
        let gap = d.mbits_per_sec / e.mbits_per_sec;
        assert!((gap - 10.0).abs() < 0.2, "gap {gap}");
    }
}
