//! Fitted workload cost coefficients.
//!
//! These are the only "free" constants in the reproduction. Each was fitted
//! **once** against the paper observation named in its doc comment and is
//! then held fixed across every experiment, cluster size and workload
//! variant (DESIGN.md §1, "Calibration policy"). Everything else in
//! `edison-hw` is a direct Section 3–4 measurement.
//!
//! Units: CPU work in MI (millions of instructions, Dhrystone-anchored);
//! data in bytes; time in seconds.

/// Web server CPU per HTTP request on the Edison LLMP stack (PHP 5.4.41,
/// Lighttpd 1.4.31). Fitted to: 24 Edison web servers peak at ≈6800 req/s
/// with 86 % CPU (Figure 4 + §5.1.2 utilisation notes).
pub const WEB_REQ_MI_EDISON: f64 = 3.8;

/// Web server CPU per HTTP request on the Dell LLMP stack (PHP **5.3.3**,
/// Lighttpd 1.4.35). Fitted to: 2 Dell web servers peak at ≈6800 req/s with
/// 45 % CPU. The higher per-request cost reflects the older PHP runtime and
/// the ~12× higher per-process connection churn each Dell server sustains.
pub const WEB_REQ_MI_DELL: f64 = 11.7;

/// Extra web-server CPU per KiB of reply body (page assembly + TCP copy).
/// Fitted to the ≈15 % throughput drop from the 1.5 KiB to the 10 KiB
/// (20 %-image) workload at equal concurrency (Figures 4→6).
pub const WEB_REQ_MI_PER_KIB: f64 = 0.09;

/// memcached CPU per lookup. Fitted to the §5.1.2 cache-server utilisation:
/// 9 % CPU on 11 Edison cache servers and 1.6 % on 1 Dell cache server at
/// peak throughput.
pub const CACHE_LOOKUP_MI: f64 = 0.2;

/// MySQL server CPU per scalar query (row fetch on an indexed table).
/// Fitted to the Dell-side database delay of ≈1.6 ms in Table 7.
pub const DB_QUERY_MI: f64 = 12.0;

/// Extra MySQL CPU per KiB of blob payload returned.
pub const DB_QUERY_MI_PER_KIB: f64 = 0.05;

/// Probability a database query misses MySQL's buffer pool and pays a disk
/// read. The 20 GB dataset vs 32 GB aggregate DB-server RAM keeps this low.
pub const DB_DISK_MISS_P: f64 = 0.02;

/// TCP connection establishment CPU on the accepting server (3-way
/// handshake, fd allocation, FastCGI session). Applied per *connection*,
/// not per request. Fitted jointly with `WEB_REQ_MI_*` to the error-onset
/// concurrency levels (1024 on Edison, 2048 on Dell).
pub const TCP_ACCEPT_MI: f64 = 1.2;

/// YARN container start-up CPU (JVM launch + class loading), in MI.
/// Fitted to the logcount-vs-logcount2 gap at both full cluster sizes —
/// the pair of cells that isolates pure container overhead (430/476 fewer
/// containers do the same data work). Wall cost ≈25 s per JVM on the
/// Edison (Atom-class cores page through the JVM at SD-card speeds),
/// ≈5 s on the Dell.
pub const CONTAINER_STARTUP_MI: PerPlatform = PerPlatform { edison: 12_500.0, dell: 30_000.0 };

/// Per-task fixed CPU beyond the JVM itself: AM umbilical round trips,
/// split metadata, the output committer. Fitted jointly with the map
/// per-MiB constants to the Table 8 {wordcount, wordcount2, logcount,
/// logcount2} quadruple on each platform (four equations, three unknowns
/// per platform — the residual goes to the per-MiB terms).
pub const TASK_SETUP_MI: PerPlatform = PerPlatform { edison: 2_000.0, dell: 22_000.0 };

/// Fixed scheduler latency per container grant (RM heartbeat rounds), s.
pub const CONTAINER_GRANT_DELAY_S: f64 = 1.0;

/// Application-master setup time before any container request, in MI
/// (runs on the Dell master of the paper's hybrid deployment).
pub const APP_MASTER_SETUP_MI: f64 = 4_000.0;

/// Fixed job-submission latency: client → RM negotiation, AM container
/// allocation, job metadata distribution. Platform-independent.
pub const JOB_SUBMIT_DELAY_S: f64 = 12.0;

/// Job-localisation bytes written to each slave's disk before its first
/// container can launch (Hadoop framework jars + job artifacts). Fitted
/// jointly with `JOB_SUBMIT_DELAY_S` to the §5.2.1 observation that the
/// quiet period before the CPU rise is ≈45 s on Edison vs ≈20 s on Dell
/// (2.3×): the SD card absorbs 250 MB at 9.3 MB/s (≈27 s), the SAS disk
/// at 83 MB/s (≈3 s).
pub const JOB_LOCALIZATION_BYTES: u64 = 250 * 1024 * 1024;

/// Hadoop's reduce ramp-up limit: once slow-start is met, reducers take
/// priority over maps (YARN priority 10 vs 20) but may hold at most this
/// fraction of cluster resources while maps are still pending.
pub const REDUCE_RAMPUP_LIMIT: f64 = 0.5;

/// Per-task commit/cleanup CPU after the last record, in MI.
pub const TASK_CLEANUP_MI: f64 = 260.0;

/// Per-platform (Edison, Dell) cost pair, in Dhrystone-anchored MI.
///
/// Why per-platform: the Dhrystone anchor measures a deep-pipeline-friendly
/// integer loop, where the Dell core is ~18× an Edison core. The JVM's
/// text/hash processing is memory- and branch-bound, where the paper's own
/// measurements put the platform gap at 16× aggregate memory bandwidth
/// (§4.2) — far below the ~70× aggregate Dhrystone gap. Expressing job
/// costs in DMIPS-anchored MI therefore needs a larger per-MiB constant on
/// the Dell (its DMIPS overstate its effective Java throughput).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerPlatform {
    /// Cost on the Edison (Atom-class) core, MI.
    pub edison: f64,
    /// Cost on the Dell (Xeon-class) core, MI.
    pub dell: f64,
}

/// Map-phase CPU for wordcount, MI per MiB of input text (line splitting +
/// token hashing in the JVM). Fitted to the Figure 12/15 map-phase
/// durations.
pub const WORDCOUNT_MAP_MI_PER_MIB: PerPlatform = PerPlatform { edison: 3_200.0, dell: 6_900.0 };

/// Reduce-phase CPU for wordcount, MI per MiB of shuffled data.
pub const WORDCOUNT_REDUCE_MI_PER_MIB: PerPlatform = PerPlatform { edison: 3_200.0, dell: 13_000.0 };

/// Map-phase CPU for logcount, MI per MiB (much lighter than wordcount:
/// one key per log line instead of one per word).
pub const LOGCOUNT_MAP_MI_PER_MIB: PerPlatform = PerPlatform { edison: 1_600.0, dell: 5_900.0 };

/// Reduce-phase CPU for logcount, MI per MiB of shuffled data.
pub const LOGCOUNT_REDUCE_MI_PER_MIB: PerPlatform = PerPlatform { edison: 1_500.0, dell: 6_000.0 };

/// CPU per million Monte-Carlo samples in the pi estimator, MI.
/// Fitted to the §5.2.3 runtimes (10 G samples: 200 s on 35 Edison nodes,
/// 50 s on 2 Dells). The Dell constant sits below the Edison one because
/// running 24 sample loops on 12 physical cores over-subscribes SMT beyond
/// what the Dhrystone-fitted 1.3× factor credits; the residual (≈1.7×) is
/// absorbed here rather than in a per-job SMT curve.
pub const PI_MI_PER_MSAMPLE: PerPlatform = PerPlatform { edison: 600.0, dell: 480.0 };

/// Map-phase CPU for terasort, MI per MiB (record parse + partition).
pub const TERASORT_MAP_MI_PER_MIB: PerPlatform = PerPlatform { edison: 900.0, dell: 2_800.0 };

/// Reduce-phase CPU for terasort, MI per MiB (merge + final sort).
pub const TERASORT_REDUCE_MI_PER_MIB: PerPlatform = PerPlatform { edison: 500.0, dell: 800.0 };

/// Sort/spill CPU per MiB of map-output records (quick-sort in io.sort.mb
/// buffers, applies to all jobs).
pub const SPILL_SORT_MI_PER_MIB: PerPlatform = PerPlatform { edison: 300.0, dell: 1_200.0 };

/// JVM memory-management tax: fraction of task CPU added when the task's
/// working set exceeds 80 % of its container (GC pressure). Exercised by
/// the terasort memory-hungry phase (§5.2.4: "more memory-hungry than
/// CPU-hungry", ~95 % memory usage).
pub const GC_PRESSURE_FACTOR: f64 = 0.35;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn edison_web_capacity_matches_peak_throughput() {
        // 24 Edison web servers at 86 % CPU should sustain ≈ 6800 req/s on
        // the light (1.5 KiB) workload. Per-request cost includes the
        // amortised accept cost at ~6.6 calls/connection.
        let e = presets::edison();
        let per_req = WEB_REQ_MI_EDISON + 1.5 * WEB_REQ_MI_PER_KIB + TCP_ACCEPT_MI / 6.6;
        let cluster_rps = 24.0 * e.cpu.total_mips() * 0.86 / per_req;
        assert!(
            (6000.0..8000.0).contains(&cluster_rps),
            "edison peak rps {cluster_rps}"
        );
    }

    #[test]
    fn dell_web_capacity_matches_peak_throughput() {
        let d = presets::dell_r620();
        let per_req = WEB_REQ_MI_DELL + 1.5 * WEB_REQ_MI_PER_KIB + TCP_ACCEPT_MI / 6.6;
        let cluster_rps = 2.0 * d.cpu.total_mips() * 0.45 / per_req;
        assert!(
            (5500.0..8500.0).contains(&cluster_rps),
            "dell peak rps {cluster_rps}"
        );
    }

    #[test]
    fn cache_cost_matches_utilisation() {
        // 11 Edison cache servers at ≈9 % CPU absorb ~6800 lookups/s.
        let e = presets::edison();
        let rps_per_cache = 6800.0 / 11.0;
        let util = rps_per_cache * CACHE_LOOKUP_MI / e.cpu.total_mips();
        assert!((0.05..0.15).contains(&util), "cache util {util}");
    }

    #[test]
    fn pi_cost_matches_runtimes() {
        // 10 G samples: pure compute ≈135 s over 35 Edison nodes and
        // ≈20 s over 2 Dells (submission + container overheads add the
        // rest in the full simulation).
        let e = presets::edison();
        let d = presets::dell_r620();
        let t_e = 10_000.0 * PI_MI_PER_MSAMPLE.edison / (35.0 * e.cpu.total_mips());
        let t_d = 10_000.0 * PI_MI_PER_MSAMPLE.dell / (2.0 * d.cpu.total_mips());
        assert!((120.0..170.0).contains(&t_e), "edison pi compute {t_e}s");
        assert!((12.0..30.0).contains(&t_d), "dell pi compute {t_d}s");
    }

    #[test]
    fn container_startup_walltime_is_plausible() {
        // JVM start on a lone thread: ≈25 s on the Edison (the paper's
        // figures show tens of seconds of allocation time), ≈5 s on the
        // Dell.
        let e = presets::edison();
        let d = presets::dell_r620();
        let t_e = CONTAINER_STARTUP_MI.edison / e.cpu.single_thread_mips;
        let t_d = CONTAINER_STARTUP_MI.dell / d.cpu.single_thread_mips;
        assert!((15.0..40.0).contains(&t_e), "edison JVM start {t_e}s");
        assert!((2.0..10.0).contains(&t_d), "dell JVM start {t_d}s");
    }

    #[test]
    fn quiet_period_ratio_matches_paper() {
        // §5.2.1: the quiet period before the CPU rise (submission +
        // localisation) is ≈45 s Edison vs ≈20 s Dell (2.3×).
        let e = presets::edison();
        let d = presets::dell_r620();
        let quiet = |spec: &crate::specs::StorageSpec| {
            JOB_SUBMIT_DELAY_S + spec.write_time(JOB_LOCALIZATION_BYTES, false)
        };
        let t_e = quiet(&e.storage);
        let t_d = quiet(&d.storage);
        assert!((32.0..50.0).contains(&t_e), "edison quiet {t_e}s");
        assert!((13.0..22.0).contains(&t_d), "dell quiet {t_d}s");
        assert!((1.8..3.2).contains(&(t_e / t_d)), "ratio {}", t_e / t_d);
    }
}
