//! Concrete platform presets, with every constant traceable to the paper.
//!
//! | Constant | Source |
//! |---|---|
//! | CPU cores/clock, RAM, NIC line rate | Table 2 |
//! | Single-thread DMIPS 632.3 / 11383 | §4.1 |
//! | SMT factor 1.3 (Dell) | fitted to the §5.2.3 pi-estimation aggregate-CPU ratio (≈70×/node), consistent with the paper's "90–108×" per-node claim given its own 15–18× single-thread band |
//! | Memory peak bandwidth 2.2 / 36 GB/s, saturation threads 2 / 12 | §4.2 |
//! | Storage throughputs & latencies | Table 5 |
//! | TCP/UDP efficiencies 0.939 / 0.942 / 0.948 | §4.4 |
//! | Power endpoints | Table 3 |
//! | Unit costs $120 / $2500 | Table 9 and §6 |
//! | Related-work platform specs | Table 1 |

use crate::power::PowerModel;
use crate::specs::{CpuSpec, MemSpec, NicSpec, OsLimits, ServerSpec, StorageSpec, GIB, MIB};

/// The Intel Edison micro server **including** its 100 Mbps USB Ethernet
/// adaptor — the configuration every cluster experiment uses. Node power
/// endpoints are anchored to the measured 1.40 W idle / 1.68 W busy.
pub fn edison() -> ServerSpec {
    ServerSpec {
        name: "Intel Edison".into(),
        cpu: CpuSpec {
            cores: 2,
            threads: 2,
            clock_mhz: 500,
            single_thread_mips: 632.3,
            smt_factor: 1.0,
        },
        mem: MemSpec {
            total_bytes: GIB,
            peak_bw: 2.2e9,
            saturation_threads: 2,
            overhead_bytes: 32.0 * 1024.0,
        },
        storage: StorageSpec {
            capacity_bytes: 8 * GIB,
            write_bw: 4.5e6,
            buffered_write_bw: 9.3e6,
            read_bw: 19.5e6,
            buffered_read_bw: 737.0e6,
            write_latency_s: 18.0e-3,
            read_latency_s: 7.0e-3,
        },
        nic: NicSpec { line_rate_bps: 100.0e6, tcp_efficiency: 0.939, udp_efficiency: 0.948 },
        // The adaptor draws ~1 W — more than the module itself. The measured
        // with-adaptor endpoints (1.40/1.68 W) imply a slightly narrower
        // module range under load than the bare measurement (0.36/0.75 W);
        // we anchor the node-level endpoints, which drive all cluster
        // results, and absorb the difference in `busy_w`.
        power: PowerModel { idle_w: 0.36, busy_w: 0.64, adapter_w: 1.04 },
        os: OsLimits {
            max_connections: 1_000,
            // SYN/accept path sustainable rate after the paper's tuning
            // (port-reuse on, raised fd limits); interrupt-bound on the
            // USB NIC. Fitted jointly with the web-tier error onsets.
            max_accept_rate: 400.0,
            base_memory: 260 * MIB,
        },
        unit_cost_usd: 120.0,
    }
}

/// The Edison module without the Ethernet adaptor (Table 3 first row);
/// used for the Table 3 experiment and the integrated-NIC what-if ablation.
pub fn edison_bare() -> ServerSpec {
    let mut s = edison();
    s.name = "Intel Edison (no Ethernet adaptor)".into();
    s.power = PowerModel { idle_w: 0.36, busy_w: 0.75, adapter_w: 0.0 };
    s
}

/// The Dell PowerEdge R620 (Intel Xeon E5-2620: 6 cores / 12 threads at
/// 2 GHz, 16 GB RAM, 1 TB SAS 15K, 1 GbE).
pub fn dell_r620() -> ServerSpec {
    ServerSpec {
        name: "Dell PowerEdge R620".into(),
        cpu: CpuSpec {
            cores: 6,
            threads: 12,
            clock_mhz: 2000,
            single_thread_mips: 11_383.0,
            smt_factor: 1.3,
        },
        mem: MemSpec {
            total_bytes: 16 * GIB,
            peak_bw: 36.0e9,
            saturation_threads: 12,
            overhead_bytes: 32.0 * 1024.0,
        },
        storage: StorageSpec {
            capacity_bytes: 1024 * GIB,
            write_bw: 24.0e6,
            buffered_write_bw: 83.2e6,
            read_bw: 86.1e6,
            buffered_read_bw: 3.1e9,
            write_latency_s: 5.04e-3,
            read_latency_s: 0.829e-3,
        },
        nic: NicSpec { line_rate_bps: 1.0e9, tcp_efficiency: 0.942, udp_efficiency: 0.948 },
        power: PowerModel { idle_w: 52.0, busy_w: 109.0, adapter_w: 0.0 },
        os: OsLimits {
            max_connections: 20_000,
            // Sustainable accepts/s per server: the paper observes Dell web
            // throughput capped by "the ability to create new TCP ports and
            // new threads" at ≈45 % CPU; 700 conn/s reproduces the peak at
            // concurrency 1024 and the sag + client errors beyond 2048.
            max_accept_rate: 700.0,
            base_memory: 2 * GIB,
        },
        unit_cost_usd: 2_500.0,
    }
}

/// One row of Table 1 (related-work micro-server platforms).
#[derive(Debug, Clone, PartialEq)]
pub struct RelatedWorkRow {
    /// Platform / project name.
    pub name: &'static str,
    /// CPU description exactly as tabulated.
    pub cpu: &'static str,
    /// Installed memory in MiB.
    pub memory_mib: u32,
    /// True for the paper's "sensor-class" category (< 1 W class).
    pub sensor_class: bool,
}

/// Table 1: micro-server specifications in related work.
pub fn related_work() -> Vec<RelatedWorkRow> {
    vec![
        RelatedWorkRow { name: "Big.LITTLE", cpu: "4x600MHz, 4x1.6GHz", memory_mib: 2048, sensor_class: false },
        RelatedWorkRow { name: "WattDB", cpu: "2x1.66GHz", memory_mib: 2048, sensor_class: false },
        RelatedWorkRow { name: "Gordon", cpu: "2x1.9GHz", memory_mib: 2048, sensor_class: false },
        RelatedWorkRow { name: "Diamondville", cpu: "2x1.6GHz", memory_mib: 4096, sensor_class: false },
        RelatedWorkRow { name: "Raspberry Pi", cpu: "4x900MHz", memory_mib: 1024, sensor_class: false },
        RelatedWorkRow { name: "FAWN", cpu: "1x500MHz", memory_mib: 256, sensor_class: true },
        RelatedWorkRow { name: "Edison", cpu: "2x500MHz", memory_mib: 1024, sensor_class: true },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dell_aggregate_cpu_ratio_matches_pi_experiment() {
        // The §5.2.3 pi job implies an aggregate per-node ratio of about
        // 35·200 / (2·50) = 70 between one Dell and one Edison node.
        let ratio = dell_r620().cpu.total_mips() / edison().cpu.total_mips();
        assert!((65.0..75.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn single_thread_gap_matches_dhrystone() {
        let gap = dell_r620().cpu.single_thread_mips / edison().cpu.single_thread_mips;
        assert!((17.5..18.5).contains(&gap), "gap {gap}");
    }

    #[test]
    fn edison_memory_fits_mapreduce_budget() {
        // §5.2: 960 MB physical, ~600 MB available for tasks after OS +
        // datanode + nodemanager. Our base_memory models the OS share.
        let e = edison();
        assert!(e.mem.total_bytes >= 960 * MIB);
        assert!(e.os.base_memory < 300 * MIB);
    }

    #[test]
    fn table1_has_two_sensor_class_rows() {
        let rows = related_work();
        assert_eq!(rows.len(), 7);
        assert_eq!(rows.iter().filter(|r| r.sensor_class).count(), 2);
        assert_eq!(rows.last().unwrap().name, "Edison");
    }

    #[test]
    fn storage_gap_is_smallest_component_gap() {
        // §4 headline: CPU gap ~100x ≫ mem 16x ≫ nic 10x ≫ storage 4-9x.
        let e = edison();
        let d = dell_r620();
        let cpu = d.cpu.total_mips() / e.cpu.total_mips();
        let mem = d.mem.peak_bw / e.mem.peak_bw;
        let nic = d.nic.line_rate_bps / e.nic.line_rate_bps;
        let sto = d.storage.read_bw / e.storage.read_bw;
        assert!(cpu > mem && mem > nic && nic > sto);
    }
}
