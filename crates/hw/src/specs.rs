//! Parametric server hardware specifications.
//!
//! Work units across the codebase:
//!
//! * **CPU work** is measured in *millions of instructions* (MI); CPU
//!   capacity in MIPS (MI per second), anchored to Dhrystone DMIPS so the
//!   paper's measurements plug in directly.
//! * **Data** is measured in bytes; bandwidths in bytes/second.
//! * **Power** in watts, energy in joules.

use crate::power::PowerModel;
use serde::{Deserialize, Serialize};

/// Bytes in one mebibyte (used for block/working-set arithmetic).
pub const MIB: u64 = 1024 * 1024;
/// Bytes in one gibibyte.
pub const GIB: u64 = 1024 * MIB;

/// CPU model: cores, hardware threads and Dhrystone-anchored speed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuSpec {
    /// Physical cores.
    pub cores: u32,
    /// Hardware threads (2× cores when hyper-threaded).
    pub threads: u32,
    /// Nameplate clock, MHz (Table 2 arithmetic only).
    pub clock_mhz: u32,
    /// Single-thread Dhrystone MIPS (the paper: 632.3 Edison, 11383 Dell).
    pub single_thread_mips: f64,
    /// Whole-socket throughput gain from SMT, ≥ 1.0. The machine's aggregate
    /// capacity is `cores × single_thread_mips × smt_factor`. Fitted to the
    /// paper's pi-estimation ratio (see presets).
    pub smt_factor: f64,
}

impl CpuSpec {
    /// Aggregate machine capacity in MIPS.
    pub fn total_mips(&self) -> f64 {
        self.cores as f64 * self.single_thread_mips * self.smt_factor
    }

    /// Rate cap for a single software thread, MIPS.
    pub fn per_thread_cap(&self) -> f64 {
        self.single_thread_mips
    }

    /// Nameplate aggregate speed in MHz (Table 2's "2×500MHz" arithmetic).
    pub fn nameplate_mhz(&self) -> u64 {
        self.cores as u64 * self.clock_mhz as u64
    }
}

/// Memory model: size and a bandwidth curve over access block size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemSpec {
    /// Installed RAM, bytes.
    pub total_bytes: u64,
    /// Peak stream bandwidth, bytes/s (2.2 GB/s Edison, 36 GB/s Dell).
    pub peak_bw: f64,
    /// Threads needed to saturate bandwidth (2 Edison, 12 Dell).
    pub saturation_threads: u32,
    /// Per-access overhead constant: effective bandwidth for block size `b`
    /// is `peak_bw · b / (b + overhead_bytes)`. With 32 KiB the curve
    /// saturates between 256 KiB and 1 MiB as the paper reports.
    pub overhead_bytes: f64,
}

impl MemSpec {
    /// Effective aggregate bandwidth (bytes/s) at `threads` concurrent
    /// workers using `block` -byte transfers.
    pub fn effective_bw(&self, threads: u32, block: u64) -> f64 {
        let block_eff = block as f64 / (block as f64 + self.overhead_bytes);
        let thread_eff =
            (threads.min(self.saturation_threads) as f64) / self.saturation_threads as f64;
        self.peak_bw * block_eff * thread_eff
    }
}

/// Storage model (Table 5): separate direct/buffered throughput and access
/// latencies for the Edison microSD card and the Dell SAS 15K disk.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StorageSpec {
    /// Usable capacity, bytes.
    pub capacity_bytes: u64,
    /// Direct (O_DSYNC) write throughput, bytes/s.
    pub write_bw: f64,
    /// Buffered write throughput, bytes/s.
    pub buffered_write_bw: f64,
    /// Direct read throughput, bytes/s.
    pub read_bw: f64,
    /// Page-cache read throughput, bytes/s.
    pub buffered_read_bw: f64,
    /// Random write latency, seconds (ioping).
    pub write_latency_s: f64,
    /// Random read latency, seconds (ioping).
    pub read_latency_s: f64,
}

impl StorageSpec {
    /// Seconds to write `bytes` (buffered unless `direct`).
    pub fn write_time(&self, bytes: u64, direct: bool) -> f64 {
        let bw = if direct { self.write_bw } else { self.buffered_write_bw };
        self.write_latency_s + bytes as f64 / bw
    }

    /// Seconds to read `bytes` (`cached` uses the page-cache rate).
    pub fn read_time(&self, bytes: u64, cached: bool) -> f64 {
        let bw = if cached { self.buffered_read_bw } else { self.read_bw };
        self.read_latency_s + bytes as f64 / bw
    }
}

/// Network interface model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NicSpec {
    /// Line rate, bits/s (100 Mbps Edison USB adaptor, 1 Gbps Dell).
    pub line_rate_bps: f64,
    /// Fraction of line rate achieved by TCP (paper: 0.939 / 0.942).
    pub tcp_efficiency: f64,
    /// Fraction of line rate achieved by UDP (paper: 0.948).
    pub udp_efficiency: f64,
}

impl NicSpec {
    /// Achievable TCP goodput in bytes/s.
    pub fn tcp_bytes_per_sec(&self) -> f64 {
        self.line_rate_bps * self.tcp_efficiency / 8.0
    }

    /// Achievable UDP goodput in bytes/s.
    pub fn udp_bytes_per_sec(&self) -> f64 {
        self.line_rate_bps * self.udp_efficiency / 8.0
    }
}

/// Operating-system resource limits that bound web-service throughput
/// (the paper: "the throughput is limited by the ability to create new TCP
/// ports and new threads").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OsLimits {
    /// Max simultaneous connections a server process will hold (fds /
    /// worker limits after the paper's tuning).
    pub max_connections: u32,
    /// Max new-connection accepts per second (SYN backlog drain + thread
    /// creation rate); beyond this, SYNs are dropped.
    pub max_accept_rate: f64,
    /// Memory the idle OS + base services use, bytes.
    pub base_memory: u64,
}

/// A complete server specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerSpec {
    /// Human-readable platform name.
    pub name: String,
    pub cpu: CpuSpec,
    pub mem: MemSpec,
    pub storage: StorageSpec,
    pub nic: NicSpec,
    pub power: PowerModel,
    pub os: OsLimits,
    /// Purchase cost, USD (Table 9).
    pub unit_cost_usd: f64,
}

impl ServerSpec {
    /// Table 2's per-resource replacement ratio against `other`
    /// (how many of `self` match one `other`): `(cpu, ram, nic)`.
    pub fn replacement_ratios(&self, other: &ServerSpec) -> (f64, f64, f64) {
        (
            other.cpu.nameplate_mhz() as f64 / self.cpu.nameplate_mhz() as f64,
            other.mem.total_bytes as f64 / self.mem.total_bytes as f64,
            other.nic.line_rate_bps / self.nic.line_rate_bps,
        )
    }

    /// Table 2's bottom line: nodes of `self` needed to replace one `other`
    /// on raw capacity (max over the three ratios, rounded up).
    pub fn nodes_to_replace(&self, other: &ServerSpec) -> u32 {
        let (c, m, n) = self.replacement_ratios(other);
        c.max(m).max(n).ceil() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn cpu_totals() {
        let cpu = CpuSpec {
            cores: 2,
            threads: 2,
            clock_mhz: 500,
            single_thread_mips: 632.3,
            smt_factor: 1.0,
        };
        assert!((cpu.total_mips() - 1264.6).abs() < 1e-9);
        assert_eq!(cpu.nameplate_mhz(), 1000);
    }

    #[test]
    fn mem_bw_saturates_with_block_size() {
        let mem = presets::edison().mem;
        let small = mem.effective_bw(2, 4 * 1024);
        let big = mem.effective_bw(2, 1024 * 1024);
        assert!(small < 0.2 * big, "4K should be far below saturation");
        let b256 = mem.effective_bw(2, 256 * 1024);
        assert!(b256 > 0.85 * big, "256K should be near saturation");
    }

    #[test]
    fn mem_bw_saturates_with_threads() {
        let mem = presets::dell_r620().mem;
        let one = mem.effective_bw(1, MIB);
        let twelve = mem.effective_bw(12, MIB);
        let sixteen = mem.effective_bw(16, MIB);
        assert!(one < twelve);
        assert_eq!(twelve, sixteen, "beyond 12 threads no further gain");
    }

    #[test]
    fn storage_times_include_latency() {
        let st = presets::edison().storage;
        let t = st.write_time(0, true);
        assert!((t - st.write_latency_s).abs() < 1e-12);
        // 45 MB direct write at 4.5 MB/s ≈ 10 s (+latency)
        let t = st.write_time(45_000_000, true);
        assert!((t - (10.0 + st.write_latency_s)).abs() < 1e-9);
    }

    #[test]
    fn nic_goodput() {
        let nic = presets::edison().nic;
        // paper: 93.9 Mbit/s TCP on the 100 Mbit adaptor
        assert!((nic.tcp_bytes_per_sec() * 8.0 / 1e6 - 93.9).abs() < 0.1);
    }

    #[test]
    fn replacement_math_matches_table2() {
        let e = presets::edison();
        let d = presets::dell_r620();
        let (cpu, ram, nic) = e.replacement_ratios(&d);
        assert!((cpu - 12.0).abs() < 1e-9, "cpu ratio {cpu}");
        assert!((ram - 16.0).abs() < 1e-9, "ram ratio {ram}");
        assert!((nic - 10.0).abs() < 1e-9, "nic ratio {nic}");
        assert_eq!(e.nodes_to_replace(&d), 16);
    }
}
