//! DVFS energy-proportionality model — the §1 argument, made quantitative.
//!
//! The paper's Introduction dismisses DVFS: "even if the CPU power
//! consumption is proportional to workload, other components such as
//! memory, disk and motherboard still consume the same energy", citing at
//! most ≈30 % savings from the provisioning literature versus >70 % from
//! embedded-device substitution. This module models a DVFS-capable Dell
//! R620 and lets the `ext_dvfs` experiment reproduce both numbers from a
//! diurnal load curve.
//!
//! Model: `P(u) = P_static + P_dyn · (f/f_max)² · u` with the CPU clocked
//! at the lowest frequency that still serves the load (`f ∝ u`, floored at
//! `f_min`). Voltage tracks frequency (the V²f law); the static term —
//! fans, disks, DRAM refresh, VRs — does not scale, which is exactly the
//! paper's point.

use crate::specs::ServerSpec;
use serde::{Deserialize, Serialize};

/// DVFS-capable power model derived from a spec's idle/busy endpoints.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DvfsModel {
    /// Non-scaling platform power, W (the spec's idle draw).
    pub static_w: f64,
    /// CPU dynamic power at f_max and full utilisation, W.
    pub dyn_w: f64,
    /// Lowest frequency as a fraction of f_max (P-state floor).
    pub f_min: f64,
}

impl DvfsModel {
    /// Build from a spec, treating idle as static power and the
    /// idle→busy range as CPU dynamic power.
    pub fn from_spec(spec: &ServerSpec) -> Self {
        DvfsModel {
            static_w: spec.power.node_idle(),
            dyn_w: spec.power.node_busy() - spec.power.node_idle(),
            f_min: 0.4,
        }
    }

    /// The frequency (fraction of f_max) chosen for load `u`.
    pub fn frequency_for(&self, u: f64) -> f64 {
        u.clamp(self.f_min, 1.0)
    }

    /// Power at load `u` **with** DVFS.
    pub fn power_dvfs(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        let f = self.frequency_for(u);
        // busy fraction rises as the clock drops; V²f ⇒ energy/op ∝ f²
        self.static_w + self.dyn_w * f * f * (u / f).min(1.0)
    }

    /// Power at load `u` **without** DVFS (always at f_max).
    pub fn power_fixed(&self, u: f64) -> f64 {
        self.static_w + self.dyn_w * u.clamp(0.0, 1.0)
    }
}

/// A diurnal utilisation curve between the Table 9 bounds: u(t) moves
/// sinusoidally between 10 % (4 am) and 75 % (4 pm).
pub fn diurnal_utilization(hour: f64) -> f64 {
    let lo = 0.10;
    let hi = 0.75;
    let mid = (lo + hi) / 2.0;
    let amp = (hi - lo) / 2.0;
    mid - amp * ((hour - 4.0) / 24.0 * std::f64::consts::TAU).cos()
}

/// Integrate a power function over one diurnal day, Wh.
pub fn daily_energy_wh(power_at: impl Fn(f64) -> f64) -> f64 {
    let steps = 24 * 60;
    let mut wh = 0.0;
    for i in 0..steps {
        let hour = i as f64 / 60.0;
        wh += power_at(diurnal_utilization(hour)) / 60.0;
    }
    wh
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn dvfs_never_exceeds_fixed() {
        let m = DvfsModel::from_spec(&presets::dell_r620());
        for i in 0..=20 {
            let u = i as f64 / 20.0;
            assert!(m.power_dvfs(u) <= m.power_fixed(u) + 1e-9, "u={u}");
        }
    }

    #[test]
    fn endpoints_match_spec() {
        let m = DvfsModel::from_spec(&presets::dell_r620());
        assert!((m.power_fixed(0.0) - 52.0).abs() < 1e-9);
        assert!((m.power_fixed(1.0) - 109.0).abs() < 1e-9);
        assert!((m.power_dvfs(1.0) - 109.0).abs() < 1e-9);
    }

    #[test]
    fn diurnal_curve_spans_the_table9_bounds() {
        let lo = diurnal_utilization(4.0);
        let hi = diurnal_utilization(16.0);
        assert!((lo - 0.10).abs() < 1e-9);
        assert!((hi - 0.75).abs() < 1e-9);
        for h in 0..24 {
            let u = diurnal_utilization(h as f64);
            assert!((0.10 - 1e-9..=0.75 + 1e-9).contains(&u), "hour {h}: {u}");
        }
    }

    #[test]
    fn dvfs_saving_tops_out_near_30_percent() {
        // the §1 claim: complex DVFS/provisioning schemes rarely beat 30 %
        let m = DvfsModel::from_spec(&presets::dell_r620());
        let fixed = daily_energy_wh(|u| m.power_fixed(u));
        let dvfs = daily_energy_wh(|u| m.power_dvfs(u));
        let saving = 1.0 - dvfs / fixed;
        assert!((0.05..0.35).contains(&saving), "DVFS saving {saving:.2}");
    }

    #[test]
    fn edison_swap_saves_over_60_percent() {
        // the §1 claim: embedded substitution "can exceed 70%" in some
        // applications; on the diurnal curve with Table 2's 16:1 sizing it
        // must clear 60 % against the fixed-frequency Dell.
        let dell = DvfsModel::from_spec(&presets::dell_r620());
        let edison = presets::edison().power;
        let fixed = daily_energy_wh(|u| dell.power_fixed(u));
        let swap = daily_energy_wh(|u| 16.0 * edison.power_at(u));
        let saving = 1.0 - swap / fixed;
        assert!(saving > 0.60, "swap saving {saving:.2}");
    }
}
