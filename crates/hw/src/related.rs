//! Full hardware models for the Table 1 related-work platforms.
//!
//! The paper tabulates only CPU and RAM for these platforms; the remaining
//! fields are estimates from the cited papers and public datasheets,
//! documented per preset. They power the `ext_platforms` what-if
//! experiment: *how would the paper's headline workloads land on the other
//! micro-server platforms of its era?* Estimates are deliberately
//! conservative; treat the outputs as qualitative shape, not measurement.

use crate::power::PowerModel;
use crate::specs::{CpuSpec, MemSpec, NicSpec, OsLimits, ServerSpec, StorageSpec, GIB, MIB};

fn default_os(max_conn: u32, accept: f64, base_mb: u64) -> OsLimits {
    OsLimits { max_connections: max_conn, max_accept_rate: accept, base_memory: base_mb * MIB }
}

/// Raspberry Pi 2 (the [51]/[44] cluster papers): 4×900 MHz Cortex-A7,
/// 1 GB, 100 Mbps NIC, microSD storage, ≈1.1/2.1 W.
pub fn raspberry_pi2() -> ServerSpec {
    ServerSpec {
        name: "Raspberry Pi 2".into(),
        cpu: CpuSpec {
            cores: 4,
            threads: 4,
            clock_mhz: 900,
            // Cortex-A7 ≈ 1.9 DMIPS/MHz
            single_thread_mips: 1_710.0,
            smt_factor: 1.0,
        },
        mem: MemSpec {
            total_bytes: GIB,
            peak_bw: 1.6e9,
            saturation_threads: 2,
            overhead_bytes: 32.0 * 1024.0,
        },
        storage: StorageSpec {
            capacity_bytes: 16 * GIB,
            write_bw: 5.0e6,
            buffered_write_bw: 10.0e6,
            read_bw: 18.0e6,
            buffered_read_bw: 400.0e6,
            write_latency_s: 15.0e-3,
            read_latency_s: 6.0e-3,
        },
        nic: NicSpec { line_rate_bps: 100.0e6, tcp_efficiency: 0.939, udp_efficiency: 0.948 },
        power: PowerModel { idle_w: 1.1, busy_w: 2.1, adapter_w: 0.0 },
        os: default_os(2_000, 500.0, 300),
        unit_cost_usd: 55.0,
    }
}

/// FAWN node (Andersen et al. [21]): 1×500 MHz AMD Geode LX, 256 MB,
/// 100 Mbps, CompactFlash; ≈3.6/4.7 W per the FAWN paper.
pub fn fawn() -> ServerSpec {
    ServerSpec {
        name: "FAWN (Geode LX)".into(),
        cpu: CpuSpec {
            cores: 1,
            threads: 1,
            clock_mhz: 500,
            // Geode LX ≈ 1.0 DMIPS/MHz
            single_thread_mips: 500.0,
            smt_factor: 1.0,
        },
        mem: MemSpec {
            total_bytes: 256 * MIB,
            peak_bw: 0.8e9,
            saturation_threads: 1,
            overhead_bytes: 32.0 * 1024.0,
        },
        storage: StorageSpec {
            capacity_bytes: 4 * GIB,
            write_bw: 4.0e6,
            buffered_write_bw: 8.0e6,
            read_bw: 28.0e6, // CF random reads are FAWN's design point
            buffered_read_bw: 200.0e6,
            write_latency_s: 10.0e-3,
            read_latency_s: 1.0e-3,
        },
        nic: NicSpec { line_rate_bps: 100.0e6, tcp_efficiency: 0.939, udp_efficiency: 0.948 },
        power: PowerModel { idle_w: 3.6, busy_w: 4.7, adapter_w: 0.0 },
        os: default_os(1_000, 300.0, 80),
        unit_cost_usd: 150.0,
    }
}

/// Intel Atom "Diamondville" node (Janapa Reddi et al. [29]): 2×1.6 GHz,
/// 4 GB, 1 Gbps.
pub fn diamondville() -> ServerSpec {
    ServerSpec {
        name: "Atom Diamondville".into(),
        cpu: CpuSpec {
            cores: 2,
            threads: 4,
            clock_mhz: 1600,
            // in-order Atom ≈ 2.5 DMIPS/MHz
            single_thread_mips: 4_000.0,
            smt_factor: 1.25,
        },
        mem: MemSpec {
            total_bytes: 4 * GIB,
            peak_bw: 4.0e9,
            saturation_threads: 4,
            overhead_bytes: 32.0 * 1024.0,
        },
        storage: StorageSpec {
            capacity_bytes: 160 * GIB,
            write_bw: 35.0e6,
            buffered_write_bw: 70.0e6,
            read_bw: 60.0e6,
            buffered_read_bw: 1.2e9,
            write_latency_s: 8.0e-3,
            read_latency_s: 4.0e-3,
        },
        nic: NicSpec { line_rate_bps: 1.0e9, tcp_efficiency: 0.942, udp_efficiency: 0.948 },
        power: PowerModel { idle_w: 18.0, busy_w: 29.0, adapter_w: 0.0 },
        os: default_os(8_000, 900.0, 700),
        unit_cost_usd: 400.0,
    }
}

/// Every related-work platform with a full model, plus the two measured
/// platforms, keyed by Table 1-style names.
pub fn all_platforms() -> Vec<ServerSpec> {
    vec![
        crate::presets::edison(),
        fawn(),
        raspberry_pi2(),
        diamondville(),
        crate::presets::dell_r620(),
    ]
}

/// Work-done-per-joule for a pure-CPU workload of `mi` MI on one node:
/// the simplest cross-platform figure of merit (MI per joule at full tilt).
pub fn mi_per_joule(spec: &ServerSpec) -> f64 {
    spec.cpu.total_mips() / spec.power.node_busy()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn table1_ram_matches_full_models() {
        assert_eq!(raspberry_pi2().mem.total_bytes, GIB);
        assert_eq!(fawn().mem.total_bytes, 256 * MIB);
        assert_eq!(diamondville().mem.total_bytes, 4 * GIB);
    }

    #[test]
    fn sensor_class_platforms_stay_under_5_watts() {
        for spec in [presets::edison_bare(), fawn()] {
            assert!(spec.power.node_busy() < 5.0, "{}: {}", spec.name, spec.power.node_busy());
        }
    }

    #[test]
    fn edison_wins_cpu_efficiency_among_micro_platforms() {
        // The Edison module (without its power-hungry adaptor) has the best
        // MI/J of the sensor-class platforms — the premise of building the
        // cluster from Edisons rather than FAWN-class Geodes.
        let edison = mi_per_joule(&presets::edison_bare());
        let fawn_eff = mi_per_joule(&fawn());
        assert!(edison > 3.0 * fawn_eff, "edison {edison:.0} vs fawn {fawn_eff:.0}");
    }

    #[test]
    fn dell_beats_everything_on_raw_speed_only() {
        let specs = all_platforms();
        let dell = presets::dell_r620();
        for s in &specs {
            if s.name != dell.name {
                assert!(s.cpu.total_mips() < dell.cpu.total_mips(), "{}", s.name);
            }
        }
    }

    #[test]
    fn adaptor_negates_the_edison_power_advantage_vs_pi() {
        // With the USB adaptor the Edison node draws comparable power to a
        // busy Pi 2 — the integration lesson of the paper's §7.
        let edison = presets::edison().power.node_busy();
        let pi = raspberry_pi2().power.node_busy();
        assert!((edison - pi).abs() < 0.6, "edison {edison} vs pi {pi}");
    }
}
