//! # edison-hw
//!
//! Hardware models for the reproduction of the VLDB'16 Edison micro-server
//! study. A [`specs::ServerSpec`] bundles parametric CPU, memory, storage,
//! NIC and power models; [`presets`] instantiates the two platforms the
//! paper measures — the Intel **Edison** compute module and the **Dell
//! PowerEdge R620** — with every constant taken from the paper's Section 3–4
//! measurements (Tables 2, 3, 5 and the in-text DMIPS / sysbench / iperf /
//! ping numbers), plus the related-work platforms of Table 1.
//!
//! [`calib`] holds the *workload* cost coefficients (CPU instructions per
//! HTTP request, per map-record, container start-up costs, …) that were
//! fitted once against a subset of the paper's cluster results and are then
//! held fixed across all experiments — see DESIGN.md §1 "Calibration
//! policy".

pub mod calib;
pub mod dvfs;
pub mod power;
pub mod presets;
pub mod related;
pub mod specs;

pub use power::PowerModel;
pub use specs::{CpuSpec, MemSpec, NicSpec, ServerSpec, StorageSpec};
