//! Node power model.
//!
//! The paper measures only the idle/busy endpoints of each platform
//! (Table 3) and reports cluster power bands that sit between the two
//! (Figures 4, 6, 12–17). We therefore model node power as linear in CPU
//! utilisation between the endpoints, plus a constant adaptor draw for the
//! Edison's USB Ethernet dongle — which the paper highlights as drawing
//! *more than the Edison module itself* (~1 W of the 1.40 W idle draw).

use serde::{Deserialize, Serialize};

/// Linear-in-utilisation power model with a constant peripheral term.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Device power at 0 % utilisation, watts (excluding peripherals).
    pub idle_w: f64,
    /// Device power at 100 % utilisation, watts (excluding peripherals).
    pub busy_w: f64,
    /// Constant peripheral draw (USB Ethernet adaptor), watts.
    pub adapter_w: f64,
}

impl PowerModel {
    /// Instantaneous node power at CPU utilisation `u ∈ [0, 1]`.
    pub fn power_at(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        self.adapter_w + self.idle_w + (self.busy_w - self.idle_w) * u
    }

    /// Node idle power including peripherals (Table 3 rows).
    pub fn node_idle(&self) -> f64 {
        self.power_at(0.0)
    }

    /// Node busy power including peripherals (Table 3 rows).
    pub fn node_busy(&self) -> f64 {
        self.power_at(1.0)
    }

    /// The *dynamic range* — how energy-proportional the platform is.
    /// The paper's Section 1 argues high-end servers have a "narrow power
    /// spectrum": Dell idles at 48 % of peak, Edison (with adaptor) at 83 %,
    /// but the Edison's absolute idle cost is 37× smaller.
    pub fn dynamic_range(&self) -> f64 {
        self.node_busy() - self.node_idle()
    }

    /// Idle-to-peak ratio (1.0 = completely non-proportional).
    pub fn idle_fraction(&self) -> f64 {
        self.node_idle() / self.node_busy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn edison_matches_table3() {
        let p = presets::edison().power;
        assert!((p.node_idle() - 1.40).abs() < 1e-9);
        assert!((p.node_busy() - 1.68).abs() < 1e-9);
    }

    #[test]
    fn edison_bare_matches_table3() {
        let p = presets::edison_bare().power;
        assert!((p.node_idle() - 0.36).abs() < 1e-9);
        assert!((p.node_busy() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn dell_matches_table3() {
        let p = presets::dell_r620().power;
        assert!((p.node_idle() - 52.0).abs() < 1e-9);
        assert!((p.node_busy() - 109.0).abs() < 1e-9);
    }

    #[test]
    fn cluster_power_bands_match_table3() {
        let e = presets::edison().power;
        let d = presets::dell_r620().power;
        assert!((35.0 * e.node_idle() - 49.0).abs() < 0.01);
        assert!((35.0 * e.node_busy() - 58.8).abs() < 0.01);
        assert!((3.0 * d.node_idle() - 156.0).abs() < 0.01);
        assert!((3.0 * d.node_busy() - 327.0).abs() < 0.01);
    }

    #[test]
    fn interpolation_is_linear_and_clamped() {
        let p = PowerModel { idle_w: 10.0, busy_w: 20.0, adapter_w: 0.0 };
        assert_eq!(p.power_at(0.5), 15.0);
        assert_eq!(p.power_at(-1.0), 10.0);
        assert_eq!(p.power_at(2.0), 20.0);
    }

    #[test]
    fn proportionality_metrics() {
        let d = presets::dell_r620().power;
        assert!((d.idle_fraction() - 52.0 / 109.0).abs() < 1e-9);
        let e = presets::edison().power;
        assert!(e.dynamic_range() < d.dynamic_range());
    }
}
