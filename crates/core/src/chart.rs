//! ASCII line/bar charts for the figure reports.
//!
//! The paper's figures are log-x throughput curves, log-y delay curves,
//! histograms and stacked timelines; a terminal rendering of each makes
//! the regenerated artefacts directly comparable to the paper's plots
//! without leaving the report text.

use crate::report::Series;

/// Marker glyphs assigned to curves in order.
const MARKS: [char; 8] = ['*', 'o', '+', 'x', '#', '@', '%', '&'];

/// Axis scaling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    Linear,
    /// log10; non-positive values are clamped to the smallest positive
    /// value in the data.
    Log,
}

fn transform(v: f64, scale: Scale, floor: f64) -> f64 {
    match scale {
        Scale::Linear => v,
        Scale::Log => v.max(floor).log10(),
    }
}

/// Render `series` into a `width`×`height` character grid with legends.
///
/// Each curve is drawn as its marker at the nearest cell per point (the
/// paper's figures are point-marked curves, not dense lines). Collisions
/// show the later curve's marker.
pub fn chart(series: &[Series], width: usize, height: usize, x_scale: Scale, y_scale: Scale) -> String {
    assert!(width >= 16 && height >= 4, "chart too small");
    let pts: Vec<(f64, f64)> = series.iter().flat_map(|s| s.points.iter().copied()).collect();
    if pts.is_empty() {
        return String::from("(no data)\n");
    }
    let pos_floor = |get: fn(&(f64, f64)) -> f64| {
        pts.iter().map(get).filter(|v| *v > 0.0).fold(f64::INFINITY, f64::min).min(1.0)
    };
    let fx = pos_floor(|p| p.0);
    let fy = pos_floor(|p| p.1);
    let (mut x_lo, mut x_hi) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_lo, mut y_hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &pts {
        let tx = transform(x, x_scale, fx);
        let ty = transform(y, y_scale, fy);
        x_lo = x_lo.min(tx);
        x_hi = x_hi.max(tx);
        y_lo = y_lo.min(ty);
        y_hi = y_hi.max(ty);
    }
    if (x_hi - x_lo).abs() < 1e-12 {
        x_hi = x_lo + 1.0;
    }
    if (y_hi - y_lo).abs() < 1e-12 {
        y_hi = y_lo + 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let mark = MARKS[si % MARKS.len()];
        for &(x, y) in &s.points {
            let tx = transform(x, x_scale, fx);
            let ty = transform(y, y_scale, fy);
            let col = ((tx - x_lo) / (x_hi - x_lo) * (width - 1) as f64).round() as usize;
            let row = ((ty - y_lo) / (y_hi - y_lo) * (height - 1) as f64).round() as usize;
            grid[height - 1 - row][col.min(width - 1)] = mark;
        }
    }
    let y_label = |frac: f64| -> f64 {
        let t = y_lo + frac * (y_hi - y_lo);
        match y_scale {
            Scale::Linear => t,
            Scale::Log => 10f64.powf(t),
        }
    };
    let mut out = String::new();
    for (ri, row) in grid.iter().enumerate() {
        let frac = 1.0 - ri as f64 / (height - 1) as f64;
        // label the top, middle and bottom rows
        let label = if ri == 0 || ri == height - 1 || ri == height / 2 {
            format!("{:>10.6}", compact(y_label(frac)))
        } else {
            " ".repeat(10)
        };
        out.push_str(&label);
        out.push('|');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&" ".repeat(10));
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    let x_at = |frac: f64| -> f64 {
        let t = x_lo + frac * (x_hi - x_lo);
        match x_scale {
            Scale::Linear => t,
            Scale::Log => 10f64.powf(t),
        }
    };
    out.push_str(&format!(
        "{:>11}{:<.6}{:>width$.6}\n",
        "",
        compact(x_at(0.0)),
        compact(x_at(1.0)),
        width = width - 6
    ));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!("  {} {}\n", MARKS[si % MARKS.len()], s.label));
    }
    out
}

/// Compact numeric label.
fn compact(v: f64) -> f64 {
    if v.abs() >= 100.0 {
        v.round()
    } else {
        (v * 100.0).round() / 100.0
    }
}

/// A horizontal bar histogram (Figures 10–11): one row per bucket group.
pub fn bar_chart(buckets: &[(f64, u64)], width: usize) -> String {
    let max = buckets.iter().map(|&(_, c)| c).max().unwrap_or(0).max(1);
    let mut out = String::new();
    for &(mid, count) in buckets {
        let bar = (count as f64 / max as f64 * width as f64).round() as usize;
        out.push_str(&format!("{mid:>6.2}s |{} {count}\n", "#".repeat(bar)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_series() -> Vec<Series> {
        vec![
            Series { label: "a".into(), points: (0..8).map(|i| (2f64.powi(i + 3), (i as f64 + 1.0) * 100.0)).collect() },
            Series { label: "b".into(), points: (0..8).map(|i| (2f64.powi(i + 3), 800.0 - i as f64 * 100.0)).collect() },
        ]
    }

    #[test]
    fn chart_renders_with_legend_and_axes() {
        let c = chart(&sample_series(), 48, 12, Scale::Log, Scale::Linear);
        assert!(c.contains("  * a"));
        assert!(c.contains("  o b"));
        assert!(c.lines().count() >= 14);
        assert!(c.contains('|'));
        assert!(c.contains('+'));
    }

    #[test]
    fn monotone_series_fills_both_corners() {
        let s = vec![Series { label: "up".into(), points: vec![(1.0, 1.0), (100.0, 100.0)] }];
        let c = chart(&s, 40, 8, Scale::Linear, Scale::Linear);
        let rows: Vec<&str> = c.lines().collect();
        // the first grid row (max y) holds the high point, the last grid
        // row (min y) the low point
        assert!(rows[0].ends_with('*'), "top row: {:?}", rows[0]);
        assert!(rows[7].contains('*'), "bottom row: {:?}", rows[7]);
    }

    #[test]
    fn log_scale_handles_zeroes() {
        let s = vec![Series { label: "z".into(), points: vec![(8.0, 0.0), (16.0, 10.0)] }];
        let c = chart(&s, 30, 6, Scale::Log, Scale::Log);
        assert!(c.contains('*'));
    }

    #[test]
    fn empty_series_is_graceful() {
        assert_eq!(chart(&[], 30, 6, Scale::Linear, Scale::Linear), "(no data)\n");
    }

    #[test]
    fn bars_scale_to_max() {
        let b = bar_chart(&[(0.5, 10), (1.5, 5), (2.5, 0)], 20);
        let lines: Vec<&str> = b.lines().collect();
        assert!(lines[0].contains(&"#".repeat(20)));
        assert!(lines[1].contains(&"#".repeat(10)));
        assert!(!lines[2].contains('#'));
    }
}
