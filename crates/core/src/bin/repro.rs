//! `repro` — regenerate the paper's tables and figures from the command
//! line.
//!
//! ```text
//! repro --list               list experiment ids
//! repro table8               run one experiment (quick budget)
//! repro --full table8        run one experiment at paper scale
//! repro --all                run everything (quick)
//! repro --all --full --out reports/   write one file per experiment
//! ```

use edison_core::registry::{self, RunBudget};
use std::fs;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut list = false;
    let mut run_all = false;
    let mut full = false;
    let mut out_dir: Option<PathBuf> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--list" => list = true,
            "--all" => run_all = true,
            "--full" => full = true,
            "--out" => {
                i += 1;
                out_dir = Some(PathBuf::from(args.get(i).expect("--out needs a directory")));
            }
            "--help" | "-h" => {
                println!("usage: repro [--list] [--all] [--full] [--out DIR] [IDS...]");
                return;
            }
            id => ids.push(id.to_string()),
        }
        i += 1;
    }

    if list || (!run_all && ids.is_empty()) {
        println!("available experiments:");
        for e in registry::all() {
            println!("  {:<14} {}", e.id, e.title);
        }
        if !list {
            println!("\nrun with: repro --all  or  repro <id>...");
        }
        return;
    }

    let budget = if full { RunBudget::full() } else { RunBudget::quick() };
    let experiments: Vec<_> = if run_all {
        registry::all()
    } else {
        ids.iter()
            .map(|id| registry::find(id).unwrap_or_else(|| panic!("unknown experiment '{id}' (try --list)")))
            .collect()
    };

    if let Some(dir) = &out_dir {
        fs::create_dir_all(dir).expect("create output directory");
    }
    for e in experiments {
        eprintln!("running {} ...", e.id);
        // simlint: allow(R1) host-side progress display; never feeds sim state
        let t0 = std::time::Instant::now();
        let report = (e.run)(&budget);
        eprintln!("  done in {:.1}s", t0.elapsed().as_secs_f64());
        let text = format!("{report}");
        match &out_dir {
            Some(dir) => {
                let path = dir.join(format!("{}.txt", e.id));
                fs::write(&path, &text).expect("write report");
                println!("wrote {}", path.display());
            }
            None => println!("{text}"),
        }
    }
}
