//! `repro` — regenerate the paper's tables and figures from the command
//! line.
//!
//! ```text
//! repro --list               list experiment ids
//! repro table8               run one experiment (quick budget)
//! repro --full table8        run one experiment at paper scale
//! repro --all                run everything (quick)
//! repro --all --full --out reports/   write one file per experiment
//! repro --jobs 4 table8      cap the sweep worker pool at 4
//! repro smoke --trace t.json --metrics m.prom   record telemetry
//! ```
//!
//! `--trace FILE` writes a Chrome/Perfetto trace (open at ui.perfetto.dev),
//! `--metrics FILE` writes Prometheus text exposition, `--telemetry-csv
//! FILE` writes the flat CSV form. Any of these flags enables the
//! telemetry sink; experiments record a representative traced run into it.
//! `--profile` additionally turns on engine self-profiling (simprof):
//! traced runs record the `profile_*` breakdown (per-event-kind dispatch
//! counts, sim-time attribution, heap totals, depth high-water counter
//! track) into the same artefacts.
//!
//! `--jobs N` bounds the sweep executor's worker pool (default: the
//! `EDISON_REPRO_JOBS` environment variable, else available cores). The
//! width never changes results — seeds are derived per point, and sweep
//! output is ordered by input index.
//!
//! `--fault-plan FILE` loads a simfault text spec (see
//! `crates/simfault/src/spec.rs` for the grammar) and hands it to
//! fault-aware experiments (`fault_sweep`, `explore`), replacing their
//! built-in schedules. Parse errors are CLI errors (exit 2).
//!
//! `--explore-budget N` caps the candidate fault schedules the `explore`
//! experiment evaluates (and the worst-case candidates per `fault_sweep`
//! row). Same seed + budget ⇒ byte-identical exploration at any `--jobs`
//! width; `repro explore` prints the worst schedule and, when it finds
//! an availability cliff, a minimal reproducer as a `--fault-plan` spec.
//!
//! `--guard` enables the reference overload guard (deadlines, circuit
//! breakers, brownout — see `GuardConfig::web_defaults`) on fault-aware
//! web experiments: `repro fault_sweep --guard` plays the crash
//! schedules against a guarded tier, so breaker trips and
//! overflow-vs-dead retry splits land in the table, and `repro explore
//! --guard` probes follow-up crashes inside observed circuit-breaker
//! half-open windows (the "halfopen" phase).
//! `--guard-deadline-ms N` overrides the guard's 1500 ms request budget
//! (both for `--guard` runs and for `overload_sweep`'s guarded arm).
//! `overload_sweep` itself always runs guards-off and guards-on arms.
//!
//! Exit codes: `0` success, `2` CLI error / unknown experiment / bad
//! fault-plan file, `3` a sweep point panicked
//! ([`RunError::PointFailed`]), `4` a typed simulation error
//! ([`RunError::Sim`]), `5` an injected fault the stack could not recover
//! from (`SimError::FaultUnrecovered`) — never 3, which is reserved for
//! harness failures.

use edison_core::export::telemetry_csv;
use edison_core::registry::{self, Experiment, RunBudget};
use edison_simfault::FaultPlan;
use edison_simrun::{Executor, RunError};
use edison_simtel::Telemetry;
use std::fs;
use std::path::PathBuf;

/// CLI-error exit: print and stop instead of panicking with a backtrace.
fn die(msg: String) -> ! {
    eprintln!("repro: {msg}");
    std::process::exit(2);
}

/// Consume the value operand of `flag`.
fn flag_value(args: &[String], i: &mut usize, flag: &str) -> String {
    *i += 1;
    match args.get(*i) {
        Some(v) => v.clone(),
        None => die(format!("{flag} needs a value")),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut list = false;
    let mut run_all = false;
    let mut full = false;
    let mut jobs: Option<usize> = None;
    let mut out_dir: Option<PathBuf> = None;
    let mut trace_path: Option<PathBuf> = None;
    let mut metrics_path: Option<PathBuf> = None;
    let mut csv_path: Option<PathBuf> = None;
    let mut fault_plan: Option<FaultPlan> = None;
    let mut explore_budget: Option<usize> = None;
    let mut guard = false;
    let mut guard_deadline_ms: Option<u64> = None;
    let mut profile = false;
    let mut ids: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            // a bare `--` separator (e.g. `cargo repro -- fault_sweep`)
            "--" => {}
            "--list" => list = true,
            "--all" => run_all = true,
            "--full" => full = true,
            "--fault-plan" => {
                let path = flag_value(&args, &mut i, "--fault-plan");
                let text = match fs::read_to_string(&path) {
                    Ok(t) => t,
                    Err(e) => die(format!("read fault plan {path}: {e}")),
                };
                match FaultPlan::parse(&text) {
                    Ok(plan) => fault_plan = Some(plan),
                    Err(e) => die(format!("fault plan {path}: {e}")),
                }
            }
            "--jobs" => {
                let v = flag_value(&args, &mut i, "--jobs");
                match v.parse::<usize>() {
                    Ok(n) if n >= 1 => jobs = Some(n),
                    _ => die(format!("--jobs needs a positive integer, got '{v}'")),
                }
            }
            "--explore-budget" => {
                let v = flag_value(&args, &mut i, "--explore-budget");
                match v.parse::<usize>() {
                    Ok(n) if n >= 1 => explore_budget = Some(n),
                    _ => die(format!("--explore-budget needs a positive integer, got '{v}'")),
                }
            }
            "--guard" => guard = true,
            "--guard-deadline-ms" => {
                let v = flag_value(&args, &mut i, "--guard-deadline-ms");
                match v.parse::<u64>() {
                    Ok(n) if n >= 1 => guard_deadline_ms = Some(n),
                    _ => die(format!("--guard-deadline-ms needs a positive integer, got '{v}'")),
                }
            }
            "--out" => out_dir = Some(PathBuf::from(flag_value(&args, &mut i, "--out"))),
            "--trace" => trace_path = Some(PathBuf::from(flag_value(&args, &mut i, "--trace"))),
            "--metrics" => metrics_path = Some(PathBuf::from(flag_value(&args, &mut i, "--metrics"))),
            "--telemetry-csv" => csv_path = Some(PathBuf::from(flag_value(&args, &mut i, "--telemetry-csv"))),
            "--profile" => profile = true,
            "--help" | "-h" => {
                println!("usage: repro [--list] [--all] [--full] [--jobs N] [--fault-plan FILE] [--explore-budget N] [--guard] [--guard-deadline-ms N] [--out DIR] [--trace FILE] [--metrics FILE] [--telemetry-csv FILE] [--profile] [IDS...]");
                return;
            }
            id => ids.push(id.to_string()),
        }
        i += 1;
    }

    if list || (!run_all && ids.is_empty()) {
        println!("available experiments:");
        for e in registry::all() {
            let note = if e.in_all() { "" } else { "  (not part of --all)" };
            println!("  {:<14} {}{note}", e.id(), e.title());
        }
        if !list {
            println!("\nrun with: repro --all  or  repro <id>...");
        }
        return;
    }

    let mut budget = if full { RunBudget::full() } else { RunBudget::quick() };
    budget.fault_plan = fault_plan;
    if let Some(n) = explore_budget {
        budget.explore_budget = n;
    }
    budget.guard = guard;
    budget.guard_deadline_ms = guard_deadline_ms;
    let exec = match jobs {
        Some(n) => Executor::new(n),
        None => Executor::from_env(),
    };
    let experiments: Vec<&'static dyn Experiment> = if run_all {
        registry::all().filter(|e| e.in_all()).collect()
    } else {
        ids.iter()
            .map(|id| {
                registry::find(id).unwrap_or_else(|| die(format!("unknown experiment '{id}' (try --list)")))
            })
            .collect()
    };

    if let Some(dir) = &out_dir {
        if let Err(e) = fs::create_dir_all(dir) {
            die(format!("create output directory {}: {e}", dir.display()));
        }
    }
    // --profile implies an enabled sink: a profile with nowhere to land
    // would be silently dropped otherwise.
    let mut tel = if trace_path.is_some() || metrics_path.is_some() || csv_path.is_some() || profile
    {
        Telemetry::on().with_profiling(profile)
    } else {
        Telemetry::off()
    };
    // keep running remaining experiments after a failure; exit with the
    // first failure's code once everything has had its chance
    let mut first_failure: Option<RunError> = None;
    for e in experiments {
        eprintln!("running {} (jobs={}) ...", e.id(), exec.jobs());
        // simlint: allow(R1) host-side progress display; never feeds sim state
        let t0 = std::time::Instant::now();
        let report = match e.run(&budget, &exec, &mut tel) {
            Ok(r) => r,
            Err(err) => {
                eprintln!("  FAILED {}: {err}", e.id());
                if first_failure.is_none() {
                    first_failure = Some(err);
                }
                continue;
            }
        };
        eprintln!("  done in {:.1}s", t0.elapsed().as_secs_f64());
        let text = format!("{report}");
        match &out_dir {
            Some(dir) => {
                let path = dir.join(format!("{}.txt", e.id()));
                if let Err(e) = fs::write(&path, &text) {
                    die(format!("write report {}: {e}", path.display()));
                }
                println!("wrote {}", path.display());
            }
            None => println!("{text}"),
        }
    }
    let write_artifact = |path: &PathBuf, what: &str, text: String| {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                if let Err(e) = fs::create_dir_all(parent) {
                    die(format!("create artifact directory {}: {e}", parent.display()));
                }
            }
        }
        if let Err(e) = fs::write(path, text) {
            die(format!("write {what} {}: {e}", path.display()));
        }
        eprintln!("wrote {what} {}", path.display());
    };
    if let Some(path) = &trace_path {
        write_artifact(path, "trace", tel.chrome_trace_json());
    }
    if let Some(path) = &metrics_path {
        write_artifact(path, "metrics", tel.prometheus_text());
    }
    if let Some(path) = &csv_path {
        write_artifact(path, "telemetry csv", telemetry_csv(&tel));
    }
    if let Some(err) = first_failure {
        eprintln!("repro: {err}");
        std::process::exit(err.exit_code());
    }
}
