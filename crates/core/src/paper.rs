//! Reference values transcribed from the paper, used for the
//! paper-vs-measured comparisons in every report and in EXPERIMENTS.md.

/// One Table 8 cell: (job, cluster label, seconds, joules).
#[derive(Debug, Clone, Copy)]
pub struct Table8Cell {
    pub job: &'static str,
    /// "edison-35", "edison-17", "edison-8", "edison-4", "dell-2", "dell-1".
    pub cluster: &'static str,
    pub seconds: f64,
    pub joules: f64,
}

/// The full Table 8 matrix.
pub const TABLE8: &[Table8Cell] = &[
    Table8Cell { job: "wordcount", cluster: "edison-35", seconds: 310.0, joules: 17670.0 },
    Table8Cell { job: "wordcount", cluster: "edison-17", seconds: 1065.0, joules: 29485.0 },
    Table8Cell { job: "wordcount", cluster: "edison-8", seconds: 1817.0, joules: 23673.0 },
    Table8Cell { job: "wordcount", cluster: "edison-4", seconds: 3283.0, joules: 21386.0 },
    Table8Cell { job: "wordcount", cluster: "dell-2", seconds: 213.0, joules: 40214.0 },
    Table8Cell { job: "wordcount", cluster: "dell-1", seconds: 310.0, joules: 30552.0 },
    Table8Cell { job: "wordcount2", cluster: "edison-35", seconds: 182.0, joules: 10370.0 },
    Table8Cell { job: "wordcount2", cluster: "edison-17", seconds: 270.0, joules: 7475.0 },
    Table8Cell { job: "wordcount2", cluster: "edison-8", seconds: 450.0, joules: 5862.0 },
    Table8Cell { job: "wordcount2", cluster: "edison-4", seconds: 1192.0, joules: 7765.0 },
    Table8Cell { job: "wordcount2", cluster: "dell-2", seconds: 66.0, joules: 11695.0 },
    Table8Cell { job: "wordcount2", cluster: "dell-1", seconds: 93.0, joules: 8124.0 },
    Table8Cell { job: "logcount", cluster: "edison-35", seconds: 279.0, joules: 15903.0 },
    Table8Cell { job: "logcount", cluster: "edison-17", seconds: 601.0, joules: 16860.0 },
    Table8Cell { job: "logcount", cluster: "edison-8", seconds: 990.0, joules: 12898.0 },
    Table8Cell { job: "logcount", cluster: "edison-4", seconds: 2233.0, joules: 14546.0 },
    Table8Cell { job: "logcount", cluster: "dell-2", seconds: 206.0, joules: 40803.0 },
    Table8Cell { job: "logcount", cluster: "dell-1", seconds: 516.0, joules: 53303.0 },
    Table8Cell { job: "logcount2", cluster: "edison-35", seconds: 115.0, joules: 6555.0 },
    Table8Cell { job: "logcount2", cluster: "edison-17", seconds: 118.0, joules: 3267.0 },
    Table8Cell { job: "logcount2", cluster: "edison-8", seconds: 125.0, joules: 1629.0 },
    Table8Cell { job: "logcount2", cluster: "edison-4", seconds: 162.0, joules: 1055.0 },
    Table8Cell { job: "logcount2", cluster: "dell-2", seconds: 59.0, joules: 9486.0 },
    Table8Cell { job: "logcount2", cluster: "dell-1", seconds: 88.0, joules: 6905.0 },
    Table8Cell { job: "pi", cluster: "edison-35", seconds: 200.0, joules: 11445.0 },
    Table8Cell { job: "pi", cluster: "edison-17", seconds: 334.0, joules: 9247.0 },
    Table8Cell { job: "pi", cluster: "edison-8", seconds: 577.0, joules: 7517.0 },
    Table8Cell { job: "pi", cluster: "edison-4", seconds: 1076.0, joules: 7009.0 },
    Table8Cell { job: "pi", cluster: "dell-2", seconds: 50.0, joules: 9285.0 },
    Table8Cell { job: "pi", cluster: "dell-1", seconds: 77.0, joules: 6878.0 },
    Table8Cell { job: "terasort", cluster: "edison-35", seconds: 750.0, joules: 43440.0 },
    Table8Cell { job: "terasort", cluster: "edison-17", seconds: 1364.0, joules: 37763.0 },
    Table8Cell { job: "terasort", cluster: "edison-8", seconds: 3736.0, joules: 48675.0 },
    Table8Cell { job: "terasort", cluster: "edison-4", seconds: 8220.0, joules: 53547.0 },
    Table8Cell { job: "terasort", cluster: "dell-2", seconds: 331.0, joules: 64210.0 },
    Table8Cell { job: "terasort", cluster: "dell-1", seconds: 1336.0, joules: 111422.0 },
];

/// Look up a Table 8 cell.
pub fn table8_cell(job: &str, cluster: &str) -> Option<&'static Table8Cell> {
    TABLE8.iter().find(|c| c.job == job && c.cluster == cluster)
}

/// Table 5 reference (Edison, Dell) pairs.
pub mod table5 {
    /// MB/s.
    pub const WRITE: (f64, f64) = (4.5, 24.0);
    /// MB/s.
    pub const BUFFERED_WRITE: (f64, f64) = (9.3, 83.2);
    /// MB/s.
    pub const READ: (f64, f64) = (19.5, 86.1);
    /// MB/s.
    pub const BUFFERED_READ: (f64, f64) = (737.0, 3100.0);
    /// ms.
    pub const WRITE_LATENCY: (f64, f64) = (18.0, 5.04);
    /// ms.
    pub const READ_LATENCY: (f64, f64) = (7.0, 0.829);
}

/// Table 7: (request rate, edison db, dell db, edison cache, dell cache,
/// edison total, dell total), all ms.
pub const TABLE7: &[(f64, f64, f64, f64, f64, f64, f64)] = &[
    (480.0, 5.44, 1.61, 4.61, 0.37, 9.18, 1.43),
    (960.0, 5.25, 1.56, 9.37, 0.38, 14.79, 1.60),
    (1920.0, 5.33, 1.56, 76.7, 0.39, 83.4, 1.73),
    (3840.0, 8.74, 1.60, 105.1, 0.46, 114.7, 1.70),
    (7680.0, 10.99, 1.98, 212.0, 0.74, 225.1, 2.93),
];

/// §4.1: single-thread Dhrystone DMIPS.
pub const DMIPS: (f64, f64) = (632.3, 11383.0);

/// §4.2: peak memory bandwidth, GB/s.
pub const MEM_BW_GBPS: (f64, f64) = (2.2, 36.0);

/// §4.4: iperf TCP / UDP Mbit/s on Edison-path and Dell-Dell.
pub const IPERF_EDISON_TCP: f64 = 93.9;
pub const IPERF_EDISON_UDP: f64 = 94.8;
pub const IPERF_DELL_TCP: f64 = 942.0;
pub const IPERF_DELL_UDP: f64 = 948.0;

/// §4.4 ping RTTs, ms: (dell-dell, dell-edison, edison-edison).
pub const PING_MS: (f64, f64, f64) = (0.24, 0.8, 1.3);

/// §5.1.2: peak web throughput (both full clusters), req/s.
pub const WEB_PEAK_RPS: f64 = 6800.0;

/// §5.1.2: cluster power bands during web serving, W.
pub const WEB_EDISON_POWER: (f64, f64) = (56.0, 58.0);
pub const WEB_DELL_POWER: (f64, f64) = (170.0, 200.0);

/// §5.1.2: web energy-efficiency advantage of the Edison cluster.
pub const WEB_EFFICIENCY_GAIN: f64 = 3.5;

/// Table 10 (dell, edison) 3-year TCO rows.
pub const TABLE10: &[(&str, f64, f64)] = &[
    ("Web service, low utilization", 7948.7, 4329.5),
    ("Web service, high utilization", 8236.8, 4346.1),
    ("Big data, low utilization", 5348.2, 4352.4),
    ("Big data, high utilization", 5495.0, 4352.4),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table8_is_complete() {
        assert_eq!(TABLE8.len(), 36, "6 jobs × 6 cluster sizes");
        for job in ["wordcount", "wordcount2", "logcount", "logcount2", "pi", "terasort"] {
            for cluster in ["edison-35", "edison-17", "edison-8", "edison-4", "dell-2", "dell-1"] {
                assert!(table8_cell(job, cluster).is_some(), "{job}/{cluster} missing");
            }
        }
    }

    #[test]
    fn paper_energy_winners_match_bold_cells() {
        // In the paper, pi is the only job where a Dell config beats every
        // Edison config on energy... in fact Dell-1 (6878 J) beats
        // Edison-35 (11445 J) but not Edison-4 (7009 J); the bold minimum
        // for pi is dell-1.
        let min = |job: &str| {
            TABLE8
                .iter()
                .filter(|c| c.job == job)
                .min_by(|a, b| a.joules.partial_cmp(&b.joules).unwrap())
                .unwrap()
                .cluster
        };
        assert_eq!(min("wordcount"), "edison-35");
        assert_eq!(min("wordcount2"), "edison-8");
        assert_eq!(min("logcount"), "edison-8");
        assert_eq!(min("logcount2"), "edison-4");
        assert_eq!(min("pi"), "dell-1");
        assert_eq!(min("terasort"), "edison-17");
    }

    #[test]
    fn headline_ratios_match_abstract() {
        // wordcount: Edison-35 2.28× more work-done-per-joule than Dell-2.
        let e = table8_cell("wordcount", "edison-35").unwrap();
        let d = table8_cell("wordcount", "dell-2").unwrap();
        assert!((d.joules / e.joules - 2.28).abs() < 0.02);
        // logcount 2.57×
        let e = table8_cell("logcount", "edison-35").unwrap();
        let d = table8_cell("logcount", "dell-2").unwrap();
        assert!((d.joules / e.joules - 2.57).abs() < 0.02);
        // pi: Edison 23.3 % LESS efficient than dell-2
        let e = table8_cell("pi", "edison-35").unwrap();
        let d = table8_cell("pi", "dell-2").unwrap();
        assert!((e.joules - d.joules - 2160.0).abs() < 1.0);
    }
}
