//! Report rendering: ASCII tables, data series, paper-vs-measured rows.

use std::fmt;

/// A paper-value vs measured-value comparison row.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Metric label, e.g. "wordcount finish time, 35 Edison (s)".
    pub metric: String,
    /// The paper's reported value.
    pub paper: f64,
    /// Our measured value.
    pub measured: f64,
}

impl Comparison {
    /// Build a row.
    pub fn new(metric: impl Into<String>, paper: f64, measured: f64) -> Self {
        Comparison { metric: metric.into(), paper, measured }
    }

    /// measured / paper.
    pub fn ratio(&self) -> f64 {
        if self.paper == 0.0 {
            f64::NAN
        } else {
            self.measured / self.paper
        }
    }
}

/// One named data series (a curve in a figure).
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// (x, y) points.
    pub points: Vec<(f64, f64)>,
}

/// A rendered experiment report.
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment id (e.g. "fig04", "table8").
    pub id: String,
    /// Human title.
    pub title: String,
    /// Pre-rendered body text.
    pub body: String,
    /// Structured paper-vs-measured rows (feeds EXPERIMENTS.md).
    pub comparisons: Vec<Comparison>,
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "==== {} — {} ====", self.id, self.title)?;
        write!(f, "{}", self.body)?;
        if !self.comparisons.is_empty() {
            writeln!(f, "\n  paper vs measured:")?;
            for c in &self.comparisons {
                writeln!(
                    f,
                    "    {:<58} paper {:>12.2}  measured {:>12.2}  ratio {:>6.2}",
                    c.metric,
                    c.paper,
                    c.measured,
                    c.ratio()
                )?;
            }
        }
        Ok(())
    }
}

/// Render an ASCII table: `headers` then rows of equal arity.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "ragged table row");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let sep = |out: &mut String| {
        for w in &widths {
            out.push('+');
            out.push_str(&"-".repeat(w + 2));
        }
        out.push_str("+\n");
    };
    sep(&mut out);
    out.push('|');
    for (h, w) in headers.iter().zip(&widths) {
        out.push_str(&format!(" {h:<w$} |"));
    }
    out.push('\n');
    sep(&mut out);
    for row in rows {
        out.push('|');
        for (cell, w) in row.iter().zip(&widths) {
            out.push_str(&format!(" {cell:>w$} |"));
        }
        out.push('\n');
    }
    sep(&mut out);
    out
}

/// Render series as a wide table with x in the first column (a figure's
/// data, one column per curve).
pub fn series_table(x_label: &str, series: &[Series]) -> String {
    let mut xs: Vec<f64> = series.iter().flat_map(|s| s.points.iter().map(|p| p.0)).collect();
    xs.sort_by(|a, b| a.total_cmp(b));
    xs.dedup();
    let mut headers: Vec<&str> = vec![x_label];
    for s in series {
        headers.push(&s.label);
    }
    let rows: Vec<Vec<String>> = xs
        .iter()
        .map(|&x| {
            let mut row = vec![trim_float(x)];
            for s in series {
                let cell = s
                    .points
                    .iter()
                    .find(|p| p.0 == x)
                    .map(|p| trim_float(p.1))
                    .unwrap_or_else(|| "-".to_string());
                row.push(cell);
            }
            row
        })
        .collect();
    table(&headers, &rows)
}

/// Format a float compactly (integers without decimals).
pub fn trim_float(v: f64) -> String {
    if !v.is_finite() {
        return "-".into();
    }
    if (v - v.round()).abs() < 1e-9 && v.abs() < 1e12 {
        format!("{}", v.round() as i64)
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_and_aligns() {
        let t = table(
            &["job", "time (s)"],
            &[
                vec!["wordcount".into(), "310".into()],
                vec!["pi".into(), "200".into()],
            ],
        );
        assert!(t.contains("| job       | time (s) |"));
        assert!(t.contains("| wordcount |      310 |"));
        assert!(t.lines().count() >= 6);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        table(&["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn series_table_merges_x_values() {
        let s = vec![
            Series { label: "edison".into(), points: vec![(8.0, 50.0), (16.0, 100.0)] },
            Series { label: "dell".into(), points: vec![(16.0, 90.0)] },
        ];
        let t = series_table("conc", &s);
        assert!(t.contains("edison"));
        assert!(t.contains('-'), "missing cell shown as dash");
        assert!(t.contains("100"));
    }

    #[test]
    fn comparison_ratio() {
        let c = Comparison::new("x", 100.0, 150.0);
        assert!((c.ratio() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn trim_float_styles() {
        assert_eq!(trim_float(310.0), "310");
        assert_eq!(trim_float(3.456), "3.46");
        assert_eq!(trim_float(345.6), "345.6");
    }

    #[test]
    fn report_displays_comparisons() {
        let r = Report {
            id: "t8".into(),
            title: "Table 8".into(),
            body: "body\n".into(),
            comparisons: vec![Comparison::new("wordcount (s)", 310.0, 290.0)],
        };
        let s = format!("{r}");
        assert!(s.contains("==== t8"));
        assert!(s.contains("paper vs measured"));
        assert!(s.contains("0.94") || s.contains("0.93"));
    }
}
