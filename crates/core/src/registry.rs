//! The experiment registry: every table/figure behind one uniform entry.

use crate::experiments::{extensions, individual, mapred, smoke, tco_exp, webservice};
use crate::report::Report;
use edison_simtel::Telemetry;

/// How much simulated time / how many sweep columns an experiment may
/// spend. `quick` keeps CI fast; `full` is the paper-scale run the `repro`
/// binary uses.
#[derive(Debug, Clone)]
pub struct RunBudget {
    /// httperf warm-up seconds.
    pub web_warmup_s: u64,
    /// httperf measurement seconds per point.
    pub web_measure_s: u64,
    /// Run all six Table 8 cluster sizes (vs a reduced column set).
    pub full_scalability: bool,
}

impl RunBudget {
    /// CI-friendly budget.
    pub fn quick() -> Self {
        RunBudget { web_warmup_s: 2, web_measure_s: 6, full_scalability: false }
    }

    /// Paper-scale budget (minutes of wall time in release builds).
    pub fn full() -> Self {
        RunBudget { web_warmup_s: 5, web_measure_s: 20, full_scalability: true }
    }
}

/// A registered experiment.
pub struct Experiment {
    /// Stable id (`table8`, `fig04_07`, …).
    pub id: &'static str,
    /// What it reproduces.
    pub title: &'static str,
    /// Execute and render. The second argument is the telemetry sink
    /// (`Telemetry::off()` for plain runs); experiments with simulation
    /// content record a representative traced run into it when enabled.
    pub run: fn(&RunBudget, &mut Telemetry) -> Report,
}

/// Every experiment, in paper order.
pub fn all() -> Vec<Experiment> {
    vec![
        Experiment { id: "table1", title: "Related-work micro server specs", run: |_, _| individual::table1() },
        Experiment { id: "table2", title: "Edison vs Dell resource ratios", run: |_, _| individual::table2() },
        Experiment { id: "table3", title: "Idle/busy power", run: |_, _| individual::table3() },
        Experiment { id: "table4", title: "Software versions", run: |_, _| individual::table4() },
        Experiment { id: "sec41_dmips", title: "Dhrystone DMIPS", run: |_, _| individual::sec41_dmips() },
        Experiment { id: "fig02_03", title: "Sysbench CPU sweep", run: |_, _| individual::fig02_03() },
        Experiment { id: "sec42_membw", title: "Memory bandwidth sweep", run: |_, _| individual::sec42_membw() },
        Experiment { id: "table5", title: "Storage throughput/latency", run: |_, _| individual::table5() },
        Experiment { id: "sec44_net", title: "iperf/ping network tests", run: |_, _| individual::sec44_net() },
        Experiment { id: "table6", title: "Web cluster scale configs", run: |_, _| individual::table6() },
        Experiment { id: "fig04_07", title: "Web throughput/delay, lightest load", run: webservice::fig04_07 },
        Experiment { id: "fig05_08", title: "Web throughput/delay, mixed loads", run: webservice::fig05_08 },
        Experiment { id: "fig06_09", title: "Web throughput/delay, 20% images", run: webservice::fig06_09 },
        Experiment { id: "fig10_11", title: "Delay distributions", run: webservice::fig10_11 },
        Experiment { id: "table7", title: "Delay decomposition", run: webservice::table7 },
        Experiment { id: "fig12_17", title: "MapReduce timelines", run: mapred::fig12_17 },
        Experiment { id: "table8", title: "Time/energy matrix (+Fig 18-19)", run: mapred::table8 },
        Experiment { id: "sec53_speedup", title: "Scalability speed-up", run: mapred::scalability_speedup },
        Experiment { id: "table9", title: "TCO constants", run: |_, _| individual::table9() },
        Experiment { id: "table10", title: "TCO comparison", run: |_, _| tco_exp::table10() },
        Experiment { id: "ext_hybrid", title: "EXT: hybrid web tier (§7 vision)", run: extensions::ext_hybrid },
        Experiment { id: "ext_failure", title: "EXT: node-failure impact", run: extensions::ext_failure },
        Experiment { id: "ext_platforms", title: "EXT: related-work platform what-if", run: extensions::ext_platforms },
        Experiment { id: "ext_dvfs", title: "EXT: DVFS vs substitution (§1)", run: extensions::ext_dvfs },
        Experiment { id: "smoke", title: "End-to-end smoke run (web + MapReduce, telemetry-ready)", run: smoke::smoke },
    ]
}

/// Find an experiment by id.
pub fn find(id: &str) -> Option<Experiment> {
    all().into_iter().find(|e| e.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_paper_artifact() {
        let ids: Vec<&str> = all().iter().map(|e| e.id).collect();
        // tables 1-10 (7 via table7, 8 via table8...)
        for t in ["table1", "table2", "table3", "table4", "table5", "table6", "table7", "table8", "table9", "table10"] {
            assert!(ids.contains(&t), "missing {t}");
        }
        // all 19 figures are covered by these grouped ids
        for f in ["fig02_03", "fig04_07", "fig05_08", "fig06_09", "fig10_11", "fig12_17", "table8"] {
            assert!(ids.contains(&f), "missing {f}");
        }
    }

    #[test]
    fn find_works() {
        assert!(find("table8").is_some());
        assert!(find("nope").is_none());
    }

    #[test]
    fn cheap_experiments_run_under_quick_budget() {
        let b = RunBudget::quick();
        for id in ["table1", "table2", "table3", "table4", "table5", "table6", "table9", "table10", "sec41_dmips", "sec42_membw", "sec44_net", "fig02_03"] {
            let e = find(id).unwrap();
            let r = (e.run)(&b, &mut Telemetry::off());
            assert_eq!(r.id, id);
            assert!(!r.body.is_empty());
        }
    }
}
